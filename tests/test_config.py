"""Unit tests for GPUConfig validation and derived quantities."""

import pytest

from repro.sim.config import DEFAULT_CONFIG, GPUConfig


class TestDefaults:
    def test_default_is_fermi_class(self):
        config = GPUConfig()
        assert config.num_sms == 15
        assert config.max_warps_per_sm == 48
        assert config.max_ctas_per_sm == 8

    def test_default_singleton_matches_constructor(self):
        assert DEFAULT_CONFIG == GPUConfig()

    def test_derived_l1_sets(self):
        config = GPUConfig()
        assert config.l1_num_sets == config.l1_size // (128 * config.l1_assoc)

    def test_derived_threads(self):
        config = GPUConfig()
        assert config.max_threads_per_sm == 48 * 32


class TestValidation:
    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            GPUConfig(num_sms=0)

    def test_rejects_non_int(self):
        with pytest.raises(ValueError):
            GPUConfig(num_sms=1.5)

    def test_l1_geometry_must_divide(self):
        with pytest.raises(ValueError):
            GPUConfig(l1_size=1000)

    def test_l2_banking_must_divide(self):
        with pytest.raises(ValueError):
            GPUConfig(l2_size=1001 * 1024)

    def test_issue_width_bounded_by_warps(self):
        with pytest.raises(ValueError):
            GPUConfig(issue_width=100, max_warps_per_sm=48)


class TestOverridesAndSmall:
    def test_with_overrides_returns_new_config(self):
        config = GPUConfig()
        other = config.with_overrides(num_sms=4)
        assert other.num_sms == 4
        assert config.num_sms == 15

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError):
            GPUConfig().with_overrides(num_sms=-1)

    def test_small_config_is_valid_and_small(self):
        config = GPUConfig.small()
        assert config.num_sms == 2
        assert config.l1_size < GPUConfig().l1_size

    def test_small_accepts_overrides(self):
        config = GPUConfig.small(num_sms=3)
        assert config.num_sms == 3

    def test_kepler_preset(self):
        kepler = GPUConfig.kepler_class()
        assert kepler.num_sms == 13
        assert kepler.max_ctas_per_sm == 16
        assert kepler.max_warps_per_sm == 64
        assert kepler.registers_per_sm == 65536

    def test_kepler_preset_accepts_overrides(self):
        assert GPUConfig.kepler_class(num_sms=2).num_sms == 2

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            GPUConfig().num_sms = 3
