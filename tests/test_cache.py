"""Unit tests for the set-associative cache and its MSHRs."""

import pytest

from repro.mem.cache import Access, Cache


def make_cache(sets=4, assoc=2, mshr=4, merge=2) -> Cache:
    return Cache("test", num_sets=sets, assoc=assoc, mshr_entries=mshr,
                 mshr_max_merge=merge)


class TestGeometry:
    def test_rejects_zero_sets(self):
        with pytest.raises(ValueError):
            Cache("bad", num_sets=0, assoc=2, mshr_entries=1, mshr_max_merge=1)

    def test_rejects_zero_assoc(self):
        with pytest.raises(ValueError):
            Cache("bad", num_sets=4, assoc=0, mshr_entries=1, mshr_max_merge=1)

    def test_rejects_zero_mshr(self):
        with pytest.raises(ValueError):
            Cache("bad", num_sets=4, assoc=2, mshr_entries=0, mshr_max_merge=1)


class TestLoadPath:
    def test_cold_miss_allocates_mshr(self):
        cache = make_cache()
        assert cache.lookup_load(10, "w0") is Access.MISS
        assert cache.pending(10)
        assert cache.stats.misses == 1

    def test_second_load_same_line_merges(self):
        cache = make_cache()
        cache.lookup_load(10, "w0")
        assert cache.lookup_load(10, "w1") is Access.MERGED
        assert cache.stats.merges == 1

    def test_fill_returns_all_waiters_in_order(self):
        cache = make_cache()
        cache.lookup_load(10, "w0")
        cache.lookup_load(10, "w1")
        assert cache.fill(10) == ["w0", "w1"]
        assert not cache.pending(10)

    def test_hit_after_fill(self):
        cache = make_cache()
        cache.lookup_load(10, "w0")
        cache.fill(10)
        assert cache.lookup_load(10, "w1") is Access.HIT
        assert cache.stats.hits == 1

    def test_merge_capacity_stalls(self):
        cache = make_cache(merge=2)
        cache.lookup_load(10, "w0")
        cache.lookup_load(10, "w1")
        assert cache.lookup_load(10, "w2") is Access.STALL
        assert cache.stats.mshr_stalls == 1

    def test_mshr_exhaustion_stalls(self):
        cache = make_cache(mshr=2)
        cache.lookup_load(1, "a")
        cache.lookup_load(2, "b")
        assert cache.lookup_load(3, "c") is Access.STALL
        assert cache.mshr_free == 0

    def test_stall_does_not_count_as_access(self):
        cache = make_cache(mshr=1)
        cache.lookup_load(1, "a")
        cache.lookup_load(2, "b")   # stall
        assert cache.stats.accesses == 1

    def test_mshr_frees_after_fill(self):
        cache = make_cache(mshr=1)
        cache.lookup_load(1, "a")
        cache.fill(1)
        assert cache.lookup_load(2, "b") is Access.MISS


class TestReplacement:
    def test_lru_eviction(self):
        cache = make_cache(sets=1, assoc=2)
        for line in (1, 2):
            cache.lookup_load(line, "w")
            cache.fill(line)
        # Touch line 1 so line 2 becomes LRU.
        assert cache.lookup_load(1, "w") is Access.HIT
        cache.lookup_load(3, "w")
        cache.fill(3)
        assert cache.contains(1)
        assert not cache.contains(2)
        assert cache.stats.evictions == 1

    def test_lines_map_to_distinct_sets(self):
        cache = make_cache(sets=4, assoc=1)
        for line in range(4):
            cache.lookup_load(line, "w")
            cache.fill(line)
        assert all(cache.contains(line) for line in range(4))

    def test_conflicting_lines_evict_within_set(self):
        cache = make_cache(sets=4, assoc=1)
        cache.lookup_load(0, "w")
        cache.fill(0)
        cache.lookup_load(4, "w")   # same set (4 % 4 == 0)
        cache.fill(4)
        assert not cache.contains(0)
        assert cache.contains(4)

    def test_fill_without_mshr_is_allowed(self):
        cache = make_cache()
        assert cache.fill(42) == []
        assert cache.contains(42)

    def test_duplicate_fill_does_not_double_insert(self):
        cache = make_cache(sets=1, assoc=2)
        cache.fill(1)
        cache.fill(1)
        assert cache.stats.fills == 1


class TestWritePath:
    def test_write_miss_does_not_allocate(self):
        cache = make_cache()
        assert cache.write_probe(10) is False
        assert not cache.contains(10)
        assert cache.stats.write_accesses == 1

    def test_write_hit_updates_lru(self):
        cache = make_cache(sets=1, assoc=2)
        for line in (1, 2):
            cache.fill(line)
        assert cache.write_probe(1) is True
        cache.fill(3)
        # 2 was LRU after the write touched 1.
        assert cache.contains(1)
        assert not cache.contains(2)


class TestFlushAndStats:
    def test_flush_clears_lines(self):
        cache = make_cache()
        cache.fill(1)
        cache.flush()
        assert not cache.contains(1)

    def test_flush_with_pending_miss_raises(self):
        cache = make_cache()
        cache.lookup_load(1, "w")
        with pytest.raises(RuntimeError):
            cache.flush()

    def test_miss_rate_counts_merges_as_misses(self):
        cache = make_cache()
        cache.lookup_load(1, "a")     # miss
        cache.lookup_load(1, "b")     # merge
        cache.fill(1)
        cache.lookup_load(1, "c")     # hit
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_contains_does_not_touch_lru(self):
        cache = make_cache(sets=1, assoc=2)
        cache.fill(1)
        cache.fill(2)
        cache.contains(1)             # must NOT refresh line 1
        cache.fill(3)
        assert not cache.contains(1)  # 1 was still LRU
