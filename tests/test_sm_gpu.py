"""Integration tests for the SM + GPU execution model on tiny kernels."""

import pytest

from repro.harness.runner import simulate
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPU, SimulationError
from repro.sim.isa import alu, barrier, exit_, load, shared, store

from helpers import alu_program, make_test_kernel


def run_kernel(kernel, config=None, warp_scheduler="gto"):
    config = config or GPUConfig.small()
    return simulate(kernel, config=config, warp_scheduler=warp_scheduler)


class TestBasicExecution:
    def test_all_instructions_issue(self, small_config):
        kernel = make_test_kernel(num_ctas=4, warps_per_cta=2)
        result = run_kernel(kernel, small_config)
        per_warp = len(alu_program())
        assert result.instructions == 4 * 2 * per_warp

    def test_single_warp_alu_timing(self, small_config):
        # 10 dependent ALU ops at latency 2, one warp: ~20 cycles + exit.
        kernel = make_test_kernel(num_ctas=1, warps_per_cta=1)
        result = run_kernel(kernel, small_config)
        assert 18 <= result.cycles <= 30

    def test_more_warps_overlap_latency(self, small_config):
        one = run_kernel(make_test_kernel(num_ctas=1, warps_per_cta=1),
                         small_config)
        many = run_kernel(make_test_kernel(num_ctas=1, warps_per_cta=4),
                          small_config)
        # 4 warps do 4x the work in much less than 4x the time.
        assert many.cycles < 2.5 * one.cycles

    def test_kernel_stats_recorded(self, small_config):
        kernel = make_test_kernel(num_ctas=2)
        result = run_kernel(kernel, small_config)
        stats = result.kernel("test")
        assert stats.finish_cycle is not None
        assert stats.instructions == result.instructions
        assert stats.ipc > 0


class TestMemoryExecution:
    def test_load_goes_through_hierarchy(self, small_config):
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [load([0]), exit_()])
        result = run_kernel(kernel, small_config)
        assert result.l1.accesses == 1
        assert result.l1.misses == 1
        assert result.l2.misses == 1
        assert result.dram.reads == 1

    def test_repeated_load_hits_l1(self, small_config):
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [load([0]), load([0]), exit_()])
        result = run_kernel(kernel, small_config)
        assert result.l1.hits == 1
        assert result.dram.reads == 1

    def test_two_warps_same_line_merge_in_mshr(self, small_config):
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=2,
            builder=lambda c, w: [load([0]), exit_()])
        result = run_kernel(kernel, small_config)
        assert result.l1.merges == 1
        assert result.dram.reads == 1

    def test_store_is_write_through(self, small_config):
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [store([0]), exit_()])
        result = run_kernel(kernel, small_config)
        assert result.l1.write_accesses == 1
        assert result.dram.writes == 1

    def test_memory_latency_dominates_single_warp(self, small_config):
        compute = run_kernel(make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [alu(2), exit_()]), small_config)
        memory = run_kernel(make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [load([0]), exit_()]), small_config)
        assert memory.cycles > 3 * compute.cycles

    def test_multi_line_load_generates_transactions(self, small_config):
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [load([0, 1, 2, 3]), exit_()])
        result = run_kernel(kernel, small_config)
        assert result.l1.accesses == 4


class TestBarriers:
    def test_barrier_synchronizes_warps(self, small_config):
        # Warp 0 computes long, warp 1 short; both must reach the barrier
        # before either proceeds.
        def builder(cta_id, warp_idx):
            work = 20 if warp_idx == 0 else 1
            return ([alu(2)] * work + [barrier(), alu(2), exit_()])

        kernel = make_test_kernel(num_ctas=1, warps_per_cta=2, builder=builder)
        result = run_kernel(kernel, small_config)
        assert result.instructions == (20 + 3) + (1 + 3)

    def test_barrier_loop(self, small_config):
        def builder(cta_id, warp_idx):
            program = []
            for _ in range(5):
                program.extend([alu(2), barrier()])
            program.append(exit_())
            return program

        kernel = make_test_kernel(num_ctas=2, warps_per_cta=4, builder=builder)
        result = run_kernel(kernel, small_config)
        assert result.instructions == 2 * 4 * 11

    def test_uneven_barrier_counts_do_not_deadlock(self, small_config):
        # Warp 1 exits without reaching the barrier; the simulator must
        # release warp 0 when warp 1's exit satisfies the arrival condition.
        def builder(cta_id, warp_idx):
            if warp_idx == 0:
                return [barrier(), alu(2), exit_()]
            return [alu(2), exit_()]

        kernel = make_test_kernel(num_ctas=1, warps_per_cta=2, builder=builder)
        result = run_kernel(kernel, small_config)   # must terminate
        assert result.instructions == 5


class TestSharedMemoryOps:
    def test_shared_latency_applies(self, small_config):
        fast = run_kernel(make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [alu(1), exit_()]), small_config)
        slow = run_kernel(make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [shared(24), exit_()]), small_config)
        assert slow.cycles > fast.cycles


class TestResourceLimits:
    def test_occupancy_bounds_resident_ctas(self):
        config = GPUConfig.small(num_sms=1)
        # 8 warps/CTA, 16 warp contexts -> 2 CTAs resident.
        kernel = make_test_kernel(num_ctas=4, warps_per_cta=8,
                                  regs_per_thread=0)
        result = run_kernel(kernel, config)
        assert result.instructions == 4 * 8 * len(alu_program())

    def test_issue_width_caps_throughput(self):
        config = GPUConfig.small(num_sms=1)
        kernel = make_test_kernel(num_ctas=2, warps_per_cta=8,
                                  builder=lambda c, w: alu_program(40, 1))
        result = run_kernel(kernel, config)
        # 2 schedulers can retire at most 2 instructions per cycle.
        assert result.instructions / result.cycles <= config.issue_width + 1e-9


class TestGPULifecycle:
    def test_gpu_cannot_launch_twice(self, small_config):
        gpu = GPU(config=small_config)
        gpu.launch([make_test_kernel()])
        with pytest.raises(SimulationError):
            gpu.launch([make_test_kernel()])

    def test_empty_launch_rejected(self, small_config):
        gpu = GPU(config=small_config)
        with pytest.raises(ValueError):
            gpu.launch([])

    def test_unknown_warp_scheduler_rejected(self, small_config):
        with pytest.raises(ValueError):
            GPU(config=small_config, warp_scheduler="bogus")

    def test_total_issued_matches_stats(self, small_config):
        kernel = make_test_kernel(num_ctas=3)
        result = run_kernel(kernel, small_config)
        assert sum(result.issued_by_sm) == result.instructions


class TestDeterminism:
    def test_same_seed_same_cycles(self, small_config):
        from repro.workloads.suite import make_kernel
        a = simulate(make_kernel("kmeans", scale=0.05), config=small_config)
        b = simulate(make_kernel("kmeans", scale=0.05), config=small_config)
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions
        assert a.l1.misses == b.l1.misses

    def test_different_seed_differs(self, small_config):
        from repro.workloads.suite import make_kernel
        a = simulate(make_kernel("kmeans", scale=0.05, seed=1),
                     config=small_config)
        b = simulate(make_kernel("kmeans", scale=0.05, seed=2),
                     config=small_config)
        assert a.cycles != b.cycles
