"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lcs import (decide_n_star_coverage, decide_n_star_tail,
                            decide_n_star_threshold)
from repro.harness.reporting import geomean
from repro.mem.address import dram_coordinates
from repro.mem.cache import Access, Cache
from repro.mem.coalescer import coalesce
from repro.sim.events import EventQueue

lines_strategy = st.lists(st.integers(min_value=0, max_value=500),
                          min_size=1, max_size=60)
counts_strategy = st.lists(st.integers(min_value=0, max_value=10_000),
                           min_size=1, max_size=16)
ratio_strategy = st.floats(min_value=0.01, max_value=1.0,
                           allow_nan=False, allow_infinity=False)


# --------------------------------------------------------------------------- #
# Cache invariants
# --------------------------------------------------------------------------- #

@given(lines=lines_strategy)
@settings(max_examples=60)
def test_cache_capacity_never_exceeded(lines):
    cache = Cache("p", num_sets=4, assoc=2, mshr_entries=64,
                  mshr_max_merge=64)
    for line in lines:
        outcome = cache.lookup_load(line, "w")
        if outcome in (Access.MISS, Access.MERGED):
            cache.fill(line)
    assert sum(len(s) for s in cache._sets) <= 4 * 2


@given(lines=lines_strategy)
@settings(max_examples=60)
def test_cache_stats_balance(lines):
    cache = Cache("p", num_sets=4, assoc=2, mshr_entries=4, mshr_max_merge=2)
    for line in lines:
        outcome = cache.lookup_load(line, "w")
        if outcome is Access.MISS:
            cache.fill(line)
    stats = cache.stats
    assert stats.accesses == stats.hits + stats.misses + stats.merges
    assert 0.0 <= stats.miss_rate <= 1.0


@given(lines=lines_strategy)
@settings(max_examples=60)
def test_mshr_waiters_conserved(lines):
    """Every registered waiter comes back exactly once via fill()."""
    cache = Cache("p", num_sets=8, assoc=4, mshr_entries=128,
                  mshr_max_merge=128)
    registered = 0
    returned = 0
    for i, line in enumerate(lines):
        outcome = cache.lookup_load(line, i)
        if outcome in (Access.MISS, Access.MERGED):
            registered += 1
    for line in set(lines):
        returned += len(cache.fill(line))
    assert registered == returned


# --------------------------------------------------------------------------- #
# Coalescer properties
# --------------------------------------------------------------------------- #

@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 20),
                          min_size=1, max_size=32))
def test_coalesce_distinct_and_covering(addresses):
    lines = coalesce(addresses, line_size=128)
    assert len(set(lines)) == len(lines)
    assert {a // 128 for a in addresses} == set(lines)
    assert len(lines) <= len(addresses)


# --------------------------------------------------------------------------- #
# DRAM address-mapping properties
# --------------------------------------------------------------------------- #

@given(line=st.integers(min_value=0, max_value=1 << 30),
       channels=st.integers(min_value=1, max_value=8),
       banks=st.integers(min_value=1, max_value=16),
       row_lines=st.integers(min_value=1, max_value=64))
def test_dram_mapping_in_range_and_bijective_within_chunk(line, channels,
                                                          banks, row_lines):
    coords = dram_coordinates(line, channels, banks, row_lines)
    assert 0 <= coords.channel < channels
    assert 0 <= coords.bank < banks
    assert coords.row >= 0
    # Reconstruct the chunk index: the mapping must be invertible.
    chunk = ((coords.row * banks + coords.bank) * channels + coords.channel)
    assert chunk == line // row_lines


# --------------------------------------------------------------------------- #
# Event queue properties
# --------------------------------------------------------------------------- #

@given(times=st.lists(st.integers(min_value=0, max_value=1000),
                      min_size=1, max_size=50))
def test_events_fire_in_nondecreasing_time_order(times):
    queue = EventQueue()
    fired = []
    for t in times:
        queue.schedule(t, lambda now, arg: fired.append(arg), t)
    while queue:
        queue.run_due(queue.next_time())
    assert fired == sorted(fired)
    assert len(fired) == len(times)


# --------------------------------------------------------------------------- #
# LCS decision-rule properties
# --------------------------------------------------------------------------- #

@given(counts=counts_strategy, ratio=ratio_strategy,
       occupancy=st.integers(min_value=1, max_value=16))
def test_tail_rule_bounds(counts, ratio, occupancy):
    n = decide_n_star_tail(counts, ratio, occupancy)
    assert 1 <= n <= max(occupancy, 1)


@given(counts=counts_strategy, coverage=ratio_strategy,
       occupancy=st.integers(min_value=1, max_value=16))
def test_coverage_rule_bounds_and_monotonicity(counts, coverage, occupancy):
    n = decide_n_star_coverage(counts, coverage, occupancy)
    assert 1 <= n <= occupancy
    # Higher coverage can never pick fewer CTAs.
    higher = decide_n_star_coverage(counts, min(1.0, coverage + 0.2),
                                    occupancy)
    assert higher >= n


@given(counts=counts_strategy, threshold=ratio_strategy,
       occupancy=st.integers(min_value=1, max_value=16))
def test_threshold_rule_bounds_and_antitonicity(counts, threshold, occupancy):
    n = decide_n_star_threshold(counts, threshold, occupancy)
    assert 1 <= n <= occupancy
    # A stricter threshold can never pick more CTAs.
    stricter = decide_n_star_threshold(counts, min(1.0, threshold + 0.2),
                                       occupancy)
    assert stricter <= n


@given(counts=st.lists(st.integers(min_value=1, max_value=10_000),
                       min_size=2, max_size=16))
def test_tail_rule_permutation_invariant(counts):
    base = decide_n_star_tail(counts, 0.5, 16)
    shuffled = list(reversed(counts))
    assert decide_n_star_tail(shuffled, 0.5, 16) == base


# --------------------------------------------------------------------------- #
# Reporting
# --------------------------------------------------------------------------- #

@given(values=st.lists(st.floats(min_value=0.01, max_value=100.0,
                                 allow_nan=False), min_size=1, max_size=20))
def test_geomean_between_min_and_max(values):
    g = geomean(values)
    assert min(values) * 0.999 <= g <= max(values) * 1.001


@given(values=st.lists(st.floats(min_value=0.01, max_value=100.0,
                                 allow_nan=False), min_size=1, max_size=20),
       factor=st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
def test_geomean_scales_linearly(values, factor):
    import math
    assert math.isclose(geomean([v * factor for v in values]),
                        geomean(values) * factor, rel_tol=1e-9)
