"""Tests for the runner front end and the reporting helpers."""

import pytest

from repro.core.cta_schedulers import StaticLimitCTAScheduler
from repro.harness.reporting import Table, geomean, speedup
from repro.harness.runner import simulate

from helpers import make_test_kernel


class TestSimulate:
    def test_default_policy_is_round_robin(self, small_config):
        result = simulate(make_test_kernel(), config=small_config)
        assert result.meta["cta_scheduler"] == "rr"
        assert result.meta["warp_scheduler"] == "gto"

    def test_scheduler_reuse_rejected(self, small_config):
        kernel = make_test_kernel()
        scheduler = StaticLimitCTAScheduler(kernel, limit_per_sm=1)
        simulate(kernel, config=small_config, cta_scheduler=scheduler)
        with pytest.raises(ValueError):
            simulate(kernel, config=small_config, cta_scheduler=scheduler)

    def test_kernel_mismatch_rejected(self, small_config):
        kernel = make_test_kernel()
        other = make_test_kernel()
        scheduler = StaticLimitCTAScheduler(other, limit_per_sm=1)
        with pytest.raises(ValueError):
            simulate(kernel, config=small_config, cta_scheduler=scheduler)

    def test_l1_stats_aggregate_all_sms(self, small_config):
        from repro.sim.isa import exit_, load
        kernel = make_test_kernel(
            num_ctas=4, warps_per_cta=1,
            builder=lambda c, w: [load([c * 100]), exit_()])
        result = simulate(kernel, config=small_config)
        assert result.l1.accesses == 4

    def test_summary_is_printable(self, small_config):
        result = simulate(make_test_kernel(), config=small_config)
        text = result.summary()
        assert "IPC" in text
        assert "kernel test" in text

    def test_ipc_consistency(self, small_config):
        result = simulate(make_test_kernel(), config=small_config)
        assert result.ipc == pytest.approx(
            result.instructions / result.cycles)


class TestGeomean:
    def test_basic(self):
        assert geomean([2, 8]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestSpeedup:
    def test_direction(self):
        assert speedup(200, 100) == pytest.approx(2.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            speedup(0, 10)


class TestTable:
    def make(self):
        table = Table("demo", ["name", "value"])
        table.add_row("a", 1.23456)
        table.add_row("b", 7)
        return table

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            self.make().add_row("only-one")

    def test_column_lookup(self):
        assert self.make().column("value") == [1.23456, 7]

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            self.make().column("nope")

    def test_row_for(self):
        assert self.make().row_for("b") == ("b", 7)
        with pytest.raises(KeyError):
            self.make().row_for("c")

    def test_render_contains_everything(self):
        table = self.make()
        table.add_note("a note")
        text = table.render()
        assert "demo" in text
        assert "1.235" in text       # floats at 3 decimals
        assert "a note" in text

    def test_render_empty_table(self):
        assert "empty" in Table("empty", ["x"]).render()

    def test_csv_escaping(self):
        table = Table("t", ["a"])
        table.add_row('hello, "world"')
        assert table.to_csv().splitlines()[1] == '"hello, ""world"""'


class TestChart:
    def make(self):
        table = Table("speedups", ["benchmark", "speedup"])
        table.add_row("a", 2.0)
        table.add_row("b", 0.5)
        table.add_row("gmean", 1.0)
        return table

    def test_bars_scale_to_max(self):
        chart = self.make().render_chart("speedup", width=10)
        lines = chart.splitlines()[1:]
        # The max row gets (nearly) the full width; the reference marker
        # may overwrite one character of the bar.
        assert lines[0].count("#") >= 9
        assert lines[1].count("#") < lines[0].count("#")

    def test_reference_marker_present(self):
        chart = self.make().render_chart("speedup", width=10)
        assert "|" in chart

    def test_values_printed(self):
        chart = self.make().render_chart("speedup")
        assert "2.000" in chart and "0.500" in chart

    def test_non_numeric_rows_skipped(self):
        table = Table("t", ["name", "value"])
        table.add_row("x", 1.5)
        table.add_row("note", "-")
        chart = table.render_chart("value")
        assert "note" not in chart

    def test_all_non_numeric_rejected(self):
        table = Table("t", ["name", "value"])
        table.add_row("x", "-")
        with pytest.raises(ValueError):
            table.render_chart("value")
