"""Unit tests for the event queue."""

from repro.sim.events import EventQueue


def test_empty_queue_is_falsy():
    queue = EventQueue()
    assert not queue
    assert len(queue) == 0
    assert queue.next_time() is None


def test_events_fire_in_time_order():
    queue = EventQueue()
    fired = []
    queue.schedule(5, lambda now, arg: fired.append(arg), "late")
    queue.schedule(1, lambda now, arg: fired.append(arg), "early")
    queue.run_due(10)
    assert fired == ["early", "late"]


def test_same_cycle_events_fire_fifo():
    queue = EventQueue()
    fired = []
    for i in range(5):
        queue.schedule(3, lambda now, arg: fired.append(arg), i)
    queue.run_due(3)
    assert fired == [0, 1, 2, 3, 4]


def test_run_due_only_fires_due_events():
    queue = EventQueue()
    fired = []
    queue.schedule(1, lambda now, arg: fired.append(arg), "a")
    queue.schedule(2, lambda now, arg: fired.append(arg), "b")
    count = queue.run_due(1)
    assert count == 1
    assert fired == ["a"]
    assert len(queue) == 1


def test_next_time_reports_earliest():
    queue = EventQueue()
    queue.schedule(7, lambda now, arg: None)
    queue.schedule(3, lambda now, arg: None)
    assert queue.next_time() == 3


def test_callback_receives_now_and_arg():
    queue = EventQueue()
    seen = []
    queue.schedule(4, lambda now, arg: seen.append((now, arg)), "x")
    queue.run_due(9)
    # Callbacks receive the *processing* cycle, not the scheduled one.
    assert seen == [(9, "x")]


def test_callback_may_schedule_new_events():
    queue = EventQueue()
    fired = []

    def chain(now, arg):
        fired.append(arg)
        if arg < 3:
            queue.schedule(now, chain, arg + 1)

    queue.schedule(0, chain, 0)
    queue.run_due(0)
    assert fired == [0, 1, 2, 3]
