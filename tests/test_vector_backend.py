"""Object-vs-vector backend parity: the bitwise contract, tested directly.

The vector backend (:mod:`repro.sim.vector`) is only allowed to exist
because it reproduces the object core exactly.  These tests enforce that
contract head-on:

* the pinned 12-cell cross-check matrix (every supported warp scheduler x
  every paper-relevant CTA policy, plus the multi-kernel cell) runs on
  both backends and must diff clean on every leaf of ``to_dict()``;
* telemetry riders (timeline window + trace) must match bitwise too —
  parity covers all three drift lanes, not just headline stats;
* the ``repro-verify`` parity layer (:mod:`repro.verify.backends`) is
  exercised for matrix construction, sweep verdicts and its guard rails.
"""

from dataclasses import replace

import pytest

from repro.harness.jobs import SimJob
from repro.sim.config import GPUConfig
from repro.sim.vector import (VECTOR_WARP_SCHEDULERS, VectorBackendError,
                              ensure_numpy, vector_supported)
from repro.verify.backends import (ParityReport, ParityVerdict,
                                   parity_matrix, verify_backends)
from repro.verify.golden import (GoldenCell, GoldenError, canonical_result,
                                 diff_paths, golden_matrix)
from repro.verify.refmodel import crosscheck_matrix

SMALL = GPUConfig.small()


def _job_label(job):
    policy = "+".join(str(p) for p in job.policy if p is not None)
    return f"{'+'.join(job.names)}-{policy}-{job.warp}"


CROSSCHECK = crosscheck_matrix()


# --------------------------------------------------------------------------- #
# the pinned cross-check matrix, object vs vector
# --------------------------------------------------------------------------- #

class TestCrosscheckParity:
    def test_matrix_is_the_pinned_twelve_cells(self):
        # The parity sweep below only means something if the matrix keeps
        # its breadth: every supported warp x policy pairing present.
        assert len(CROSSCHECK) == 12
        assert all(vector_supported(job.warp) for job in CROSSCHECK)

    @pytest.mark.parametrize("job", CROSSCHECK, ids=_job_label)
    def test_vector_matches_object_bitwise(self, job):
        obj = replace(job, backend="object").execute().to_dict()
        vec = replace(job, backend="vector").execute().to_dict()
        diffs = diff_paths(canonical_result(obj), canonical_result(vec))
        assert not diffs, (
            f"{_job_label(job)}: vector backend diverged from the object "
            f"core at {len(diffs)} leaf path(s); first: {diffs[:3]}")


class TestTelemetryParity:
    def test_timeline_and_trace_lanes_match(self):
        # Riders exercise the windowed-timeline and event-trace paths the
        # headline stats never touch.
        job = SimJob(names=("kmeans",), scale=0.05, warp="gto",
                     policy=("lcs",), config=SMALL, timeline_window=200,
                     trace=True)
        obj = replace(job, backend="object").execute().to_dict()
        vec = replace(job, backend="vector").execute().to_dict()
        assert obj["meta"].get("timeline"), "rider did not produce a timeline"
        assert diff_paths(canonical_result(obj), canonical_result(vec)) == []


# --------------------------------------------------------------------------- #
# capability surface
# --------------------------------------------------------------------------- #

class TestCapability:
    def test_supported_set_is_the_pinned_three(self):
        assert VECTOR_WARP_SCHEDULERS == {"lrr", "gto", "baws"}

    @pytest.mark.parametrize("warp", sorted(VECTOR_WARP_SCHEDULERS))
    def test_supported_warps(self, warp):
        assert vector_supported(warp)

    @pytest.mark.parametrize("warp", ["two-level", "swl", "nope"])
    def test_unsupported_warps(self, warp):
        assert not vector_supported(warp)

    def test_non_string_descriptors_are_object_only(self):
        # Instantiated scheduler objects carry state the vector core
        # cannot adopt; only string descriptors qualify.
        assert not vector_supported(object())

    def test_ensure_numpy_passes_here(self):
        # The test environment has numpy; the actionable-error branch is
        # covered by the error-message contract below.
        ensure_numpy()

    def test_backend_not_fingerprint_relevant(self):
        job = CROSSCHECK[0]
        assert (replace(job, backend="vector").fingerprint()
                == replace(job, backend="object").fingerprint())

    def test_simjob_rejects_unknown_backend(self):
        with pytest.raises(Exception):
            SimJob(names=("kmeans",), scale=0.05, config=SMALL,
                   backend="quantum")

    def test_vector_gpu_rejects_unsupported_scheduler(self):
        from repro.sim.vector import VectorGPU
        with pytest.raises(VectorBackendError):
            VectorGPU(config=SMALL, warp_scheduler="two-level")


# --------------------------------------------------------------------------- #
# the repro-verify parity layer
# --------------------------------------------------------------------------- #

class TestParityLayer:
    def test_parity_matrix_filters_object_only_cells(self):
        full = golden_matrix("smoke")
        cells = parity_matrix("smoke")
        assert 0 < len(cells) < len(full) or all(
            vector_supported(c.job.warp) for c in full)
        assert all(vector_supported(c.job.warp) for c in cells)
        assert {c.label for c in cells} <= {c.label for c in full}

    def test_verify_backends_ok_on_parity_cells(self):
        cells = [GoldenCell("cell-a",
                            SimJob(names=("kmeans",), scale=0.05,
                                   warp="gto", policy=("rr",),
                                   config=SMALL))]
        report = verify_backends(cells)
        assert isinstance(report, ParityReport)
        assert report.ok
        assert report.count("ok") == 1
        assert "1 ok" in report.summary_line()
        verdict = report.verdicts[0]
        assert verdict.status == "ok"
        assert verdict.to_record()["kind"] == "backend"

    def test_verify_backends_rejects_unsupported_cells(self):
        cells = [GoldenCell("cell-a",
                            SimJob(names=("kmeans",), scale=0.05,
                                   warp="two-level", policy=("rr",),
                                   config=SMALL))]
        with pytest.raises(GoldenError, match="vector backend"):
            verify_backends(cells)

    def test_verify_backends_rejects_duplicate_labels(self):
        cell = GoldenCell("cell-a",
                          SimJob(names=("kmeans",), scale=0.05,
                                 warp="gto", policy=("rr",), config=SMALL))
        with pytest.raises(GoldenError, match="duplicate"):
            verify_backends([cell, cell])

    def test_diff_verdict_renders_lanes_and_paths(self):
        verdict = ParityVerdict(
            "cell-a", "f" * 12, "diff", lanes=["stats"],
            diffs={"stats": [("cycles", 10, 11)]})
        record = verdict.to_record()
        assert record["status"] == "diff"
        assert record["diffs"]["stats"] == [
            {"path": "cycles", "object": 10, "vector": 11}]
