"""validate_run invariants + fast-forward ⇔ cycle-accurate equivalence."""

import pytest

from repro.core.cta_schedulers import RoundRobinCTAScheduler
from repro.core.lcs import LCSScheduler
from repro.harness.runner import simulate
from repro.harness.validate import RunValidationError, validate_run
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPU
from repro.workloads.suite import make_kernel

from helpers import make_test_kernel


class TestValidateRun:
    @pytest.mark.parametrize("name", ("kmeans", "stencil", "streaming",
                                      "compute", "matmul", "spmv"))
    def test_suite_kernels_pass_validation(self, name):
        result = simulate(make_kernel(name, scale=0.05), config=GPUConfig())
        validate_run(result)

    def test_multi_kernel_run_passes(self, small_config):
        kernels = [make_test_kernel(name="a", num_ctas=6),
                   make_test_kernel(name="b", num_ctas=6)]
        validate_run(simulate(kernels, config=small_config))

    def test_lcs_run_passes(self, small_config):
        kernel = make_test_kernel(num_ctas=12)
        validate_run(simulate(kernel, config=small_config,
                              cta_scheduler=LCSScheduler(kernel)))

    def test_tampered_result_fails(self, small_config):
        result = simulate(make_test_kernel(), config=small_config)
        result.l1.misses += 1
        with pytest.raises(RunValidationError):
            validate_run(result)

    def test_unfinished_kernel_fails(self, small_config):
        result = simulate(make_test_kernel(), config=small_config)
        result.kernel("test").finish_cycle = None
        with pytest.raises(RunValidationError):
            validate_run(result)


class TestFastForwardEquivalence:
    """The event fast-forward must be *exactly* equivalent to ticking every
    cycle — the strongest evidence that the skip condition is sound."""

    def run_both(self, kernel_factory, config, warp_scheduler="gto"):
        results = []
        for cycle_accurate in (False, True):
            gpu = GPU(config=config, warp_scheduler=warp_scheduler)
            gpu.run(RoundRobinCTAScheduler(kernel_factory()),
                    cycle_accurate=cycle_accurate)
            results.append(gpu)
        return results

    @pytest.mark.parametrize("name", ("kmeans", "streaming", "stencil",
                                      "matmul"))
    def test_suite_kernels_identical(self, name):
        config = GPUConfig(num_sms=2)
        fast, slow = self.run_both(
            lambda: make_kernel(name, scale=0.03), config)
        assert fast.cycle == slow.cycle
        assert fast.total_issued == slow.total_issued
        for sm_fast, sm_slow in zip(fast.sms, slow.sms):
            assert sm_fast.l1.stats.misses == sm_slow.l1.stats.misses
            assert sm_fast.issued == sm_slow.issued
        assert fast.mem.dram.stats.reads == slow.mem.dram.stats.reads
        assert (fast.mem.dram.stats.row_hits
                == slow.mem.dram.stats.row_hits)

    def test_memory_heavy_tiny_kernel_identical(self, small_config):
        from repro.sim.isa import exit_, load

        def factory():
            return make_test_kernel(
                num_ctas=6, warps_per_cta=2,
                builder=lambda c, w: [load([c * 10 + w]), load([c * 10 + w + 100]),
                                      exit_()])

        fast, slow = self.run_both(factory, small_config)
        assert fast.cycle == slow.cycle
        assert fast.total_issued == slow.total_issued

    def test_lrr_scheduler_identical(self, small_config):
        fast, slow = self.run_both(
            lambda: make_test_kernel(num_ctas=8, warps_per_cta=4),
            small_config, warp_scheduler="lrr")
        assert fast.cycle == slow.cycle
