"""End-to-end tests for the scheduler daemon over a real unix socket.

Each test boots a real :class:`SchedulerDaemon` (asyncio, in a thread)
with real worker subprocesses and drives it with the synchronous
:class:`ServiceClient` — the exact production wiring minus the console
scripts.  The heavier multi-incarnation story (SIGKILLs, restarts,
concurrent clients, bitwise convergence) lives in the service chaos
drill (``tests/test_service_chaos.py``).
"""

import asyncio
import io
import threading
import time

import pytest

from repro.design.journal import replay_journal
from repro.harness.exit_codes import (EXIT_EXHAUSTED, EXIT_OK, EXIT_PARTIAL,
                                      EXIT_SHED)
from repro.harness.jobs import SimJob
from repro.service.client import ServiceClient, _exit_code
from repro.service.daemon import (QUEUE_JOURNAL, JobTable, SchedulerDaemon)
from repro.service.protocol import (DONE, FAILED, QUARANTINED, QUEUED,
                                    SHED, TERMINAL)
from repro.sim.config import GPUConfig

SMALL = GPUConfig.small()


def _job(seed=1):
    return SimJob(names=("kmeans",), scale=0.02, seed=seed, config=SMALL)


def _start(tmp_path, **kwargs):
    """A live daemon on a tmp unix socket, plus its eventual exit code."""
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("drain_grace", 10.0)
    daemon = SchedulerDaemon(state_dir=tmp_path / "state",
                             cache_dir=tmp_path / "cache",
                             log=io.StringIO(), **kwargs)
    outcome = {}

    def runner():
        outcome["exit"] = asyncio.run(daemon.serve())

    thread = threading.Thread(target=runner, daemon=True,
                              name="test-repro-serve")
    thread.start()
    deadline = time.monotonic() + 15.0
    while not daemon.socket_path.exists():
        assert time.monotonic() < deadline, "daemon never bound its socket"
        time.sleep(0.02)
    return daemon, thread, outcome


def _stop(daemon, thread, outcome):
    with ServiceClient(daemon.socket_path) as client:
        client.drain()
    thread.join(timeout=30.0)
    assert not thread.is_alive(), "daemon did not drain"
    return outcome["exit"]


class TestDaemonLifecycle:
    def test_submit_watch_dedup_result_status_drain(self, tmp_path):
        daemon, thread, outcome = _start(tmp_path)
        try:
            with ServiceClient(daemon.socket_path) as client:
                response = client.submit("t:0", _job().to_payload(),
                                         tenant="alice")
                assert response["state"] == QUEUED

                frames = client.watch(["t:0"])
                assert frames["t:0"]["state"] == DONE
                cycles = frames["t:0"]["cycles"]
                assert cycles > 0

                # Same id again: idempotent duplicate, answered from the
                # job table, nothing re-enqueued.
                again = client.submit("t:0", _job().to_payload())
                assert again["duplicate"] and again["state"] == DONE
                assert again["cycles"] == cycles

                # New id, same fingerprint: the cache answers instantly
                # and the submit response is already terminal.
                fast = client.submit("t:1", _job().to_payload())
                assert fast["state"] == DONE and fast["cached"]
                assert fast["cycles"] == cycles

                result = client.result("t:0")
                assert result["state"] == DONE
                assert result["result"]["cycles"] == cycles

                status = client.status()
                assert status["healthy"] and not status["draining"]
                assert status["jobs"][DONE] == 2
                assert status["journal_append_errors"] == 0

                bad = client.request({"op": "explode"})
                assert not bad["ok"] and "unknown op" in bad["error"]

                missing = client.result("nobody")
                assert not missing["ok"]
        finally:
            assert _stop(daemon, thread, outcome) == EXIT_OK
        # The journal tells the whole story: one submit per id, exactly
        # one terminal record each, and the drain left a snapshot.
        records = replay_journal(tmp_path / "state" / QUEUE_JOURNAL).records
        kinds = [(r["type"], r["id"]) for r in records
                 if r["type"] in ("submit", "done")]
        assert kinds.count(("submit", "t:0")) == 1
        assert kinds.count(("done", "t:0")) == 1
        assert kinds.count(("done", "t:1")) == 1
        assert (tmp_path / "state" / "snapshot.json").exists()

    def test_rate_limit_sheds_with_retry_after(self, tmp_path):
        daemon, thread, outcome = _start(tmp_path, rate=0.001, burst=1)
        try:
            with ServiceClient(daemon.socket_path) as client:
                first = client.submit("r:0", _job(seed=11).to_payload(),
                                      tenant="hog", shed_retries=0)
                assert first["state"] == QUEUED
                second = client.submit("r:1", _job(seed=12).to_payload(),
                                       tenant="hog", shed_retries=0)
                assert second["state"] == SHED
                assert second["reason"] == "rate-limit"
                assert second["retry_after"] > 0
                # Another tenant's bucket is untouched: fair share.
                other = client.submit("r:2", _job(seed=13).to_payload(),
                                      tenant="polite", shed_retries=0)
                assert other["state"] == QUEUED
                client.watch(["r:0", "r:2"])
        finally:
            assert _stop(daemon, thread, outcome) == EXIT_OK
        events = replay_journal(
            tmp_path / "state" / "events.jsonl").records
        assert any(e.get("kind") == "admission.shed"
                   and e.get("reason") == "rate-limit" for e in events)

    def test_draining_daemon_sheds_submissions(self, tmp_path):
        daemon, thread, outcome = _start(tmp_path)
        try:
            with ServiceClient(daemon.socket_path) as client:
                client.drain()
                time.sleep(0.2)
                response = client.submit("d:0", _job(seed=21).to_payload(),
                                         shed_retries=0)
                assert response["state"] == SHED
                assert response["reason"] == "draining"
        finally:
            thread.join(timeout=30.0)
            assert outcome["exit"] == EXIT_OK

    def test_socket_drop_fault_is_survived_by_reconnect(self, tmp_path):
        from repro.harness.faults import FaultPlan
        plan = FaultPlan.parse("socket-drop:1",
                               state_dir=str(tmp_path / "faults"))
        daemon, thread, outcome = _start(tmp_path, faults=plan)
        try:
            with ServiceClient(daemon.socket_path) as client:
                assert client.status()["healthy"]        # frame 0
                assert client.status()["healthy"]        # frame 1: dropped
                assert client.reconnects >= 1
        finally:
            assert _stop(daemon, thread, outcome) == EXIT_OK

    def test_wedged_worker_is_killed_and_job_quarantined(self, tmp_path,
                                                         monkeypatch):
        # The poison-job story, minus the restarts: the only submission
        # gets dispatch ordinal 0, the worker-wedge fault silences the
        # worker, the watchdog kills it, and with threshold 1 the
        # breaker quarantines the fingerprint immediately.
        monkeypatch.setenv("REPRO_FAULTS", "worker-wedge:0")
        monkeypatch.setenv("REPRO_FAULTS_STATE", str(tmp_path / "faults"))
        daemon, thread, outcome = _start(tmp_path, breaker_threshold=1,
                                         hb_timeout=1.0)
        try:
            with ServiceClient(daemon.socket_path) as client:
                response = client.submit("p:0", _job(seed=31).to_payload())
                assert response["state"] == QUEUED
                frames = client.watch(["p:0"])
                assert frames["p:0"]["state"] == QUARANTINED
                assert "circuit breaker" in frames["p:0"]["error"]
                # Re-submitting the poison fingerprint is refused at the
                # door now — no worker ever sees it again.
                refused = client.submit("p:1", _job(seed=31).to_payload())
                assert refused["state"] == QUARANTINED
                assert not refused["accepted"]
                status = client.status()
                assert status["wedges"] >= 1
                assert status["breaker_open"] == 1
        finally:
            assert _stop(daemon, thread, outcome) == EXIT_OK
        events = replay_journal(
            tmp_path / "state" / "events.jsonl").records
        kinds = {e.get("kind") for e in events}
        assert "breaker.open" in kinds and "worker.respawn" in kinds


class TestRecovery:
    def test_pending_jobs_requeue_and_finish_after_restart(self, tmp_path):
        # Forge incarnation 1 by hand: a journaled submit with no
        # terminal record (the daemon was SIGKILLed mid-job).
        state = tmp_path / "state"
        state.mkdir(parents=True)
        job = _job(seed=41)
        table = JobTable(state, "forged")
        table.append("submit", id="z:0", tenant="t",
                     fingerprint=job.fingerprint(), ordinal=0,
                     job=job.to_payload())
        daemon, thread, outcome = _start(tmp_path)
        try:
            with ServiceClient(daemon.socket_path) as client:
                frames = client.watch(["z:0"])
                assert frames["z:0"]["state"] == DONE
        finally:
            assert _stop(daemon, thread, outcome) == EXIT_OK

    def test_recovered_poison_with_open_breaker_is_quarantined(self,
                                                               tmp_path):
        # Crash records are the breaker's memory: enough of them in the
        # journal and the next incarnation quarantines the job at
        # recovery, before any worker is risked.
        state = tmp_path / "state"
        state.mkdir(parents=True)
        job = _job(seed=42)
        table = JobTable(state, "forged")
        table.append("submit", id="z:1", tenant="t",
                     fingerprint=job.fingerprint(), ordinal=0,
                     job=job.to_payload())
        for _ in range(3):
            table.append("crash", id="z:1", fingerprint=job.fingerprint(),
                         error="killed worker", wedged=True)
        daemon = SchedulerDaemon(state_dir=state,
                                 cache_dir=tmp_path / "cache",
                                 log=io.StringIO())
        assert daemon.recover() == 0
        record = daemon.table.jobs["z:1"]
        assert record.state == QUARANTINED
        assert record.crashes == 3
        assert daemon.breaker.is_open(job.fingerprint())


class TestJobTable:
    def test_fold_is_idempotent_and_first_terminal_wins(self, tmp_path):
        table = JobTable(tmp_path, "w")
        table.fold({"type": "submit", "id": "a", "tenant": "t",
                    "fingerprint": "fp", "ordinal": 0, "job": {}})
        table.fold({"type": "submit", "id": "a", "tenant": "t",
                    "fingerprint": "fp", "ordinal": 0, "job": {}})
        assert len(table.order) == 1
        table.fold({"type": "done", "id": "a", "cycles": 10, "ipc": 1.0})
        table.fold({"type": "failed", "id": "a", "error": "late"})
        job = table.jobs["a"]
        assert job.state == DONE and job.cycles == 10
        # Terminal records for unknown ids are ignored, not crashes.
        table.fold({"type": "done", "id": "ghost"})
        assert "ghost" not in table.jobs

    def test_snapshot_round_trips_through_load(self, tmp_path):
        table = JobTable(tmp_path, "w")
        table.append("submit", id="a", tenant="t", fingerprint="fp",
                     ordinal=0, job={"scale": 1})
        table.append("done", id="a", fingerprint="fp", cycles=5, ipc=2.0)
        table.append("submit", id="b", tenant="t", fingerprint="fq",
                     ordinal=1, job={"scale": 2})
        assert table.snapshot()
        # A fresh table folds snapshot + journal to the same state even
        # after the journal is truncated (the snapshot is sufficient).
        (tmp_path / QUEUE_JOURNAL).write_bytes(b"")
        reloaded = JobTable(tmp_path, "w2")
        reloaded.load()
        assert reloaded.jobs["a"].state == DONE
        assert reloaded.jobs["b"].state == QUEUED
        assert [j.id for j in reloaded.pending()] == ["b"]
        assert reloaded.next_ordinal == 2


class TestExitCodes:
    @pytest.mark.parametrize("states,expected", [
        ({"a": DONE, "b": DONE}, EXIT_OK),
        ({"a": DONE, "b": FAILED}, EXIT_PARTIAL),
        ({"a": FAILED, "b": QUARANTINED}, EXIT_EXHAUSTED),
        ({"a": SHED, "b": QUARANTINED}, EXIT_SHED),
        ({"a": DONE, "b": QUEUED}, EXIT_PARTIAL),
    ])
    def test_precedence(self, states, expected):
        assert _exit_code(states) == expected

    def test_terminal_states_are_the_protocol_ones(self):
        assert set(TERMINAL) == {DONE, FAILED, QUARANTINED}
