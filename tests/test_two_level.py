"""Tests for the two-level warp scheduler and stall accounting."""

import pytest

from repro.core.warp_schedulers import (TwoLevelScheduler,
                                        available_warp_schedulers,
                                        warp_scheduler_factory)
from repro.harness.runner import simulate
from repro.sim.config import GPUConfig
from repro.sim.isa import exit_, load
from repro.workloads.suite import make_kernel

from helpers import alu_program, make_test_kernel


class TestRegistration:
    def test_registered(self):
        assert "two-level" in available_warp_schedulers()
        assert warp_scheduler_factory("two-level") is TwoLevelScheduler


class TestActiveSet:
    def test_active_set_bounded(self, small_config):
        kernel = make_test_kernel(num_ctas=8, warps_per_cta=8,
                                  regs_per_thread=0)
        result = simulate(kernel, config=small_config,
                          warp_scheduler="two-level")
        assert result.instructions == 8 * 8 * len(alu_program())

    def test_memory_issue_demotes(self):
        # Direct: issue a memory instruction, check demotion.
        from repro.core.cta_schedulers import RoundRobinCTAScheduler
        from repro.sim.gpu import GPU
        config = GPUConfig.small()
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=2,
            builder=lambda c, w: [load([w]), exit_()])
        gpu = GPU(config=config, warp_scheduler="two-level")
        gpu.run(RoundRobinCTAScheduler(kernel))
        for sm in gpu.sms:
            for scheduler in sm.schedulers:
                assert scheduler.active_set_size <= \
                    TwoLevelScheduler.ACTIVE_SET_SIZE

    def test_runs_full_suite_kernel(self):
        config = GPUConfig(num_sms=2)
        result = simulate(make_kernel("kmeans", scale=0.05), config=config,
                          warp_scheduler="two-level")
        assert result.kernel("kmeans").finish_cycle is not None

    def test_instruction_count_invariant(self, small_config):
        kernel = make_test_kernel(num_ctas=6, warps_per_cta=4)
        two = simulate(kernel, config=small_config,
                       warp_scheduler="two-level")
        kernel2 = make_test_kernel(num_ctas=6, warps_per_cta=4)
        gto = simulate(kernel2, config=small_config, warp_scheduler="gto")
        assert two.instructions == gto.instructions


class TestStallAccounting:
    def test_memory_kernel_mostly_mem_stalled(self, small_config):
        kernel = make_test_kernel(
            num_ctas=2, warps_per_cta=2,
            builder=lambda c, w: [load([c * 100 + w * 10 + i])
                                  for i in range(10)] + [exit_()])
        result = simulate(kernel, config=small_config)
        breakdown = result.kernel("test").stall_breakdown()
        assert breakdown["mem"] > 0.8

    def test_compute_kernel_mostly_alu(self, small_config):
        kernel = make_test_kernel(num_ctas=2, warps_per_cta=1)
        result = simulate(kernel, config=small_config)
        breakdown = result.kernel("test").stall_breakdown()
        assert breakdown["alu"] > 0.5

    def test_fractions_sum_to_one(self, small_config):
        kernel = make_test_kernel(num_ctas=4, warps_per_cta=4)
        result = simulate(kernel, config=small_config)
        breakdown = result.kernel("test").stall_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_barrier_kernel_accumulates_barrier_wait(self, small_config):
        from repro.sim.isa import alu, barrier

        def builder(cta_id, warp_idx):
            work = 30 if warp_idx == 0 else 1
            return [alu(2)] * work + [barrier(), exit_()]

        kernel = make_test_kernel(num_ctas=2, warps_per_cta=2,
                                  builder=builder)
        result = simulate(kernel, config=small_config)
        assert result.kernel("test").barrier_wait > 0

    def test_empty_breakdown_is_zero(self):
        from repro.sim.stats import KernelStats
        stats = KernelStats(name="x", kernel_id=0, num_ctas=1)
        assert sum(stats.stall_breakdown().values()) == 0.0
