"""Deeper FR-FCFS scheduler tests: window bounds, fairness floor, load."""


from repro.mem.dram import DRAMModel, SCAN_WINDOW
from repro.sim.config import GPUConfig
from repro.sim.events import EventQueue


def make():
    config = GPUConfig.small()
    events = EventQueue()
    return config, events, DRAMModel(config, events)


def drain(events):
    while events:
        events.run_due(events.next_time())


def stride_for(config):
    """Line-address stride that changes the row on one (channel, bank)."""
    return (config.dram_row_lines * config.dram_channels
            * config.dram_banks_per_channel)


class TestWindowSemantics:
    def test_row_hit_beyond_window_not_promoted(self):
        config, events, dram = make()
        order = []
        # Open row 0 on bank 0.
        dram.read(0, 0, lambda now, arg: order.append(arg), "warm")
        drain(events)
        stride = stride_for(config)
        start = 100_000
        # Fill the scan window with row misses to the same bank, then park
        # a row hit *beyond* the window: it must not be promoted.
        for i in range(SCAN_WINDOW):
            dram.read((i + 1) * stride, start,
                      lambda now, arg: order.append(arg), f"miss{i}")
        dram.read(1, start, lambda now, arg: order.append(arg), "hit")
        drain(events)
        assert order[0] == "warm"
        assert order[1] != "hit"       # not visible to the scheduler yet

    def test_oldest_served_among_misses(self):
        config, events, dram = make()
        order = []
        stride = stride_for(config)
        for i in range(4):
            dram.read(i * stride, 0, lambda now, arg: order.append(arg), i)
        drain(events)
        assert order == [0, 1, 2, 3]

    def test_every_request_eventually_served(self):
        config, events, dram = make()
        served = []
        stride = stride_for(config)
        # Interleave row hits and misses heavily.
        for i in range(50):
            line = (i % 3) * stride + (i % config.dram_row_lines)
            dram.read(line, 0, lambda now, arg: served.append(arg), i)
        drain(events)
        assert sorted(served) == list(range(50))

    def test_no_events_left_behind(self):
        config, events, dram = make()
        for i in range(10):
            dram.read(i, 0, lambda now, arg: None)
        drain(events)
        assert dram.pending_requests == 0
        assert len(events) == 0


class TestThroughput:
    def test_row_hit_stream_achieves_burst_rate(self):
        config, events, dram = make()
        done = []
        count = config.dram_row_lines  # one full row on one channel
        for line in range(count):
            dram.read(line, 0, lambda now, arg: done.append(now))
        drain(events)
        span = max(done) - min(done)
        # After the first activate, hits stream at one per burst.
        assert span <= (count - 1) * config.dram_t_burst + config.dram_t_cas

    def test_channels_scale_bandwidth(self):
        config, events, dram = make()
        done = []
        # Two streams on different channels, same volume.
        for line in range(config.dram_row_lines):
            dram.read(line, 0, lambda now, arg: done.append(now))
            dram.read(line + config.dram_row_lines, 0,
                      lambda now, arg: done.append(now))
        drain(events)
        # Both channels finish around the same time: doubling the traffic
        # over two channels costs far less than 2x the single-channel span.
        single_span = (config.dram_row_lines - 1) * config.dram_t_burst \
            + config.dram_t_row_miss + config.dram_t_burst
        assert max(done) <= single_span * 1.5
