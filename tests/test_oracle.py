"""Tests for the exhaustive static-limit oracle."""

import pytest

from repro.core.oracle import sweep_static_limits
from repro.sim.config import GPUConfig

from helpers import make_test_kernel


@pytest.fixture
def config():
    return GPUConfig.small()


class TestSweep:
    def test_sweeps_all_feasible_limits(self, config):
        kernel = make_test_kernel(num_ctas=8, warps_per_cta=1,
                                  regs_per_thread=0)
        oracle = sweep_static_limits(kernel, config=config)
        assert set(oracle.results) == {1, 2, 3, 4}
        assert oracle.occupancy == 4

    def test_best_limit_minimises_cycles(self, config):
        kernel = make_test_kernel(num_ctas=8, warps_per_cta=1,
                                  regs_per_thread=0)
        oracle = sweep_static_limits(kernel, config=config)
        best_cycles = oracle.best.cycles
        assert all(best_cycles <= r.cycles for r in oracle.results.values())

    def test_best_speedup_vs_max_occupancy(self, config):
        kernel = make_test_kernel(num_ctas=8, warps_per_cta=1,
                                  regs_per_thread=0)
        oracle = sweep_static_limits(kernel, config=config)
        assert oracle.best_speedup >= 1.0
        assert oracle.baseline is oracle.results[oracle.occupancy]

    def test_custom_limits_clamped_and_baseline_added(self, config):
        kernel = make_test_kernel(num_ctas=8, warps_per_cta=1,
                                  regs_per_thread=0)
        oracle = sweep_static_limits(kernel, config=config, limits=[1, 99])
        # 99 clamps to occupancy (4); baseline always present.
        assert set(oracle.results) == {1, 4}

    def test_invalid_limits_rejected(self, config):
        kernel = make_test_kernel()
        with pytest.raises(ValueError):
            sweep_static_limits(kernel, config=config, limits=[0])

    def test_ipc_by_limit_sorted(self, config):
        kernel = make_test_kernel(num_ctas=4, warps_per_cta=1,
                                  regs_per_thread=0)
        oracle = sweep_static_limits(kernel, config=config, limits=[2, 1])
        assert list(oracle.ipc_by_limit()) == sorted(oracle.results)

    def test_compute_kernel_prefers_more_ctas(self, config):
        # Pure ALU work scales with parallelism: max occupancy never loses.
        kernel = make_test_kernel(num_ctas=16, warps_per_cta=2,
                                  regs_per_thread=0)
        oracle = sweep_static_limits(kernel, config=config)
        assert oracle.best.cycles <= oracle.results[1].cycles
