"""Direct unit tests for Warp/CTA/MemRequest state containers."""

from repro.core.cta_schedulers import RoundRobinCTAScheduler
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPU
from repro.sim.warp import MemRequest

from helpers import make_test_kernel


def dispatched_cta(config=None, **kernel_kwargs):
    """Dispatch one CTA onto a real SM and return it."""
    config = config or GPUConfig.small()
    kernel = make_test_kernel(**kernel_kwargs)
    gpu = GPU(config=config)
    scheduler = RoundRobinCTAScheduler(kernel)
    scheduler.bind(gpu)
    scheduler.fill(0)
    return gpu.sms[0].active_ctas[0]


class TestWarp:
    def test_initial_state(self):
        cta = dispatched_cta()
        warp = cta.warps[0]
        assert warp.is_ready
        assert not warp.done
        assert warp.pc == 0
        assert warp.age_key == (cta.seq, 0)

    def test_next_instruction_follows_pc(self):
        warp = dispatched_cta().warps[0]
        first = warp.next_instruction()
        warp.pc += 1
        assert warp.next_instruction() is warp.program[1]

    def test_repr(self):
        warp = dispatched_cta().warps[0]
        assert "READY" in repr(warp)


class TestMemRequest:
    def make_request(self, lines=(1, 2), is_store=False):
        warp = dispatched_cta().warps[0]
        return MemRequest(warp, tuple(lines), is_store=is_store)

    def test_load_completion_needs_acceptance_and_data(self):
        request = self.make_request()
        assert not request.complete
        request.accepted = True
        assert request.complete          # no outstanding misses
        request.outstanding = 1
        assert not request.complete

    def test_store_completes_on_acceptance(self):
        request = self.make_request(is_store=True)
        request.outstanding = 5          # irrelevant for stores
        request.accepted = True
        assert request.complete


class TestCTA:
    def test_counts_and_lifetime(self):
        cta = dispatched_cta(warps_per_cta=2)
        assert cta.num_warps == 2
        assert cta.live_warps == 2
        assert not cta.complete
        assert cta.lifetime is None
        cta.done_warps = 2
        assert cta.complete
        cta.complete_cycle = 50
        assert cta.lifetime == 50 - cta.dispatch_cycle

    def test_kernel_accessor(self):
        cta = dispatched_cta()
        assert cta.kernel.name == "test"

    def test_repr(self):
        assert "sm=0" in repr(dispatched_cta())

    def test_issue_counter_starts_zero(self):
        assert dispatched_cta().issued_instrs == 0
