"""Tests for BCS block dispatch."""

import pytest

from repro.core.bcs import BCSScheduler
from repro.harness.runner import simulate
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPU

from helpers import alu_program, make_test_kernel


class TestConstruction:
    def test_rejects_zero_block(self):
        with pytest.raises(ValueError):
            BCSScheduler(make_test_kernel(), block_size=0)

    def test_rejects_zero_limit(self):
        with pytest.raises(ValueError):
            BCSScheduler(make_test_kernel(), limit_per_sm=0)


def _placements(gpu):
    out = {}
    for sm in gpu.sms:
        for cta in sm.active_ctas:
            out[cta.cta_id] = (sm.sm_id, cta.block_seq)
    return out


class TestBlockDispatch:
    def test_consecutive_ctas_share_sm_and_block(self, small_config):
        kernel = make_test_kernel(num_ctas=8, warps_per_cta=1,
                                  regs_per_thread=0)
        gpu = GPU(config=small_config)
        scheduler = BCSScheduler(kernel, block_size=2)
        scheduler.bind(gpu)
        scheduler.fill(0)
        placements = _placements(gpu)
        for even in (0, 2, 4, 6):
            assert placements[even][0] == placements[even + 1][0]
            assert placements[even][1] == placements[even + 1][1]

    def test_blocks_have_distinct_block_seq(self, small_config):
        kernel = make_test_kernel(num_ctas=8, warps_per_cta=1,
                                  regs_per_thread=0)
        gpu = GPU(config=small_config)
        scheduler = BCSScheduler(kernel, block_size=2)
        scheduler.bind(gpu)
        scheduler.fill(0)
        placements = _placements(gpu)
        block_seqs = {placements[c][1] for c in placements}
        assert len(block_seqs) == 4

    def test_odd_tail_dispatches_smaller_block(self, small_config):
        kernel = make_test_kernel(num_ctas=5, warps_per_cta=1,
                                  regs_per_thread=0)
        gpu = GPU(config=small_config)
        scheduler = BCSScheduler(kernel, block_size=2)
        scheduler.bind(gpu)
        scheduler.fill(0)
        assert len(_placements(gpu)) == 5

    def test_block_size_capped_by_occupancy(self, small_config):
        # Occupancy is 2 (8 warps/CTA on a 16-warp SM); block 4 must clamp.
        kernel = make_test_kernel(num_ctas=8, warps_per_cta=8,
                                  regs_per_thread=0)
        result = simulate(kernel, config=small_config,
                          cta_scheduler=BCSScheduler(kernel, block_size=4))
        assert result.kernel("test").finish_cycle is not None

    def test_odd_occupancy_slot_topped_off(self):
        config = GPUConfig.small(num_sms=1, max_ctas_per_sm=3)
        kernel = make_test_kernel(num_ctas=3, warps_per_cta=1,
                                  regs_per_thread=0)
        gpu = GPU(config=config)
        scheduler = BCSScheduler(kernel, block_size=2)
        scheduler.bind(gpu)
        scheduler.fill(0)
        # 2-CTA block + 1 single: all three slots used.
        assert gpu.sms[0].used_slots == 3

    def test_completes_whole_grid(self, small_config):
        kernel = make_test_kernel(num_ctas=21, warps_per_cta=2)
        result = simulate(kernel, config=small_config,
                          cta_scheduler=BCSScheduler(kernel))
        assert result.kernel("test").finish_cycle is not None
        assert result.instructions == 21 * 2 * len(alu_program())

    def test_block_one_equals_baseline_cycles(self, small_config):
        a = make_test_kernel(num_ctas=12, warps_per_cta=2)
        baseline = simulate(a, config=small_config)
        b = make_test_kernel(num_ctas=12, warps_per_cta=2)
        bcs1 = simulate(b, config=small_config,
                        cta_scheduler=BCSScheduler(b, block_size=1))
        assert bcs1.cycles == baseline.cycles

    def test_static_limit_composes(self, small_config):
        kernel = make_test_kernel(num_ctas=16, warps_per_cta=1,
                                  regs_per_thread=0)
        gpu = GPU(config=small_config)
        scheduler = BCSScheduler(kernel, block_size=2, limit_per_sm=2)
        scheduler.bind(gpu)
        scheduler.fill(0)
        for sm in gpu.sms:
            assert sm.used_slots == 2

    def test_blocks_dispatched_counter(self, small_config):
        kernel = make_test_kernel(num_ctas=8, warps_per_cta=1,
                                  regs_per_thread=0)
        result = simulate(kernel, config=small_config,
                          cta_scheduler=(scheduler := BCSScheduler(kernel)))
        assert scheduler.blocks_dispatched == 4
