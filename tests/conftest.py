"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.config import GPUConfig


@pytest.fixture
def small_config() -> GPUConfig:
    """A 2-SM GPU with small caches — fast, but structurally complete."""
    return GPUConfig.small()
