"""Byte-identical table regression: every E-driver vs goldens/tables/.

The contract the design-layer refactor (and every future driver change)
must keep: the rendered CSV of each experiment table at the pinned tiny
scale matches the committed golden byte for byte.  Regenerate after an
intentional change with ``python -m repro.verify.tables --update`` and
commit the diff.

The full matrix is built once per module through one shared context (all
designs planned as a single deduplicated batch), so this costs one tiny
sweep, not 22.
"""

import pytest

from repro.verify.tables import (DEFAULT_TABLE_ROOT, build_tables,
                                 verify_tables)


@pytest.fixture(scope="module")
def tables():
    return build_tables()


def test_goldens_are_committed():
    committed = sorted(p.stem for p in DEFAULT_TABLE_ROOT.glob("*.csv"))
    assert committed, (f"no table goldens under {DEFAULT_TABLE_ROOT}/; "
                       f"run python -m repro.verify.tables --update")


def test_every_table_matches_golden_bytes(tables):
    problems = verify_tables(tables=tables)
    assert not problems, "\n".join(problems)


def test_table_set_matches_experiment_registry(tables):
    from repro.harness.experiments import EXPERIMENTS
    expected = set(EXPERIMENTS) | {"e12a", "e12b"}
    assert set(tables) == expected
