"""Metamorphic/property fuzzer tests: determinism, invariants, shrinking."""

import json

import pytest

from repro.core import warp_schedulers as ws
from repro.verify.artifacts import (read_failure_artifact,
                                    write_failure_artifact)
from repro.verify.fuzzer import (INVARIANTS, FuzzCase, FuzzError,
                                 case_seeds, check_case, check_invariant,
                                 run_fuzz, shrink)


class TestGeneration:
    def test_same_seed_same_case(self):
        assert FuzzCase.generate(42) == FuzzCase.generate(42)

    def test_different_seeds_differ(self):
        cases = {FuzzCase.generate(s) for s in range(20)}
        assert len(cases) > 1

    def test_case_seeds_deterministic(self):
        assert case_seeds(7, 10) == case_seeds(7, 10)
        assert case_seeds(7, 10) != case_seeds(8, 10)

    def test_generated_cases_are_valid(self):
        for seed in case_seeds(123, 10):
            case = FuzzCase.generate(seed)
            case.config()          # passes GPUConfig validation
            kernel = case.build_kernel()
            assert kernel.num_ctas == case.num_ctas

    def test_bad_fields_rejected(self):
        with pytest.raises(FuzzError):
            FuzzCase(seed=1, num_ctas=0)
        with pytest.raises(FuzzError):
            FuzzCase(seed=1, warp="not-a-scheduler")

    def test_kernel_builder_is_pure(self):
        case = FuzzCase.generate(5)
        a = case.build_kernel().build_warp_program(0, 0)
        b = case.build_kernel().build_warp_program(0, 0)
        assert [i.op for i in a] == [i.op for i in b]
        assert [i.lines for i in a] == [i.lines for i in b]


class TestInvariants:
    def test_all_invariants_hold_on_current_tree(self):
        # The acceptance-criteria sweep runs >= 100 cases in CI
        # (`repro-verify fuzz`); keep the tier-1 version small.
        for seed in case_seeds(20140219, 5):
            failures = check_case(FuzzCase.generate(seed))
            assert not failures, failures

    def test_unknown_invariant_rejected(self):
        with pytest.raises(FuzzError, match="unknown invariant"):
            check_invariant(FuzzCase.generate(1), "teleportation")

    def test_relabel_skipped_for_nonuniform(self):
        case = FuzzCase(seed=1, uniform=False)
        assert check_invariant(case, "relabel") is None

    def test_refmodel_invariant_catches_perturbation(self, monkeypatch):
        monkeypatch.setattr(
            ws.GTOScheduler, "priority_key",
            lambda self, warp: tuple(-x for x in warp.age_key))
        # A GTO case with enough parallelism for the tiebreak to matter.
        case = FuzzCase(seed=99, num_ctas=6, warps_per_cta=4,
                        num_segments=3, segment_length=6, warp="gto")
        detail = check_invariant(case, "refmodel")
        assert detail is not None
        assert "divergence" in detail


class TestShrinking:
    def test_shrink_reaches_the_boundary(self):
        case = FuzzCase.generate(7)
        small = shrink(case, lambda c: c.num_ctas >= 3)
        assert small.num_ctas == 3          # can't go below and still fail
        assert small.warps_per_cta == 1     # everything else minimized
        assert small.num_sms == 1
        assert not small.barriers

    def test_shrink_is_deterministic(self):
        case = FuzzCase.generate(7)
        predicate = lambda c: c.num_ctas * c.warps_per_cta >= 4
        assert shrink(case, predicate) == shrink(case, predicate)

    def test_shrink_respects_budget(self):
        calls = []

        def predicate(c):
            calls.append(c)
            return True

        shrink(FuzzCase.generate(7), predicate, budget=5)
        assert len(calls) <= 5

    def test_crashing_predicate_counts_as_failing(self):
        case = FuzzCase.generate(7)

        def predicate(c):
            if c.num_ctas < 2:
                raise RuntimeError("boom")
            return c.num_ctas >= 2

        small = shrink(case, predicate)
        assert small.num_ctas == 1   # crash == still failing -> kept


class TestCampaign:
    def test_campaign_deterministic_and_clean(self):
        a = run_fuzz(20140219, 4)
        b = run_fuzz(20140219, 4)
        assert a.ok and b.ok
        assert a.cases == b.cases == 4
        assert a.checks == 4 * len(INVARIANTS)

    def test_campaign_rejects_zero_cases(self):
        with pytest.raises(FuzzError):
            run_fuzz(1, 0)

    def test_perturbed_tree_fails_and_shrinks(self, monkeypatch):
        monkeypatch.setattr(
            ws.GTOScheduler, "priority_key",
            lambda self, warp: tuple(-x for x in warp.age_key))
        report = run_fuzz(99, 8, do_shrink=True)
        assert not report.ok
        failure = report.failures[0]
        assert failure.invariant == "refmodel"
        # Shrinking never grows the case.
        assert (failure.shrunk.num_ctas * failure.shrunk.warps_per_cta
                <= failure.case.num_ctas * failure.case.warps_per_cta)
        record = failure.to_record()
        assert record["kind"] == "fuzz"
        assert record["seed"] == failure.case.seed
        assert "FuzzCase(" in record["repro"]
        json.dumps(record)   # JSONL-serializable


class TestArtifacts:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "failures.jsonl"
        records = [{"kind": "fuzz", "seed": 1},
                   {"kind": "golden", "label": "cell-a"}]
        count = write_failure_artifact(path, records,
                                       command="repro-verify fuzz",
                                       context={"seed": 1})
        assert count == 2
        header, read = read_failure_artifact(path)
        assert header["kind"] == "header"
        assert header["command"] == "repro-verify fuzz"
        assert header["seed"] == 1
        assert read == records

    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "failures.jsonl"
        write_failure_artifact(path, [{"kind": "fuzz", "seed": 1}])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "fuzz", "trunc')
        _, records = read_failure_artifact(path)
        assert len(records) == 1

    def test_headerless_file_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "fuzz"}\n')
        with pytest.raises(ValueError, match="header"):
            read_failure_artifact(path)
