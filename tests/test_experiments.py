"""Tests for the experiment drivers (tiny scale: mechanics, not shapes)."""

import pytest

from repro.harness.experiments import (EXPERIMENTS, ExperimentContext,
                                       e1_occupancy_sweep, e2_issue_signature,
                                       e3_lcs_speedup, e4_lcs_vs_oracle,
                                       e5_warp_schedulers, e6_bcs, e7_bcs_l1,
                                       e8_cke, e12_benchmark_table,
                                       e12_config_table, run_experiment)
from repro.workloads.suite import SUITE

TINY = 0.02   # a handful of CTAs per kernel: fast, exercises all code paths


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(scale=TINY)


class TestContext:
    def test_run_is_memoised(self, ctx):
        a = ctx.run("compute")
        b = ctx.run("compute")
        assert a is b

    def test_distinct_policies_not_conflated(self, ctx):
        a = ctx.run("compute", policy=("static", 1))
        b = ctx.run("compute", policy=("static", 2))
        assert a is not b

    def test_unknown_policy_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.run("compute", policy=("bogus",))

    def test_oracle_best_within_sweep(self, ctx):
        best, run = ctx.oracle_best("kmeans")
        assert 1 <= best <= ctx.occupancy("kmeans")
        assert run.cycles > 0


class TestDrivers:
    def test_e1_rows_and_normalisation(self, ctx):
        table = e1_occupancy_sweep(ctx, benchmarks=("kmeans", "compute"))
        assert len(table.rows) == 2
        for row in table.rows:
            max_n = row[-1]
            # The max-occupancy column is 1.0 by construction.
            assert row[max_n] == pytest.approx(1.0)

    def test_e2_shares_normalised(self, ctx):
        table = e2_issue_signature(ctx, benchmarks=("kmeans",))
        shares = [v for v in table.rows[0][1:-1] if v != "-"]
        assert max(shares) == pytest.approx(1.0)
        assert all(0 <= s <= 1 for s in shares)

    def test_e3_has_gmean_row(self, ctx):
        table = e3_lcs_speedup(ctx, benchmarks=("kmeans", "compute"))
        assert table.rows[-1][0] == "GMEAN"
        assert len(table.rows) == 3

    def test_e4_reports_both_choices(self, ctx):
        table = e4_lcs_vs_oracle(ctx, benchmarks=("kmeans",))
        row = table.row_for("kmeans")
        occupancy = row[1]
        assert 1 <= row[2] <= occupancy
        assert 1 <= row[3] <= occupancy

    def test_e5_ratio_consistency(self, ctx):
        table = e5_warp_schedulers(ctx, benchmarks=("compute",))
        row = table.row_for("compute")
        assert row[3] > 0

    def test_e6_and_e7_cover_locality_set(self, ctx):
        speedups = e6_bcs(ctx, benchmarks=("stencil",))
        misses = e7_bcs_l1(ctx, benchmarks=("stencil",))
        assert speedups.row_for("stencil")
        assert 0 <= misses.row_for("stencil")[1] <= 1

    def test_e8_runs_one_pair(self, ctx):
        table = e8_cke(ctx, pairs=(("kmeans", "compute", 1.0),))
        row = table.row_for("kmeans+compute")
        assert row[1] > 0          # sequential cycles
        for value in row[2:5]:
            assert value > 0       # speedups

    def test_e12_tables(self, ctx):
        config_table = e12_config_table(ctx)
        assert config_table.row_for("SIMT cores")[1] == 15
        bench_table = e12_benchmark_table(ctx)
        assert len(bench_table.rows) == len(SUITE)

    def test_run_experiment_by_id(self):
        ctx = ExperimentContext(scale=TINY)
        table = run_experiment("e5", ctx)
        assert table.rows

    def test_run_experiment_unknown_id(self):
        with pytest.raises(ValueError):
            run_experiment("e99")

    def test_run_experiment_e12_redirects(self):
        with pytest.raises(ValueError):
            run_experiment("e12")

    def test_registry_complete(self):
        expected = ({f"e{i}" for i in range(1, 12)}
                    | {f"e{i}" for i in range(13, 23)})
        assert set(EXPERIMENTS) == expected
