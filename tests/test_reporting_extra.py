"""Additional reporting/experiment-context behaviours."""

import math
import random

import pytest

from repro.harness.experiments import ExperimentContext
from repro.harness.reporting import Table, geomean


class TestContextCache:
    def test_cache_distinguishes_scale_mults(self):
        ctx = ExperimentContext(scale=0.02)
        a = ctx.run(("compute",), scale_mults=(1.0,))
        b = ctx.run(("compute",), scale_mults=(2.0,))
        assert a is not b
        assert b.instructions > a.instructions

    def test_cache_distinguishes_warp_scheduler(self):
        ctx = ExperimentContext(scale=0.02)
        a = ctx.run("compute", warp="gto")
        b = ctx.run("compute", warp="lrr")
        assert a is not b

    def test_swl_warp_descriptor(self):
        ctx = ExperimentContext(scale=0.02)
        result = ctx.run("kmeans", warp=("swl", 4))
        assert result.cycles > 0

    def test_unknown_warp_descriptor_rejected(self):
        ctx = ExperimentContext(scale=0.02)
        with pytest.raises(ValueError):
            ctx.run("kmeans", warp=("magic", 4))

    def test_static_sweep_shares_cache_with_oracle(self):
        ctx = ExperimentContext(scale=0.02)
        sweep = ctx.static_sweep("kmeans")
        best, run = ctx.oracle_best("kmeans")
        assert run is sweep[best]

    def test_multi_kernel_key_order_matters(self):
        ctx = ExperimentContext(scale=0.02)
        ab = ctx.run(("kmeans", "compute"), policy=("smk",))
        ba = ctx.run(("compute", "kmeans"), policy=("smk",))
        assert ab is not ba


class TestTableExtras:
    def test_int_columns_render_without_decimals(self):
        table = Table("t", ["a", "b"])
        table.add_row(7, 1.5)
        rendered = table.render()
        assert " 7 " in rendered or rendered.count("7") >= 1
        assert "1.500" in rendered

    def test_notes_render_in_order(self):
        table = Table("t", ["a"])
        table.add_row(1)
        table.add_note("first")
        table.add_note("second")
        rendered = table.render()
        assert rendered.index("first") < rendered.index("second")

    def test_csv_round_trips_row_count(self):
        table = Table("t", ["x", "y"])
        for i in range(5):
            table.add_row(i, i * 0.5)
        lines = table.to_csv().splitlines()
        assert len(lines) == 6

    def test_geomean_of_identity_is_one(self):
        assert geomean([1.0] * 10) == pytest.approx(1.0)

    def test_geomean_is_order_independent(self):
        rng = random.Random(7)
        values = [rng.uniform(0.3, 3.0) for _ in range(200)]
        shuffled = list(values)
        rng.shuffle(shuffled)
        assert geomean(values) == geomean(shuffled)
        assert geomean(values) == pytest.approx(
            math.exp(math.fsum(math.log(v) for v in values) / len(values)))


class TestChartReference:
    @staticmethod
    def _table(*values):
        table = Table("t", ["name", "speedup"])
        for i, value in enumerate(values):
            table.add_row(f"r{i}", value)
        return table

    def test_reference_above_peak_clamps_with_note(self):
        chart = self._table(0.5, 0.8).render_chart("speedup", reference=1.0)
        assert "|" in chart
        assert "clamped" in chart
        assert "1.000" in chart

    def test_reference_within_peak_has_no_note(self):
        chart = self._table(0.5, 1.5).render_chart("speedup", reference=1.0)
        assert "|" in chart
        assert "clamped" not in chart

    def test_no_reference_no_marker(self):
        chart = self._table(0.5, 1.5).render_chart("speedup", reference=None)
        assert "|" not in chart
