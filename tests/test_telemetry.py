"""Telemetry subsystem tests.

The two contracts that matter most:

* **non-perturbation** — a run with full telemetry produces byte-identical
  statistics to a run without it, for every scheduling policy and in both
  the event fast-forward and cycle-accurate loop modes;
* **lossless transport** — timelines and traces round-trip through
  ``RunResult`` serialisation, the persistent cache and worker transport
  without changing, and corrupt cache entries degrade to a miss.
"""

from __future__ import annotations

import json

import pytest

from repro.core.bcs import BCSScheduler
from repro.core.cke import MixedCKE
from repro.core.cta_schedulers import (RoundRobinCTAScheduler,
                                       StaticLimitCTAScheduler)
from repro.core.lcs import LCSScheduler
from repro.harness.cache import ResultCache
from repro.harness.jobs import SimJob
from repro.harness.runner import simulate
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPU
from repro.sim.stats import RunResult
from repro.telemetry import (TelemetryError, TelemetryHub, TimelineResult,
                             chrome_trace, merge_chrome_traces, to_jsonl,
                             write_trace)
from repro.workloads.suite import make_kernel

SCALE = 0.05
SMALL = GPUConfig.small()


def _kernel(name="kmeans", scale=SCALE):
    return make_kernel(name, scale=scale)


def _policy(kind, kernels):
    if kind == "rr":
        return RoundRobinCTAScheduler(kernels)
    if kind == "static":
        return StaticLimitCTAScheduler(kernels, limit_per_sm=2)
    if kind == "lcs":
        return LCSScheduler(kernels)
    return BCSScheduler(kernels)      # "bcs"


def _strip_telemetry(result: RunResult) -> RunResult:
    clone = RunResult.from_dict(result.to_dict())
    clone.meta.pop("timeline", None)
    clone.meta.pop("trace", None)
    return clone


# --------------------------------------------------------------------------- #
# non-perturbation
# --------------------------------------------------------------------------- #

def _simulate(name, kind, *, config=SMALL, telemetry=None):
    kernel = _kernel(name)
    return simulate(kernel, config=config,
                    cta_scheduler=_policy(kind, [kernel]),
                    telemetry=telemetry)


@pytest.mark.parametrize("name", ["kmeans", "streaming"])
@pytest.mark.parametrize("kind", ["rr", "static", "lcs", "bcs"])
def test_telemetry_does_not_perturb_stats(name, kind):
    bare = _simulate(name, kind)
    hub = TelemetryHub(window=256, trace=True)
    instrumented = _simulate(name, kind, telemetry=hub)
    assert len(hub.events) > 0
    assert _strip_telemetry(instrumented) == _strip_telemetry(bare)


@pytest.mark.parametrize("window", [1, 97, 1000])
def test_fast_forward_vs_cycle_accurate_timeline(window):
    """Windowed sampling sees identical machine state in both loop modes."""
    results = []
    for cycle_accurate in (False, True):
        hub = TelemetryHub(window=window, trace=True)
        gpu = GPU(config=SMALL, telemetry=hub)
        gpu.run(RoundRobinCTAScheduler([_kernel(scale=0.03)]),
                cycle_accurate=cycle_accurate)
        results.append((gpu.cycle, hub.timeline_result(),
                        hub.trace_events()))
    (cyc_a, tl_a, ev_a), (cyc_b, tl_b, ev_b) = results
    assert cyc_a == cyc_b
    assert tl_a == tl_b
    assert ev_a == ev_b
    assert len(tl_a) >= 1


def test_cycle_accurate_equivalence_with_lcs_trace():
    results = []
    for cycle_accurate in (False, True):
        hub = TelemetryHub(window=500, trace=True)
        gpu = GPU(config=SMALL, telemetry=hub)
        gpu.run(LCSScheduler([_kernel()]), cycle_accurate=cycle_accurate)
        results.append((gpu.cycle, hub.timeline_result(), hub.trace_events()))
    assert results[0] == results[1]


# --------------------------------------------------------------------------- #
# timeline contents
# --------------------------------------------------------------------------- #

def test_timeline_columns_and_boundaries():
    hub = TelemetryHub(window=500)
    kernel = _kernel()
    result = simulate(kernel, cta_scheduler=LCSScheduler([kernel]),
                      telemetry=hub)
    tl = result.meta["timeline"]
    assert isinstance(tl, TimelineResult)
    assert tl.window == 500
    for column in ("ipc", "resident_ctas", "resident_warps", "l1_miss_rate",
                   "l2_miss_rate", "l1_mshr", "l2_mshr", "dram_bus_util",
                   "stall_ready", "stall_alu", "stall_mem", "stall_barrier"):
        assert len(tl.series(column)) == len(tl)
    # Interior boundaries are window-aligned; the final one is the run end.
    assert all(c % 500 == 0 for c in tl.cycles[:-1])
    assert tl.cycles[-1] == result.cycles
    assert tl.cycles == sorted(tl.cycles)
    # Per-SM CTA rows match the machine width; everything idle at the end.
    assert all(len(row) == len(result.issued_by_sm)
               for row in tl.ctas_per_sm)
    assert sum(tl.ctas_per_sm[-1]) == 0
    # Stall mix rows are fractions summing to ~1 (or all-zero when idle).
    for i in range(len(tl)):
        row = tl.row(i)
        mix = (row["stall_ready"] + row["stall_alu"] + row["stall_mem"]
               + row["stall_barrier"])
        assert mix == pytest.approx(1.0, abs=1e-9) or mix == 0.0


@pytest.mark.parametrize("names,policy", [
    (("kmeans",), ("lcs",)),                              # E1-style run
    (("kmeans", "iindex", "streaming", "compute"), ("rr",)),  # E16 workload
])
def test_windowed_series_for_experiment_workloads(names, policy):
    job = SimJob(names=names, scale=SCALE, policy=policy, config=SMALL,
                 timeline_window=400, trace=True)
    result = job.execute()
    tl = result.meta["timeline"]
    assert len(tl) >= 2
    assert any(v > 0 for v in tl.series("ipc"))
    assert "l1_miss_rate" in tl.columns
    dispatches = [e for e in result.meta["trace"]
                  if e["kind"] == "cta.dispatch"]
    total_ctas = sum(ks.num_ctas for ks in result.kernels.values())
    assert len(dispatches) == total_ctas


def test_timeline_csv_and_dict_round_trip():
    hub = TelemetryHub(window=300)
    simulate(_kernel(), config=SMALL, telemetry=hub)
    tl = hub.timeline_result()
    assert TimelineResult.from_dict(tl.to_dict()) == tl
    lines = tl.to_csv().splitlines()
    assert lines[0].startswith("cycle,")
    assert len(lines) == len(tl) + 1
    with pytest.raises(KeyError):
        tl.series("no_such_column")


# --------------------------------------------------------------------------- #
# event trace
# --------------------------------------------------------------------------- #

def test_trace_event_kinds_and_counts():
    hub = TelemetryHub(trace=True)
    result = _simulate("kmeans", "lcs", telemetry=hub)
    events = result.meta["trace"]
    kinds = [e["kind"] for e in events]
    num_ctas = result.kernel("kmeans").num_ctas
    assert kinds.count("cta.dispatch") == num_ctas
    assert kinds.count("cta.complete") == num_ctas
    assert kinds.count("kernel.start") == 1
    assert kinds.count("kernel.done") == 1
    assert kinds[0] == "run.start" and kinds[-1] == "run.end"
    assert all(e["cycle"] <= result.cycles for e in events)


def test_lcs_decision_event_payload():
    hub = TelemetryHub(trace=True)
    kernel = _kernel()
    result = simulate(kernel, cta_scheduler=LCSScheduler([kernel]),
                      telemetry=hub)
    decisions = [e for e in result.meta["trace"]
                 if e["kind"] == "lcs.decision"]
    assert len(decisions) == 1
    payload = decisions[0]["payload"]
    decision = result.meta["lcs_decision"]
    assert payload["n_star"] == decision.n_star
    assert payload["occupancy"] == decision.occupancy
    assert payload["kernel"] == "kmeans"
    assert payload["issue_counts"] == list(decision.issue_counts)
    monitors = [e for e in result.meta["trace"] if e["kind"] == "lcs.monitor"]
    assert len(monitors) == 1
    assert decisions[0]["cycle"] == decision.decided_cycle


def test_bcs_block_events():
    hub = TelemetryHub(trace=True)
    kernel = _kernel("stencil")
    scheduler = BCSScheduler([kernel], block_size=2)
    result = simulate(kernel, config=SMALL,
                      cta_scheduler=scheduler, telemetry=hub)
    blocks = [e for e in result.meta["trace"] if e["kind"] == "bcs.block"]
    assert len(blocks) == scheduler.blocks_dispatched
    assert sum(e["payload"]["size"] for e in blocks) \
        == result.kernel("stencil").num_ctas
    for event in blocks:
        assert {"kernel", "block_seq", "sm", "first_cta",
                "size"} <= set(event["payload"])


def test_cke_phase_events_in_order():
    kernels = [_kernel("kmeans"), _kernel("compute")]
    hub = TelemetryHub(trace=True)
    result = simulate(kernels, config=SMALL,
                      cta_scheduler=MixedCKE(kernels, rule="tail",
                                             param=0.5),
                      telemetry=hub)
    phases = [e["payload"]["phase"] for e in result.meta["trace"]
              if e["kind"] == "cke.phase"]
    assert phases[0] == "monitor"
    assert "drain" in phases
    if "mixed" in phases:     # LCS guard may veto the throttle
        assert phases.index("mixed") < phases.index("drain")
    assert result.meta["trace"][0]["kind"] == "run.start"


# --------------------------------------------------------------------------- #
# exporters
# --------------------------------------------------------------------------- #

def _traced_run():
    hub = TelemetryHub(window=500, trace=True)
    result = _simulate("kmeans", "lcs", telemetry=hub)
    return hub, result


def test_jsonl_export_parses_line_by_line():
    hub, _ = _traced_run()
    lines = to_jsonl(hub.events).splitlines()
    assert len(lines) == len(hub.events)
    for line in lines:
        record = json.loads(line)
        assert set(record) == {"kind", "cycle", "payload"}


def test_chrome_trace_structure():
    hub, result = _traced_run()
    doc = chrome_trace(hub.events, timeline=hub.timeline_result())
    events = doc["traceEvents"]
    assert isinstance(events, list) and events
    for record in events:
        assert record["ph"] in {"M", "X", "i", "C"}
        assert "pid" in record
        assert record["ph"] == "M" or "ts" in record
    slices = [r for r in events if r["ph"] == "X"]
    assert len(slices) == result.kernel("kmeans").num_ctas
    assert all(r["dur"] >= 0 for r in slices)
    assert all(0 <= r["ts"] <= result.cycles for r in slices)
    counters = [r for r in events if r["ph"] == "C"]
    assert {r["name"] for r in counters} >= {"ipc", "l1_miss_rate"}
    json.dumps(doc)    # the document must be pure-JSON serialisable


def test_merge_and_write_trace(tmp_path):
    hub_a, _ = _traced_run()
    hub_b, _ = _traced_run()
    doc = merge_chrome_traces([
        ("a", hub_a.events, hub_a.timeline_result()),
        ("b", hub_b.events, None),
    ])
    assert {r["pid"] for r in doc["traceEvents"]} == {0, 1}
    chrome_path = write_trace(tmp_path / "t.json", hub_a.events,
                              timeline=hub_a.timeline_result())
    assert "traceEvents" in json.loads(chrome_path.read_text())
    jsonl_path = write_trace(tmp_path / "t.jsonl", hub_a.events)
    assert len(jsonl_path.read_text().splitlines()) == len(hub_a.events)


# --------------------------------------------------------------------------- #
# harness integration: jobs, cache, fingerprints
# --------------------------------------------------------------------------- #

def test_fingerprint_unchanged_without_telemetry():
    plain = SimJob(names=("kmeans",), scale=SCALE)
    riders = SimJob(names=("kmeans",), scale=SCALE,
                    timeline_window=500, trace=True)
    explicit_off = SimJob(names=("kmeans",), scale=SCALE,
                          timeline_window=None, trace=False)
    assert plain.fingerprint() == explicit_off.fingerprint()
    assert plain.fingerprint() != riders.fingerprint()
    assert riders.fingerprint() != SimJob(
        names=("kmeans",), scale=SCALE, timeline_window=999,
        trace=True).fingerprint()


def test_job_rejects_bad_window():
    with pytest.raises(ValueError):
        SimJob(names=("kmeans",), timeline_window=0)
    with pytest.raises(TelemetryError):
        TelemetryHub(window=0)


def test_hub_is_single_use():
    hub = TelemetryHub()
    GPU(config=SMALL, telemetry=hub)
    with pytest.raises(TelemetryError):
        GPU(config=SMALL, telemetry=hub)


def test_timeline_round_trips_result_cache(tmp_path):
    job = SimJob(names=("kmeans",), scale=SCALE, policy=("lcs",),
                 config=SMALL, timeline_window=500, trace=True)
    cache = ResultCache(tmp_path / "cache")
    cold = job.execute()
    cache.put(job.fingerprint(), cold)
    warm = cache.get(job.fingerprint())
    assert cache.hits == 1
    assert warm == cold
    assert isinstance(warm.meta["timeline"], TimelineResult)
    assert warm.meta["trace"] == cold.meta["trace"]


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    job = SimJob(names=("kmeans",), scale=SCALE, config=SMALL,
                 timeline_window=500)
    cache = ResultCache(tmp_path / "cache")
    result = job.execute()
    cache.put(job.fingerprint(), result)
    path = cache.path_for(job.fingerprint())

    entry = json.loads(path.read_text())
    entry["result"]["meta"]["timeline"] = {"__timeline__": {"mangled": 1}}
    path.write_text(json.dumps(entry))
    assert cache.get(job.fingerprint()) is None
    # The mangled entry was quarantined, not left to re-miss forever.
    assert cache.corrupt_entries == 1
    assert not path.exists()
    assert path.with_suffix(".corrupt").exists()

    cache.put(job.fingerprint(), result)
    raw = path.read_text()
    path.write_text(raw[: len(raw) // 2])
    assert cache.get(job.fingerprint()) is None
    assert cache.misses == 2
    assert cache.corrupt_entries == 2
