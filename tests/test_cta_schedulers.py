"""Tests for the baseline CTA schedulers (round-robin, static limit)."""

import pytest

from repro.core.cta_schedulers import (DepthFirstCTAScheduler,
                                       RoundRobinCTAScheduler,
                                       StaticLimitCTAScheduler)
from repro.harness.runner import simulate
from repro.sim.gpu import GPU

from helpers import alu_program, make_test_kernel


class TestRoundRobin:
    def test_spreads_consecutive_ctas_across_sms(self, small_config):
        placements = {}

        def builder(cta_id, warp_idx):
            return alu_program()

        kernel = make_test_kernel(num_ctas=4, warps_per_cta=1, builder=builder)
        gpu = GPU(config=small_config)
        scheduler = RoundRobinCTAScheduler(kernel)
        scheduler.bind(gpu)
        scheduler.fill(0)
        for sm in gpu.sms:
            for cta in sm.active_ctas:
                placements[cta.cta_id] = sm.sm_id
        # 2 SMs: CTAs alternate 0,1,0,1.
        assert placements[0] != placements[1]
        assert placements[0] == placements[2]
        assert placements[1] == placements[3]

    def test_fills_to_occupancy(self, small_config):
        kernel = make_test_kernel(num_ctas=64, warps_per_cta=1,
                                  regs_per_thread=0)
        gpu = GPU(config=small_config)
        scheduler = RoundRobinCTAScheduler(kernel)
        scheduler.bind(gpu)
        scheduler.fill(0)
        for sm in gpu.sms:
            assert sm.used_slots == small_config.max_ctas_per_sm

    def test_rejects_empty_kernel_list(self):
        with pytest.raises(ValueError):
            RoundRobinCTAScheduler([])

    def test_refills_after_completion(self, small_config):
        kernel = make_test_kernel(num_ctas=20, warps_per_cta=1,
                                  regs_per_thread=0)
        result = simulate(kernel, config=small_config)
        assert result.kernel("test").finish_cycle is not None

    def test_multi_kernel_fcfs(self, small_config):
        a = make_test_kernel(name="a", num_ctas=4)
        b = make_test_kernel(name="b", num_ctas=4)
        result = simulate([a, b], config=small_config)
        assert result.kernel("a").finish_cycle is not None
        assert result.kernel("b").finish_cycle is not None


class TestStaticLimit:
    def test_limit_respected(self, small_config):
        kernel = make_test_kernel(num_ctas=32, warps_per_cta=1,
                                  regs_per_thread=0)
        gpu = GPU(config=small_config)
        scheduler = StaticLimitCTAScheduler(kernel, limit_per_sm=2)
        scheduler.bind(gpu)
        scheduler.fill(0)
        for sm in gpu.sms:
            assert sm.used_slots == 2

    def test_limit_one_serialises(self, small_config):
        kernel = make_test_kernel(num_ctas=8, warps_per_cta=4)
        scheduler = StaticLimitCTAScheduler(kernel, limit_per_sm=1)
        limited = simulate(kernel, config=small_config,
                           cta_scheduler=scheduler)
        kernel2 = make_test_kernel(num_ctas=8, warps_per_cta=4)
        full = simulate(kernel2, config=small_config)
        assert limited.cycles >= full.cycles

    def test_per_kernel_limits(self, small_config):
        a = make_test_kernel(name="a", num_ctas=4)
        b = make_test_kernel(name="b", num_ctas=4)
        scheduler = StaticLimitCTAScheduler([a, b],
                                            limit_per_sm={"a": 1, "b": 2})
        result = simulate([a, b], config=small_config,
                          cta_scheduler=scheduler)
        assert result.kernel("a").finish_cycle is not None

    def test_missing_kernel_limit_rejected(self):
        a = make_test_kernel(name="a")
        with pytest.raises(ValueError):
            StaticLimitCTAScheduler([a], limit_per_sm={"other": 1})

    def test_zero_limit_rejected(self):
        with pytest.raises(ValueError):
            StaticLimitCTAScheduler(make_test_kernel(), limit_per_sm=0)

    def test_limits_snapshot_reports_effective_limit(self, small_config):
        kernel = make_test_kernel(num_ctas=4, warps_per_cta=1,
                                  regs_per_thread=0)
        scheduler = StaticLimitCTAScheduler(kernel, limit_per_sm=99)
        result = simulate(kernel, config=small_config,
                          cta_scheduler=scheduler)
        # Clamped to occupancy.
        assert all(v == small_config.max_ctas_per_sm
                   for v in result.cta_limits.values())


class TestDepthFirst:
    def test_fills_first_sm_before_second(self, small_config):
        kernel = make_test_kernel(num_ctas=5, warps_per_cta=1,
                                  regs_per_thread=0)
        gpu = GPU(config=small_config)
        scheduler = DepthFirstCTAScheduler(kernel)
        scheduler.bind(gpu)
        scheduler.fill(0)
        assert gpu.sms[0].used_slots == small_config.max_ctas_per_sm
        assert gpu.sms[1].used_slots == 1

    def test_consecutive_ctas_co_located(self, small_config):
        kernel = make_test_kernel(num_ctas=8, warps_per_cta=1,
                                  regs_per_thread=0)
        gpu = GPU(config=small_config)
        scheduler = DepthFirstCTAScheduler(kernel)
        scheduler.bind(gpu)
        scheduler.fill(0)
        sm0_ids = sorted(cta.cta_id for cta in gpu.sms[0].active_ctas)
        assert sm0_ids == [0, 1, 2, 3]

    def test_completes_grid(self, small_config):
        kernel = make_test_kernel(num_ctas=20)
        result = simulate(kernel, config=small_config,
                          cta_scheduler=DepthFirstCTAScheduler(kernel))
        assert result.kernel("test").finish_cycle is not None
