"""Cross-configuration integration matrix: the policies must be correct on
every hardware preset, not just the Fermi-class default."""

import pytest

from repro.core.bcs import BCSScheduler
from repro.core.cke import MixedCKE, SMKEvenCKE
from repro.core.lcs import LCSScheduler
from repro.harness.runner import simulate
from repro.harness.validate import validate_run
from repro.sim.config import GPUConfig
from repro.workloads.suite import make_kernel

CONFIGS = {
    "fermi": lambda: GPUConfig(num_sms=3),
    "kepler": lambda: GPUConfig.kepler_class(num_sms=3),
    "small": GPUConfig.small,
}


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("bench", ("kmeans", "stencil", "compute"))
def test_baseline_valid_on_every_config(config_name, bench):
    config = CONFIGS[config_name]()
    result = simulate(make_kernel(bench, scale=0.03), config=config)
    validate_run(result)


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_lcs_valid_on_every_config(config_name):
    config = CONFIGS[config_name]()
    kernel = make_kernel("kmeans", scale=0.03)
    scheduler = LCSScheduler(kernel)
    result = simulate(kernel, config=config, cta_scheduler=scheduler)
    validate_run(result)
    if scheduler.decision is not None:
        assert 1 <= scheduler.decision.n_star <= scheduler.decision.occupancy


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_bcs_valid_on_every_config(config_name):
    config = CONFIGS[config_name]()
    kernel = make_kernel("stencil", scale=0.03)
    result = simulate(kernel, config=config, warp_scheduler="baws",
                      cta_scheduler=BCSScheduler(kernel))
    validate_run(result)


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("policy_cls", (SMKEvenCKE, MixedCKE))
def test_cke_valid_on_every_config(config_name, policy_cls):
    config = CONFIGS[config_name]()
    kernels = [make_kernel("kmeans", scale=0.02),
               make_kernel("compute", scale=0.02)]
    result = simulate(kernels, config=config,
                      cta_scheduler=policy_cls(kernels))
    validate_run(result)


def test_occupancy_scales_with_configuration():
    kernel = make_kernel("kmeans", scale=0.02)
    fermi = kernel.max_ctas_per_sm(GPUConfig())
    kepler = kernel.max_ctas_per_sm(GPUConfig.kepler_class())
    assert kepler > fermi
