"""Tests for the declarative job layer (repro.harness.jobs)."""

import pytest

from repro.core.bcs import BCSScheduler
from repro.core.lcs import LCSScheduler
from repro.harness.jobs import (JobError, KernelSpec, SimJob, build_policy,
                                build_warp_scheduler, validate_policy,
                                validate_warp)
from repro.sim.config import GPUConfig
from repro.workloads.suite import make_kernel

SMALL = GPUConfig.small()


class TestValidation:
    def test_unknown_benchmark_rejected(self):
        with pytest.raises(JobError):
            SimJob(names=("warp_drive",))

    def test_unknown_benchmark_in_pair_rejected(self):
        with pytest.raises(JobError):
            SimJob(names=("kmeans", "warp_drive"))

    def test_empty_names_rejected(self):
        with pytest.raises(JobError):
            SimJob(names=())

    def test_scale_mults_length_mismatch_rejected(self):
        with pytest.raises(JobError):
            SimJob(names=("kmeans",), scale_mults=(1.0, 2.0))

    def test_unknown_policy_kind_rejected(self):
        with pytest.raises(JobError):
            SimJob(names=("kmeans",), policy=("warp_drive",))

    def test_policy_arity_rejected(self):
        with pytest.raises(JobError):
            SimJob(names=("kmeans",), policy=("static",))

    def test_unknown_warp_scheduler_rejected(self):
        with pytest.raises(JobError):
            SimJob(names=("kmeans",), warp="warp_drive")

    def test_swl_tuple_warp_accepted(self):
        job = SimJob(names=("kmeans",), warp=("swl", 6))
        assert job.warp == ("swl", 6)
        factory = build_warp_scheduler(job.warp)
        assert factory().warp_limit == 6

    def test_joberror_is_valueerror(self):
        # Callers that guarded with ValueError keep working.
        with pytest.raises(ValueError):
            validate_policy(("warp_drive",))
        with pytest.raises(ValueError):
            validate_warp("warp_drive")

    def test_kernel_spec_unknown_benchmark(self):
        with pytest.raises(JobError):
            KernelSpec("warp_drive")

    def test_bare_lcs_descriptor_builds(self):
        kernel = make_kernel("kmeans", scale=0.05)
        policy = build_policy(("lcs",), [kernel])
        assert isinstance(policy, LCSScheduler)

    def test_bcs_descriptor_builds_with_block_size(self):
        kernel = make_kernel("stencil", scale=0.05)
        policy = build_policy(("bcs", 3, None), [kernel])
        assert isinstance(policy, BCSScheduler)
        assert policy.block_size == 3


class TestFingerprint:
    def test_deterministic(self):
        a = SimJob(names=("kmeans",), scale=0.1)
        b = SimJob(names=("kmeans",), scale=0.1)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("kwargs", [
        {"scale": 0.2},
        {"seed": 7},
        {"warp": "lrr"},
        {"warp": ("swl", 4)},
        {"policy": ("lcs",)},
        {"policy": ("static", 2)},
        {"config": SMALL},
        {"names": ("kmeans", "compute")},
    ])
    def test_any_input_changes_fingerprint(self, kwargs):
        base = SimJob(names=("kmeans",), scale=0.1)
        changed = SimJob(**{"names": ("kmeans",), "scale": 0.1, **kwargs})
        assert base.fingerprint() != changed.fingerprint()

    def test_scale_mults_change_fingerprint(self):
        base = SimJob(names=("kmeans", "compute"))
        changed = SimJob(names=("kmeans", "compute"), scale_mults=(1.0, 2.0))
        assert base.fingerprint() != changed.fingerprint()

    def test_version_salt_changes_fingerprint(self, monkeypatch):
        job = SimJob(names=("kmeans",), scale=0.1)
        before = job.fingerprint()
        monkeypatch.setattr("repro.harness.jobs.SIM_VERSION", 999)
        assert job.fingerprint() != before


class TestExecute:
    def test_execute_matches_direct_simulate(self):
        from repro.harness.runner import simulate

        job = SimJob(names=("kmeans",), scale=0.05, policy=("static", 2),
                     config=SMALL)
        via_job = job.execute()
        kernel = make_kernel("kmeans", scale=0.05)
        from repro.core.cta_schedulers import StaticLimitCTAScheduler
        direct = simulate(kernel, config=SMALL,
                          cta_scheduler=StaticLimitCTAScheduler(
                              kernel, limit_per_sm=2))
        assert via_job == direct

    def test_kernel_spec_build_matches_make_kernel(self):
        spec = KernelSpec("kmeans", scale=0.05, seed=3)
        built = spec.build()
        reference = make_kernel("kmeans", scale=0.05, seed=3)
        assert built.num_ctas == reference.num_ctas
        assert built.warps_per_cta == reference.warps_per_cta

    def test_scale_mults_scale_individual_kernels(self):
        job = SimJob(names=("kmeans", "kmeans"), scale=0.1,
                     scale_mults=(1.0, 2.0))
        first, second = job.build_kernels()
        assert second.num_ctas > first.num_ctas
