"""Unit tests for the trace ISA."""

import pytest

from repro.sim.isa import (Instruction, Op, alu, barrier, exit_, load, shared,
                           store, validate_program)


class TestInstruction:
    def test_memory_requires_lines(self):
        with pytest.raises(ValueError):
            Instruction(Op.LD_GLOBAL)

    def test_non_memory_rejects_lines(self):
        with pytest.raises(ValueError):
            Instruction(Op.ALU, lines=(1,))

    def test_duplicate_lines_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Op.LD_GLOBAL, lines=(1, 1))

    def test_zero_latency_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Op.ALU, latency=0)

    def test_is_memory(self):
        assert Instruction(Op.LD_GLOBAL, lines=(1,)).is_memory
        assert Instruction(Op.ST_GLOBAL, lines=(1,)).is_memory
        assert not Instruction(Op.ALU).is_memory
        assert not Instruction(Op.BARRIER).is_memory

    def test_instructions_are_immutable(self):
        inst = alu()
        with pytest.raises(AttributeError):
            inst.latency = 99


class TestConstructors:
    def test_alu_latency(self):
        assert alu(7).latency == 7
        assert alu().op is Op.ALU

    def test_shared(self):
        assert shared(30).op is Op.SHARED

    def test_load_collects_lines(self):
        assert load([3, 1, 2]).lines == (3, 1, 2)

    def test_store(self):
        assert store([5]).op is Op.ST_GLOBAL

    def test_barrier_and_exit(self):
        assert barrier().op is Op.BARRIER
        assert exit_().op is Op.EXIT


class TestValidateProgram:
    def test_valid_program_passes(self):
        validate_program([alu(), load([1]), exit_()])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            validate_program([])

    def test_missing_exit_rejected(self):
        with pytest.raises(ValueError):
            validate_program([alu()])

    def test_interior_exit_rejected(self):
        with pytest.raises(ValueError):
            validate_program([exit_(), alu(), exit_()])
