"""Design layer: factors, compilation, files, campaigns, context dedup."""

import dataclasses
import json

import pytest

from repro.design import (Campaign, Design, DesignEnv, DesignError, Factor,
                          Override, build_job, load_design, parse_design,
                          serialize_design)
from repro.harness.cache import ResultCache
from repro.harness.experiments import (EXPERIMENT_DESIGNS, ExperimentContext,
                                       design_cell_counts, plan_experiments)
from repro.harness.faults import FaultPlan
from repro.sim.config import GPUConfig

TINY = 0.02


def _fingerprints(design, env=None):
    return [cc.job.fingerprint() for cc in design.compile(env)]


# --------------------------------------------------------------------------- #
# factors and blocks
# --------------------------------------------------------------------------- #

class TestFactors:
    def test_crossed_factor_needs_levels(self):
        with pytest.raises(DesignError, match="at least one level"):
            Factor.crossed("bench", ())

    def test_unknown_kind_rejected(self):
        with pytest.raises(DesignError, match="unknown factor kind"):
            Factor(name="x", kind="randomized")

    def test_nested_factor_needs_callable(self):
        with pytest.raises(DesignError, match="needs a callable"):
            Factor(name="x", kind="nested")

    def test_levels_are_frozen_to_tuples(self):
        factor = Factor.crossed("policy", [["lcs", "tail", 0.5]])
        assert factor.levels == (("lcs", "tail", 0.5),)

    def test_factorial_product_order(self):
        design = Design("d", factors=[
            Factor.crossed("a", (1, 2)),
            Factor.crossed("b", ("x", "y")),
        ])
        cells = design.cells()
        assert cells == [{"a": 1, "b": "x"}, {"a": 1, "b": "y"},
                         {"a": 2, "b": "x"}, {"a": 2, "b": "y"}]

    def test_nested_factor_sees_earlier_factors_and_env(self):
        design = Design("d", factors=[
            Factor.crossed("bench", ("kmeans",)),
            Factor.nested("limit", lambda cell, env: range(
                1, env.occupancy(cell["bench"]) + 1)),
        ])
        env = DesignEnv(scale=TINY)
        limits = [cell["limit"] for cell in design.cells(env)]
        assert limits == list(range(1, env.occupancy("kmeans") + 1))

    def test_derived_factor_one_value_per_cell(self):
        design = Design("d", factors=[
            Factor.crossed("n", (1, 2)),
            Factor.derived("policy", lambda cell, env: ("static", cell["n"])),
        ])
        assert [c["policy"] for c in design.cells()] == [("static", 1),
                                                         ("static", 2)]

    def test_exclude_and_override(self):
        design = Design("d", factors=[
            Factor.crossed("bench", ("kmeans", "iindex")),
            Factor.crossed("warp", ("gto",)),
        ], exclude=[{"bench": "iindex"}],
           overrides=[Override(match={"bench": "kmeans"},
                               set={"warp": "baws"})])
        cells = design.cells()
        assert cells == [{"bench": "kmeans", "warp": "baws"}]

    def test_where_predicate_filters(self):
        design = Design("d", factors=[Factor.crossed("n", (1, 2, 3, 4))],
                        where=[lambda cell: cell["n"] % 2 == 0])
        assert [c["n"] for c in design.cells()] == [2, 4]


# --------------------------------------------------------------------------- #
# designs and compilation
# --------------------------------------------------------------------------- #

class TestDesignCompile:
    def test_needs_exactly_one_of_factors_or_blocks(self):
        with pytest.raises(DesignError, match="exactly one"):
            Design("d")

    def test_chain_dedups_cells_across_blocks(self):
        base = Design("a", factors=[Factor.crossed("bench", ("kmeans",)),
                                    Factor.crossed("policy", (("rr",),))])
        both = Design.chain("c", base, base)
        assert len(both.cells()) == 1

    def test_sorted_order_is_deterministic_reordering(self):
        design = Design("d", factors=[Factor.crossed("bench",
                                                     ("streaming", "kmeans"))],
                        order="sorted")
        compiled = design.compile(DesignEnv(scale=TINY))
        assert [cc.cell["bench"] for cc in compiled] \
            == ["kmeans", "streaming"]

    def test_compile_requires_bench(self):
        design = Design("d", factors=[Factor.crossed("warp", ("gto",))])
        with pytest.raises(DesignError, match="no 'bench' factor"):
            design.compile(DesignEnv(scale=TINY))

    def test_compile_is_deterministic(self):
        design = EXPERIMENT_DESIGNS["e3"]()
        env = DesignEnv(scale=TINY)
        assert _fingerprints(design, env) == _fingerprints(design, env)

    def test_compile_matches_context_jobs(self):
        # A design cell and the equivalent hand-built ctx.job are the
        # same job: one construction path, one fingerprint universe.
        ctx = ExperimentContext(scale=TINY)
        design = Design("d", factors=[
            Factor.crossed("bench", ("kmeans",)),
            Factor.crossed("warp", ("gto",)),
            Factor.crossed("policy", (("lcs", "tail", 0.5),)),
        ])
        (cc,) = design.compile(ctx.design_env())
        assert cc.job == ctx.job("kmeans", policy=("lcs", "tail", 0.5))

    def test_config_dict_level_overrides_env_config(self):
        design = Design("d", factors=[
            Factor.crossed("bench", ("kmeans",)),
            Factor.crossed("config", ({"l1_mshr_entries": 64},)),
        ])
        (cc,) = design.compile(DesignEnv(scale=TINY))
        assert cc.job.config.l1_mshr_entries == 64

    def test_digest_tracks_meaning(self):
        env = DesignEnv(scale=TINY)
        d1 = Design("d", factors=[Factor.crossed("bench", ("kmeans",))])
        d2 = Design("d", factors=[Factor.crossed("bench", ("kmeans",))])
        d3 = Design("d", factors=[Factor.crossed("bench", ("iindex",))])
        assert d1.digest(env) == d2.digest(env)
        assert d1.digest(env) != d3.digest(env)
        assert d1.digest(env) != d1.digest(DesignEnv(scale=0.04))

    def test_every_experiment_design_compiles(self):
        env = DesignEnv(scale=TINY)
        counts = design_cell_counts(env)
        for exp_id, builder in EXPERIMENT_DESIGNS.items():
            compiled = builder().compile(env)
            assert compiled, exp_id
            assert counts[exp_id] == len(builder().cells(env))
            labels = [cc.label for cc in compiled]
            assert len(set(labels)) == len(labels), f"{exp_id}: dup labels"
        assert counts["e12"] == 0

    def test_vector_fallback_single_construction_path(self):
        job = build_job(names="kmeans", scale=TINY, seed=1,
                        config=GPUConfig(), warp="two-level",
                        backend="vector")
        assert job.backend == "object"
        job = build_job(names="kmeans", scale=TINY, seed=1,
                        config=GPUConfig(), warp="gto", backend="vector")
        assert job.backend == "vector"


# --------------------------------------------------------------------------- #
# design files: round trip
# --------------------------------------------------------------------------- #

ROUND_TRIP_DESIGNS = [
    Design("plain", factors=[
        Factor.crossed("bench", ("kmeans", "streaming")),
        Factor.crossed("policy", (("rr",), ("lcs", "tail", 0.5))),
    ]),
    Design("with-none", factors=[
        Factor.crossed("bench", ("kmeans",)),
        Factor.crossed("warp", ("baws",)),
        Factor.crossed("policy", (("bcs", 2, None),)),
    ]),
    Design("filtered", factors=[
        Factor.crossed("bench", ("kmeans", "iindex")),
        Factor.crossed("policy", (("rr",), ("dyncta",))),
    ], exclude=[{"bench": "iindex", "policy": ("dyncta",)}],
       overrides=[Override(match={"bench": "kmeans"},
                           set={"warp": "baws"})]),
    Design.chain(
        "multi-block",
        Design("a", factors=[Factor.crossed("bench", ("kmeans",)),
                             Factor.crossed("policy", (("rr",),))]),
        Design("b", factors=[Factor.crossed("bench", ("streaming",)),
                             Factor.crossed("policy", (("static", 2),))])),
]


class TestDesignFiles:
    @pytest.mark.parametrize("fmt", ["toml", "json"])
    @pytest.mark.parametrize("design", ROUND_TRIP_DESIGNS,
                             ids=lambda d: d.name)
    def test_round_trip_preserves_fingerprints(self, design, fmt):
        env_map = {"scale": TINY, "seed": 7}
        text = serialize_design(design, fmt=fmt, env=env_map)
        parsed, env_overrides = parse_design(text, fmt=fmt)
        assert env_overrides == env_map
        env = DesignEnv(**env_overrides)
        assert _fingerprints(parsed, env) == _fingerprints(design, env)
        assert parsed.digest(env) == design.digest(env)

    def test_load_design_toml_and_json(self, tmp_path):
        design = ROUND_TRIP_DESIGNS[0]
        for fmt in ("toml", "json"):
            path = tmp_path / f"d.{fmt}"
            path.write_text(serialize_design(design, fmt=fmt))
            loaded, _ = load_design(path)
            assert _fingerprints(loaded, DesignEnv(scale=TINY)) \
                == _fingerprints(design, DesignEnv(scale=TINY))

    def test_unrepresentable_design_refuses_serialization(self):
        design = Design("d", factors=[
            Factor.crossed("bench", ("kmeans",)),
            Factor.derived("policy", lambda cell, env: ("rr",)),
        ])
        with pytest.raises(DesignError, match="nested/derived"):
            serialize_design(design)

    def test_unknown_env_key_rejected(self):
        with pytest.raises(DesignError, match="unknown"):
            parse_design('[design]\nname = "d"\n'
                         '[[design.factor]]\nname = "bench"\n'
                         'levels = ["kmeans"]\n'
                         '[design.env]\nwarp = "gto"\n')

    def test_example_design_file_parses(self):
        design, env_overrides = load_design("examples/lcs_threshold.toml")
        assert env_overrides == {"scale": 0.1}
        assert len(design.compile(DesignEnv(**env_overrides))) == 7


# --------------------------------------------------------------------------- #
# campaigns
# --------------------------------------------------------------------------- #

def _tiny_design():
    return Design("camp", factors=[
        Factor.crossed("bench", ("kmeans", "streaming")),
        Factor.crossed("policy", (("rr",),)),
    ])


class TestCampaign:
    def test_run_then_resume_skips_done_cells(self, tmp_path):
        env = DesignEnv(scale=TINY)
        cache = ResultCache(tmp_path / "cache")
        campaign = Campaign.open(_tiny_design(), env, root=tmp_path / "c")
        report = campaign.run(cache=cache)
        assert report.ok and report.executed == 2 and report.resumed == 0
        assert campaign.counts() == {"pending": 0, "claimed": 0, "done": 2,
                                     "failed": 0, "exhausted": 0}

        again = Campaign.open(_tiny_design(), env, root=tmp_path / "c")
        assert again.path == campaign.path
        report = again.run(cache=cache)
        assert report.executed == 0 and report.resumed == 2

    def test_interrupted_campaign_replays_from_cache(self, tmp_path):
        # Simulate a total journal loss: the batch ran (results are in
        # the result cache) but nothing of the durable history survives.
        # The next invocation re-dispatches, and the engine replays every
        # cell from cache.
        env = DesignEnv(scale=TINY)
        cache = ResultCache(tmp_path / "cache")
        first = Campaign.open(_tiny_design(), env, root=tmp_path / "c")
        first.run(cache=cache)
        hits_before = cache.hits

        (first.path / "journal.jsonl").unlink()
        second = Campaign.open(_tiny_design(), env, root=tmp_path / "c")
        assert second.counts()["pending"] == 2
        report = second.run(cache=cache)
        assert report.ok and report.executed == 2
        assert cache.hits == hits_before + 2   # replayed, not re-simulated

    def test_failed_cells_are_retried_on_resume(self, tmp_path):
        env = DesignEnv(scale=TINY)
        campaign = Campaign.open(_tiny_design(), env, root=tmp_path / "c")
        report = campaign.run(faults=FaultPlan.parse("fail:0"), retries=0)
        assert report.failed == 1
        assert campaign.counts()["failed"] == 1

        resumed = Campaign.open(_tiny_design(), env, root=tmp_path / "c")
        report = resumed.run()
        assert report.ok and report.executed == 1 and report.resumed == 1
        assert resumed.counts() == {"pending": 0, "claimed": 0, "done": 2,
                                    "failed": 0, "exhausted": 0}

    def test_changed_design_gets_fresh_manifest(self, tmp_path):
        env = DesignEnv(scale=TINY)
        a = Campaign.open(_tiny_design(), env, root=tmp_path / "c")
        changed = Design("camp", factors=[
            Factor.crossed("bench", ("kmeans",)),
            Factor.crossed("policy", (("rr",),)),
        ])
        b = Campaign.open(changed, env, root=tmp_path / "c")
        assert a.path != b.path

    def test_manifest_round_trips_jobs_exactly(self, tmp_path):
        env = DesignEnv(scale=TINY)
        campaign = Campaign.open(_tiny_design(), env, root=tmp_path / "c")
        loaded = Campaign.load(campaign.path)
        from repro.harness.jobs import SimJob
        for cell in loaded.cells:
            assert SimJob.from_payload(cell.job).fingerprint() \
                == cell.fingerprint


# --------------------------------------------------------------------------- #
# context integration: replace-based subcontexts + cross-experiment dedup
# --------------------------------------------------------------------------- #

class TestContextIntegration:
    def test_subcontext_forwards_every_field(self):
        # The regression this guards: subcontext() used to copy fields by
        # hand, so a newly added context field was silently dropped.  Via
        # dataclasses.replace, everything except the per-config memos is
        # forwarded automatically — including fields added later.
        ctx = ExperimentContext(scale=TINY, seed=3, jobs=2,
                                timeline_window=500, trace=True, retries=5,
                                timeout=12.5, fail_fast=True,
                                sanitize=True, backend="vector")
        sub = ctx.subcontext(GPUConfig.kepler_class())
        reset = {"config", "_cache", "_failed"}
        for f in dataclasses.fields(ExperimentContext):
            if f.name in reset:
                continue
            assert getattr(sub, f.name) is getattr(ctx, f.name), f.name
        assert sub.config == GPUConfig.kepler_class()
        assert sub._cache == {} and sub._failed == {}

    def test_for_config_memoizes_subcontexts(self):
        ctx = ExperimentContext(scale=TINY)
        kepler = GPUConfig.kepler_class()
        assert ctx.for_config(ctx.config) is ctx
        assert ctx.for_config(kepler) is ctx.for_config(kepler)
        assert ctx.for_config(kepler).reports is ctx.reports

    def test_shared_pool_dedups_across_contexts(self):
        ctx = ExperimentContext(scale=TINY)
        result = ctx.run("kmeans")
        # A subcontext on identical hardware shares the fingerprint pool,
        # so the same cell never simulates twice in one invocation.
        sub = ctx.subcontext(ctx.config)
        assert sub._cache == {}
        assert sub.run("kmeans") is result

    def test_plan_experiments_dedups_shared_cells(self):
        ctx = ExperimentContext(scale=TINY)
        env = ctx.design_env()
        separate = sum(len(EXPERIMENT_DESIGNS[e]().compile(env))
                       for e in ("e3", "e4", "e9"))
        planned = plan_experiments(ctx, ["e3", "e4", "e9"])
        # E4 shares E3's lcs runs + static sweeps; E9 shares the baseline.
        assert planned < separate
        assert len(ctx._pool) == planned
        # Drivers now find everything memoised: no new engine batches.
        batches = len(ctx.reports)
        from repro.harness.experiments import EXPERIMENTS
        EXPERIMENTS["e4"](ctx)
        assert len(ctx.reports) == batches

    def test_cell_counts_are_json_safe(self):
        counts = design_cell_counts(DesignEnv(scale=TINY))
        json.dumps(counts)
        assert counts["e6"] == counts["e7"]   # shared design
