"""Checkpoint/resume and invariant-sanitizer tests.

The contracts that matter most:

* **resume equivalence** — a run interrupted at an arbitrary checkpoint
  and resumed (in-process or through the engine's kill/timeout recovery)
  produces **bitwise-identical** final statistics to the uninterrupted
  run, for every CTA-scheduler x warp-scheduler combination;
* **cross-process determinism** — the same job executed twice in separate
  worker processes yields identical statistics fingerprints (the property
  resume equivalence rests on);
* **sanitizer soundness** — a clean run sanitized is byte-identical to an
  unsanitized one, and injected live-state corruption fails with a typed
  ``InvariantViolation`` at the next window boundary instead of silently
  completing with wrong statistics;
* **store robustness** — corrupt checkpoint files are quarantined and the
  next-newest snapshot is used, never a crash.
"""

from __future__ import annotations

import hashlib
import json
import pickle

import pytest

from repro.harness.checkpoints import (KEEP_PER_JOB, CheckpointPlan,
                                       CheckpointStore)
from repro.harness.engine import run_batch
from repro.harness.faults import FaultPlan
from repro.harness.jobs import SimJob, build_policy, build_warp_scheduler
from repro.harness.runner import simulate
from repro.sim.checkpoint import (CHECKPOINT_VERSION, CheckpointError,
                                  CheckpointRecorder, Snapshot)
from repro.sim.config import GPUConfig
from repro.sim.gpu import SimulationTimeout
from repro.sim.invariants import InvariantViolation
from repro.sim.sm import PREFETCH

SCALE = 0.05
SMALL = GPUConfig.small()

#: CTA-policy descriptors of the acceptance matrix (single- and
#: multi-kernel: RR, LCS, BCS pairing and the mixed CKE scheduler).
POLICIES = [
    (("kmeans",), ("rr",)),
    (("kmeans",), ("lcs",)),
    (("kmeans", "bfs"), ("bcs", 2, None)),
    (("kmeans", "bfs"), ("mixed", "tail", None)),
]
WARPS = ["lrr", "gto"]


def fingerprint_result(result) -> str:
    """A canonical digest of every statistic a run produces."""
    canonical = json.dumps(result.to_dict(), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _job(names, policy, warp="gto", **kwargs):
    return SimJob(names=names, scale=SCALE, policy=policy, warp=warp,
                  config=SMALL, **kwargs)


# --------------------------------------------------------------------------- #
# snapshot capture/restore round trip
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("names,policy", POLICIES,
                         ids=[p[1][0] for p in POLICIES])
@pytest.mark.parametrize("warp", WARPS)
def test_resume_is_bitwise_identical(names, policy, warp):
    """Interrupt at every captured checkpoint; resume must match exactly."""
    job = _job(names, policy, warp)
    reference = fingerprint_result(job.execute())

    snapshots: list[Snapshot] = []
    recorder = CheckpointRecorder(
        400, lambda snapshot: bool(snapshots.append(snapshot)) or True)
    kernels = job.build_kernels()
    checkpointed = simulate(kernels, config=SMALL,
                            warp_scheduler=build_warp_scheduler(job.warp),
                            cta_scheduler=build_policy(job.policy, kernels),
                            checkpoint=recorder)
    assert fingerprint_result(checkpointed) == reference, \
        "checkpointing perturbed the run"
    assert snapshots, "run too short to checkpoint; lower the interval"

    # First, middle and last snapshot: resume each with fresh kernels.
    picks = {0, len(snapshots) // 2, len(snapshots) - 1}
    for position in sorted(picks):
        snapshot = snapshots[position]
        resumed = simulate(job.build_kernels(), resume_from=snapshot)
        assert fingerprint_result(resumed) == reference, \
            f"resume from cycle {snapshot.cycle} diverged"


def test_resume_preserves_telemetry():
    """Timeline + trace riders survive snapshot/restore bit-for-bit."""
    job = _job(("kmeans",), ("lcs",), timeline_window=250, trace=True)
    reference = job.execute()

    snapshots: list[Snapshot] = []
    recorder = CheckpointRecorder(
        700, lambda snapshot: bool(snapshots.append(snapshot)) or True)
    kernels = job.build_kernels()
    from repro.telemetry.hub import TelemetryHub
    simulate(kernels, config=SMALL,
             warp_scheduler=build_warp_scheduler(job.warp),
             cta_scheduler=build_policy(job.policy, kernels),
             telemetry=TelemetryHub(window=250, trace=True),
             checkpoint=recorder)

    resumed = simulate(job.build_kernels(), resume_from=snapshots[0])
    assert fingerprint_result(resumed) == fingerprint_result(reference)
    assert resumed.meta["trace"] == reference.meta["trace"]


def test_snapshot_restore_validates():
    job = _job(("kmeans",), ("rr",))
    kernels = job.build_kernels()
    snapshots = []
    recorder = CheckpointRecorder(
        400, lambda snapshot: bool(snapshots.append(snapshot)) or True)
    simulate(kernels, config=SMALL,
             cta_scheduler=build_policy(job.policy, kernels),
             checkpoint=recorder)
    snapshot = snapshots[0]

    with pytest.raises(CheckpointError, match="version"):
        Snapshot(version=CHECKPOINT_VERSION + 1, cycle=snapshot.cycle,
                 kernels=snapshot.kernels,
                 payload=snapshot.payload).restore(job.build_kernels())
    wrong = SimJob(names=("bfs",), scale=SCALE, config=SMALL).build_kernels()
    with pytest.raises(CheckpointError, match="kernels"):
        snapshot.restore(wrong)
    with pytest.raises(CheckpointError, match="corrupt"):
        Snapshot(version=snapshot.version, cycle=snapshot.cycle,
                 kernels=snapshot.kernels,
                 payload=snapshot.payload[:100]).restore(job.build_kernels())


def test_resume_rejects_conflicting_arguments():
    job = _job(("kmeans",), ("rr",))
    kernels = job.build_kernels()
    snapshots = []
    recorder = CheckpointRecorder(
        400, lambda snapshot: bool(snapshots.append(snapshot)) or True)
    simulate(kernels, config=SMALL,
             cta_scheduler=build_policy(job.policy, kernels),
             checkpoint=recorder)
    fresh = job.build_kernels()
    with pytest.raises(ValueError, match="resume_from"):
        simulate(fresh, resume_from=snapshots[0],
                 cta_scheduler=build_policy(job.policy, fresh))
    with pytest.raises(ValueError, match="configuration"):
        simulate(job.build_kernels(), resume_from=snapshots[0],
                 config=GPUConfig())


def test_prefetch_sentinel_survives_pickling():
    """The LDST port's identity-compared marker must stay a singleton."""
    assert pickle.loads(pickle.dumps(PREFETCH)) is PREFETCH


# --------------------------------------------------------------------------- #
# engine drills: kill-resume, timeout-resume
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("names,policy", POLICIES,
                         ids=[p[1][0] for p in POLICIES])
@pytest.mark.parametrize("warp", WARPS)
def test_kill_resume_drill(tmp_path, names, policy, warp):
    """A mid-run worker death resumes from checkpoint, results identical."""
    job = _job(names, policy, warp)
    reference = fingerprint_result(job.execute())

    plan = CheckpointPlan(interval=500, root=tmp_path / "ckpt")
    faults = FaultPlan.parse("kill-at:0:1500",
                             state_dir=str(tmp_path / "faults"))
    report = run_batch([job], workers=1, retries=2, faults=faults,
                       checkpoints=plan, backoff=0.0)
    outcome = report.outcomes[0]
    assert outcome.status == "ok"
    assert outcome.attempts == 2
    assert outcome.resumed_from is not None
    assert outcome.resumed_from < 1500
    assert fingerprint_result(outcome.result) == reference
    assert any(event["kind"] == "job.resumed" for event in report.events)
    # Checkpoints of a completed job are discarded.
    assert len(CheckpointStore(tmp_path / "ckpt")) == 0


def test_kill_resume_drill_in_pool(tmp_path):
    """Same drill with a real worker process dying via os._exit."""
    job = _job(("kmeans",), ("lcs",))
    reference = fingerprint_result(job.execute())
    plan = CheckpointPlan(interval=500, root=tmp_path / "ckpt")
    faults = FaultPlan.parse("kill-at:0:1500",
                             state_dir=str(tmp_path / "faults"))
    report = run_batch([job, job], workers=2, retries=2, faults=faults,
                       checkpoints=plan, backoff=0.0)
    outcome = report.outcomes[0]
    assert outcome.status == "ok"
    assert outcome.resumed_from is not None
    assert fingerprint_result(outcome.result) == reference


def test_timeout_resume_makes_forward_progress(tmp_path):
    """Cooperative timeouts re-dispatch from the newest checkpoint."""
    job = SimJob(names=("kmeans",), scale=0.08, policy=("lcs",))
    import time
    started = time.monotonic()
    reference = fingerprint_result(job.execute())
    full_wall = time.monotonic() - started

    plan = CheckpointPlan(interval=400, root=tmp_path / "ckpt")
    report = run_batch([job], workers=1, retries=30, timeout=full_wall / 3,
                       checkpoints=plan, backoff=0.0)
    outcome = report.outcomes[0]
    assert outcome.status == "ok"
    assert outcome.attempts > 1
    assert outcome.resumed_from is not None
    assert fingerprint_result(outcome.result) == reference
    assert any(event["payload"].get("reason") == "timeout-resume"
               for event in report.events if event["kind"] == "job.retry")


def test_timeout_without_checkpoints_reports_progress():
    """A bare timeout is terminal but reports partial progress."""
    job = SimJob(names=("kmeans", "bfs"), scale=0.2, policy=("rr",))
    report = run_batch([job], workers=1, retries=3, timeout=0.05)
    outcome = report.outcomes[0]
    assert outcome.status == "timeout"
    assert outcome.attempts == 1   # no checkpoint => no resume-retry
    assert outcome.progress is not None
    assert outcome.progress["kind"] == "wall"
    assert outcome.progress["cycle"] > 0
    assert outcome.progress["checkpoint_cycle"] is None


def test_simulation_timeout_carries_progress_fields():
    job = SimJob(names=("kmeans", "bfs"), scale=0.2, policy=("rr",))
    with pytest.raises(SimulationTimeout) as excinfo:
        job.execute(wall_timeout=0.05)
    error = excinfo.value
    assert error.kind == "wall"
    assert error.cycle is not None and error.cycle > 0
    assert error.max_cycles is not None
    assert error.checkpoint_cycle is None


# --------------------------------------------------------------------------- #
# cross-process determinism (the property resume rests on)
# --------------------------------------------------------------------------- #

def test_same_job_is_deterministic_across_worker_processes():
    job = _job(("kmeans", "bfs"), ("bcs", 2, None))
    report = run_batch([job, job], workers=2)
    results = [outcome.result for outcome in report.outcomes]
    assert all(result is not None for result in results)
    assert (fingerprint_result(results[0])
            == fingerprint_result(results[1]))


# --------------------------------------------------------------------------- #
# invariant sanitizer
# --------------------------------------------------------------------------- #

def test_sanitized_run_is_bitwise_identical():
    job = _job(("kmeans",), ("lcs",))
    reference = fingerprint_result(job.execute())
    sanitized = job.execute(sanitize=True)
    assert fingerprint_result(sanitized) == reference


def test_sanitizer_catches_injected_corruption(tmp_path):
    """--faults corrupt:K:CYCLE + --sanitize => typed failure, no retry."""
    job = _job(("kmeans",), ("lcs",))
    faults = FaultPlan.parse("corrupt:0:1000",
                             state_dir=str(tmp_path / "faults"))
    report = run_batch([job], workers=1, retries=3, faults=faults,
                       sanitize=True)
    outcome = report.outcomes[0]
    assert outcome.status == "failed"
    assert outcome.attempts == 1   # deterministic: never retried
    assert "invariant" in outcome.error
    assert "sm-accounting" in outcome.error
    # The violation is reported at a window boundary at/after injection.
    assert "cycle 1000" in outcome.error


def test_unsanitized_corruption_completes_silently(tmp_path):
    """The gap --sanitize closes: without it, wrong stats come back ok.

    ``sanitize=False`` explicitly (not None) so a CI run with
    ``REPRO_SANITIZE=1`` in the environment still tests the *off* path.
    """
    job = _job(("kmeans",), ("lcs",))
    faults = FaultPlan.parse("corrupt:0:1000",
                             state_dir=str(tmp_path / "faults"))
    report = run_batch([job], workers=1, faults=faults, sanitize=False)
    assert report.outcomes[0].status == "ok"


def test_sanitizer_raises_directly_via_simulate(tmp_path):
    job = _job(("kmeans",), ("rr",))
    faults = FaultPlan.parse("corrupt:0:1000",
                             state_dir=str(tmp_path / "faults"))
    with pytest.raises(InvariantViolation) as excinfo:
        job.execute(sanitize=True, saboteur=faults.run_saboteur(0))
    assert excinfo.value.check == "sm-accounting"
    assert excinfo.value.cycle >= 1000


def test_sanitize_env_variable(tmp_path, monkeypatch):
    from repro.sim.invariants import ENV_SANITIZE
    job = _job(("kmeans",), ("rr",))
    faults = FaultPlan.parse("corrupt:0:1000",
                             state_dir=str(tmp_path / "faults"))
    monkeypatch.setenv(ENV_SANITIZE, "1")
    with pytest.raises(InvariantViolation):
        job.execute(saboteur=faults.run_saboteur(0))


# --------------------------------------------------------------------------- #
# the checkpoint store
# --------------------------------------------------------------------------- #

def _snapshot_for(job: SimJob) -> list[Snapshot]:
    snapshots: list[Snapshot] = []
    recorder = CheckpointRecorder(
        400, lambda snapshot: bool(snapshots.append(snapshot)) or True)
    kernels = job.build_kernels()
    simulate(kernels, config=job.config,
             cta_scheduler=build_policy(job.policy, kernels),
             checkpoint=recorder)
    return snapshots


def test_store_round_trip_and_prune(tmp_path):
    job = _job(("kmeans",), ("rr",))
    snapshots = _snapshot_for(job)
    assert len(snapshots) >= 3
    store = CheckpointStore(tmp_path / "ckpt")
    fingerprint = job.fingerprint()
    for snapshot in snapshots:
        assert store.put(fingerprint, snapshot)
    # Pruned to the newest KEEP_PER_JOB entries; newest() is the latest.
    assert len(store) == KEEP_PER_JOB
    newest = store.newest(fingerprint)
    assert newest is not None
    assert newest.cycle == snapshots[-1].cycle
    assert newest.payload == snapshots[-1].payload
    # discard() empties the job's slot.
    assert store.discard(fingerprint) == KEEP_PER_JOB
    assert store.newest(fingerprint) is None


def test_store_quarantines_corrupt_newest(tmp_path):
    job = _job(("kmeans",), ("rr",))
    snapshots = _snapshot_for(job)
    store = CheckpointStore(tmp_path / "ckpt")
    fingerprint = job.fingerprint()
    for snapshot in snapshots[-2:]:
        store.put(fingerprint, snapshot)
    # Truncate the newest file: newest() must fall back to the runner-up.
    newest_path = store.path_for(fingerprint, snapshots[-1].cycle)
    newest_path.write_bytes(newest_path.read_bytes()[:64])
    recovered = store.newest(fingerprint)
    assert recovered is not None
    assert recovered.cycle == snapshots[-2].cycle
    assert store.corrupt_entries == 1
    assert not newest_path.exists()
    assert newest_path.with_suffix(".corrupt").exists()
    # And the recovered snapshot actually resumes correctly.
    reference = fingerprint_result(job.execute())
    resumed = simulate(job.build_kernels(), resume_from=recovered)
    assert fingerprint_result(resumed) == reference


def test_store_unwritable_degrades_gracefully(tmp_path):
    job = _job(("kmeans",), ("rr",))
    snapshot = _snapshot_for(job)[0]
    blocked = tmp_path / "blocked"
    blocked.write_text("a file where the store directory should be")
    store = CheckpointStore(blocked)
    with pytest.warns(RuntimeWarning, match="not writable"):
        assert not store.put(job.fingerprint(), snapshot)
    assert store.write_errors == 1


def test_engine_resumes_from_preexisting_checkpoint(tmp_path):
    """A checkpoint left by a previous invocation is picked up on rerun."""
    job = _job(("kmeans",), ("lcs",))
    reference = fingerprint_result(job.execute())
    plan = CheckpointPlan(interval=500, root=tmp_path / "ckpt")
    snapshots = _snapshot_for(job)
    plan.store().put(job.fingerprint(), snapshots[0])

    report = run_batch([job], workers=1, checkpoints=plan)
    outcome = report.outcomes[0]
    assert outcome.status == "ok"
    assert outcome.resumed_from == snapshots[0].cycle
    assert fingerprint_result(outcome.result) == reference
