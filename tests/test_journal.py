"""Journal-layer tests: checksummed records, damage-tolerant replay,
snapshots and the campaign-grade fault hooks.

The two acceptance properties live here:

* truncating a journal at *any* byte boundary recovers a valid prefix
  of the history (torn-tail tolerance by construction), and
* corrupting any single record costs exactly that record, never the
  file.
"""

import json
import os
import warnings

import pytest

from repro.design.journal import (JOURNAL_NAME, SNAPSHOT_NAME, Journal,
                                  decode_record, load_snapshot, record_crc,
                                  replay_journal, write_snapshot)
from repro.harness.faults import FaultPlan


def _write_history(path, n=6, worker="w"):
    journal = Journal(path, worker=worker)
    for index in range(n):
        journal.append("done", cell=index, fingerprint=f"fp{index}",
                       cycles=100 + index, ipc=1.5)
    return journal


class TestRecords:
    def test_append_and_replay_round_trip(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        _write_history(path, n=4)
        replay = replay_journal(path)
        assert [r["cell"] for r in replay.records] == [0, 1, 2, 3]
        assert replay.corrupt_records == 0 and not replay.torn_tail
        for record in replay.records:
            assert record["worker"] == "w"
            assert record["crc"] == record_crc(record)

    def test_decode_rejects_wrong_checksum_and_junk(self):
        record = {"type": "done", "cell": 1, "t": 1.0}
        record["crc"] = record_crc(record)
        line = json.dumps(record).encode()
        assert decode_record(line) == record
        assert decode_record(line.replace(b'"cell": 1', b'"cell": 2')) is None
        assert decode_record(b"not json at all") is None
        assert decode_record(b'{"no": "type key"}') is None

    def test_missing_file_is_empty_history(self, tmp_path):
        replay = replay_journal(tmp_path / "absent.jsonl")
        assert replay.records == [] and not replay.torn_tail

    def test_concurrent_appenders_interleave_whole_records(self, tmp_path):
        # Two handles on one file (two workers sharing a filesystem):
        # every record must survive intact, in *some* total order.
        path = tmp_path / JOURNAL_NAME
        a = Journal(path, worker="a")
        b = Journal(path, worker="b")
        for index in range(10):
            (a if index % 2 else b).append("claim", cell=index,
                                           nonce=f"n{index}", ttl=5.0)
        replay = replay_journal(path)
        assert replay.corrupt_records == 0
        assert sorted(r["cell"] for r in replay.records) == list(range(10))


class TestDamageTolerance:
    def test_truncation_at_any_byte_recovers_a_valid_prefix(self, tmp_path):
        # The acceptance property: for EVERY possible torn-write length,
        # replay yields an exact prefix of the full history and flags
        # (only) genuine tears.
        path = tmp_path / JOURNAL_NAME
        _write_history(path, n=5)
        data = path.read_bytes()
        full = replay_journal(path).records
        for cut in range(len(data) + 1):
            torn = tmp_path / "torn.jsonl"
            torn.write_bytes(data[:cut])
            replay = replay_journal(torn)
            assert replay.records == full[:len(replay.records)]
            assert replay.corrupt_records == 0
            # A tear mid-record is flagged; clean boundaries are not.
            boundary = cut == 0 or data[:cut].endswith(b"\n")
            assert replay.torn_tail == (not boundary)

    def test_corrupting_any_single_record_costs_only_that_record(
            self, tmp_path):
        # Flip a byte inside each record in turn: replay must keep every
        # *other* record and count exactly one corruption.
        path = tmp_path / JOURNAL_NAME
        _write_history(path, n=5)
        lines = path.read_bytes().splitlines(keepends=True)
        for victim in range(len(lines)):
            mangled = tmp_path / "mangled.jsonl"
            scribbled = bytearray(lines[victim])
            scribbled[len(scribbled) // 2] ^= 0xFF
            mangled.write_bytes(b"".join(lines[:victim])
                                + bytes(scribbled)
                                + b"".join(lines[victim + 1:]))
            replay = replay_journal(mangled)
            cells = [r["cell"] for r in replay.records]
            assert cells == [i for i in range(5) if i != victim]
            assert replay.corrupt_records == 1

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        _write_history(path, n=2)
        path.write_bytes(path.read_bytes() + b"\n\n")
        replay = replay_journal(path)
        assert len(replay.records) == 2 and replay.corrupt_records == 0


class TestAppendDegradation:
    def test_fail_append_warns_once_and_keeps_records(self, tmp_path):
        plan = FaultPlan.parse("fail-append:0",
                               state_dir=str(tmp_path / "state"))
        journal = Journal(tmp_path / JOURNAL_NAME, worker="w", faults=plan)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for index in range(3):
                record, persisted = journal.append("done", cell=index,
                                                   fingerprint="fp")
                assert not persisted and record["cell"] == index
        assert len([w for w in caught
                    if issubclass(w.category, RuntimeWarning)]) == 1
        assert journal.append_errors == 3
        assert [r["cell"] for r in journal.unpersisted] == [0, 1, 2]
        assert not (tmp_path / JOURNAL_NAME).exists()

    def test_fail_append_from_ordinal_is_persistent(self, tmp_path):
        plan = FaultPlan.parse("fail-append:2",
                               state_dir=str(tmp_path / "state"))
        journal = Journal(tmp_path / JOURNAL_NAME, worker="w", faults=plan)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            outcomes = [journal.append("done", cell=i)[1] for i in range(4)]
        assert outcomes == [True, True, False, False]
        assert len(replay_journal(tmp_path / JOURNAL_NAME).records) == 2

    def test_real_oserror_degrades_identically(self, tmp_path):
        journal = Journal(tmp_path / "no-such-dir" / JOURNAL_NAME,
                          worker="w")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            record, persisted = journal.append("done", cell=0)
        assert not persisted and journal.append_errors == 1


class TestJournalFaultHooks:
    def test_torn_tail_fault_tears_the_addressed_record(self, tmp_path):
        plan = FaultPlan.parse("torn-tail:1",
                               state_dir=str(tmp_path / "state"))
        journal = Journal(tmp_path / JOURNAL_NAME, worker="w", faults=plan)
        journal.append("done", cell=0, fingerprint="fp0")
        journal.append("done", cell=1, fingerprint="fp1")
        replay = replay_journal(tmp_path / JOURNAL_NAME)
        assert replay.torn_tail
        assert [r["cell"] for r in replay.records] == [0]
        # "Once" semantics: a restarted worker replaying the same ordinal
        # does not tear again.
        journal2 = Journal(tmp_path / JOURNAL_NAME, worker="w", faults=plan)
        journal2.append("done", cell=1, fingerprint="fp1")
        journal2.append("done", cell=2, fingerprint="fp2")
        # The torn half-line has no newline, so the next append glues to
        # it: that merged line is corrupt, later records are intact —
        # exactly the damage replay is built to absorb.
        final = replay_journal(tmp_path / JOURNAL_NAME)
        assert [r["cell"] for r in final.records] == [0, 2]
        assert final.corrupt_records == 1

    def test_corrupt_journal_fault_is_caught_by_replay(self, tmp_path):
        plan = FaultPlan.parse("corrupt-journal:0",
                               state_dir=str(tmp_path / "state"))
        journal = Journal(tmp_path / JOURNAL_NAME, worker="w", faults=plan)
        journal.append("done", cell=0, fingerprint="fp0")
        journal.append("done", cell=1, fingerprint="fp1")
        replay = replay_journal(tmp_path / JOURNAL_NAME)
        assert replay.corrupt_records == 1
        assert [r["cell"] for r in replay.records] == [1]


class TestSnapshots:
    CELLS = {0: {"status": "done", "cycles": 100, "ipc": 1.5},
             3: {"status": "failed", "attempts": 2, "error": "boom"}}

    def test_round_trip(self, tmp_path):
        assert write_snapshot(tmp_path, "digest-a", self.CELLS)
        assert load_snapshot(tmp_path, "digest-a") == self.CELLS

    def test_wrong_digest_is_quarantined(self, tmp_path):
        write_snapshot(tmp_path, "digest-a", self.CELLS)
        assert load_snapshot(tmp_path, "digest-b") == {}
        assert (tmp_path / (SNAPSHOT_NAME + ".corrupt")).exists()

    def test_corrupt_snapshot_is_quarantined_not_fatal(self, tmp_path):
        (tmp_path / SNAPSHOT_NAME).write_text("{never finished")
        assert load_snapshot(tmp_path, "digest-a") == {}
        assert (tmp_path / (SNAPSHOT_NAME + ".corrupt")).exists()

    def test_unwritable_directory_returns_false(self, tmp_path):
        if hasattr(os, "geteuid") and os.geteuid() == 0:
            pytest.skip("permissions are not enforced for root")
        target = tmp_path / "ro"
        target.mkdir()
        os.chmod(target, 0o500)
        try:
            assert write_snapshot(target, "d", self.CELLS) is False
        finally:
            os.chmod(target, 0o700)
