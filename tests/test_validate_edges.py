"""Edge-case coverage for the validation layer.

Three under-tested surfaces, per ISSUE 5's satellite list: run-result
invariant violations (``harness/validate.py``), unknown scheduler names
and out-of-range config fields (the paths ``validate_run``'s callers go
through), and conflicting/invalid CLI flag combinations.
"""

import copy

import pytest

from repro.harness.cli import main as exp_main
from repro.harness.jobs import (JobError, SimJob, build_warp_scheduler,
                                validate_policy, validate_warp)
from repro.harness.runner import simulate
from repro.harness.validate import RunValidationError, validate_run
from repro.sim.config import GPUConfig
from repro.verify.cli import main as verify_main
from repro.workloads.suite import make_kernel

SMALL = GPUConfig.small()


@pytest.fixture(scope="module")
def clean_result():
    return simulate(make_kernel("kmeans", scale=0.05), config=SMALL)


def _tampered(result):
    return copy.deepcopy(result)


# --------------------------------------------------------------------------- #
# validate_run
# --------------------------------------------------------------------------- #

class TestValidateRunEdges:
    def test_clean_run_passes(self, clean_result):
        validate_run(clean_result)

    def test_zero_cycles_rejected(self, clean_result):
        bad = _tampered(clean_result)
        bad.cycles = 0
        with pytest.raises(RunValidationError, match="no cycles"):
            validate_run(bad)

    def test_per_sm_sum_mismatch(self, clean_result):
        bad = _tampered(clean_result)
        bad.issued_by_sm[0] += 1
        with pytest.raises(RunValidationError, match="per-SM"):
            validate_run(bad)

    def test_unfinished_kernel_rejected(self, clean_result):
        bad = _tampered(clean_result)
        next(iter(bad.kernels.values())).finish_cycle = None
        with pytest.raises(RunValidationError, match="unfinished"):
            validate_run(bad)

    def test_per_kernel_sum_mismatch(self, clean_result):
        bad = _tampered(clean_result)
        next(iter(bad.kernels.values())).instructions += 1
        with pytest.raises(RunValidationError, match="per-kernel"):
            validate_run(bad)

    def test_negative_wait_integral_rejected(self, clean_result):
        bad = _tampered(clean_result)
        next(iter(bad.kernels.values())).mem_wait = -1
        with pytest.raises(RunValidationError, match="negative mem_wait"):
            validate_run(bad)

    def test_cache_counter_imbalance(self, clean_result):
        bad = _tampered(clean_result)
        bad.l1.hits += 1
        with pytest.raises(RunValidationError,
                           match="hits \\+ misses \\+ merges"):
            validate_run(bad)

    def test_demand_conservation_l1_l2(self, clean_result):
        bad = _tampered(clean_result)
        bad.l2.accesses += 1
        with pytest.raises(RunValidationError, match="L2"):
            validate_run(bad)

    def test_dram_read_conservation(self, clean_result):
        bad = _tampered(clean_result)
        bad.dram.reads += 1
        with pytest.raises(RunValidationError, match="DRAM"):
            validate_run(bad)


# --------------------------------------------------------------------------- #
# unknown scheduler names
# --------------------------------------------------------------------------- #

class TestUnknownSchedulers:
    def test_unknown_warp_name(self):
        with pytest.raises(JobError, match="unknown warp"):
            validate_warp("fifo")

    def test_malformed_swl_tuple(self):
        with pytest.raises(JobError, match="swl"):
            validate_warp(("swl", "eight"))

    def test_unknown_policy_kind(self):
        with pytest.raises(JobError, match="unknown policy"):
            validate_policy(("round-robin-2",))

    def test_wrong_policy_arity(self):
        with pytest.raises(JobError, match="argument"):
            validate_policy(("bcs",))   # bcs needs (granularity, limit)

    def test_job_constructor_rejects_unknown_warp(self):
        with pytest.raises(JobError):
            SimJob(names=("kmeans",), warp="fifo", config=SMALL)

    def test_build_warp_scheduler_unknown_factory(self):
        with pytest.raises((JobError, ValueError, KeyError)):
            build_warp_scheduler("fifo")

    def test_unknown_benchmark_name(self):
        with pytest.raises(JobError, match="unknown benchmark"):
            SimJob(names=("matmul-9000",), config=SMALL)


# --------------------------------------------------------------------------- #
# out-of-range config fields
# --------------------------------------------------------------------------- #

class TestConfigRanges:
    @pytest.mark.parametrize("field", ["num_sms", "max_ctas_per_sm",
                                       "issue_width", "l1_mshr_entries",
                                       "dram_channels"])
    def test_zero_rejected_for_required_positive_fields(self, field):
        with pytest.raises(ValueError):
            GPUConfig(**{field: 0})

    def test_icnt_bw_zero_is_allowed(self):
        # Explicitly zero-OK: models an unlimited interconnect.
        GPUConfig(icnt_bw_per_direction=0)

    def test_max_warps_below_max_ctas_rejected(self):
        with pytest.raises(ValueError):
            GPUConfig(max_ctas_per_sm=8, max_warps_per_sm=4)

    def test_issue_width_above_max_warps_rejected(self):
        with pytest.raises(ValueError):
            GPUConfig(issue_width=64, max_warps_per_sm=48)

    def test_indivisible_cache_geometry_rejected(self):
        with pytest.raises(ValueError):
            GPUConfig(l1_size=1000)   # not divisible into lines/sets


# --------------------------------------------------------------------------- #
# conflicting / invalid CLI flag combinations
# --------------------------------------------------------------------------- #

class TestCliFlagConflicts:
    def test_negative_jobs_rejected(self, capsys):
        assert exp_main(["e5", "--jobs", "-1"]) == 2

    def test_zero_checkpoint_interval_rejected(self, capsys):
        assert exp_main(["e5", "--checkpoint-interval", "0"]) == 2

    def test_fail_fast_keep_going_last_wins(self, capsys):
        # Not an error: the flags negate each other, last one wins.
        assert exp_main(["e5", "--scale", "0.02", "--no-cache",
                         "--fail-fast", "--keep-going"]) == 0

    def test_clean_state_supersedes_clear_cache(self, tmp_path, capsys,
                                                monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert exp_main(["--clean-state", "--clear-cache"]) == 0
        err = capsys.readouterr().err
        assert "checkpoints cleared" in err
        assert "warning" not in err

    def test_clear_cache_warns_about_leftover_checkpoints(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        ckpt_dir = tmp_path / ".repro-checkpoints"
        ckpt_dir.mkdir()
        (ckpt_dir / "deadbeef.000000001000.ckpt").write_bytes(b"x")
        assert exp_main(["--clear-cache"]) == 0
        assert "checkpoint file(s) remain" in capsys.readouterr().err

    def test_verify_zero_cases_rejected(self, capsys):
        assert verify_main(["fuzz", "--cases", "0"]) == 2

    def test_verify_zero_window_rejected(self, capsys):
        assert verify_main(["refmodel", "--window", "0"]) == 2

    def test_verify_all_zero_cases_rejected(self, capsys):
        assert verify_main(["all", "--cases", "0"]) == 2
