"""Unit tests for the coalescer."""

import pytest

from repro.mem.coalescer import coalesce, transactions_per_access, warp_access


class TestCoalesce:
    def test_same_line_collapses(self):
        assert coalesce([0, 4, 8, 127]) == (0,)

    def test_distinct_lines_preserved_in_first_touch_order(self):
        assert coalesce([300, 10, 200, 15]) == (2, 0, 1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            coalesce([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            coalesce([-4])


class TestWarpAccess:
    def test_unit_stride_four_byte_is_one_line(self):
        # 32 lanes x 4B = 128B: the classic fully coalesced access.
        assert warp_access(0, 1) == (0,)

    def test_unit_stride_unaligned_spans_two_lines(self):
        assert warp_access(64, 1) == (0, 1)

    def test_stride_32_hits_one_line_per_lane(self):
        assert len(warp_access(0, 32)) == 32

    def test_stride_two_spans_two_lines(self):
        assert warp_access(0, 2) == (0, 1)

    def test_partial_warp(self):
        assert warp_access(0, 1, lanes=8) == (0,)

    def test_lane_bounds(self):
        with pytest.raises(ValueError):
            warp_access(0, 1, lanes=0)
        with pytest.raises(ValueError):
            warp_access(0, 1, lanes=33)

    def test_negative_stride_rejected(self):
        with pytest.raises(ValueError):
            warp_access(0, -1)


class TestTransactionCount:
    @pytest.mark.parametrize("stride,expected", [(1, 1), (2, 2), (4, 4),
                                                 (8, 8), (32, 32)])
    def test_transactions_scale_with_stride(self, stride, expected):
        assert transactions_per_access(stride) == expected
