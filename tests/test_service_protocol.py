"""Tests for the NDJSON service wire protocol.

Framing and job-id units first; then a wire-fuzz section that feeds a
*live* daemon truncated, oversized, garbage and duplicate-id frames
over raw sockets.  The contract under test: malformed input always
yields a typed error frame (or a clean close for unresyncable streams),
and no input sequence kills the daemon — the class-scoped daemon
survives every test in order and still drains cleanly at teardown.
"""

import asyncio
import io
import json
import socket
import threading
import time

import pytest

from repro.harness.exit_codes import EXIT_OK
from repro.harness.jobs import SimJob
from repro.service.client import ServiceClient
from repro.service.daemon import SchedulerDaemon
from repro.service.protocol import (DONE, MAX_FRAME_BYTES, ProtocolError,
                                    decode_frame, encode_frame,
                                    error_response, job_id)
from repro.sim.config import GPUConfig


class TestFraming:
    def test_round_trip(self):
        frame = {"op": "submit", "id": "ab:0", "job": {"scale": 0.5}}
        line = encode_frame(frame)
        assert line.endswith(b"\n")
        assert decode_frame(line) == frame

    def test_encoding_is_canonical(self):
        # Key order must not matter on the wire (frames are hashable
        # test fixtures and diffable log lines).
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b
        assert b"\n" not in a[:-1]

    def test_unparseable_frame_raises(self):
        with pytest.raises(ProtocolError, match="unparseable"):
            decode_frame(b"{torn off mid-")

    def test_non_object_frame_raises(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(b"[1, 2, 3]\n")

    def test_oversized_frame_rejected_without_parsing(self):
        line = b'{"op": "' + b"x" * MAX_FRAME_BYTES + b'"}\n'
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(line)

    def test_error_response_shape(self):
        response = error_response("submit", "bad job payload")
        assert response == {"ok": False, "op": "submit",
                            "error": "bad job payload"}
        assert error_response(None, "x")["op"] == "?"
        # Error responses must themselves be encodable frames.
        assert json.loads(encode_frame(response))["ok"] is False


class TestJobIds:
    def test_digest_prefix_and_index(self):
        assert job_id("abcdef0123456789", 4) == "abcdef012345:4"

    def test_distinct_designs_never_collide(self):
        assert job_id("a" * 64, 0) != job_id("b" * 64, 0)

    def test_stable_for_idempotent_resubmission(self):
        assert job_id("d" * 64, 7) == job_id("d" * 64, 7)


# --------------------------------------------------------------------------- #
# wire fuzz against a live daemon
# --------------------------------------------------------------------------- #

@pytest.fixture(scope="class")
def live_daemon(tmp_path_factory):
    """One real daemon shared by every fuzz test: surviving the whole
    torture sequence *and* draining cleanly afterwards is the point."""
    root = tmp_path_factory.mktemp("proto-fuzz")
    daemon = SchedulerDaemon(state_dir=root / "state",
                             cache_dir=root / "cache",
                             workers=1, drain_grace=15.0, log=io.StringIO())
    outcome = {}

    def runner():
        outcome["exit"] = asyncio.run(daemon.serve())

    thread = threading.Thread(target=runner, daemon=True,
                              name="fuzz-repro-serve")
    thread.start()
    deadline = time.monotonic() + 15.0
    while not daemon.socket_path.exists():
        assert time.monotonic() < deadline, "daemon never bound its socket"
        time.sleep(0.02)
    yield daemon
    with ServiceClient(daemon.socket_path) as client:
        client.drain()
    thread.join(timeout=30.0)
    assert not thread.is_alive(), "daemon did not drain after the fuzzing"
    assert outcome.get("exit") == EXIT_OK


def _raw(daemon):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(15.0)
    sock.connect(str(daemon.socket_path))
    return sock


def _exchange(sock, payload: bytes) -> dict:
    sock.sendall(payload)
    line = sock.makefile("rb").readline()
    assert line, "daemon closed the connection without answering"
    return json.loads(line)


def _alive(daemon) -> bool:
    with ServiceClient(daemon.socket_path) as client:
        return bool(client.status().get("ok"))


class TestDaemonWireRobustness:
    def test_binary_garbage_gets_a_typed_error(self, live_daemon):
        with _raw(live_daemon) as sock:
            fh = sock.makefile("rb")
            sock.sendall(b"\x00\xfe\xffnot a frame at all\n")
            response = json.loads(fh.readline())
            assert response["ok"] is False
            assert "unparseable" in response["error"]
            # Same connection, next line: the stream resynced on the
            # newline and valid frames still work.
            sock.sendall(encode_frame({"op": "status"}))
            assert json.loads(fh.readline())["ok"] is True
        assert _alive(live_daemon)

    @pytest.mark.parametrize("payload,needle", [
        (b"[1, 2, 3]\n", "JSON object"),
        (b"null\n", "JSON object"),
        (b'"just a string"\n', "JSON object"),
        (b"\n", "unparseable"),
        (b'{"op": "explode"}\n', "unknown op"),
        (b'{"no_op_key": 1}\n', "unknown op"),
        (b'{"op": 42}\n', "unknown op"),
    ])
    def test_malformed_frames_get_typed_errors(self, live_daemon,
                                               payload, needle):
        with _raw(live_daemon) as sock:
            response = _exchange(sock, payload)
            assert response["ok"] is False
            assert needle in response["error"]
        assert _alive(live_daemon)

    def test_oversized_frame_within_stream_limit_is_refused(self,
                                                            live_daemon):
        # Between MAX_FRAME_BYTES and the stream limit: the line is
        # readable, decode refuses it, and the connection stays usable.
        pad = b"x" * (MAX_FRAME_BYTES + 100)
        with _raw(live_daemon) as sock:
            fh = sock.makefile("rb")
            sock.sendall(b'{"pad": "' + pad + b'"}\n')
            response = json.loads(fh.readline())
            assert response["ok"] is False and "exceeds" in response["error"]
            sock.sendall(encode_frame({"op": "status"}))
            assert json.loads(fh.readline())["ok"] is True
        assert _alive(live_daemon)

    def test_frame_beyond_stream_limit_closes_the_connection(self,
                                                             live_daemon):
        # Past the asyncio stream limit the line cannot even be
        # buffered; the daemon answers a typed refusal (when the bytes
        # still flow) and closes — it must never die.
        pad = b"y" * (MAX_FRAME_BYTES + 64 * 1024)
        with _raw(live_daemon) as sock:
            try:
                sock.sendall(b'{"pad": "' + pad + b'"}\n')
            except (BrokenPipeError, ConnectionResetError):
                pass   # the daemon already slammed the door mid-send
            fh = sock.makefile("rb")
            try:
                line = fh.readline()
                rest = fh.readline() if line else b""
            except (ConnectionResetError, OSError):
                line, rest = b"", b""   # reset: the close raced our read
            if line:
                response = json.loads(line)
                assert response["ok"] is False
                assert "exceeds" in response["error"]
                assert rest == b""      # and then it closed
        assert _alive(live_daemon)

    def test_truncated_frame_then_disconnect_is_harmless(self, live_daemon):
        with _raw(live_daemon) as sock:
            sock.sendall(b'{"op": "stat')   # no newline, then vanish
        assert _alive(live_daemon)

    def test_half_frame_does_not_block_other_connections(self, live_daemon):
        frame = encode_frame({"op": "status"})
        half = len(frame) // 2
        with _raw(live_daemon) as slow, _raw(live_daemon) as fast:
            slow.sendall(frame[:half])
            # The stalled connection must not head-of-line-block the
            # daemon: a concurrent client gets served immediately.
            assert _exchange(fast, frame)["ok"] is True
            slow.sendall(frame[half:])
            assert json.loads(slow.makefile("rb").readline())["ok"] is True

    def test_duplicate_ids_across_connections_stay_idempotent(
            self, live_daemon):
        job = SimJob(names=("kmeans",), scale=0.02, seed=99,
                     config=GPUConfig.small())
        with ServiceClient(live_daemon.socket_path) as one, \
                ServiceClient(live_daemon.socket_path) as two:
            first = one.submit("fuzz:dup", job.to_payload(), tenant="a")
            assert first["ok"]
            # The same id from another connection is answered from the
            # job table — acknowledged, never enqueued a second time.
            second = two.submit("fuzz:dup", job.to_payload(), tenant="b")
            assert second["ok"] and second.get("duplicate")
            done = one.watch(["fuzz:dup"])["fuzz:dup"]
            assert done["state"] == DONE
            again = two.submit("fuzz:dup", job.to_payload(), tenant="b")
            assert again.get("duplicate") and again["state"] == DONE
            assert again["cycles"] == done["cycles"]

    def test_watch_with_bad_ids_is_refused_not_fatal(self, live_daemon):
        with _raw(live_daemon) as sock:
            response = _exchange(sock, encode_frame(
                {"op": "watch", "ids": "not-a-list"}))
            assert response["ok"] is False
            assert "list of string ids" in response["error"]
        assert _alive(live_daemon)
