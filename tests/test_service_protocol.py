"""Unit tests for the NDJSON service wire protocol."""

import json

import pytest

from repro.service.protocol import (MAX_FRAME_BYTES, ProtocolError,
                                    decode_frame, encode_frame,
                                    error_response, job_id)


class TestFraming:
    def test_round_trip(self):
        frame = {"op": "submit", "id": "ab:0", "job": {"scale": 0.5}}
        line = encode_frame(frame)
        assert line.endswith(b"\n")
        assert decode_frame(line) == frame

    def test_encoding_is_canonical(self):
        # Key order must not matter on the wire (frames are hashable
        # test fixtures and diffable log lines).
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b
        assert b"\n" not in a[:-1]

    def test_unparseable_frame_raises(self):
        with pytest.raises(ProtocolError, match="unparseable"):
            decode_frame(b"{torn off mid-")

    def test_non_object_frame_raises(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(b"[1, 2, 3]\n")

    def test_oversized_frame_rejected_without_parsing(self):
        line = b'{"op": "' + b"x" * MAX_FRAME_BYTES + b'"}\n'
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(line)

    def test_error_response_shape(self):
        response = error_response("submit", "bad job payload")
        assert response == {"ok": False, "op": "submit",
                            "error": "bad job payload"}
        assert error_response(None, "x")["op"] == "?"
        # Error responses must themselves be encodable frames.
        assert json.loads(encode_frame(response))["ok"] is False


class TestJobIds:
    def test_digest_prefix_and_index(self):
        assert job_id("abcdef0123456789", 4) == "abcdef012345:4"

    def test_distinct_designs_never_collide(self):
        assert job_id("a" * 64, 0) != job_id("b" * 64, 0)

    def test_stable_for_idempotent_resubmission(self):
        assert job_id("d" * 64, 7) == job_id("d" * 64, 7)
