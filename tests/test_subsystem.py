"""Unit tests for the L2 + DRAM memory subsystem (with a stub SM)."""

import pytest

from repro.mem.subsystem import MemorySubsystem
from repro.sim.config import GPUConfig
from repro.sim.events import EventQueue


class StubSM:
    """Collects memory responses like an SM would."""

    def __init__(self, name="sm"):
        self.name = name
        self.responses = []

    def mem_response(self, now, line):
        self.responses.append((now, line))


@pytest.fixture
def setup():
    config = GPUConfig.small()
    events = EventQueue()
    subsystem = MemorySubsystem(config, events)
    return config, events, subsystem


def drain(events):
    while events:
        events.run_due(events.next_time())


class TestLoadPath:
    def test_load_miss_reaches_dram_and_returns(self, setup):
        config, events, subsystem = setup
        sm = StubSM()
        subsystem.load(sm, 0, now=0)
        drain(events)
        assert len(sm.responses) == 1
        now, line = sm.responses[0]
        assert line == 0
        # At least 2x interconnect + L2 + DRAM row miss + burst.
        floor = (2 * config.icnt_latency + config.l2_latency
                 + config.dram_t_row_miss + config.dram_t_burst)
        assert now >= floor
        assert subsystem.dram.stats.reads == 1

    def test_l2_hit_skips_dram(self, setup):
        config, events, subsystem = setup
        sm = StubSM()
        subsystem.load(sm, 0, now=0)
        drain(events)
        first_time = sm.responses[0][0]
        subsystem.load(sm, 0, now=first_time)
        drain(events)
        assert subsystem.dram.stats.reads == 1   # still one DRAM read
        second_latency = sm.responses[1][0] - first_time
        assert second_latency == 2 * config.icnt_latency + config.l2_latency

    def test_cross_sm_requests_merge_at_l2(self, setup):
        config, events, subsystem = setup
        sm_a, sm_b = StubSM("a"), StubSM("b")
        subsystem.load(sm_a, 0, now=0)
        subsystem.load(sm_b, 0, now=0)
        drain(events)
        assert subsystem.dram.stats.reads == 1
        assert len(sm_a.responses) == 1
        assert len(sm_b.responses) == 1

    def test_requests_to_distinct_banks_proceed_independently(self, setup):
        config, events, subsystem = setup
        sm = StubSM()
        subsystem.load(sm, 0, now=0)   # bank 0
        subsystem.load(sm, 1, now=0)   # bank 1
        drain(events)
        assert len(sm.responses) == 2


class TestL2MSHRBackpressure:
    def test_mshr_exhaustion_queues_and_drains(self, setup):
        config, events, subsystem = setup
        sm = StubSM()
        num_banks = config.l2_num_banks
        overload = config.l2_mshr_entries + 5
        # All to bank 0: lines are multiples of num_banks.
        for i in range(overload):
            subsystem.load(sm, i * num_banks, now=0)
        # After the interconnect delivers the requests, 5 of them find the
        # bank MSHR full and wait in the bank input queue.
        events.run_due(config.icnt_latency)
        assert subsystem.queued_requests == 5
        drain(events)
        assert subsystem.queued_requests == 0
        assert len(sm.responses) == overload


class TestStorePath:
    def test_store_miss_writes_to_dram(self, setup):
        config, events, subsystem = setup
        sm = StubSM()
        subsystem.store(sm, 0, now=0)
        drain(events)
        assert subsystem.dram.stats.writes == 1
        assert sm.responses == []   # stores never respond

    def test_store_hit_absorbed_by_l2(self, setup):
        config, events, subsystem = setup
        sm = StubSM()
        subsystem.load(sm, 0, now=0)
        drain(events)
        subsystem.store(sm, 0, now=sm.responses[0][0])
        drain(events)
        assert subsystem.dram.stats.writes == 0

    def test_store_counts_in_l2_stats(self, setup):
        config, events, subsystem = setup
        sm = StubSM()
        subsystem.store(sm, 0, now=0)
        drain(events)
        assert subsystem.l2_stats().write_accesses == 1


class TestAggregation:
    def test_l2_stats_aggregates_banks(self, setup):
        config, events, subsystem = setup
        sm = StubSM()
        for line in range(config.l2_num_banks):
            subsystem.load(sm, line, now=0)
        drain(events)
        total = subsystem.l2_stats()
        assert total.accesses == config.l2_num_banks
        assert total.misses == config.l2_num_banks
