"""Pinned workload characteristics: occupancy and trace geometry.

Unlike the timing goldens these do not run the simulator — they freeze the
*workload definitions* the evaluation depends on.  If a suite kernel's
resource appetite or program length changes, EXPERIMENTS.md is stale.
"""

import pytest

from repro.sim.config import GPUConfig
from repro.workloads.suite import CORE_SET, make_kernel

# name -> (occupancy on the Fermi-class default, warps_per_cta,
#          instructions in warp (0,0) at any scale)
PINNED = {
    "compute": (8, 6, 245),
    "blackscholes": (8, 6, 255),
    "matmul": (5, 8, 259),
    "lud": (2, 4, 290),
    "nw": (3, 2, 181),
    "streaming": (8, 6, 49),
    "backprop": (6, 8, 87),
    "kmeans": (8, 6, 217),
    "iindex": (8, 6, 169),
    "bfs": (8, 6, 161),
    "spmv": (7, 6, 73),
    "stencil": (6, 4, 179),
    "hotspot": (6, 4, 462),
    "pathfinder": (6, 4, 256),
    "srad": (6, 4, 371),
}


def test_pins_cover_exactly_the_core_set():
    assert set(PINNED) == set(CORE_SET)


@pytest.mark.parametrize("name", sorted(PINNED))
def test_pinned_characteristics(name):
    occupancy, warps, instructions = PINNED[name]
    kernel = make_kernel(name, scale=0.05)
    config = GPUConfig()
    assert kernel.max_ctas_per_sm(config) == occupancy, (
        f"{name}: occupancy changed — re-baseline EXPERIMENTS.md")
    assert kernel.warps_per_cta == warps
    assert len(kernel.build_warp_program(0, 0)) == instructions, (
        f"{name}: trace length changed — re-baseline EXPERIMENTS.md")
