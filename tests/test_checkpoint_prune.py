"""CheckpointStore pruning/quarantine accounting and its batch reporting.

Companion to ``tests/test_checkpoint.py`` (which covers resume
semantics): these tests pin the bookkeeping contract — quarantined
``*.corrupt`` files never count toward the keep-2 margin, are cleaned up
with their job, and worker-side quarantine counts reach the parent's
batch report (and so the ``repro-exp`` footer).
"""

from repro.harness.checkpoints import (KEEP_PER_JOB, CheckpointPlan,
                                       CheckpointStore)
from repro.harness.engine import run_batch
from repro.harness.jobs import SimJob
from repro.sim.checkpoint import CHECKPOINT_VERSION, Snapshot
from repro.sim.config import GPUConfig

SMALL = GPUConfig.small()
FP = "f" * 16   # fingerprint stand-in


def _snap(cycle):
    """A store-valid snapshot; the store never unpickles the payload, so
    fabricated bytes exercise the file bookkeeping without a real run."""
    return Snapshot(version=CHECKPOINT_VERSION, cycle=cycle,
                    kernels=("kmeans",), payload=b"\x00" * 64)


class TestPruneExcludesQuarantine:
    def test_keep2_counts_only_valid_checkpoints(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for cycle in (1000, 2000):
            assert store.put(FP, _snap(cycle))
        # Quarantine the newest, as a digest failure would.
        newest = store.path_for(FP, 2000)
        newest.rename(newest.with_suffix(".corrupt"))
        # A new checkpoint arrives: the runner-up (1000) must survive —
        # only .ckpt files count toward KEEP_PER_JOB.
        assert store.put(FP, _snap(3000))
        kept = sorted(p.name for p in tmp_path.glob(f"{FP}.*.ckpt"))
        assert len(kept) == KEEP_PER_JOB
        assert any("000000001000" in name for name in kept)
        assert (tmp_path / f"{FP}.000000002000.corrupt").exists()

    def test_newest_skips_and_quarantines_corrupt(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.put(FP, _snap(1000))
        assert store.put(FP, _snap(2000))
        store.path_for(FP, 2000).write_bytes(b"scribbled over")
        recovered = store.newest(FP)
        assert recovered is not None and recovered.cycle == 1000
        assert store.corrupt_entries == 1
        assert len(store.corrupt_strays()) == 1


class TestDiscardRemovesStrays:
    def test_discard_drops_corrupt_files_too(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.put(FP, _snap(1000))
        assert store.put(FP, _snap(2000))
        store.path_for(FP, 2000).write_bytes(b"junk")
        store.newest(FP)   # quarantines 2000
        removed = store.discard(FP)
        assert removed == 2   # the valid .ckpt + the .corrupt stray
        assert not list(tmp_path.iterdir())

    def test_discard_leaves_other_jobs_alone(self, tmp_path):
        store = CheckpointStore(tmp_path)
        other = "a" * 16
        assert store.put(FP, _snap(1000))
        assert store.put(other, _snap(1000))
        store.discard(FP)
        assert store.newest(other) is not None


class TestBatchReporting:
    def test_worker_quarantine_count_reaches_report(self, tmp_path):
        job = SimJob(names=("kmeans",), scale=0.05, config=SMALL)
        plan = CheckpointPlan(interval=10_000, root=str(tmp_path))
        store = plan.store()
        # Plant a corrupt "checkpoint" under this job's fingerprint: the
        # worker's resume probe will quarantine it.
        store.root.mkdir(parents=True, exist_ok=True)
        store.path_for(job.fingerprint(), 500).write_bytes(b"garbage")

        report = run_batch([job], cache=None, checkpoints=plan)
        assert report.count("ok") == 1
        assert report.checkpoint_corrupt == 1
        assert "1 corrupt checkpoint(s) quarantined" in report.summary_line()
        assert any(e["kind"] == "checkpoint.corrupt" for e in report.events)

    def test_clean_run_reports_zero(self, tmp_path):
        job = SimJob(names=("kmeans",), scale=0.05, config=SMALL)
        plan = CheckpointPlan(interval=10_000, root=str(tmp_path))
        report = run_batch([job], cache=None, checkpoints=plan)
        assert report.checkpoint_corrupt == 0
        assert "quarantined" not in report.summary_line()
