"""Tests for the SWL (static warp limiting) scheduler."""

import pytest

from repro.core.warp_schedulers import (SWLScheduler, swl_factory,
                                        warp_scheduler_factory)
from repro.harness.runner import simulate
from repro.sim.config import GPUConfig
from repro.workloads.suite import make_kernel

from helpers import alu_program, make_test_kernel


class TestConstruction:
    def test_registered(self):
        assert warp_scheduler_factory("swl") is SWLScheduler

    def test_limit_validated(self):
        with pytest.raises(ValueError):
            SWLScheduler(warp_limit=0)

    def test_factory_names_itself(self):
        factory = swl_factory(12)
        assert factory.name == "swl-12"
        assert factory().warp_limit == 12


class TestBehaviour:
    def test_all_work_completes_under_tight_limit(self, small_config):
        kernel = make_test_kernel(num_ctas=12, warps_per_cta=4)
        result = simulate(kernel, config=small_config,
                          warp_scheduler=swl_factory(2))
        assert result.instructions == 12 * 4 * len(alu_program())
        assert result.kernel("test").finish_cycle is not None

    def test_membership_never_exceeds_limit(self):
        from repro.core.cta_schedulers import RoundRobinCTAScheduler
        from repro.sim.gpu import GPU
        config = GPUConfig.small()
        kernel = make_test_kernel(num_ctas=8, warps_per_cta=4,
                                  regs_per_thread=0)
        gpu = GPU(config=config, warp_scheduler=swl_factory(3))
        gpu.run(RoundRobinCTAScheduler(kernel))
        for sm in gpu.sms:
            for scheduler in sm.schedulers:
                assert scheduler.member_count <= 3

    def test_tight_limit_serialises_compute(self, small_config):
        wide = simulate(make_test_kernel(num_ctas=8, warps_per_cta=4),
                        config=small_config, warp_scheduler=swl_factory(16))
        narrow = simulate(make_test_kernel(num_ctas=8, warps_per_cta=4),
                          config=small_config, warp_scheduler=swl_factory(1))
        assert narrow.cycles > wide.cycles

    def test_limit_helps_cache_thrashing_kernel(self):
        config = GPUConfig(num_sms=4)
        base = simulate(make_kernel("kmeans", scale=0.1), config=config)
        limited = simulate(make_kernel("kmeans", scale=0.1), config=config,
                           warp_scheduler=swl_factory(8))
        assert limited.cycles < base.cycles

    def test_instruction_count_invariant(self, small_config):
        a = simulate(make_test_kernel(num_ctas=6, warps_per_cta=4),
                     config=small_config, warp_scheduler=swl_factory(2))
        b = simulate(make_test_kernel(num_ctas=6, warps_per_cta=4),
                     config=small_config, warp_scheduler="gto")
        assert a.instructions == b.instructions
