"""Tests for the configuration-sweep utility."""

import pytest

from repro.harness.sweeps import config_sweep, occupancy_position
from repro.sim.config import GPUConfig


SMALL = GPUConfig.small()


class TestConfigSweep:
    def test_rows_per_value(self):
        table = config_sweep("kmeans", "l1_size", [4096, 8192],
                             base_config=SMALL, scale=0.03)
        assert len(table.rows) == 2
        assert table.column("l1_size") == [4096, 8192]

    def test_larger_l1_does_not_hurt(self):
        table = config_sweep("kmeans", "l1_size", [4096, 16384],
                             base_config=SMALL, scale=0.05)
        small_ipc, big_ipc = table.column("ipc_ipc")
        assert big_ipc >= small_ipc * 0.98

    def test_multiple_policies_and_best_column(self):
        table = config_sweep("kmeans", "l1_mshr_entries", [8],
                             base_config=SMALL, scale=0.03,
                             policies={"base": ("rr",),
                                       "limit1": ("static", 1)})
        assert "best_policy" in table.columns
        assert table.rows[0][-1] in ("base", "limit1")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            config_sweep("kmeans", "warp_drive", [1], base_config=SMALL)

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            config_sweep("kmeans", "l1_size", [], base_config=SMALL)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            config_sweep("kmeans", "l1_size", [4096], base_config=SMALL,
                         scale=0.03, policies={"x": ("bcs", 2)})

    def test_unknown_warp_scheduler_rejected(self):
        # Regression: the sweep used to hand the string straight to
        # simulate(), so a typo surfaced mid-sweep (or not at all) instead
        # of failing up front with the engine's uniform descriptor error.
        from repro.harness.jobs import JobError
        with pytest.raises(JobError):
            config_sweep("kmeans", "l1_size", [4096], base_config=SMALL,
                         scale=0.03, warp_scheduler="gtoo")

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            config_sweep("warp_drive", "l1_size", [4096], base_config=SMALL,
                         scale=0.03)


class TestOccupancyPosition:
    def test_reports_consistent_fields(self):
        info = occupancy_position("kmeans", config=SMALL, scale=0.05)
        assert 1 <= info["best"] <= info["occupancy"]
        assert info["best_over_max"] >= 1.0
