"""Tests for GPU run-loop edge cases: timeouts, deadlock detection, drain."""

import pytest

from repro.core.cta_schedulers import RoundRobinCTAScheduler
from repro.harness.runner import simulate
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPU, KernelRun, SimulationTimeout
from repro.sim.isa import exit_, load, store

from helpers import alu_program, make_test_kernel


class TestTimeout:
    def test_max_cycles_enforced(self):
        config = GPUConfig.small(max_cycles=10)
        kernel = make_test_kernel(num_ctas=4, warps_per_cta=4,
                                  builder=lambda c, w: alu_program(100))
        gpu = GPU(config=config)
        with pytest.raises(SimulationTimeout):
            gpu.run(RoundRobinCTAScheduler(kernel))


class TestDrain:
    def test_pending_stores_drain_after_completion(self, small_config):
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [store([0, 1, 2]), exit_()])
        result = simulate(kernel, config=small_config)
        # Write-through traffic reached DRAM even though the kernel ended
        # as soon as the LD/ST unit accepted the transactions.
        assert result.dram.writes == 3

    def test_drain_extends_cycle_count(self, small_config):
        loady = make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [load([0]), exit_()])
        storey = make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [store([0]), exit_()])
        load_result = simulate(loady, config=small_config)
        store_result = simulate(storey, config=small_config)
        # The store kernel's warp finishes immediately, but the run is not
        # "done" until the write drains; both runs see the DRAM round trip.
        assert store_result.cycles > 4
        assert load_result.cycles >= store_result.cycles


class TestKernelRun:
    def test_kernel_run_state_machine(self, small_config):
        kernel = make_test_kernel(num_ctas=3)
        run = KernelRun(kernel, kernel_id=0, config=small_config)
        assert run.pending and not run.done
        run.next_cta = 3
        assert not run.pending
        run.completed = 3
        assert run.done

    def test_repr_is_informative(self, small_config):
        run = KernelRun(make_test_kernel(), kernel_id=0, config=small_config)
        assert "test" in repr(run)

    def test_occupancy_precomputed(self, small_config):
        kernel = make_test_kernel(warps_per_cta=8, regs_per_thread=0)
        run = KernelRun(kernel, kernel_id=0, config=small_config)
        assert run.occupancy == kernel.max_ctas_per_sm(small_config)


class TestFastForward:
    def test_idle_skip_preserves_results(self):
        """The event fast-forward must not change timing: compare a config
        with long memory latencies (lots of idle skip) against a manual
        expectation."""
        config = GPUConfig.small(icnt_latency=100)
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [load([0]), exit_()])
        result = simulate(kernel, config=config)
        # Round trip: 2x icnt + L2 + DRAM row miss + burst, plus pipeline.
        floor = 2 * 100 + config.l2_latency + config.dram_t_row_miss
        assert result.cycles >= floor
