"""Tests for the DynCTA-style adaptive comparison scheduler."""

import pytest

from repro.core.dyncta import DynCTAScheduler
from repro.harness.runner import simulate
from repro.sim.config import GPUConfig
from repro.sim.isa import alu, exit_
from repro.workloads.suite import make_kernel

from helpers import make_test_kernel


class TestConstruction:
    def test_single_kernel_only(self):
        with pytest.raises(ValueError):
            DynCTAScheduler([make_test_kernel(name="a"),
                             make_test_kernel(name="b")])

    def test_window_validated(self):
        with pytest.raises(ValueError):
            DynCTAScheduler(make_test_kernel(), window=0)

    def test_watermarks_validated(self):
        with pytest.raises(ValueError):
            DynCTAScheduler(make_test_kernel(), low_water=0.8, high_water=0.5)


class TestBehaviour:
    def test_compute_kernel_keeps_quota_high(self, small_config):
        kernel = make_test_kernel(
            name="hot", num_ctas=24, warps_per_cta=2,
            builder=lambda c, w: [alu(2)] * 60 + [exit_()],
            regs_per_thread=0)
        scheduler = DynCTAScheduler(kernel, window=64)
        result = simulate(kernel, config=small_config,
                          cta_scheduler=scheduler)
        occupancy = small_config.max_ctas_per_sm
        assert all(q == occupancy for q in scheduler.quotas().values())
        assert result.kernel("hot").finish_cycle is not None

    def test_memory_kernel_throttles_down(self):
        config = GPUConfig(num_sms=2)
        kernel = make_kernel("kmeans", scale=0.05)
        scheduler = DynCTAScheduler(kernel, window=512)
        simulate(kernel, config=config, cta_scheduler=scheduler)
        assert scheduler.adjustments, "no quota adjustments happened"
        assert any(new < old for _, _, old, new in scheduler.adjustments)

    def test_quota_stays_in_bounds(self):
        config = GPUConfig(num_sms=2)
        kernel = make_kernel("kmeans", scale=0.05)
        occupancy = kernel.max_ctas_per_sm(config)
        scheduler = DynCTAScheduler(kernel, window=256)
        simulate(kernel, config=config, cta_scheduler=scheduler)
        for _, _, old, new in scheduler.adjustments:
            assert 1 <= new <= occupancy

    def test_all_work_completes(self, small_config):
        kernel = make_test_kernel(num_ctas=16)
        result = simulate(kernel, config=small_config,
                          cta_scheduler=DynCTAScheduler(kernel, window=128))
        assert result.kernel("test").finish_cycle is not None

    def test_limits_snapshot_reports_quotas(self, small_config):
        kernel = make_test_kernel(num_ctas=8)
        scheduler = DynCTAScheduler(kernel, window=128)
        result = simulate(kernel, config=small_config,
                          cta_scheduler=scheduler)
        assert set(result.cta_limits) == {0, 1}
        assert all(isinstance(v, int) for v in result.cta_limits.values())
