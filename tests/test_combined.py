"""Tests for the combined LCS+BCS scheduler."""

import pytest

from repro.core.combined import LCSBCSScheduler
from repro.harness.runner import simulate
from repro.sim.config import GPUConfig
from repro.workloads.suite import make_kernel

from helpers import make_test_kernel


class TestConstruction:
    def test_single_kernel_only(self):
        with pytest.raises(ValueError):
            LCSBCSScheduler([make_test_kernel(name="a"),
                             make_test_kernel(name="b")])

    def test_inherits_block_validation(self):
        with pytest.raises(ValueError):
            LCSBCSScheduler(make_test_kernel(), block_size=0)


class TestBehaviour:
    def test_run_completes_and_decides(self):
        config = GPUConfig(num_sms=4)
        kernel = make_kernel("stencil", scale=0.1)
        scheduler = LCSBCSScheduler(kernel)
        result = simulate(kernel, config=config, warp_scheduler="baws",
                          cta_scheduler=scheduler)
        assert result.kernel("stencil").finish_cycle is not None
        assert scheduler.decision is not None

    def test_limit_rounds_up_to_whole_blocks(self):
        config = GPUConfig(num_sms=4)
        kernel = make_kernel("kmeans", scale=0.1)
        scheduler = LCSBCSScheduler(kernel, block_size=2)
        result = simulate(kernel, config=config, warp_scheduler="baws",
                          cta_scheduler=scheduler)
        decision = scheduler.decision
        limits = {v for v in result.cta_limits.values() if v is not None}
        assert len(limits) == 1
        (limit,) = limits
        assert limit % 2 == 0 or limit == decision.occupancy
        assert limit >= decision.n_star

    def test_snapshot_before_decision_is_none(self):
        kernel = make_test_kernel()
        scheduler = LCSBCSScheduler(kernel)
        assert scheduler.limits_snapshot() == {}
