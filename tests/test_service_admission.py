"""Deterministic unit tests for the service admission layer.

Token buckets run on an injected clock, the fair-share queue and the
circuit breaker are plain data structures — nothing here sleeps, forks
or opens a socket.  The end-to-end behaviour (shed responses on the
wire, quarantine after real worker kills) lives in
``tests/test_service_daemon.py`` and the service chaos drill.
"""

import pytest

from repro.service.admission import (ADMIT_OK, ADMIT_PROBE, ADMIT_REFUSE,
                                     DEFAULT_BREAKER_COOLDOWN,
                                     CircuitBreaker, FairShareQueue,
                                     TokenBucket)


class TestTokenBucket:
    def test_burst_then_rate_limited(self):
        bucket = TokenBucket(rate=2.0, burst=3)
        now = 100.0
        assert [bucket.take(now) for _ in range(4)] == [True, True, True,
                                                        False]

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=1)
        assert bucket.take(10.0)
        assert not bucket.take(10.0)
        assert not bucket.take(10.25)      # only half a token back
        assert bucket.take(10.5)           # one full token at 2/s

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        bucket.take(0.0)
        # A long idle period still refills to the cap, not beyond.
        assert [bucket.take(1000.0) for _ in range(3)] == [True, True,
                                                           False]

    def test_retry_after_names_the_next_token(self):
        bucket = TokenBucket(rate=4.0, burst=1)
        assert bucket.take(0.0)
        assert bucket.retry_after(0.0) == pytest.approx(0.25)
        assert bucket.retry_after(0.25) == 0.0

    def test_clock_never_runs_backwards(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        assert bucket.take(50.0)
        # An earlier timestamp must not mint tokens or corrupt state.
        assert not bucket.take(10.0)
        assert not bucket.take(50.5)
        assert bucket.take(51.0)

    @pytest.mark.parametrize("rate,burst", [(0, 1), (-1.0, 1), (1.0, 0)])
    def test_bad_parameters_rejected(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=burst)


class TestFairShareQueue:
    def test_fifo_for_a_single_tenant(self):
        queue = FairShareQueue(depth=8)
        for item in ("a", "b", "c"):
            assert queue.push("t", item)
        assert [queue.pop() for _ in range(4)] == ["a", "b", "c", None]

    def test_round_robin_across_tenants(self):
        queue = FairShareQueue(depth=8)
        for item in ("a1", "a2", "a3"):
            queue.push("alice", item)
        queue.push("bob", "b1")
        # Bob's single job gets out before Alice's second: no
        # head-of-line blocking by the bigger tenant.
        assert [queue.pop() for _ in range(4)] == ["a1", "b1", "a2", "a3"]

    def test_depth_bound_sheds_pushes(self):
        queue = FairShareQueue(depth=2)
        assert queue.push("a", 1)
        assert queue.push("b", 2)
        assert not queue.push("a", 3)
        assert len(queue) == 2

    def test_force_push_bypasses_the_bound(self):
        # Requeues and restart recovery must never drop accepted work,
        # even when the admission gate is already refusing new jobs.
        queue = FairShareQueue(depth=1)
        assert queue.push("a", 1)
        assert not queue.push("a", 2)
        assert queue.push("a", 2, force=True)
        assert len(queue) == 2
        assert [queue.pop(), queue.pop()] == [1, 2]

    def test_pop_skips_drained_tenants(self):
        queue = FairShareQueue(depth=8)
        queue.push("a", 1)
        assert queue.pop() == 1
        assert queue.pop() is None
        queue.push("b", 2)
        assert queue.pop() == 2
        assert queue.tenants() == []

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            FairShareQueue(depth=0)


class TestCircuitBreaker:
    def test_opens_exactly_at_threshold(self):
        breaker = CircuitBreaker(threshold=3)
        assert not breaker.record_crash("fp")
        assert not breaker.record_crash("fp")
        assert not breaker.is_open("fp")
        assert breaker.record_crash("fp")      # True exactly once
        assert breaker.is_open("fp")
        assert not breaker.record_crash("fp")  # already open
        assert breaker.open_count() == 1

    def test_fingerprints_are_independent(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_crash("a")
        assert breaker.record_crash("a")
        assert breaker.is_open("a")
        assert not breaker.is_open("b")
        assert breaker.open_count() == 1

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)

    def test_default_cooldown_is_the_documented_knob(self):
        assert CircuitBreaker(threshold=3).cooldown \
            == DEFAULT_BREAKER_COOLDOWN

    @pytest.mark.parametrize("cooldown", [0, -1.0])
    def test_bad_cooldown_rejected(self, cooldown):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=1, cooldown=cooldown)


class TestCircuitBreakerHalfOpen:
    """The half-open state machine, driven on an injected clock."""

    def _open(self, cooldown=10.0):
        breaker = CircuitBreaker(threshold=2, cooldown=cooldown)
        assert breaker.admit("fp", now=0.0) == ADMIT_OK
        breaker.record_crash("fp", now=0.0)
        assert breaker.record_crash("fp", now=0.0)   # opens at threshold
        return breaker

    def test_cooldown_expiry_admits_exactly_one_probe(self):
        breaker = self._open(cooldown=10.0)
        assert breaker.admit("fp", now=5.0) == ADMIT_REFUSE
        assert breaker.admit("fp", now=10.0) == ADMIT_PROBE
        # While the probe is in flight everything else stays refused —
        # one canary, not a thundering herd of poison.
        assert breaker.admit("fp", now=11.0) == ADMIT_REFUSE
        assert breaker.admit("fp", now=300.0) == ADMIT_REFUSE

    def test_successful_probe_closes_the_circuit(self):
        breaker = self._open(cooldown=10.0)
        assert breaker.admit("fp", now=10.0) == ADMIT_PROBE
        assert breaker.record_success("fp")          # True: probe closed it
        assert not breaker.is_open("fp")
        assert breaker.admit("fp", now=10.5) == ADMIT_OK
        assert breaker.open_count() == 0
        # The crash history is forgiven with the close: re-opening
        # takes a full threshold's worth of fresh crashes.
        assert not breaker.record_crash("fp", now=11.0)

    def test_failed_probe_reopens_and_restarts_the_cooldown(self):
        breaker = self._open(cooldown=10.0)
        assert breaker.admit("fp", now=10.0) == ADMIT_PROBE
        assert breaker.record_crash("fp", now=12.0)  # True: re-opened
        assert breaker.admit("fp", now=21.0) == ADMIT_REFUSE  # 12+10 > 21
        assert breaker.admit("fp", now=22.0) == ADMIT_PROBE

    def test_none_cooldown_restores_permanent_quarantine(self):
        breaker = self._open(cooldown=None)
        assert breaker.admit("fp", now=1e9) == ADMIT_REFUSE
        assert breaker.is_open("fp")

    def test_success_on_a_closed_circuit_is_a_noop(self):
        breaker = CircuitBreaker(threshold=2, cooldown=10.0)
        assert not breaker.record_success("fp")

    def test_force_open_is_idempotent_and_respects_the_cooldown(self):
        # The gossip-sync path: a peer's quarantine opens the local
        # circuit with no local crash evidence.
        breaker = CircuitBreaker(threshold=3, cooldown=10.0)
        assert breaker.force_open("fp", crashes=7, now=0.0)
        assert not breaker.force_open("fp", crashes=2, now=1.0)
        assert breaker.is_open("fp")
        assert breaker.crashes["fp"] == 7            # the floor never drops
        assert breaker.admit("fp", now=5.0) == ADMIT_REFUSE
        assert breaker.admit("fp", now=10.0) == ADMIT_PROBE

    def test_force_open_cancels_an_inflight_probe(self):
        breaker = self._open(cooldown=10.0)
        assert breaker.admit("fp", now=10.0) == ADMIT_PROBE
        breaker.record_success("fp")                 # closed...
        assert breaker.force_open("fp", now=20.0)    # ...reopened by gossip
        assert breaker.admit("fp", now=25.0) == ADMIT_REFUSE
        assert breaker.admit("fp", now=30.0) == ADMIT_PROBE
