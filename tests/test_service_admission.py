"""Deterministic unit tests for the service admission layer.

Token buckets run on an injected clock, the fair-share queue and the
circuit breaker are plain data structures — nothing here sleeps, forks
or opens a socket.  The end-to-end behaviour (shed responses on the
wire, quarantine after real worker kills) lives in
``tests/test_service_daemon.py`` and the service chaos drill.
"""

import pytest

from repro.service.admission import (CircuitBreaker, FairShareQueue,
                                     TokenBucket)


class TestTokenBucket:
    def test_burst_then_rate_limited(self):
        bucket = TokenBucket(rate=2.0, burst=3)
        now = 100.0
        assert [bucket.take(now) for _ in range(4)] == [True, True, True,
                                                        False]

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=1)
        assert bucket.take(10.0)
        assert not bucket.take(10.0)
        assert not bucket.take(10.25)      # only half a token back
        assert bucket.take(10.5)           # one full token at 2/s

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        bucket.take(0.0)
        # A long idle period still refills to the cap, not beyond.
        assert [bucket.take(1000.0) for _ in range(3)] == [True, True,
                                                           False]

    def test_retry_after_names_the_next_token(self):
        bucket = TokenBucket(rate=4.0, burst=1)
        assert bucket.take(0.0)
        assert bucket.retry_after(0.0) == pytest.approx(0.25)
        assert bucket.retry_after(0.25) == 0.0

    def test_clock_never_runs_backwards(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        assert bucket.take(50.0)
        # An earlier timestamp must not mint tokens or corrupt state.
        assert not bucket.take(10.0)
        assert not bucket.take(50.5)
        assert bucket.take(51.0)

    @pytest.mark.parametrize("rate,burst", [(0, 1), (-1.0, 1), (1.0, 0)])
    def test_bad_parameters_rejected(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=burst)


class TestFairShareQueue:
    def test_fifo_for_a_single_tenant(self):
        queue = FairShareQueue(depth=8)
        for item in ("a", "b", "c"):
            assert queue.push("t", item)
        assert [queue.pop() for _ in range(4)] == ["a", "b", "c", None]

    def test_round_robin_across_tenants(self):
        queue = FairShareQueue(depth=8)
        for item in ("a1", "a2", "a3"):
            queue.push("alice", item)
        queue.push("bob", "b1")
        # Bob's single job gets out before Alice's second: no
        # head-of-line blocking by the bigger tenant.
        assert [queue.pop() for _ in range(4)] == ["a1", "b1", "a2", "a3"]

    def test_depth_bound_sheds_pushes(self):
        queue = FairShareQueue(depth=2)
        assert queue.push("a", 1)
        assert queue.push("b", 2)
        assert not queue.push("a", 3)
        assert len(queue) == 2

    def test_force_push_bypasses_the_bound(self):
        # Requeues and restart recovery must never drop accepted work,
        # even when the admission gate is already refusing new jobs.
        queue = FairShareQueue(depth=1)
        assert queue.push("a", 1)
        assert not queue.push("a", 2)
        assert queue.push("a", 2, force=True)
        assert len(queue) == 2
        assert [queue.pop(), queue.pop()] == [1, 2]

    def test_pop_skips_drained_tenants(self):
        queue = FairShareQueue(depth=8)
        queue.push("a", 1)
        assert queue.pop() == 1
        assert queue.pop() is None
        queue.push("b", 2)
        assert queue.pop() == 2
        assert queue.tenants() == []

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            FairShareQueue(depth=0)


class TestCircuitBreaker:
    def test_opens_exactly_at_threshold(self):
        breaker = CircuitBreaker(threshold=3)
        assert not breaker.record_crash("fp")
        assert not breaker.record_crash("fp")
        assert not breaker.is_open("fp")
        assert breaker.record_crash("fp")      # True exactly once
        assert breaker.is_open("fp")
        assert not breaker.record_crash("fp")  # already open
        assert breaker.open_count() == 1

    def test_fingerprints_are_independent(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_crash("a")
        assert breaker.record_crash("a")
        assert breaker.is_open("a")
        assert not breaker.is_open("b")
        assert breaker.open_count() == 1

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
