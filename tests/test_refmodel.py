"""Differential reference model tests.

The load-bearing property: on every in-scope (lrr/gto/baws) run, the
naive reference pipeline and the tuned hot path are *bitwise identical* —
including telemetry — and a deliberate one-line perturbation of the tuned
path is caught at its first divergent cycle window.
"""

import pytest

from repro.core import warp_schedulers as ws
from repro.harness.jobs import SimJob, build_policy
from repro.sim.config import GPUConfig
from repro.verify.refmodel import (REF_SUPPORTED, RefModelError,
                                   compare_runs, cross_check,
                                   crosscheck_matrix, reference_run,
                                   reference_simulate, supports)
from repro.workloads.suite import make_kernel

SMALL = GPUConfig.small()


def _job(warp="gto", policy=("rr",), **kwargs):
    return SimJob(names=("kmeans",), scale=0.05, warp=warp, policy=policy,
                  config=SMALL, **kwargs)


class TestScope:
    def test_supported_warps(self):
        assert REF_SUPPORTED == {"lrr", "gto", "baws"}
        assert supports(_job(warp="gto"))
        assert not supports(_job(warp="two-level"))
        assert not supports(SimJob(names=("kmeans",), warp=("swl", 8),
                                   config=SMALL))

    def test_out_of_scope_job_rejected(self):
        with pytest.raises(RefModelError, match="scope"):
            cross_check(_job(warp="two-level"))

    def test_bad_window_rejected(self):
        with pytest.raises(RefModelError, match="window"):
            cross_check(_job(), window=0)


class TestEquivalence:
    @pytest.mark.parametrize("warp", sorted(REF_SUPPORTED))
    @pytest.mark.parametrize("policy", [("rr",), ("lcs",), ("bcs", 2, None)])
    def test_tuned_equals_reference_bitwise(self, warp, policy):
        result = cross_check(_job(warp=warp, policy=policy), window=200)
        assert not result.diverged, result.summary()
        assert result.tuned_cycles == result.reference_cycles

    def test_reference_simulate_matches_execute(self):
        job = _job(timeline_window=250, trace=True)
        tuned = job.execute()
        reference = reference_simulate(job)
        assert tuned.to_dict() == reference.to_dict()

    def test_reference_run_accepts_live_kernels(self):
        kernel = make_kernel("kmeans", scale=0.05)
        result = reference_run([kernel], policy=("rr",), warp="gto",
                               config=SMALL)
        assert result.cycles > 0
        assert result.meta["warp_scheduler"] == "gto"

    def test_crosscheck_matrix_is_clean_on_current_tree(self):
        jobs = crosscheck_matrix()
        assert len(jobs) >= 10
        # Spot-check two cells here (the full sweep runs in CI via
        # `repro-verify refmodel`; every cell also ran during this PR).
        for job in (jobs[0], jobs[-1]):
            result = cross_check(job)
            assert not result.diverged, result.summary()


class TestPerturbationDrill:
    """The acceptance drill: flip the GTO issue-priority tiebreak in the
    *tuned* scheduler only and require the refmodel to localize it."""

    def test_tiebreak_flip_is_caught_at_first_window(self, monkeypatch):
        monkeypatch.setattr(
            ws.GTOScheduler, "priority_key",
            lambda self, warp: tuple(-x for x in warp.age_key))
        result = cross_check(_job(warp="gto"), window=200)
        assert result.diverged
        assert result.first_window is not None
        assert result.window_cycle == (result.first_window + 1) * 200
        assert result.window_diffs   # named column-level diffs
        summary = result.summary()
        assert "first divergent window" in summary
        assert "cross-check" in summary
        assert "SimJob" in result.repro   # minimized repro snippet
        record = result.to_record()
        assert record["kind"] == "refmodel"
        assert record["first_window"] == result.first_window

    def test_lrr_untouched_by_gto_perturbation(self, monkeypatch):
        monkeypatch.setattr(
            ws.GTOScheduler, "priority_key",
            lambda self, warp: tuple(-x for x in warp.age_key))
        result = cross_check(_job(warp="lrr"), window=200)
        assert not result.diverged


class TestCompareRuns:
    def test_identical_runs_do_not_diverge(self):
        kernel = make_kernel("kmeans", scale=0.05)
        a = reference_run([kernel], config=SMALL, timeline_window=200)
        b = reference_run([make_kernel("kmeans", scale=0.05)],
                          config=SMALL, timeline_window=200)
        result = compare_runs(a, b, window=200, label="self")
        assert not result.diverged

    def test_final_stat_divergence_without_windows(self):
        # Runs without timelines still diff on final stats.
        kernel = make_kernel("kmeans", scale=0.05)
        a = reference_run([kernel], config=SMALL)
        b = reference_run([make_kernel("kmeans", scale=0.06)], config=SMALL)
        result = compare_runs(a, b, window=200, label="mismatch")
        assert result.diverged
        assert result.stat_diffs


class TestReferencePolicyMeta:
    def test_cta_scheduler_meta_matches_tuned(self):
        job = _job(policy=("lcs",))
        tuned = job.execute()
        reference = reference_simulate(job)
        assert (reference.meta["cta_scheduler"]
                == tuned.meta["cta_scheduler"])
        assert reference.cta_limits == tuned.cta_limits

    def test_fresh_policy_objects_per_run(self):
        # build_policy must hand reference_run a fresh scheduler; reusing
        # one across runs is a known footgun the wrapper must not have.
        kernels = [make_kernel("kmeans", scale=0.05)]
        scheduler = build_policy(("rr",), kernels)
        assert scheduler is not build_policy(("rr",), kernels)
