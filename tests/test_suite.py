"""Tests for the benchmark suite definitions."""

import pytest

from repro.sim.config import GPUConfig
from repro.sim.isa import Op
from repro.workloads.programs import memory_intensity
from repro.workloads.suite import (CKE_PAIRS, LCS_SET, LOCALITY_SET,
                                   MOTIVATION_SET, SUITE, make_kernel,
                                   suite_names)


class TestRegistry:
    def test_suite_has_twenty_two_benchmarks(self):
        assert len(SUITE) == 22

    def test_core_set_is_fifteen(self):
        from repro.workloads.suite import CORE_SET
        assert len(CORE_SET) == 15
        assert all(name in SUITE for name in CORE_SET)

    def test_all_names_resolvable(self):
        for name in SUITE:
            kernel = make_kernel(name, scale=0.05)
            assert kernel.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_kernel("nope")

    def test_category_filter(self):
        assert set(suite_names("locality")) == set(LOCALITY_SET)
        with pytest.raises(ValueError):
            suite_names("bogus")

    def test_curated_sets_are_suite_members(self):
        for name in LCS_SET + LOCALITY_SET + MOTIVATION_SET:
            assert name in SUITE
        for mem_name, compute_name, mult in CKE_PAIRS:
            assert mem_name in SUITE
            assert compute_name in SUITE
            assert mult > 0


class TestKernelWellFormedness:
    @pytest.mark.parametrize("name", sorted(SUITE))
    def test_every_warp_program_valid_and_fits(self, name):
        config = GPUConfig()
        kernel = make_kernel(name, scale=0.05)
        assert kernel.max_ctas_per_sm(config) >= 1
        # Spot-check a few warps across the grid.
        for cta_id in {0, kernel.num_ctas // 2, kernel.num_ctas - 1}:
            for warp_idx in range(kernel.warps_per_cta):
                program = kernel.build_warp_program(cta_id, warp_idx)
                assert program[-1].op is Op.EXIT

    @pytest.mark.parametrize("name", sorted(SUITE))
    def test_programs_deterministic(self, name):
        a = make_kernel(name, scale=0.05).build_warp_program(1, 0)
        b = make_kernel(name, scale=0.05).build_warp_program(1, 0)
        assert a == b

    def test_scale_changes_grid_size_only(self):
        small = make_kernel("kmeans", scale=0.1)
        large = make_kernel("kmeans", scale=1.0)
        assert large.num_ctas > small.num_ctas
        assert small.warps_per_cta == large.warps_per_cta
        assert small.build_warp_program(0, 0) == large.build_warp_program(0, 0)

    def test_zero_scale_rejected(self):
        with pytest.raises(ValueError):
            make_kernel("kmeans", scale=0)


class TestSignatures:
    def test_compute_kernels_are_compute_bound(self):
        for name in ("compute", "blackscholes"):
            program = make_kernel(name, scale=0.05).build_warp_program(0, 0)
            assert memory_intensity(program) < 0.1

    def test_memory_kernels_are_memory_heavy(self):
        for name in ("kmeans", "streaming", "spmv"):
            program = make_kernel(name, scale=0.05).build_warp_program(0, 0)
            assert memory_intensity(program) > 0.2

    def test_locality_kernels_share_halo_lines(self):
        for name in LOCALITY_SET:
            kernel = make_kernel(name, scale=0.05)
            lines = set()
            for warp_idx in range(kernel.warps_per_cta):
                for inst in kernel.build_warp_program(0, warp_idx):
                    if inst.op is Op.LD_GLOBAL:
                        lines.update(inst.lines)
            neighbour = set()
            for warp_idx in range(kernel.warps_per_cta):
                for inst in kernel.build_warp_program(1, warp_idx):
                    if inst.op is Op.LD_GLOBAL:
                        neighbour.update(inst.lines)
            assert lines & neighbour, f"{name}: no inter-CTA sharing"

    def test_distinct_kernels_use_distinct_regions(self):
        seen: dict[str, set] = {}
        for name in ("kmeans", "streaming", "compute", "blackscholes"):
            kernel = make_kernel(name, scale=0.05)
            lines = set()
            for inst in kernel.build_warp_program(0, 0):
                lines.update(inst.lines)
            seen[name] = lines
        names = list(seen)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                assert not seen[a] & seen[b], f"{a} and {b} overlap"

    def test_barrier_counts_uniform_within_cta(self):
        # Barrier semantics require every warp of a CTA to hit the same
        # number of barriers.
        for name in sorted(SUITE):
            kernel = make_kernel(name, scale=0.05)
            counts = set()
            for warp_idx in range(kernel.warps_per_cta):
                program = kernel.build_warp_program(0, warp_idx)
                counts.add(sum(1 for inst in program
                               if inst.op is Op.BARRIER))
            assert len(counts) == 1, f"{name}: uneven barrier counts"
