"""Property-based tests of the whole simulator on random programs.

Hypothesis generates arbitrary (valid) warp traces, kernel geometries and
scheduler combinations; the simulator must always terminate, execute every
instruction exactly once, keep its statistics consistent, and be
deterministic.  These tests catch scheduler/queue edge cases no
hand-written scenario thinks of.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bcs import BCSScheduler
from repro.core.cta_schedulers import StaticLimitCTAScheduler
from repro.core.lcs import LCSScheduler
from repro.harness.runner import simulate
from repro.sim.config import GPUConfig
from repro.sim.isa import Instruction, Op
from repro.sim.kernel import Kernel

# --------------------------------------------------------------------------- #
# program strategies
# --------------------------------------------------------------------------- #

alu_instr = st.builds(
    lambda lat: Instruction(Op.ALU, latency=lat),
    st.integers(min_value=1, max_value=16))
shared_instr = st.builds(
    lambda lat: Instruction(Op.SHARED, latency=lat),
    st.integers(min_value=1, max_value=32))
load_instr = st.builds(
    lambda lines: Instruction(Op.LD_GLOBAL, lines=tuple(lines)),
    st.lists(st.integers(min_value=0, max_value=300), min_size=1,
             max_size=4, unique=True))
store_instr = st.builds(
    lambda lines: Instruction(Op.ST_GLOBAL, lines=tuple(lines)),
    st.lists(st.integers(min_value=0, max_value=300), min_size=1,
             max_size=2, unique=True))

body_instr = st.one_of(alu_instr, shared_instr, load_instr, store_instr)

# A per-CTA program shape: a list of segments; a barrier after each segment.
# Using the same shape for every warp of a CTA keeps barrier counts legal.
segments_strategy = st.lists(
    st.lists(body_instr, min_size=0, max_size=6),
    min_size=1, max_size=3)


def build_kernel(segments, num_ctas, warps_per_cta, with_barriers):
    def builder(cta_id, warp_idx):
        program = []
        for segment in segments:
            # Shift line addresses per warp so traffic varies.
            for inst in segment:
                if inst.is_memory:
                    lines = tuple((line + cta_id * 31 + warp_idx * 7) % 512
                                  for line in inst.lines)
                    lines = tuple(dict.fromkeys(lines))
                    program.append(Instruction(inst.op, lines=lines))
                else:
                    program.append(inst)
            if with_barriers:
                program.append(Instruction(Op.BARRIER))
        program.append(Instruction(Op.EXIT))
        return program

    return Kernel("prop", num_ctas, warps_per_cta, builder,
                  regs_per_thread=4)


def expected_instructions(kernel):
    return sum(len(kernel.build_warp_program(c, w))
               for c in range(kernel.num_ctas)
               for w in range(kernel.warps_per_cta))


kernel_params = st.tuples(
    segments_strategy,
    st.integers(min_value=1, max_value=6),    # num_ctas
    st.integers(min_value=1, max_value=4),    # warps_per_cta
    st.booleans(),                            # barriers
)


# --------------------------------------------------------------------------- #
# invariants
# --------------------------------------------------------------------------- #

@given(params=kernel_params)
@settings(max_examples=40, deadline=None)
def test_simulation_terminates_and_conserves_instructions(params):
    segments, num_ctas, warps, barriers = params
    kernel = build_kernel(segments, num_ctas, warps, barriers)
    result = simulate(kernel, config=GPUConfig.small())
    assert result.instructions == expected_instructions(
        build_kernel(segments, num_ctas, warps, barriers))
    assert result.kernel("prop").finish_cycle is not None


@given(params=kernel_params,
       warp_sched=st.sampled_from(["lrr", "gto", "baws", "two-level"]))
@settings(max_examples=30, deadline=None)
def test_scheduler_choice_never_changes_work(params, warp_sched):
    segments, num_ctas, warps, barriers = params
    kernel = build_kernel(segments, num_ctas, warps, barriers)
    result = simulate(kernel, config=GPUConfig.small(),
                      warp_scheduler=warp_sched)
    assert result.instructions == expected_instructions(
        build_kernel(segments, num_ctas, warps, barriers))


@given(params=kernel_params, limit=st.integers(min_value=1, max_value=4))
@settings(max_examples=25, deadline=None)
def test_static_limits_never_deadlock(params, limit):
    segments, num_ctas, warps, barriers = params
    kernel = build_kernel(segments, num_ctas, warps, barriers)
    scheduler = StaticLimitCTAScheduler(kernel, limit_per_sm=limit)
    result = simulate(kernel, config=GPUConfig.small(),
                      cta_scheduler=scheduler)
    assert result.kernel("prop").finish_cycle is not None


@given(params=kernel_params,
       block=st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_bcs_never_loses_ctas(params, block):
    segments, num_ctas, warps, barriers = params
    kernel = build_kernel(segments, num_ctas, warps, barriers)
    scheduler = BCSScheduler(kernel, block_size=block)
    result = simulate(kernel, config=GPUConfig.small(),
                      cta_scheduler=scheduler)
    assert result.instructions == expected_instructions(
        build_kernel(segments, num_ctas, warps, barriers))


@given(params=kernel_params)
@settings(max_examples=20, deadline=None)
def test_lcs_decision_and_completion(params):
    segments, num_ctas, warps, barriers = params
    kernel = build_kernel(segments, num_ctas, warps, barriers)
    scheduler = LCSScheduler(kernel)
    result = simulate(kernel, config=GPUConfig.small(),
                      cta_scheduler=scheduler)
    assert result.kernel("prop").finish_cycle is not None
    decision = scheduler.decision
    if decision is not None:
        assert 1 <= decision.n_star <= decision.occupancy


@given(params=kernel_params)
@settings(max_examples=15, deadline=None)
def test_bit_identical_reruns(params):
    segments, num_ctas, warps, barriers = params
    a = simulate(build_kernel(segments, num_ctas, warps, barriers),
                 config=GPUConfig.small())
    b = simulate(build_kernel(segments, num_ctas, warps, barriers),
                 config=GPUConfig.small())
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.l1.misses == b.l1.misses
    assert a.dram.reads == b.dram.reads


@given(params=kernel_params)
@settings(max_examples=20, deadline=None)
def test_memory_traffic_conservation_random(params):
    segments, num_ctas, warps, barriers = params
    kernel = build_kernel(segments, num_ctas, warps, barriers)
    result = simulate(kernel, config=GPUConfig.small())
    # Every L1 demand miss becomes exactly one L2 access; every L2 load
    # miss becomes one DRAM read; store counts match end to end.
    assert result.l2.accesses == result.l1.misses
    assert result.dram.reads == result.l2.misses
    assert result.l2.write_accesses == result.l1.write_accesses
