"""Tests for trace file export/import."""

import json

import pytest

from repro.harness.runner import simulate
from repro.sim.config import GPUConfig
from repro.sim.isa import Op
from repro.workloads.suite import make_kernel
from repro.workloads.tracefile import load_kernel_trace, save_kernel_trace

from helpers import make_test_kernel


class TestRoundTrip:
    def test_kernel_round_trips_exactly(self, tmp_path):
        kernel = make_kernel("stencil", scale=0.02)
        path = tmp_path / "stencil.json"
        save_kernel_trace(kernel, path)
        loaded = load_kernel_trace(path)
        assert loaded.name == kernel.name
        assert loaded.num_ctas == kernel.num_ctas
        assert loaded.warps_per_cta == kernel.warps_per_cta
        assert loaded.regs_per_thread == kernel.regs_per_thread
        assert loaded.shmem_per_cta == kernel.shmem_per_cta
        assert loaded.tags == kernel.tags
        for cta_id in range(kernel.num_ctas):
            for warp_idx in range(kernel.warps_per_cta):
                assert (loaded.build_warp_program(cta_id, warp_idx)
                        == kernel.build_warp_program(cta_id, warp_idx))

    def test_loaded_kernel_simulates_identically(self, tmp_path):
        config = GPUConfig.small()
        kernel = make_kernel("kmeans", scale=0.02)
        path = tmp_path / "kmeans.json"
        save_kernel_trace(kernel, path)
        original = simulate(make_kernel("kmeans", scale=0.02), config=config)
        loaded = simulate(load_kernel_trace(path), config=config)
        assert loaded.cycles == original.cycles
        assert loaded.instructions == original.instructions

    def test_all_opcodes_survive(self, tmp_path):
        from repro.workloads.programs import TraceBuilder

        def builder(cta_id, warp_idx):
            return (TraceBuilder().alu(1, latency=5).shared(1, latency=9)
                    .load([1, 2]).store([3]).barrier().build())

        kernel = make_test_kernel(num_ctas=1, warps_per_cta=1,
                                  builder=builder)
        path = tmp_path / "ops.json"
        save_kernel_trace(kernel, path)
        program = load_kernel_trace(path).build_warp_program(0, 0)
        assert [inst.op for inst in program] == [
            Op.ALU, Op.SHARED, Op.LD_GLOBAL, Op.ST_GLOBAL, Op.BARRIER,
            Op.EXIT]
        assert program[0].latency == 5
        assert program[1].latency == 9
        assert program[2].lines == (1, 2)


class TestValidation:
    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError):
            load_kernel_trace(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "repro-trace", "version": 99}))
        with pytest.raises(ValueError):
            load_kernel_trace(path)

    def test_missing_warp_rejected(self, tmp_path):
        kernel = make_test_kernel(num_ctas=2, warps_per_cta=1)
        path = tmp_path / "trunc.json"
        save_kernel_trace(kernel, path)
        document = json.loads(path.read_text())
        del document["warps"]["1/0"]
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError):
            load_kernel_trace(path)

    def test_unknown_opcode_rejected(self, tmp_path):
        kernel = make_test_kernel(num_ctas=1, warps_per_cta=1)
        path = tmp_path / "bad_op.json"
        save_kernel_trace(kernel, path)
        document = json.loads(path.read_text())
        document["warps"]["0/0"][0] = ["teleport"]
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError):
            load_kernel_trace(path)

    def test_invalid_program_rejected(self, tmp_path):
        kernel = make_test_kernel(num_ctas=1, warps_per_cta=1)
        path = tmp_path / "no_exit.json"
        save_kernel_trace(kernel, path)
        document = json.loads(path.read_text())
        document["warps"]["0/0"] = [["alu", 2]]   # missing exit
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError):
            load_kernel_trace(path)
