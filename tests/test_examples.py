"""Smoke tests: every example script runs end to end at tiny scale."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart(tmp_path):
    out = run_example("quickstart.py", "0.08")
    assert "LCS speedup over baseline" in out
    assert "N*" in out


def test_occupancy_sweep():
    out = run_example("occupancy_sweep.py", "kmeans", "0.08")
    assert "best static limit" in out
    assert "<- best" in out


def test_stencil_locality():
    out = run_example("stencil_locality.py", "stencil", "0.08")
    assert "BCS pairs + BAWS" in out
    assert "speedup" in out


def test_concurrent_kernels():
    out = run_example("concurrent_kernels.py", "0.08")
    assert "sequential" in out
    assert "mixed" in out


def test_custom_kernel():
    out = run_example("custom_kernel.py")
    assert "occupancy timeline" in out
    assert "programs identical: True" in out


def test_related_work():
    out = run_example("related_work.py", "kmeans", "0.08")
    assert "static oracle" in out
    assert "LCS" in out and "DynCTA" in out and "SWL" in out
