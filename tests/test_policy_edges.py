"""Edge-case tests across the scheduling policies: degenerate grids, extreme
limits, policy interactions the main suites don't reach."""


from repro.core.bcs import BCSScheduler
from repro.core.cke import MixedCKE, SequentialCKE, SMKEvenCKE, SpatialCKE
from repro.core.combined import LCSBCSScheduler
from repro.core.dyncta import DynCTAScheduler
from repro.core.lcs import LCSScheduler
from repro.harness.runner import simulate
from repro.harness.validate import validate_run
from repro.sim.config import GPUConfig
from repro.sim.isa import alu, exit_, load

from helpers import alu_program, make_test_kernel


class TestDegenerateGrids:
    def test_single_cta_grid_under_every_policy(self, small_config):
        builders = [
            lambda k: LCSScheduler(k),
            lambda k: BCSScheduler(k),
            lambda k: DynCTAScheduler(k, window=64),
            lambda k: LCSBCSScheduler(k),
        ]
        for build in builders:
            kernel = make_test_kernel(num_ctas=1, warps_per_cta=1)
            result = simulate(kernel, config=small_config,
                              cta_scheduler=build(kernel))
            assert result.kernel("test").finish_cycle is not None
            validate_run(result)

    def test_single_warp_single_instruction(self, small_config):
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [exit_()])
        result = simulate(kernel, config=small_config)
        assert result.instructions == 1

    def test_grid_smaller_than_sm_count(self):
        config = GPUConfig(num_sms=15)
        kernel = make_test_kernel(num_ctas=3, warps_per_cta=2)
        result = simulate(kernel, config=config)
        # Only 3 SMs did any work.
        assert sum(1 for n in result.issued_by_sm if n) == 3

    def test_one_cta_per_wave_many_waves(self, small_config):
        # Occupancy-1 kernel: strict serialisation through dispatch.
        kernel = make_test_kernel(num_ctas=6, warps_per_cta=16,
                                  regs_per_thread=0)
        result = simulate(kernel, config=small_config)
        validate_run(result)


class TestLCSEdges:
    def test_lcs_on_occupancy_one_kernel(self, small_config):
        # Occupancy 1: the monitor sees a single CTA; n* must stay 1 and
        # nothing breaks.
        kernel = make_test_kernel(num_ctas=4, warps_per_cta=16,
                                  regs_per_thread=0)
        scheduler = LCSScheduler(kernel)
        result = simulate(kernel, config=small_config,
                          cta_scheduler=scheduler)
        decision = scheduler.decision
        assert decision is not None
        assert decision.occupancy == 1
        assert decision.n_star == 1
        validate_run(result)

    def test_decision_only_once(self, small_config):
        kernel = make_test_kernel(num_ctas=12, warps_per_cta=2)
        scheduler = LCSScheduler(kernel)
        simulate(kernel, config=small_config, cta_scheduler=scheduler)
        first = scheduler.decision
        # Feeding more completions can never replace the decision object.
        assert scheduler.monitor.observe_completion(
            None, None, None, 0) is None
        assert scheduler.decision is first

    def test_monitor_sm_restriction_respected(self, small_config):
        kernel = make_test_kernel(num_ctas=12, warps_per_cta=2)
        scheduler = LCSScheduler(kernel, monitor_sm=1)
        simulate(kernel, config=small_config, cta_scheduler=scheduler)
        assert scheduler.decision.monitor_sm == 1


class TestBCSEdges:
    def test_block_larger_than_grid(self, small_config):
        kernel = make_test_kernel(num_ctas=2, warps_per_cta=1,
                                  regs_per_thread=0)
        result = simulate(kernel, config=small_config,
                          cta_scheduler=BCSScheduler(kernel, block_size=4))
        assert result.kernel("test").finish_cycle is not None

    def test_block_equals_occupancy(self, small_config):
        kernel = make_test_kernel(num_ctas=8, warps_per_cta=1,
                                  regs_per_thread=0)
        occupancy = kernel.max_ctas_per_sm(small_config)
        result = simulate(kernel, config=small_config,
                          cta_scheduler=BCSScheduler(kernel,
                                                     block_size=occupancy))
        validate_run(result)


class TestCKEEdges:
    def test_three_kernel_smk(self, small_config):
        kernels = [make_test_kernel(name=f"k{i}", num_ctas=4,
                                    warps_per_cta=1, regs_per_thread=0)
                   for i in range(3)]
        result = simulate(kernels, config=small_config,
                          cta_scheduler=SMKEvenCKE(kernels))
        for i in range(3):
            assert result.kernel(f"k{i}").finish_cycle is not None

    def test_three_kernel_sequential_order(self, small_config):
        kernels = [make_test_kernel(name=f"k{i}", num_ctas=2)
                   for i in range(3)]
        result = simulate(kernels, config=small_config,
                          cta_scheduler=SequentialCKE(kernels))
        finishes = [result.kernel(f"k{i}").finish_cycle for i in range(3)]
        assert finishes == sorted(finishes)

    def test_mixed_with_tiny_primary(self, small_config):
        # The primary's grid is so small it exhausts during monitoring.
        kernels = [make_test_kernel(name="a", num_ctas=2),
                   make_test_kernel(name="b", num_ctas=10)]
        result = simulate(kernels, config=small_config,
                          cta_scheduler=MixedCKE(kernels))
        assert result.kernel("b").finish_cycle is not None

    def test_mixed_primary_selection(self, small_config):
        kernels = [make_test_kernel(name="a", num_ctas=8),
                   make_test_kernel(name="b", num_ctas=8)]
        scheduler = MixedCKE(kernels, primary=1)
        simulate(kernels, config=small_config, cta_scheduler=scheduler)
        assert scheduler.primary_run.kernel.name == "b"

    def test_spatial_uneven_split_three_sms(self):
        config = GPUConfig.small(num_sms=3)
        kernels = [make_test_kernel(name="a", num_ctas=4),
                   make_test_kernel(name="b", num_ctas=4)]
        scheduler = SpatialCKE(kernels)
        simulate(kernels, config=config, cta_scheduler=scheduler)
        # 3 SMs split 2/1 (remainder to the first kernel).
        assert len(scheduler.sms_of(0)) == 2
        assert len(scheduler.sms_of(1)) == 1


class TestMixedWorkloadShapes:
    def test_alu_only_kernel_never_touches_memory(self, small_config):
        kernel = make_test_kernel(num_ctas=4, warps_per_cta=2,
                                  builder=lambda c, w: alu_program(30))
        result = simulate(kernel, config=small_config)
        assert result.l1.accesses == 0
        assert result.dram.reads == 0

    def test_memory_only_kernel(self, small_config):
        kernel = make_test_kernel(
            num_ctas=2, warps_per_cta=2,
            builder=lambda c, w: [load([c * 10 + w * 5 + i])
                                  for i in range(5)] + [exit_()])
        result = simulate(kernel, config=small_config)
        assert result.l1.accesses == 2 * 2 * 5
        validate_run(result)

    def test_warps_with_different_lengths(self, small_config):
        def builder(c, w):
            return [alu(2)] * (10 + 20 * w) + [exit_()]

        kernel = make_test_kernel(num_ctas=2, warps_per_cta=3,
                                  builder=builder)
        result = simulate(kernel, config=small_config)
        expected = 2 * sum(10 + 20 * w + 1 for w in range(3))
        assert result.instructions == expected
