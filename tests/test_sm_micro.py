"""Micro-behaviour tests of the SM: scheduler partitioning, LD/ST ordering,
gate-blocking, MSHR interplay — the details MODEL.md §3–4 promises."""

from repro.core.cta_schedulers import RoundRobinCTAScheduler
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPU
from repro.sim.isa import exit_, load
from repro.sim.warp import WarpState

from helpers import alu_program, make_test_kernel


def boot(kernel, config=None, warp_scheduler="gto"):
    """Bind + initial fill without running; returns (gpu, sm0)."""
    config = config or GPUConfig.small(num_sms=1)
    gpu = GPU(config=config, warp_scheduler=warp_scheduler)
    scheduler = RoundRobinCTAScheduler(kernel)
    gpu.cta_scheduler = scheduler
    scheduler.bind(gpu)
    scheduler.fill(0)
    return gpu, gpu.sms[0]


class TestSchedulerPartitioning:
    def test_warps_split_round_robin_between_schedulers(self):
        kernel = make_test_kernel(num_ctas=1, warps_per_cta=4)
        gpu, sm = boot(kernel)
        cta = sm.active_ctas[0]
        owners = [warp.scheduler for warp in cta.warps]
        assert owners[0] is owners[2]
        assert owners[1] is owners[3]
        assert owners[0] is not owners[1]

    def test_issue_width_instructions_per_cycle_max(self):
        kernel = make_test_kernel(num_ctas=2, warps_per_cta=4,
                                  builder=lambda c, w: alu_program(20, 4))
        gpu, sm = boot(kernel)
        before = sm.issued
        sm.tick(0)
        assert sm.issued - before <= gpu.config.issue_width


class TestLDSTOrdering:
    def test_ldst_is_fifo(self):
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=2,
            builder=lambda c, w: [load([w * 100]), exit_()])
        gpu, sm = boot(kernel)
        sm.tick(0)   # both warps issue their loads
        queued = [request.lines[0] for request in sm.ldst]
        assert queued == sorted(queued) or queued == [0, 100]
        # Processing order follows queue order.
        first = sm.ldst[0]
        sm.tick(1)
        assert first.accepted or first.idx > 0

    def test_one_transaction_per_cycle(self):
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [load([0, 1, 2, 3]), exit_()])
        gpu, sm = boot(kernel)
        sm.tick(0)                       # issue the load
        request = sm.ldst[0]
        for expected_idx in (1, 2, 3):
            sm.tick(expected_idx)
            assert request.idx == expected_idx


class TestGateBlocking:
    def make_mem_flood(self):
        return make_test_kernel(
            num_ctas=4, warps_per_cta=4, regs_per_thread=0,
            builder=lambda c, w: [load([(c * 4 + w) * 50 + i])
                                  for i in range(12)] + [exit_()])

    def test_gate_blocks_when_queue_full(self):
        config = GPUConfig.small(num_sms=1, ldst_queue_depth=2)
        gpu, sm = boot(self.make_mem_flood(), config)
        # Tick until the queue is full and nothing can issue.
        for cycle in range(40):
            sm.tick(cycle)
            if sm.gate_blocked:
                break
        assert sm.gate_blocked
        assert len(sm.ldst) <= 2

    def test_gate_clears_on_queue_drain(self):
        config = GPUConfig.small(num_sms=1, ldst_queue_depth=2)
        gpu, sm = boot(self.make_mem_flood(), config)
        cycle = 0
        while not sm.gate_blocked and cycle < 100:
            sm.tick(cycle)
            cycle += 1
        # Draining one transaction (an LD/ST pop) clears the gate.
        while sm.gate_blocked and cycle < 200:
            gpu.events.run_due(cycle)
            sm.tick(cycle)
            cycle += 1
        assert not sm.gate_blocked or cycle < 200


class TestMSHRBackpressure:
    def test_ldst_blocked_on_mshr_exhaustion(self):
        config = GPUConfig.small(num_sms=1, l1_mshr_entries=2,
                                 ldst_queue_depth=8)
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=4, regs_per_thread=0,
            builder=lambda c, w: [load([w * 100]), exit_()])
        gpu, sm = boot(kernel, config)
        for cycle in range(10):
            sm.tick(cycle)
            if sm.ldst_blocked:
                break
        assert sm.ldst_blocked
        assert sm.l1.outstanding_misses == 2

    def test_mem_response_unblocks(self):
        config = GPUConfig.small(num_sms=1, l1_mshr_entries=2)
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=4, regs_per_thread=0,
            builder=lambda c, w: [load([w * 100]), exit_()])
        gpu, sm = boot(kernel, config)
        for cycle in range(10):
            sm.tick(cycle)
        assert sm.ldst_blocked
        sm.mem_response(50, 0)
        assert not sm.ldst_blocked


class TestResourceRelease:
    def test_cta_completion_frees_everything(self, small_config):
        kernel = make_test_kernel(num_ctas=1, warps_per_cta=2,
                                  regs_per_thread=8, shmem_per_cta=1024)
        gpu, sm = boot(kernel, GPUConfig.small(num_sms=1))
        assert sm.used_slots == 1
        assert sm.used_warps == 2
        assert sm.used_regs == 8 * 2 * 32
        assert sm.used_shmem == 1024
        cycle = 0
        scheduler = gpu.cta_scheduler
        while not scheduler.done and cycle < 10_000:
            gpu.events.run_due(cycle)
            scheduler.fill(cycle)
            sm.tick(cycle)
            cycle += 1
        assert scheduler.done
        assert sm.used_slots == 0
        assert sm.used_warps == 0
        assert sm.used_regs == 0
        assert sm.used_shmem == 0
        assert sm.kernel_active[0] == 0

    def test_warp_states_terminal(self):
        kernel = make_test_kernel(num_ctas=1, warps_per_cta=2)
        gpu, sm = boot(kernel, GPUConfig.small(num_sms=1))
        cta = sm.active_ctas[0]
        cycle = 0
        while not gpu.cta_scheduler.done and cycle < 10_000:
            gpu.events.run_due(cycle)
            gpu.cta_scheduler.fill(cycle)
            sm.tick(cycle)
            cycle += 1
        assert all(warp.state == WarpState.DONE for warp in cta.warps)
