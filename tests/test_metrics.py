"""Tests for the CKE multiprogram metrics."""

import pytest

from repro.core.cke import SMKEvenCKE
from repro.harness.metrics import cke_metrics, kernel_turnaround
from repro.harness.runner import simulate
from repro.sim.stats import (CacheStats, DRAMStats, KernelStats, RunResult)

from helpers import make_test_kernel


def _fake_result(kernel_cycles: dict[str, int], total: int) -> RunResult:
    kernels = {}
    for i, (name, finish) in enumerate(kernel_cycles.items()):
        stats = KernelStats(name=name, kernel_id=i, num_ctas=1)
        stats.finish_cycle = finish
        kernels[name] = stats
    return RunResult(cycles=total, instructions=1, kernels=kernels,
                     l1=CacheStats(), l2=CacheStats(), dram=DRAMStats(),
                     issued_by_sm=[1])


class TestArithmetic:
    def test_no_slowdown_gives_ideal_metrics(self):
        shared = _fake_result({"a": 100, "b": 100}, 100)
        alone = {"a": _fake_result({"a": 100}, 100),
                 "b": _fake_result({"b": 100}, 100)}
        metrics = cke_metrics(shared, alone)
        assert metrics.antt == pytest.approx(1.0)
        assert metrics.stp == pytest.approx(2.0)
        assert metrics.fairness == pytest.approx(1.0)

    def test_uneven_slowdown(self):
        shared = _fake_result({"a": 200, "b": 100}, 200)
        alone = {"a": _fake_result({"a": 100}, 100),
                 "b": _fake_result({"b": 100}, 100)}
        metrics = cke_metrics(shared, alone)
        assert metrics.slowdowns == (2.0, 1.0)
        assert metrics.antt == pytest.approx(1.5)
        assert metrics.stp == pytest.approx(0.5 + 1.0)
        assert metrics.fairness == pytest.approx(0.5)

    def test_missing_alone_run_rejected(self):
        shared = _fake_result({"a": 100, "b": 100}, 100)
        with pytest.raises(ValueError):
            cke_metrics(shared, {"a": _fake_result({"a": 100}, 100)})

    def test_unfinished_kernel_rejected(self):
        shared = _fake_result({"a": 100}, 100)
        shared.kernels["a"].finish_cycle = None
        with pytest.raises(ValueError):
            kernel_turnaround(shared, "a")

    def test_str_renders(self):
        shared = _fake_result({"a": 100, "b": 100}, 100)
        alone = {"a": _fake_result({"a": 100}, 100),
                 "b": _fake_result({"b": 100}, 100)}
        assert "ANTT" in str(cke_metrics(shared, alone))


class TestEndToEnd:
    def test_metrics_from_real_runs(self, small_config):
        def mk(name):
            return make_test_kernel(name=name, num_ctas=8, warps_per_cta=2)

        alone = {"a": simulate(mk("a"), config=small_config),
                 "b": simulate(mk("b"), config=small_config)}
        kernels = [mk("a"), mk("b")]
        shared = simulate(kernels, config=small_config,
                          cta_scheduler=SMKEvenCKE(kernels))
        metrics = cke_metrics(shared, alone)
        # Sharing a machine cannot make both kernels faster than solo.
        assert metrics.antt >= 0.99
        assert 0 < metrics.stp <= 2.01
        assert 0 < metrics.fairness <= 1.0
