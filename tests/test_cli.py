"""Tests for the repro-exp command-line interface."""

from repro.harness.cli import main


def test_unknown_experiment_returns_error(capsys):
    assert main(["e99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_single_experiment_prints_table(capsys):
    assert main(["e5", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "E5" in out
    assert "GMEAN" in out


def test_csv_mode(capsys):
    assert main(["e5", "--scale", "0.02", "--csv"]) == 0
    out = capsys.readouterr().out
    assert "benchmark,lrr_ipc,gto_ipc,twolevel_ipc" in out


def test_e12_prints_two_tables(capsys):
    assert main(["e12", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "E12a" in out
    assert "E12b" in out


def test_multiple_experiments_share_context(capsys):
    assert main(["e5", "e12", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "E5" in out and "E12a" in out


def test_seed_flag_accepted(capsys):
    assert main(["e12", "--scale", "0.02", "--seed", "7"]) == 0


def test_list_flag(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "e1" in out and "e19" in out and "e12" in out


def test_no_experiments_errors(capsys):
    assert main([]) == 2
    assert "no experiments" in capsys.readouterr().err


def test_output_writes_csv_files(tmp_path, capsys):
    assert main(["e12", "--scale", "0.02", "--output", str(tmp_path)]) == 0
    assert (tmp_path / "e12a.csv").exists()
    assert (tmp_path / "e12b.csv").exists()
    assert "parameter" in (tmp_path / "e12a.csv").read_text()


def test_chart_flag(capsys):
    assert main(["e5", "--scale", "0.02", "--chart", "gto_over_lrr"]) == 0
    out = capsys.readouterr().out
    assert "#" in out          # bars rendered
    assert "gto_over_lrr" in out


def test_chart_flag_ignores_missing_column(capsys):
    assert main(["e12", "--scale", "0.02", "--chart", "nonexistent"]) == 0


def test_timeline_and_trace_export(tmp_path, monkeypatch, capsys):
    import json

    monkeypatch.chdir(tmp_path)
    assert main(["e5", "--scale", "0.02", "--timeline", "500",
                 "--output", "out", "--trace", "e5.json"]) == 0
    err = capsys.readouterr().err
    assert "timelines:" in err and "trace:" in err
    csvs = sorted((tmp_path / "out").glob("*.timeline.csv"))
    assert csvs
    header = csvs[0].read_text().splitlines()[0].split(",")
    assert header[0] == "cycle" and "ipc" in header
    doc = json.loads((tmp_path / "e5.json").read_text())
    assert doc["traceEvents"]
    assert len({r["pid"] for r in doc["traceEvents"]}) >= 2


def test_bad_fault_spec_is_usage_error(capsys):
    assert main(["e5", "--faults", "explode:0"]) == 2
    assert "bad fault spec" in capsys.readouterr().err


def test_negative_retries_and_timeout_rejected(capsys):
    assert main(["e5", "--retries", "-1"]) == 2
    assert main(["e5", "--timeout", "-3"]) == 2


def test_injected_failure_reports_and_exits_nonzero(capsys):
    assert main(["e5", "--scale", "0.02", "--no-cache", "--retries", "0",
                 "--faults", "flaky:0"]) == 1
    captured = capsys.readouterr()
    assert "FAILED" in captured.err
    assert "Failure summary" in captured.out
    assert "InjectedTransientFault" in captured.out


def test_keep_going_yields_partial_results_after_failure(capsys):
    # flaky:0 fires exactly once (during e5), so e12 still completes:
    # the run reports e5's failure but ships e12's tables and exits 1.
    assert main(["e5", "e12", "--scale", "0.02", "--no-cache",
                 "--retries", "0", "--faults", "flaky:0"]) == 1
    captured = capsys.readouterr()
    assert "E12a" in captured.out and "E12b" in captured.out
    assert "FAILED: e5" in captured.err


def test_fail_fast_stops_at_first_failure(capsys):
    assert main(["e5", "e12", "--scale", "0.02", "--no-cache",
                 "--retries", "0", "--fail-fast",
                 "--faults", "flaky:0"]) == 1
    captured = capsys.readouterr()
    assert "E12a" not in captured.out     # never ran


def test_worker_kill_recovered_by_retry(capsys):
    assert main(["e5", "--scale", "0.02", "--no-cache", "--jobs", "2",
                 "--faults", "kill:0"]) == 0
    captured = capsys.readouterr()
    assert "E5" in captured.out
    assert "recovered by retry" in captured.err


def test_design_campaign_clean_run_exits_zero(tmp_path, monkeypatch,
                                              capsys):
    monkeypatch.chdir(tmp_path)
    design = tmp_path / "sweep.toml"
    design.write_text('[design]\nname = "cli-exit"\n\n'
                      '[[design.factor]]\nname = "bench"\n'
                      'levels = ["kmeans"]\n')
    assert main(["--design", str(design), "--scale", "0.02",
                 "--no-cache"]) == 0
    assert "1 dispatched" in capsys.readouterr().err


def test_design_campaign_exit_codes_partial_then_exhausted(
        tmp_path, monkeypatch, capsys):
    # The documented ladder: 0 all-done, 1 partial, 3 retry budget
    # exhausted.  fail:0 fires on every incarnation, so the first run
    # fails the cell (exit 1) and the second refuses to claim it again
    # (exit 3 with the exhausted footer).
    monkeypatch.chdir(tmp_path)
    design = tmp_path / "sweep.toml"
    design.write_text('[design]\nname = "cli-exhaust"\n\n'
                      '[[design.factor]]\nname = "bench"\n'
                      'levels = ["kmeans", "streaming"]\n')
    args = ["--design", str(design), "--scale", "0.02", "--no-cache",
            "--faults", "fail:0", "--retries", "0", "--max-retries", "1"]
    assert main(args) == 1
    capsys.readouterr()
    assert main(args) == 3
    assert "exhausted (past --max-retries)" in capsys.readouterr().err


def test_design_campaign_usage_error_exits_two(tmp_path, monkeypatch,
                                               capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["--design", str(tmp_path / "missing.toml")]) == 2
    assert "cannot read design file" in capsys.readouterr().err
    assert main(["--shard"]) == 2     # campaign flag without --design


def test_design_campaign_degraded_journal_footer(tmp_path, monkeypatch,
                                                 capsys, recwarn):
    # Journal appends failing mid-campaign must still exit 0 and say
    # so in the footer (the snapshot carried the state).
    monkeypatch.chdir(tmp_path)
    design = tmp_path / "sweep.toml"
    design.write_text('[design]\nname = "cli-degraded"\n\n'
                      '[[design.factor]]\nname = "bench"\n'
                      'levels = ["kmeans"]\n')
    assert main(["--design", str(design), "--scale", "0.02",
                 "--no-cache", "--faults", "fail-append:0"]) == 0
    assert ("journal append error(s) (snapshot fallback)"
            in capsys.readouterr().err)
