"""Tests for the federation layer: membership, routing, handoff, audit.

The :class:`ClusterManager` unit tests drive membership and reclaim on
a stub daemon with a hand-held clock — no sockets, no sleeping — so the
lease arithmetic (suspect past TTL, dead past twice TTL, reclaim only
with quorum and a won rendezvous election) is checked exactly.  The
offline audit is tested against hand-forged journals.  One integration
test boots a real three-daemon fleet over unix sockets and routes a
design through it; the violent end of the story (partitions, SIGKILL,
lease handoff under fire) lives in the cluster chaos drill
(``make cluster-chaos-smoke``).
"""

import asyncio
import io
import socket
import threading
import time
from types import SimpleNamespace

import pytest

from repro.design.campaign import TTL_JITTER_FRAC
from repro.design.journal import Journal
from repro.harness.engine import Backoff
from repro.harness.exit_codes import EXIT_OK
from repro.harness.faults import FaultPlan
from repro.harness.jobs import SimJob
from repro.service.admission import CircuitBreaker
from repro.service.audit import audit_state_dirs
from repro.service.client import ServiceClient
from repro.service.cluster import (PEER_DEAD, PEER_SUSPECT, PEER_UNKNOWN,
                                   PEER_UP, ClusterManager, parse_address,
                                   rendezvous_owner)
from repro.service.daemon import SchedulerDaemon
from repro.service.protocol import DONE, TERMINAL, encode_frame
from repro.sim.config import GPUConfig

A, B, C = "a.sock", "b.sock", "c.sock"


# --------------------------------------------------------------------------- #
# addresses and rendezvous hashing
# --------------------------------------------------------------------------- #

class TestParseAddress:
    def test_host_port_is_tcp(self):
        assert parse_address("gpu-01:7070") == ("tcp", ("gpu-01", 7070))

    @pytest.mark.parametrize("address", [
        "/var/run/repro/serve.sock",   # a path is always a path
        "serve.sock",                  # no colon
        "host:notaport",               # non-numeric port
        "h:1:2",                       # two colons: not host:port
    ])
    def test_everything_else_is_a_unix_path(self, address):
        assert parse_address(address) == ("unix", address)


class TestRendezvous:
    def test_deterministic_and_order_independent(self):
        nodes = [A, B, C]
        owner = rendezvous_owner("fp-1", nodes)
        assert owner in nodes
        assert rendezvous_owner("fp-1", nodes) == owner
        assert rendezvous_owner("fp-1", [C, A, B]) == owner

    def test_every_node_owns_something(self):
        nodes = [A, B, C]
        owners = {rendezvous_owner(f"fp-{i}", nodes) for i in range(64)}
        assert owners == set(nodes)

    def test_minimal_disruption_on_node_death(self):
        # HRW's defining property, and the one handoff depends on: when
        # C dies, only C's jobs move; every A- or B-owned fingerprint
        # keeps its owner.
        fps = [f"fp-{i}" for i in range(128)]
        before = {fp: rendezvous_owner(fp, [A, B, C]) for fp in fps}
        after = {fp: rendezvous_owner(fp, [A, B]) for fp in fps}
        for fp in fps:
            if before[fp] != C:
                assert after[fp] == before[fp]
            else:
                assert after[fp] in (A, B)

    def test_empty_node_set_rejected(self):
        with pytest.raises(ValueError):
            rendezvous_owner("fp", [])


# --------------------------------------------------------------------------- #
# membership + reclaim, on a stub daemon with a hand-held clock
# --------------------------------------------------------------------------- #

class _StubTable:
    def __init__(self):
        self.jobs = {}
        self.order = []
        self.records = []

    def append(self, kind, **fields):
        self.records.append({"type": kind, **fields})


class _StubDaemon:
    def __init__(self, threshold=2):
        self.table = _StubTable()
        self.breaker = CircuitBreaker(threshold=threshold, cooldown=None)
        self.events = []
        self.adopted = []
        self.notified = []

    def event(self, kind, **payload):
        self.events.append((kind, payload))

    def kinds(self):
        return [kind for kind, _ in self.events]

    def notify_watchers(self, job_id, state, **details):
        self.notified.append((job_id, state))

    def adopt_job(self, remote, source):
        self.adopted.append((remote["id"], source))
        # Mirror the real daemon: adoption puts the id in the local
        # table, which is what makes _reclaim idempotent across rounds.
        self.table.jobs[remote["id"]] = SimpleNamespace(state="queued")


def _manager(stub=None, *, peer_ttl=1.0, faults=None):
    stub = stub or _StubDaemon()
    manager = ClusterManager(stub, [A, B, C], A, peer_ttl=peer_ttl,
                             faults=faults)
    manager.started = 0.0   # pin the boot instant: tests own the clock
    return stub, manager


def _fp_owned_by(node, nodes):
    """A fingerprint whose rendezvous owner among ``nodes`` is ``node``."""
    for i in range(256):
        fp = f"probe-{i}"
        if rendezvous_owner(fp, nodes) == node:
            return fp
    raise AssertionError("no fingerprint hashed to the wanted node")


class TestClusterMembership:
    def test_advertise_must_be_a_member(self):
        with pytest.raises(ValueError, match="not in"):
            ClusterManager(_StubDaemon(), [B, C], A)

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ClusterManager(_StubDaemon(), [A, B, B], A)

    def test_peer_ttls_are_jittered_per_pair(self):
        _, manager = _manager(peer_ttl=2.0)
        ttls = [peer.ttl for peer in manager.peers.values()]
        for ttl in ttls:
            assert 2.0 <= ttl < 2.0 * (1.0 + TTL_JITTER_FRAC)
        # Distinct (observer, peer) pairs get distinct deadlines — no
        # stampede of simultaneous death declarations.
        assert ttls[0] != ttls[1]

    def test_boot_is_optimistic(self):
        _, manager = _manager()
        assert all(peer.state == PEER_UNKNOWN
                   for peer in manager.peers.values())
        assert manager.has_quorum()            # booting != partitioned
        assert manager.live_addresses() == [A]  # but routing stays local

    def test_up_suspect_dead_ladder(self):
        stub, manager = _manager(peer_ttl=1.0)
        manager._contact(B, 10.0)
        assert manager.peers[B].state == PEER_UP
        assert "peer.up" in stub.kinds()

        # 1.3s of silence: past any jittered TTL (< 1.25) but short of
        # the 2x death point for B.  C was never heard from at all, and
        # its silence is measured from boot — long dead.
        manager._membership_check(11.3)
        assert manager.peers[B].state == PEER_SUSPECT
        assert manager.peers[C].state == PEER_DEAD
        assert "peer.suspect" in stub.kinds()
        assert "peer.dead" in stub.kinds()

    def test_quorum_loss_and_recovery_are_events(self):
        stub, manager = _manager(peer_ttl=1.0)
        manager._contact(B, 10.0)
        manager._membership_check(11.3)   # B suspect, C dead: live = 1/3
        assert not manager.has_quorum()
        assert manager.degraded
        assert "cluster.degraded" in stub.kinds()

        manager._contact(B, 11.4)         # B answers again: live = 2/3
        assert manager.peers[B].state == PEER_UP
        assert not manager.degraded
        assert "cluster.active" in stub.kinds()

    def test_a_seen_peer_eventually_dies_too(self):
        _, manager = _manager(peer_ttl=1.0)
        manager._contact(B, 10.0)
        manager._membership_check(14.0)   # 4s > 2 x any jittered TTL
        assert manager.peers[B].state == PEER_DEAD
        assert B in manager._dead_owners

    def test_suspect_peers_do_not_count_toward_quorum(self):
        _, manager = _manager(peer_ttl=1.0)
        manager._contact(B, 10.0)
        manager._contact(C, 10.0)
        manager._membership_check(11.3)   # both merely suspect
        assert manager.peers[B].state == PEER_SUSPECT
        assert manager.peers[C].state == PEER_SUSPECT
        assert not manager.has_quorum()


class TestJobReplicationAndReclaim:
    def _announce(self, manager, job_id, owner, fp, now=1.0):
        manager._fold_job({"id": job_id, "owner": owner, "tenant": "t",
                           "fingerprint": fp, "job": {"seed": 1}}, now)

    def test_announced_jobs_are_journaled_replicas(self):
        stub, manager = _manager()
        self._announce(manager, "j1", C, "fp-x")
        assert "j1" in manager.remote_jobs
        record = stub.table.records[-1]
        assert record["type"] == "cluster-job"
        assert record["owner"] == C
        # Idempotent: re-announcement next round journals nothing new.
        self._announce(manager, "j1", C, "fp-x", now=2.0)
        assert len(stub.table.records) == 1

    def test_own_and_self_announcements_ignored(self):
        stub, manager = _manager()
        stub.table.jobs["mine"] = SimpleNamespace(state="queued")
        self._announce(manager, "mine", C, "fp")   # already local
        self._announce(manager, "j2", A, "fp")     # echo of ourselves
        assert not manager.remote_jobs and not stub.table.records

    def test_reclaim_needs_death_expiry_quorum_and_the_election(self):
        stub, manager = _manager(peer_ttl=1.0)
        manager._contact(B, 1.0)
        manager._contact(C, 1.0)
        fp = _fp_owned_by(A, [A, B])   # after C dies, this hashes to us
        self._announce(manager, "j1", C, fp, now=1.0)

        # C alive: nothing to do, even though the job lease would be
        # stale by now — liveness is the owner's node-level gossip.
        manager._contact(B, 5.5)
        manager._contact(C, 5.5)
        manager._membership_check(5.6)
        manager._reclaim(5.6)
        assert stub.adopted == []

        # Now only B keeps answering; C falls silent and dies.
        manager._contact(B, 8.2)
        manager._membership_check(8.3)   # C last heard 5.5; 2.8s > 2xTTL
        assert manager.peers[C].state == PEER_DEAD
        manager._reclaim(8.3)            # lease (t=1.0, ttl=2.0) expired
        assert stub.adopted == [("j1", C)]
        # Adoption is once: the id is local now, rounds re-examine no-op.
        manager._reclaim(9.0)
        assert len(stub.adopted) == 1

    def test_no_reclaim_without_quorum(self):
        stub, manager = _manager(peer_ttl=1.0)
        manager._contact(C, 1.0)
        fp = _fp_owned_by(A, [A])
        self._announce(manager, "j1", C, fp, now=1.0)
        manager._membership_check(9.0)   # B never seen, C silent: both dead
        assert not manager.has_quorum()
        manager._reclaim(9.0)            # we may be the partitioned one
        assert stub.adopted == []

    def test_lost_election_defers_to_the_winner(self):
        stub, manager = _manager(peer_ttl=1.0)
        manager._contact(B, 1.0)
        manager._contact(C, 1.0)
        fp = _fp_owned_by(B, [A, B])     # B's job once C is gone
        self._announce(manager, "j1", C, fp, now=1.0)
        manager._contact(B, 8.2)
        manager._membership_check(8.3)
        manager._reclaim(8.3)
        assert stub.adopted == []        # B adopts it, not us

    def test_terminal_jobs_are_never_reclaimed(self):
        stub, manager = _manager(peer_ttl=1.0)
        manager._contact(B, 1.0)
        manager._contact(C, 1.0)
        fp = _fp_owned_by(A, [A, B])
        self._announce(manager, "j1", C, fp, now=1.0)
        manager._fold_terminal({"id": "j1", "state": DONE, "owner": C,
                                "cycles": 10, "ipc": 1.0})
        manager._contact(B, 8.2)
        manager._membership_check(8.3)
        manager._reclaim(8.3)
        assert stub.adopted == []

    def test_peer_terminal_folds_replicas_and_own_jobs(self):
        stub, manager = _manager()
        # Terminal for a job we never even saw announced: a replica
        # entry appears, journaled, and watchers are notified.
        manager._fold_terminal({"id": "far", "state": DONE, "owner": C,
                                "cycles": 7, "ipc": 0.5})
        assert manager.remote_jobs["far"]["state"] == DONE
        assert stub.table.records[-1]["type"] == "cluster-terminal"
        assert ("far", DONE) in stub.notified
        # Refolds are idempotent.
        manager._fold_terminal({"id": "far", "state": DONE, "owner": C})
        assert len(stub.table.records) == 1

        # A job *we* hold, finished elsewhere: journaled as
        # peer-terminal (knowledge, not execution) — never re-run here.
        stub.table.jobs["own"] = SimpleNamespace(state="running")
        manager._fold_terminal({"id": "own", "state": DONE, "owner": B,
                                "cycles": 3, "ipc": 0.2})
        assert stub.table.records[-1]["type"] == "peer-terminal"
        assert "cluster.peer_terminal" in stub.kinds()

    def test_quarantine_gossip_opens_the_local_breaker(self):
        stub, manager = _manager()
        payload = {"quarantine": [{"fingerprint": "poison", "crashes": 7}]}
        manager._fold_payload(payload, 1.0)
        assert stub.breaker.is_open("poison")
        assert stub.kinds().count("breaker.sync") == 1
        manager._fold_payload(payload, 2.0)   # already open: no re-event
        assert stub.kinds().count("breaker.sync") == 1


class TestInboundGossip:
    def test_unknown_peers_are_refused(self):
        _, manager = _manager()
        response = manager.handle_gossip({"op": "gossip",
                                          "addr": "stranger.sock"})
        assert not response["ok"] and "unknown peer" in response["error"]

    def test_partition_fault_blocks_then_heals(self, tmp_path):
        plan = FaultPlan.parse("partition:0|1:5",
                               state_dir=str(tmp_path / "faults"))
        _, manager = _manager(faults=plan)
        frame = {"op": "gossip", "addr": B, "index": 1}
        blocked = manager.handle_gossip(frame)
        assert not blocked["ok"] and "partition" in blocked["error"]
        assert manager.peers[B].state == PEER_UNKNOWN   # never contacted

        manager.rounds = 5                              # heal point reached
        healed = manager.handle_gossip(frame)
        assert healed["ok"] and healed["addr"] == A
        assert manager.peers[B].state == PEER_UP
        assert {"members", "jobs", "terminals",
                "quarantine"} <= set(healed)

    def test_payload_separates_live_jobs_from_terminals(self):
        stub, manager = _manager()
        stub.table.jobs = {
            "q1": SimpleNamespace(id="q1", state="queued", tenant="t",
                                  fingerprint="fq", job={"s": 1},
                                  cycles=None, ipc=None, error=None),
            "d1": SimpleNamespace(id="d1", state=DONE, tenant="t",
                                  fingerprint="fd", job={"s": 2},
                                  cycles=9, ipc=1.5, error=None),
        }
        stub.table.order = ["q1", "d1"]
        stub.breaker.record_crash("bad-fp")
        stub.breaker.record_crash("bad-fp")
        payload = manager._payload()
        assert [j["id"] for j in payload["jobs"]] == ["q1"]
        assert [t["id"] for t in payload["terminals"]] == ["d1"]
        assert payload["terminals"][0]["state"] == DONE
        assert payload["quarantine"] == [{"fingerprint": "bad-fp",
                                          "crashes": 2}]
        assert payload["members"][0] == {"addr": A, "state": PEER_UP}

    def test_view_reports_the_membership_table(self):
        _, manager = _manager()
        view = manager.view()
        assert view["advertise"] == A and view["size"] == 3
        assert view["quorum"] and not view["degraded"]
        assert {peer["addr"] for peer in view["peers"]} == {B, C}


# --------------------------------------------------------------------------- #
# client failover
# --------------------------------------------------------------------------- #

def _fake_daemon(path, response):
    """A unix-socket stub answering every request line with ``response``."""
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    server.bind(str(path))
    server.listen(4)
    server.settimeout(0.2)
    stop = threading.Event()

    def serve():
        while not stop.is_set():
            try:
                conn, _ = server.accept()
            except socket.timeout:
                continue
            with conn:
                fh = conn.makefile("rb")
                while fh.readline():
                    conn.sendall(encode_frame(response))

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return stop, thread, server


class TestClientFailover:
    def test_jitter_is_deterministic_per_key(self, tmp_path):
        one = ServiceClient(tmp_path / "x.sock", jitter_key="alice")
        two = ServiceClient(tmp_path / "x.sock", jitter_key="alice")
        other = ServiceClient(tmp_path / "x.sock", jitter_key="bob")
        assert one.jitter == two.jitter
        assert one.jitter != other.jitter
        for client in (one, two, other):
            assert 1.0 <= client.jitter < 1.0 + 0.25
        # The jitter scales every backoff delay, identically per client.
        assert one._delay(2) == Backoff(base=0.25, cap=5.0).delay(2) \
            * one.jitter

    def test_target_parsing_and_rotation(self):
        client = ServiceClient(peers=["h:7070", "b.sock", "c.sock"],
                               jitter_key="k")
        assert client._target() == ("h", 7070, None)
        client._rotate()
        assert client._target() == (None, None, "b.sock")
        assert client.failovers == 1
        client._rotate()
        client._rotate()                       # wraps around
        assert client._target() == ("h", 7070, None)

    def test_single_target_never_rotates(self):
        client = ServiceClient(peers=["only.sock"], jitter_key="k")
        client._rotate()
        assert client.failovers == 0 and client._peer_index == 0

    def test_connect_fails_over_to_a_live_peer(self, tmp_path):
        live = tmp_path / "live.sock"
        stop, thread, server = _fake_daemon(
            live, {"ok": True, "op": "status", "fake": True})
        try:
            client = ServiceClient(
                peers=[str(tmp_path / "dead.sock"), str(live)],
                connect_attempts=3, jitter_key="k")
            response = client.request({"op": "status"})
            assert response["fake"]
            assert client.failovers >= 1       # the dead peer was skipped
            client.close()
        finally:
            stop.set()
            thread.join(timeout=5.0)
            server.close()


# --------------------------------------------------------------------------- #
# the offline audit
# --------------------------------------------------------------------------- #

def _forge(tmp_path, name, records, events=()):
    """A daemon state dir containing exactly ``records`` (checksummed)."""
    directory = tmp_path / name
    directory.mkdir()
    journal = Journal(directory / "journal.jsonl", worker=name)
    for kind, fields in records:
        journal.append(kind, **fields)
    if events:
        log = Journal(directory / "events.jsonl", worker=name)
        for kind in events:
            log.append("event", kind=kind)
    return directory


class TestOfflineAudit:
    def test_clean_single_daemon_is_strict_exactly_once(self, tmp_path):
        d = _forge(tmp_path, "s0", [
            ("submit", {"id": "a", "ordinal": 0}),
            ("done", {"id": "a", "state": DONE, "cycles": 10, "ipc": 1.0}),
        ], events=("boot",))
        report = audit_state_dirs([d])
        assert report.strict_exactly_once and report.effectively_once
        assert report.executed_dirs("a") == ["s0"]
        assert report.event_kinds() == {"boot"}
        assert "OK" in report.summary_line(strict=True)

    def test_accepted_but_never_executed_is_missing(self, tmp_path):
        d = _forge(tmp_path, "s0", [
            ("submit", {"id": "a"}),
            ("done", {"id": "a", "state": DONE, "cycles": 1, "ipc": 1.0}),
            ("submit", {"id": "lost"}),
        ])
        report = audit_state_dirs([d])
        assert report.missing == ["lost"]
        assert not report.effectively_once
        assert "FAILED" in report.summary_line()

    def test_agreeing_duplicate_passes_effectively_once_only(self, tmp_path):
        # The takeover-races-reclaim shape: two daemons each accepted
        # and executed the job, bitwise-identically (shared fingerprint
        # cache).  The cluster bar tolerates it, the strict bar counts.
        rows = [("submit", {"id": "a"}),
                ("done", {"id": "a", "state": DONE, "cycles": 5,
                          "ipc": 2.0})]
        d0 = _forge(tmp_path, "s0", rows)
        d1 = _forge(tmp_path, "s1", rows)
        report = audit_state_dirs([d0, d1])
        assert report.effectively_once
        assert not report.strict_exactly_once
        assert report.duplicates == 1
        assert report.executed_dirs("a") == ["s0", "s1"]

    def test_disagreeing_states_conflict(self, tmp_path):
        d0 = _forge(tmp_path, "s0", [
            ("submit", {"id": "a"}),
            ("done", {"id": "a", "state": DONE, "cycles": 5, "ipc": 2.0})])
        d1 = _forge(tmp_path, "s1", [
            ("failed", {"id": "a", "state": "failed", "error": "boom"})])
        report = audit_state_dirs([d0, d1])
        assert report.conflicting == ["a"]
        assert not report.effectively_once

    def test_same_state_different_numbers_is_a_determinism_breach(
            self, tmp_path):
        d0 = _forge(tmp_path, "s0", [
            ("submit", {"id": "a"}),
            ("done", {"id": "a", "state": DONE, "cycles": 5, "ipc": 2.0})])
        d1 = _forge(tmp_path, "s1", [
            ("done", {"id": "a", "state": DONE, "cycles": 6, "ipc": 2.0})])
        assert audit_state_dirs([d0, d1]).conflicting == ["a"]

    def test_replicas_prove_knowledge_not_execution(self, tmp_path):
        # The gossiped copies of a job must never make it look
        # double-executed — that distinction is the audit's whole point.
        d0 = _forge(tmp_path, "s0", [
            ("submit", {"id": "a"}),
            ("done", {"id": "a", "state": DONE, "cycles": 5, "ipc": 2.0})])
        d1 = _forge(tmp_path, "s1", [
            ("cluster-job", {"id": "a", "owner": "s0"}),
            ("cluster-terminal", {"id": "a", "state": DONE, "owner": "s0",
                                  "cycles": 5, "ipc": 2.0})])
        report = audit_state_dirs([d0, d1])
        assert report.strict_exactly_once
        assert report.duplicates == 0
        assert report.executed_dirs("a") == ["s0"]
        assert report.jobs["a"].replicated == [
            ("s1", "cluster-terminal", DONE)]

    def test_adoption_provenance_is_surfaced(self, tmp_path):
        d0 = _forge(tmp_path, "s0", [
            ("cluster-job", {"id": "a", "owner": "dead.sock"}),
            ("submit", {"id": "a", "adopted_from": "dead.sock",
                        "ordinal": 3}),
            ("done", {"id": "a", "state": DONE, "cycles": 5, "ipc": 2.0})])
        report = audit_state_dirs([d0])
        assert report.adopted == ["a"]
        assert report.jobs["a"].adopted_from == ["dead.sock"]
        assert report.effectively_once

    def test_crashes_counted_and_missing_journal_is_a_problem(
            self, tmp_path):
        d0 = _forge(tmp_path, "s0", [
            ("submit", {"id": "a"}),
            ("crash", {"id": "a", "fingerprint": "fp"}),
            ("done", {"id": "a", "state": DONE, "cycles": 5, "ipc": 2.0})])
        empty = tmp_path / "s1"
        empty.mkdir()
        report = audit_state_dirs([d0, empty])
        assert report.crashes == 1
        assert report.problems == ["s1: no journal.jsonl"]
        assert not report.effectively_once   # problems fail the bar

    def test_non_terminal_state_on_a_terminal_record_is_a_problem(
            self, tmp_path):
        d0 = _forge(tmp_path, "s0", [
            ("submit", {"id": "a"}),
            ("done", {"id": "a", "state": "running"})])
        report = audit_state_dirs([d0])
        assert report.problems and "non-terminal" in report.problems[0]


# --------------------------------------------------------------------------- #
# a real three-daemon fleet over unix sockets
# --------------------------------------------------------------------------- #

class TestLiveFleet:
    def test_route_execute_replicate_audit(self, tmp_path):
        members = [str(tmp_path / f"s{i}" / "serve.sock") for i in range(3)]
        daemons, threads, outcomes = [], [], []
        for i in range(3):
            daemon = SchedulerDaemon(
                state_dir=tmp_path / f"s{i}", cache_dir=tmp_path / "cache",
                workers=1, drain_grace=15.0, log=io.StringIO(),
                cluster_members=members, advertise=members[i],
                gossip_interval=0.2, peer_ttl=1.0)
            outcome = {}

            def runner(d=daemon, o=outcome):
                o["exit"] = asyncio.run(d.serve())

            thread = threading.Thread(target=runner, daemon=True,
                                      name=f"fleet-{i}")
            thread.start()
            daemons.append(daemon)
            threads.append(thread)
            outcomes.append(outcome)
        try:
            deadline = time.monotonic() + 15.0
            while not all(d.socket_path.exists() for d in daemons):
                assert time.monotonic() < deadline, "fleet never bound"
                time.sleep(0.02)

            client = ServiceClient(peers=members, timeout=30.0,
                                   jitter_key="fleet-test")
            ids = []
            for seed in (1, 2, 3):
                job = SimJob(names=("kmeans",), scale=0.02, seed=seed,
                             config=GPUConfig.small())
                jid = f"fleet:{seed}"
                response = client.submit(jid, job.to_payload(), tenant="t")
                assert response["ok"], response
                ids.append(jid)

            # Every job reaches a terminal state *as seen from one
            # front door*: locally, via the forward response, or via
            # the gossiped replica of a peer's terminal record.
            states = {}
            deadline = time.monotonic() + 60.0
            while len(states) < len(ids):
                assert time.monotonic() < deadline, \
                    f"fleet never converged: {states}"
                for jid in ids:
                    if jid in states:
                        continue
                    result = client.result(jid)
                    if result.get("ok") and result.get("state") in TERMINAL:
                        states[jid] = result["state"]
                time.sleep(0.2)
            assert set(states.values()) == {DONE}

            # Give gossip a beat, then check the front door's view.
            time.sleep(0.6)
            status = client.status()
            cluster = status["cluster"]
            assert cluster["size"] == 3 and cluster["quorum"]
            assert all(peer["state"] == PEER_UP
                       for peer in cluster["peers"])
            client.close()
        finally:
            for member, thread in zip(members, threads):
                try:
                    with ServiceClient(member, timeout=10.0) as closer:
                        closer.drain()
                except Exception:
                    pass
            for thread in threads:
                thread.join(timeout=30.0)
        assert all(not t.is_alive() for t in threads), "fleet did not drain"
        assert [o.get("exit") for o in outcomes] == [EXIT_OK] * 3

        # The offline story must agree: three journals, every job
        # executed exactly once fleet-wide, replicas on the others.
        report = audit_state_dirs([tmp_path / f"s{i}" for i in range(3)])
        assert report.strict_exactly_once, report.summary_line(strict=True)
        assert len(report.jobs) >= 3
