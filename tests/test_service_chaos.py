"""Service chaos drill, in miniature: a real daemon SIGKILLed and
restarted under real worker kills, a wedged poison job and concurrent
clients.

This is the in-repo version of ``make service-chaos-smoke`` — smaller
(three cells, one daemon kill) so it stays inside tier-1 wall-time
budgets while still proving the service acceptance claim end to end:
every accepted job reaches exactly one terminal state, the cached
results are bitwise-identical to a fault-free in-process run, the
poison job is quarantined without stalling the queue, load shedding and
the breaker opening are journaled, and the final SIGTERM drain exits 0.
"""

import textwrap

from repro.design.chaos import run_service_chaos


def test_daemon_kill_restart_drill_converges_bitwise(tmp_path):
    design_file = tmp_path / "drill.toml"
    design_file.write_text(textwrap.dedent("""\
        [design]
        name = "service-drill"

        [[design.factor]]
        name = "bench"
        levels = ["kmeans", "streaming", "compute"]
    """))
    report = run_service_chaos(design_file, daemon_kills=1, seed=11,
                               root=tmp_path / "chaos", scale=0.02,
                               workers=2, queue_depth=2,
                               breaker_threshold=2, hb_timeout=1.5,
                               kill_window=(1.0, 2.0))
    assert report.ok, report.summary_line()
    assert report.daemon_kills == 1
    assert report.incarnations == 2
    assert report.counts["done"] == 3
    assert report.exactly_once and report.poison_quarantined
    assert report.shed_seen and report.breaker_seen and report.drain_clean
