"""Tests for the engine's resilience paths, driven by fault injection.

Every recovery behaviour the engine promises — fault isolation, transient
retry, pool-crash respawn, per-job deadlines, cache-corruption misses — is
exercised here by injecting the corresponding failure at a known point
with :class:`repro.harness.faults.FaultPlan`.
"""

import pytest

from repro.harness.cache import ResultCache
from repro.harness.engine import (BatchError, JobExecutionError, run_batch,
                                  run_jobs)
from repro.harness.faults import (Fault, FaultPlan, FaultSpecError,
                                  InjectedFault, InjectedTransientFault)
from repro.harness.jobs import SimJob
from repro.sim.config import GPUConfig

SMALL = GPUConfig.small()


def _job(scale=0.05, **kwargs):
    return SimJob(names=("kmeans",), scale=scale, config=SMALL, **kwargs)


def _jobs(n):
    """n distinct small jobs (distinct scales -> distinct fingerprints)."""
    return [_job(scale=0.05 + 0.01 * i) for i in range(n)]


def _plan(spec, tmp_path):
    return FaultPlan.parse(spec, state_dir=str(tmp_path / "fault-state"))


# --------------------------------------------------------------------------- #
# spec parsing
# --------------------------------------------------------------------------- #

class TestFaultPlanParsing:
    def test_parse_all_actions(self, tmp_path):
        plan = _plan("fail:0, flaky:1;kill:2,delay:3:1.5,corrupt:4", tmp_path)
        assert [f.action for f in plan.faults] == [
            "fail", "flaky", "kill", "delay", "corrupt"]
        assert [f.index for f in plan.faults] == [0, 1, 2, 3, 4]
        assert plan.faults[3].arg == 1.5

    @pytest.mark.parametrize("spec", [
        "", "   ", "explode:0", "fail", "fail:x", "fail:-1",
        "delay:0", "delay:0:soon", "fail:0:1:2",
    ])
    def test_bad_specs_rejected(self, spec, tmp_path):
        with pytest.raises(FaultSpecError):
            _plan(spec, tmp_path)

    def test_from_env_unset_is_none(self):
        assert FaultPlan.from_env(environ={}) is None

    def test_from_env_reads_spec_and_state_dir(self, tmp_path):
        plan = FaultPlan.from_env(environ={
            "REPRO_FAULTS": "flaky:2",
            "REPRO_FAULTS_STATE": str(tmp_path / "state")})
        assert plan.faults == (Fault("flaky", 2),)
        assert plan.state_dir == str(tmp_path / "state")

    def test_fire_once_is_once_per_tag(self, tmp_path):
        plan = _plan("flaky:0", tmp_path)
        assert plan._fire_once("x") is True
        assert plan._fire_once("x") is False
        assert plan._fire_once("y") is True

    def test_before_execute_raises_typed_exceptions(self, tmp_path):
        plan = _plan("fail:0,flaky:1", tmp_path)
        with pytest.raises(InjectedFault):
            plan.before_execute(0)
        with pytest.raises(InjectedTransientFault):
            plan.before_execute(1)
        plan.before_execute(1)   # flaky fires once, then passes

    def test_parse_campaign_grade_actions(self, tmp_path):
        plan = _plan("kill-worker:3,torn-tail:1;corrupt-journal:2,"
                     "stall-heartbeat:0,fail-append:4", tmp_path)
        assert [f.action for f in plan.faults] == [
            "kill-worker", "torn-tail", "corrupt-journal",
            "stall-heartbeat", "fail-append"]
        assert plan.stall_heartbeats()

    def test_campaign_actions_do_not_touch_job_paths(self, tmp_path):
        # Journal-layer faults are addressed by append ordinal; the job
        # paths (before_execute, cache corruption, saboteurs) must
        # ignore them entirely.
        plan = _plan("kill-worker:0,fail-append:0,torn-tail:0", tmp_path)
        plan.before_execute(0)                      # no raise, no exit
        assert plan.corrupt_cache(0) is False
        assert plan.run_saboteur(0) is None

    def test_fail_append_is_persistent_from_its_ordinal(self, tmp_path):
        plan = _plan("fail-append:2", tmp_path)
        assert [plan.journal_fail_append(i) for i in range(4)] \
            == [False, False, True, True]
        assert not _plan("flaky:0", tmp_path).journal_fail_append(5)

    def test_journal_post_append_fires_once_per_ordinal(self, tmp_path):
        plan = _plan("torn-tail:1,corrupt-journal:1", tmp_path)
        assert plan.journal_post_append(0) == []
        assert plan.journal_post_append(1) == ["torn-tail",
                                               "corrupt-journal"]
        assert plan.journal_post_append(1) == []   # marker files: once


# --------------------------------------------------------------------------- #
# fault isolation + retry (inline path)
# --------------------------------------------------------------------------- #

class TestIsolationAndRetry:
    def test_deterministic_failure_isolated_and_never_retried(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = _jobs(3)
        report = run_batch(jobs, cache=cache,
                           faults=_plan("fail:1", tmp_path))
        assert [o.status for o in report.outcomes] == ["ok", "failed", "ok"]
        assert report.outcomes[1].attempts == 1   # deterministic: no retry
        assert "InjectedFault" in report.outcomes[1].error
        assert "injected deterministic failure" \
            in report.outcomes[1].worker_traceback
        # Satellite (b): the siblings' results were cached before anything
        # surfaced the failure.
        assert cache.get(jobs[0].fingerprint()) is not None
        assert cache.get(jobs[2].fingerprint()) is not None

    def test_flaky_job_recovers_by_retry(self, tmp_path):
        report = run_batch(_jobs(2), faults=_plan("flaky:1", tmp_path))
        assert [o.status for o in report.outcomes] == ["ok", "ok"]
        flaky = report.outcomes[1]
        assert flaky.attempts == 2 and flaky.retried
        assert report.retried == 1
        kinds = [e["kind"] for e in report.events]
        assert "job.retry" in kinds and "job.recovered" in kinds

    def test_retries_zero_turns_flaky_into_failure(self, tmp_path):
        report = run_batch(_jobs(1), retries=0,
                           faults=_plan("flaky:0", tmp_path))
        outcome = report.outcomes[0]
        assert outcome.status == "failed" and outcome.attempts == 1
        assert "InjectedTransientFault" in outcome.error

    def test_inline_kill_degrades_to_transient_and_recovers(self, tmp_path):
        report = run_batch(_jobs(1), faults=_plan("kill:0", tmp_path))
        outcome = report.outcomes[0]
        assert outcome.status == "ok" and outcome.attempts == 2

    def test_run_jobs_raises_only_after_whole_batch_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = _jobs(3)
        with pytest.raises(JobExecutionError) as excinfo:
            run_jobs(jobs, cache=cache, faults=_plan("fail:0", tmp_path))
        assert excinfo.value.fingerprint == jobs[0].fingerprint()
        # Jobs 1 and 2 ran to completion and were cached despite job 0
        # failing first (the old engine lost them).
        assert cache.get(jobs[1].fingerprint()) is not None
        assert cache.get(jobs[2].fingerprint()) is not None

    def test_faulty_results_match_clean_run(self, tmp_path):
        clean = run_batch(_jobs(2)).results()
        shaky = run_batch(_jobs(2), faults=_plan("flaky:0", tmp_path))
        assert shaky.results() == clean   # recovery never perturbs results

    def test_fail_fast_skips_the_rest(self, tmp_path):
        report = run_batch(_jobs(3), fail_fast=True,
                           faults=_plan("fail:0", tmp_path))
        assert [o.status for o in report.outcomes] == \
            ["failed", "skipped", "skipped"]
        with pytest.raises(BatchError):
            report.results()

    def test_batch_report_counts_and_summary(self, tmp_path):
        report = run_batch(_jobs(3), faults=_plan("fail:1,flaky:2", tmp_path))
        assert report.count("ok") == 2 and report.count("failed") == 1
        assert len(report.failures()) == 1
        assert report.first_failure().index == 1
        line = report.summary_line()
        assert "2 ok" in line and "1 failed" in line and "1 retried" in line


# --------------------------------------------------------------------------- #
# pool-crash recovery (the acceptance criterion)
# --------------------------------------------------------------------------- #

class TestPoolCrashRecovery:
    def test_killed_worker_recovered_with_siblings_intact(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = _jobs(4)
        report = run_batch(jobs, workers=2, cache=cache,
                           faults=_plan("kill:1", tmp_path))
        # The batch still yields a complete report: every job has a result,
        # the killed job was re-dispatched after the pool respawn.
        assert [o.status for o in report.outcomes] == ["ok"] * 4
        assert report.retried >= 1
        kinds = [e["kind"] for e in report.events]
        assert "pool.respawn" in kinds and "job.recovered" in kinds
        for job in jobs:
            assert cache.get(job.fingerprint()) is not None
        assert report.results() == run_batch(jobs).results()

    def test_killed_worker_without_retries_fails_cleanly(self, tmp_path):
        report = run_batch(_jobs(3), workers=2, retries=0,
                           faults=_plan("kill:0", tmp_path))
        # No retries allowed: the crash becomes per-job failures (the
        # victim plus whoever shared the broken pool), never a hang or an
        # engine crash — and untouched jobs still complete.
        assert report.count("failed") >= 1
        assert report.count("ok") + report.count("failed") == 3
        for outcome in report.outcomes:
            if outcome.status == "failed":
                assert "worker crashed" in outcome.error


# --------------------------------------------------------------------------- #
# deadlines
# --------------------------------------------------------------------------- #

class TestDeadlines:
    def test_cooperative_timeout_is_a_typed_outcome(self, tmp_path):
        report = run_batch(_jobs(2), timeout=0.0)
        for outcome in report.outcomes:
            assert outcome.status == "timeout"
            assert outcome.attempts == 1   # timeouts are never retried
            assert "SimulationTimeout" in outcome.error
        assert "job.timeout" in [e["kind"] for e in report.events]

    def test_run_jobs_surfaces_timeout_as_typed_error(self):
        with pytest.raises(JobExecutionError) as excinfo:
            run_jobs(_jobs(1), timeout=0.0)
        assert "SimulationTimeout" in str(excinfo.value)

    def test_parent_backstop_catches_wedged_worker(self, tmp_path):
        # delay:0:5 wedges job 0 *before* the cooperative guard arms, so
        # only the parent's timeout+grace backstop can reclaim it.  Job 1
        # is unaffected and completes normally.
        report = run_batch(_jobs(2), workers=2, timeout=1.0, grace=0.3,
                           faults=_plan("delay:0:5", tmp_path))
        assert report.outcomes[0].status == "timeout"
        assert "backstop" in report.outcomes[0].error
        assert report.outcomes[1].status == "ok"
        assert "pool.respawn" in [e["kind"] for e in report.events]


# --------------------------------------------------------------------------- #
# cache corruption injection
# --------------------------------------------------------------------------- #

class TestCacheCorruption:
    def test_corrupted_entry_misses_then_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = _jobs(1)
        first = run_batch(jobs, cache=cache,
                          faults=_plan("corrupt:0", tmp_path))
        assert first.outcomes[0].status == "ok"
        assert "cache.corrupted" in [e["kind"] for e in first.events]
        # The scribbled entry is a miss, not a crash...
        assert cache.get(jobs[0].fingerprint()) is None
        # ...and a faultless re-run recomputes the identical result.
        again = run_batch(jobs, cache=cache)
        assert again.outcomes[0].status == "ok"
        assert again.results() == first.results()


# --------------------------------------------------------------------------- #
# service-grade faults (daemon / client / worker injection points)
# --------------------------------------------------------------------------- #

class TestServiceFaults:
    def test_service_actions_parse(self, tmp_path):
        plan = _plan("slow-client:2:0.5,socket-drop:4,worker-wedge:0",
                     tmp_path)
        assert [f.action for f in plan.faults] == [
            "slow-client", "socket-drop", "worker-wedge"]
        assert plan.faults[0].arg == 0.5

    def test_slow_client_fires_once_with_default_stall(self, tmp_path):
        plan = _plan("slow-client:3", tmp_path)
        assert plan.service_slow_client(0) is None
        assert plan.service_slow_client(3) == 1.0
        # A retried submission replaying the same frame ordinal is not
        # stalled again (shared marker files).
        assert plan.service_slow_client(3) is None

    def test_socket_drop_fires_once_per_ordinal(self, tmp_path):
        plan = _plan("socket-drop:1,socket-drop:5", tmp_path)
        assert not plan.service_socket_drop(0)
        assert plan.service_socket_drop(1)
        assert not plan.service_socket_drop(1)
        assert plan.service_socket_drop(5)

    def test_once_state_is_shared_across_plan_instances(self, tmp_path):
        # Two processes parsing the same spec against the same state dir
        # (daemon incarnations across a restart) share fired-once state.
        first = _plan("socket-drop:2", tmp_path)
        second = _plan("socket-drop:2", tmp_path)
        assert first.service_socket_drop(2)
        assert not second.service_socket_drop(2)

    def test_worker_wedge_is_deliberately_not_once(self, tmp_path):
        # A poison job must wedge its worker on *every* attempt — that
        # repetition is what drives the circuit breaker to open.
        plan = _plan("worker-wedge:0", tmp_path)
        assert plan.service_worker_wedge(0)
        assert plan.service_worker_wedge(0)
        assert not plan.service_worker_wedge(1)


# --------------------------------------------------------------------------- #
# cluster-grade faults (the federation layer's injected partition)
# --------------------------------------------------------------------------- #

class TestPartitionFaults:
    def test_partition_spec_parses(self, tmp_path):
        plan = _plan("partition:0-1|2:8", tmp_path)
        fault = plan.faults[0]
        assert fault.action == "partition"
        assert fault.partition_groups() == (frozenset({0, 1}),
                                            frozenset({2}))
        assert plan.partition_spec() == (frozenset({0, 1}),
                                         frozenset({2}), 8)

    @pytest.mark.parametrize("spec", [
        "partition:0|1",          # no heal round
        "partition:0|1:0",        # heal round must be >= 1
        "partition:0|1:soon",     # non-numeric heal round
        "partition:0-1:4",        # only one group
        "partition:0|1|2:4",      # three groups
        "partition:0-1|1:4",      # overlapping groups
        "partition:|1:4",         # empty group
        "partition:a-b|2:4",      # non-numeric node index
    ])
    def test_bad_partition_specs_rejected(self, spec, tmp_path):
        with pytest.raises(FaultSpecError):
            _plan(spec, tmp_path)

    def test_partition_blocks_is_symmetric_and_scoped(self, tmp_path):
        plan = _plan("partition:0-1|2:8", tmp_path)
        # Cross-group traffic is blocked in both directions...
        assert plan.partition_blocks(0, 2, rounds=0)
        assert plan.partition_blocks(2, 0, rounds=0)
        assert plan.partition_blocks(1, 2, rounds=3)
        # ...same-group and same-node traffic never is...
        assert not plan.partition_blocks(0, 1, rounds=0)
        assert not plan.partition_blocks(2, 2, rounds=0)
        # ...and nodes outside both groups are unaffected.
        assert not plan.partition_blocks(0, 3, rounds=0)

    def test_partition_heals_at_the_named_round(self, tmp_path):
        # The partition is a window over the asking daemon's own gossip
        # round counter, not a once-only marker: it stays up through
        # round heal-1 and is gone from round heal on.
        plan = _plan("partition:0|1:8", tmp_path)
        assert plan.partition_blocks(0, 1, rounds=7)
        assert not plan.partition_blocks(0, 1, rounds=8)
        assert not plan.partition_blocks(0, 1, rounds=100)

    def test_no_partition_means_no_blocking(self, tmp_path):
        assert _plan("flaky:0", tmp_path).partition_spec() is None
        assert not _plan("flaky:0", tmp_path).partition_blocks(0, 1, 0)
