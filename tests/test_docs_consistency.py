"""Keep the documentation honest: every experiment documented, benched and
registered consistently across DESIGN.md, the registry and benchmarks/."""

import re
from pathlib import Path

import pytest

from repro.harness.experiments import EXPERIMENTS

ROOT = Path(__file__).resolve().parent.parent


def test_every_experiment_has_a_bench_file():
    bench_names = {p.name for p in (ROOT / "benchmarks").glob("bench_e*.py")}
    for exp_id in list(EXPERIMENTS) + ["e12"]:
        number = int(exp_id[1:])
        matches = [name for name in bench_names
                   if name.startswith(f"bench_e{number:02d}_")]
        assert matches, f"no bench file for {exp_id}"


def test_design_experiment_index_covers_registry():
    design = (ROOT / "DESIGN.md").read_text()
    for exp_id in list(EXPERIMENTS) + ["e12"]:
        token = f"| {exp_id.upper()} |"
        assert token in design, f"{exp_id} missing from DESIGN.md index"


def test_design_mentions_every_bench_target():
    design = (ROOT / "DESIGN.md").read_text()
    for path in (ROOT / "benchmarks").glob("bench_e*.py"):
        assert path.name in design, f"{path.name} not referenced in DESIGN.md"


def test_experiments_md_mentions_every_core_claim():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for needle in ("LCS", "BCS", "mixed", "GMEAN", "oracle",
                   "E9", "E11", "E20"):
        assert needle in text


def test_readme_examples_exist():
    readme = (ROOT / "README.md").read_text()
    for match in re.finditer(r"examples/(\w+\.py)", readme):
        assert (ROOT / "examples" / match.group(1)).exists(), match.group(0)


def test_readme_docs_links_exist():
    readme = (ROOT / "README.md").read_text()
    for match in re.finditer(r"docs/(\w+\.md)", readme):
        assert (ROOT / "docs" / match.group(1)).exists(), match.group(0)


def test_experiments_md_references_existing_results_files():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    matches = list(re.finditer(r"(?:docs/results/)?full_scale_results\d*\.txt",
                               text))
    assert matches, "EXPERIMENTS.md no longer mentions the results files"
    for match in matches:
        name = match.group(0).rsplit("/", 1)[-1]
        assert (ROOT / "docs" / "results" / name).exists(), match.group(0)


def test_all_public_exports_resolve():
    import repro
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


@pytest.mark.parametrize("module_name", [
    "repro.sim", "repro.mem", "repro.core", "repro.workloads",
    "repro.harness",
])
def test_subpackage_exports_resolve(module_name):
    import importlib
    module = importlib.import_module(module_name)
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_public_items_have_docstrings():
    import repro
    missing = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj) and not isinstance(obj, str):
            if not (obj.__doc__ or "").strip():
                missing.append(name)
    assert not missing, f"public items without docstrings: {missing}"
