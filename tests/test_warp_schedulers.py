"""Unit tests for the warp scheduling policies (with stub warps)."""

import pytest

from repro.core.warp_schedulers import (BAWSScheduler, GTOScheduler,
                                        LRRScheduler, available_warp_schedulers,
                                        warp_scheduler_factory)
from repro.sim.warp import WarpState


class StubCTA:
    def __init__(self, seq, block_seq=None):
        self.seq = seq
        self.block_seq = block_seq if block_seq is not None else seq


class StubWarp:
    """Mimics the Warp fields the schedulers use."""

    def __init__(self, cta, idx):
        self.cta = cta
        self.idx = idx
        self.state = WarpState.READY
        self.epoch = 0
        self.last_issue = -1
        self.age_key = (cta.seq, idx)

    def ready(self, scheduler):
        self.state = WarpState.READY
        self.epoch += 1
        scheduler.on_ready(self)
        return self

    def block(self):
        self.state = WarpState.WAIT_MEM


class TestFactory:
    def test_names(self):
        assert set(available_warp_schedulers()) == {"lrr", "gto", "baws",
                                                    "two-level", "swl"}

    def test_factory_returns_classes(self):
        assert warp_scheduler_factory("gto") is GTOScheduler

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            warp_scheduler_factory("fifo")


class TestGTO:
    def test_picks_oldest_ready(self):
        sched = GTOScheduler()
        old = StubWarp(StubCTA(0), 0).ready(sched)
        young = StubWarp(StubCTA(1), 0).ready(sched)
        assert sched.pick() is old

    def test_greedy_sticks_to_same_warp(self):
        sched = GTOScheduler()
        a = StubWarp(StubCTA(0), 0).ready(sched)
        b = StubWarp(StubCTA(1), 0).ready(sched)
        first = sched.pick()
        assert first is a
        # a stays ready: greedy keeps picking it over b.
        assert sched.pick() is a

    def test_falls_back_to_oldest_when_greedy_blocks(self):
        sched = GTOScheduler()
        a = StubWarp(StubCTA(0), 0).ready(sched)
        b = StubWarp(StubCTA(1), 0).ready(sched)
        c = StubWarp(StubCTA(2), 0).ready(sched)
        assert sched.pick() is a
        a.block()
        assert sched.pick() is b

    def test_greedy_warp_reacquired_after_wake(self):
        sched = GTOScheduler()
        a = StubWarp(StubCTA(0), 0).ready(sched)
        assert sched.pick() is a
        a.block()
        assert sched.pick() is None
        a.ready(sched)
        assert sched.pick() is a

    def test_stale_entries_skipped(self):
        sched = GTOScheduler()
        a = StubWarp(StubCTA(0), 0).ready(sched)
        a.block()
        a.ready(sched)       # new epoch; old entry stale
        picked = sched.pick()
        assert picked is a
        assert sched.pick() is a   # greedy now

    def test_empty_returns_none(self):
        assert GTOScheduler().pick() is None

    def test_warp_index_breaks_ties(self):
        sched = GTOScheduler()
        w1 = StubWarp(StubCTA(0), 1).ready(sched)
        w0 = StubWarp(StubCTA(0), 0).ready(sched)
        assert sched.pick() is w0


class TestIssueGating:
    def test_skips_warps_that_cannot_issue(self):
        sched = GTOScheduler()
        a = StubWarp(StubCTA(0), 0).ready(sched)
        b = StubWarp(StubCTA(1), 0).ready(sched)
        picked = sched.pick(can_issue=lambda w: w is b)
        assert picked is b

    def test_returns_none_when_nothing_issuable(self):
        sched = GTOScheduler()
        a = StubWarp(StubCTA(0), 0).ready(sched)
        assert sched.pick(can_issue=lambda w: False) is None
        # The warp is not lost.
        assert sched.pick(can_issue=lambda w: True) is a

    def test_blocked_greedy_demotes_but_survives(self):
        sched = GTOScheduler()
        a = StubWarp(StubCTA(0), 0).ready(sched)
        b = StubWarp(StubCTA(1), 0).ready(sched)
        assert sched.pick() is a                       # a greedy
        picked = sched.pick(can_issue=lambda w: w is b)
        assert picked is b                             # a blocked, b issues
        b.block()
        assert sched.pick() is a                       # a still findable

    def test_scan_limit_bounds_work(self):
        sched = GTOScheduler()
        warps = [StubWarp(StubCTA(i), 0).ready(sched) for i in range(20)]
        # Only the last warp is issuable but it is beyond the scan window.
        target = warps[-1]
        assert sched.pick(can_issue=lambda w: w is target) is None


class TestLRR:
    def test_least_recently_issued_first(self):
        sched = LRRScheduler()
        a = StubWarp(StubCTA(0), 0).ready(sched)
        b = StubWarp(StubCTA(1), 0).ready(sched)
        first = sched.pick()
        assert first is a
        first.last_issue = 10
        first.block()
        first.ready(sched)
        # b has never issued -> it goes first now.
        assert sched.pick() is b

    def test_no_greedy_pointer(self):
        sched = LRRScheduler()
        a = StubWarp(StubCTA(0), 0).ready(sched)
        b = StubWarp(StubCTA(1), 0).ready(sched)
        picked = sched.pick()
        picked.last_issue = 5
        picked.block()
        picked.ready(sched)
        assert sched.pick() is b   # rotation, not greed


class TestBAWS:
    def test_oldest_block_first(self):
        sched = BAWSScheduler()
        blk0 = StubWarp(StubCTA(seq=5, block_seq=0), 0).ready(sched)
        blk1 = StubWarp(StubCTA(seq=1, block_seq=1), 0).ready(sched)
        assert sched.pick() is blk0

    def test_fair_within_block(self):
        # Within one block the priority is least-recently-issued, so the
        # sibling CTAs advance together instead of GTO's strict age order.
        sched = BAWSScheduler()
        older = StubWarp(StubCTA(seq=0, block_seq=0), 0)
        younger = StubWarp(StubCTA(seq=1, block_seq=0), 0)
        older.last_issue = 10
        younger.last_issue = 2
        assert sched.priority_key(younger) < sched.priority_key(older)

    def test_block_priority_dominates_fairness(self):
        sched = BAWSScheduler()
        old_block = StubWarp(StubCTA(seq=0, block_seq=0), 0)
        new_block = StubWarp(StubCTA(seq=1, block_seq=1), 0)
        old_block.last_issue = 100   # recently issued...
        new_block.last_issue = -1    # ...but block age wins
        assert sched.priority_key(old_block) < sched.priority_key(new_block)

    def test_alternates_when_siblings_block_after_issue(self):
        # In real execution every issue blocks the warp for its latency;
        # fairness then alternates the block's siblings.
        sched = BAWSScheduler()
        cta_a = StubCTA(seq=0, block_seq=0)
        cta_b = StubCTA(seq=1, block_seq=0)
        a = StubWarp(cta_a, 0).ready(sched)
        b = StubWarp(cta_b, 0).ready(sched)
        order = []
        pending_wake = None
        for now in range(4):
            warp = sched.pick()
            order.append(warp)
            sched.on_issue(warp, now)
            warp.block()
            if pending_wake is not None:
                pending_wake.ready(sched)   # wakes one cycle later
            pending_wake = warp
        assert order == [a, b, a, b]

    def test_on_issue_updates_last_issue(self):
        sched = BAWSScheduler()
        warp = StubWarp(StubCTA(0), 0).ready(sched)
        sched.on_issue(warp, 42)
        assert warp.last_issue == 42
