"""Tests for the batch execution engine and the persistent result cache.

The determinism suite is the load-bearing part: parallel execution and
cache replay must be *field-for-field* identical to a plain serial run —
``RunResult`` is a dataclass, so ``==`` compares every counter, per-kernel
stat, CTA limit and meta entry (including the LCS decision object).
"""

import json
import warnings

import pytest

from repro.harness.cache import ResultCache
from repro.harness.engine import JobExecutionError, run_batch, run_jobs
from repro.harness.jobs import SimJob
from repro.harness.reporting import Table
from repro.sim.config import GPUConfig

SMALL = GPUConfig.small()


def _style_jobs():
    """Small-scale stand-ins for the E3 (LCS), E6 (BCS+BAWS) and E8
    (multi-kernel CKE) experiment shapes."""
    return [
        SimJob(names=("kmeans",), scale=0.05, config=SMALL),
        SimJob(names=("kmeans",), scale=0.05, policy=("lcs",), config=SMALL),
        SimJob(names=("stencil",), scale=0.05, warp="baws",
               policy=("bcs", 2, None), config=SMALL),
        SimJob(names=("kmeans", "compute"), scale=0.05,
               scale_mults=(1.0, 0.5), policy=("smk",), config=SMALL),
    ]


class TestDeterminism:
    def test_parallel_identical_to_serial(self):
        serial = run_jobs(_style_jobs(), workers=1)
        parallel = run_jobs(_style_jobs(), workers=2)
        assert serial == parallel   # dataclass ==: field-for-field

    def test_cached_replay_identical_to_serial(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = run_jobs(_style_jobs(), workers=1, cache=cache)
        assert cache.misses == 4 and cache.hits == 0
        replay = run_jobs(_style_jobs(), workers=1, cache=cache)
        assert cache.hits == 4   # zero simulations on the second pass
        assert replay == first
        uncached = run_jobs(_style_jobs(), workers=1)
        assert replay == uncached

    def test_results_preserve_input_order(self, tmp_path):
        jobs = _style_jobs()
        cache = ResultCache(tmp_path / "cache")
        # Warm only one middle job, so the second pass mixes hits + misses.
        run_jobs([jobs[2]], cache=cache)
        mixed = run_jobs(jobs, cache=cache)
        plain = run_jobs(jobs)
        assert mixed == plain

    def test_progress_callback_counts_every_job(self):
        seen = []
        run_jobs(_style_jobs()[:2],
                 progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]


class TestErrors:
    def test_worker_failure_raises_with_fingerprint(self):
        # Valid shape, fails at execution time (a CTA limit must be >= 1).
        bad = SimJob(names=("kmeans",), scale=0.05, policy=("static", 0),
                     config=SMALL)
        with pytest.raises(JobExecutionError) as excinfo:
            run_jobs([bad])
        assert bad.fingerprint()[:12] in str(excinfo.value)
        assert excinfo.value.fingerprint == bad.fingerprint()

    def test_parallel_worker_failure_propagates(self):
        bad = SimJob(names=("kmeans",), scale=0.05, policy=("static", 0),
                     config=SMALL)
        ok = SimJob(names=("kmeans",), scale=0.05, config=SMALL)
        with pytest.raises(JobExecutionError):
            run_jobs([ok, bad], workers=2)

    def test_workers_below_one_rejected(self):
        with pytest.raises(ValueError):
            run_jobs([], workers=0)


class TestCache:
    def test_round_trip_equals_original(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = SimJob(names=("kmeans",), scale=0.05, policy=("lcs",),
                     config=SMALL)
        original = job.execute()
        cache.put(job.fingerprint(), original)
        restored = cache.get(job.fingerprint())
        assert restored == original
        # The LCS decision object survives the trip intact.
        assert restored.meta["lcs_decision"] == original.meta["lcs_decision"]

    def test_corrupted_entry_is_a_miss_not_a_crash(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = SimJob(names=("kmeans",), scale=0.05, config=SMALL)
        fingerprint = job.fingerprint()
        cache.put(fingerprint, job.execute())
        cache.path_for(fingerprint).write_text("{ not json")
        assert cache.get(fingerprint) is None

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = SimJob(names=("kmeans",), scale=0.05, config=SMALL)
        fingerprint = job.fingerprint()
        cache.put(fingerprint, job.execute())
        payload = cache.path_for(fingerprint).read_text()
        cache.path_for(fingerprint).write_text(payload[:len(payload) // 2])
        assert cache.get(fingerprint) is None

    def test_unknown_entry_format_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = SimJob(names=("kmeans",), scale=0.05, config=SMALL)
        fingerprint = job.fingerprint()
        cache.put(fingerprint, job.execute())
        entry = json.loads(cache.path_for(fingerprint).read_text())
        entry["format"] = 999
        cache.path_for(fingerprint).write_text(json.dumps(entry))
        assert cache.get(fingerprint) is None

    def test_engine_recovers_from_corruption(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = SimJob(names=("kmeans",), scale=0.05, config=SMALL)
        first = run_jobs([job], cache=cache)[0]
        cache.path_for(job.fingerprint()).write_text("garbage")
        again = run_jobs([job], cache=cache)[0]
        assert again == first

    def test_stray_tmp_files_ignored_and_cleared(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = SimJob(names=("kmeans",), scale=0.05, config=SMALL)
        cache.put(job.fingerprint(), job.execute())
        # A worker killed mid-write leaves a .tmp-* file behind; it must
        # not count as an entry, not break reads, and clear() removes it.
        stray = cache.root / ".tmp-dead12.json"
        stray.write_text("{ half an entr")
        assert len(cache) == 1
        assert cache.get(job.fingerprint()) is not None
        assert cache.clear() == 2
        assert not stray.exists()

    def test_unwritable_cache_degrades_gracefully(self, tmp_path):
        # A regular file where the cache root should be makes mkdir raise
        # (chmod tricks do not work for root, which runs this suite).
        root = tmp_path / "cache"
        root.write_text("not a directory")
        cache = ResultCache(root)
        job = SimJob(names=("kmeans",), scale=0.05, config=SMALL)
        result = job.execute()
        with pytest.warns(RuntimeWarning, match="not writable"):
            assert cache.put(job.fingerprint(), result) is False
        # Only the first failure warns; every failure counts.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.put(job.fingerprint(), result) is False
        assert cache.write_errors == 2
        assert "write_errors=2" in repr(cache)

    def test_batch_survives_unwritable_cache(self, tmp_path):
        root = tmp_path / "cache"
        root.write_text("not a directory")
        cache = ResultCache(root)
        job = SimJob(names=("kmeans",), scale=0.05, config=SMALL)
        with pytest.warns(RuntimeWarning):
            report = run_batch([job], cache=cache)
        assert report.outcomes[0].status == "ok"   # un-cached, not failed
        assert cache.write_errors == 1
        assert "cache.write_error" in [e["kind"] for e in report.events]

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert len(cache) == 0 and cache.clear() == 0
        job = SimJob(names=("kmeans",), scale=0.05, config=SMALL)
        cache.put(job.fingerprint(), job.execute())
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestTableRoundTrip:
    def test_round_trip(self):
        table = Table("t", ["a", "b"])
        table.add_row("x", 1.5)
        table.add_row("y", None)
        table.add_note("n")
        restored = Table.from_dict(table.to_dict())
        assert restored.title == table.title
        assert restored.columns == table.columns
        assert restored.rows == table.rows
        assert restored.notes == table.notes
