"""Tests for the statistics containers."""

import pytest

from repro.sim.stats import CacheStats, DRAMStats, KernelStats, RunResult


class TestCacheStats:
    def test_add_accumulates_everything(self):
        a = CacheStats(accesses=10, hits=6, misses=3, merges=1,
                       mshr_stalls=2, write_accesses=5, write_hits=2,
                       fills=3, evictions=1)
        b = CacheStats(accesses=1, hits=1)
        b.add(a)
        assert b.accesses == 11
        assert b.hits == 7
        assert b.evictions == 1

    def test_rates_on_empty_stats(self):
        empty = CacheStats()
        assert empty.miss_rate == 0.0
        assert empty.hit_rate == 0.0

    def test_hit_rate_complements_miss_rate(self):
        stats = CacheStats(accesses=10, hits=7, misses=2, merges=1)
        assert stats.hit_rate + stats.miss_rate == pytest.approx(1.0)


class TestDRAMStats:
    def test_row_hit_rate(self):
        stats = DRAMStats(row_hits=3, row_misses=1)
        assert stats.row_hit_rate == pytest.approx(0.75)

    def test_row_hit_rate_empty(self):
        assert DRAMStats().row_hit_rate == 0.0


class TestKernelStats:
    def test_cycles_and_ipc(self):
        stats = KernelStats(name="k", kernel_id=0, num_ctas=4,
                            instructions=100)
        assert stats.cycles == 0       # unfinished
        assert stats.ipc == 0.0
        stats.finish_cycle = 50
        assert stats.cycles == 50
        assert stats.ipc == pytest.approx(2.0)

    def test_launch_offset(self):
        stats = KernelStats(name="k", kernel_id=0, num_ctas=1,
                            instructions=10, launch_cycle=20)
        stats.finish_cycle = 70
        assert stats.cycles == 50


class TestRunResult:
    def make(self):
        ks = KernelStats(name="k", kernel_id=0, num_ctas=1, instructions=50)
        ks.finish_cycle = 100
        return RunResult(cycles=100, instructions=50, kernels={"k": ks},
                         l1=CacheStats(accesses=10, hits=5, misses=5),
                         l2=CacheStats(), dram=DRAMStats(),
                         issued_by_sm=[25, 25])

    def test_ipc(self):
        assert self.make().ipc == pytest.approx(0.5)

    def test_ipc_zero_cycles(self):
        result = self.make()
        result.cycles = 0
        assert result.ipc == 0.0

    def test_kernel_lookup(self):
        assert self.make().kernel("k").instructions == 50

    def test_summary_mentions_components(self):
        text = self.make().summary()
        for needle in ("IPC", "L1", "L2", "DRAM", "kernel k", "stalls:",
                       "CTA limits:"):
            assert needle in text

    def test_summary_stall_breakdown_values(self):
        result = self.make()
        ks = result.kernel("k")
        ks.ready_wait, ks.alu_wait, ks.mem_wait, ks.barrier_wait = 1, 1, 2, 0
        text = result.summary()
        assert "ready=0.25" in text and "mem=0.50" in text

    def test_summary_cta_limits_forms(self):
        result = self.make()
        result.cta_limits = {0: None, 1: None}
        assert "occupancy-bound on all 2 SMs" in result.summary()
        result.cta_limits = {0: 3, 1: 3}
        assert "3 CTAs/SM on all 2 SMs" in result.summary()
        result.cta_limits = {0: 2, 1: None}
        assert "SM0=2 SM1=occ" in result.summary()
        result.cta_limits = {}
        assert "none recorded" in result.summary()
