"""Tests for the concurrent-kernel-execution policies."""

import pytest

from repro.core.cke import MixedCKE, SequentialCKE, SMKEvenCKE, SpatialCKE
from repro.harness.runner import simulate
from repro.sim.gpu import GPU

from helpers import alu_program, make_test_kernel


def pair(n=6):
    return [make_test_kernel(name="a", num_ctas=n, warps_per_cta=2),
            make_test_kernel(name="b", num_ctas=n, warps_per_cta=2)]


class TestSequential:
    def test_kernels_run_in_order(self, small_config):
        kernels = pair()
        result = simulate(kernels, config=small_config,
                          cta_scheduler=SequentialCKE(kernels))
        a, b = result.kernel("a"), result.kernel("b")
        assert a.finish_cycle is not None and b.finish_cycle is not None
        # b's first dispatch comes only after a fully completes.
        assert b.first_dispatch_cycle > a.finish_cycle

    def test_single_kernel_degenerates_gracefully(self, small_config):
        kernel = make_test_kernel(num_ctas=4)
        result = simulate(kernel, config=small_config,
                          cta_scheduler=SequentialCKE(kernel))
        assert result.kernel("test").finish_cycle is not None


class TestSpatial:
    def test_requires_two_kernels(self):
        with pytest.raises(ValueError):
            SpatialCKE([make_test_kernel()])

    def test_kernels_never_share_an_sm(self, small_config):
        kernels = pair(n=8)
        gpu = GPU(config=small_config)
        scheduler = SpatialCKE(kernels)
        scheduler.bind(gpu)
        scheduler.fill(0)
        for sm in gpu.sms:
            owners = {cta.run.kernel_id for cta in sm.active_ctas}
            assert len(owners) <= 1

    def test_share_partition(self, small_config):
        kernels = pair()
        scheduler = SpatialCKE(kernels, shares=[1, 1])
        simulate(kernels, config=small_config, cta_scheduler=scheduler)
        assert scheduler.sms_of(0) == [0]
        assert scheduler.sms_of(1) == [1]

    def test_bad_shares_rejected(self, small_config):
        kernels = pair()
        scheduler = SpatialCKE(kernels, shares=[3, 5])
        gpu = GPU(config=small_config)   # only 2 SMs
        with pytest.raises(ValueError):
            scheduler.bind(gpu)

    def test_share_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SpatialCKE(pair(), shares=[1])


class TestSMKEven:
    def test_requires_two_kernels(self):
        with pytest.raises(ValueError):
            SMKEvenCKE([make_test_kernel()])

    def test_each_kernel_capped_at_half(self, small_config):
        kernels = [make_test_kernel(name="a", num_ctas=16, warps_per_cta=1,
                                    regs_per_thread=0),
                   make_test_kernel(name="b", num_ctas=16, warps_per_cta=1,
                                    regs_per_thread=0)]
        gpu = GPU(config=small_config)   # occupancy 4 -> share 2
        scheduler = SMKEvenCKE(kernels)
        scheduler.bind(gpu)
        scheduler.fill(0)
        for sm in gpu.sms:
            assert sm.active_count(0) == 2
            assert sm.active_count(1) == 2

    def test_survivor_expands(self, small_config):
        kernels = [make_test_kernel(name="a", num_ctas=2, warps_per_cta=1),
                   make_test_kernel(name="b", num_ctas=12, warps_per_cta=1)]
        result = simulate(kernels, config=small_config,
                          cta_scheduler=SMKEvenCKE(kernels))
        assert result.kernel("b").finish_cycle is not None


class TestMixed:
    def test_requires_two_kernels(self):
        with pytest.raises(ValueError):
            MixedCKE([make_test_kernel()])

    def test_primary_index_validated(self):
        with pytest.raises(ValueError):
            MixedCKE(pair(), primary=5)

    def test_monitor_sm_hosts_primary_alone_during_monitoring(self, small_config):
        kernels = pair(n=12)
        gpu = GPU(config=small_config)
        scheduler = MixedCKE(kernels, monitor_sm=0)
        scheduler.bind(gpu)
        scheduler.fill(0)
        monitor = gpu.sms[0]
        owners = {cta.run.kernel_id for cta in monitor.active_ctas}
        assert owners == {0}

    def test_other_sms_mix_during_monitoring(self, small_config):
        kernels = [make_test_kernel(name="a", num_ctas=16, warps_per_cta=1,
                                    regs_per_thread=0),
                   make_test_kernel(name="b", num_ctas=16, warps_per_cta=1,
                                    regs_per_thread=0)]
        gpu = GPU(config=small_config)
        scheduler = MixedCKE(kernels, monitor_sm=0)
        scheduler.bind(gpu)
        scheduler.fill(0)
        other = gpu.sms[1]
        owners = {cta.run.kernel_id for cta in other.active_ctas}
        assert owners == {0, 1}

    def test_decision_made_and_run_completes(self, small_config):
        kernels = pair(n=10)
        scheduler = MixedCKE(kernels)
        result = simulate(kernels, config=small_config,
                          cta_scheduler=scheduler)
        assert scheduler.decision is not None
        assert result.kernel("a").finish_cycle is not None
        assert result.kernel("b").finish_cycle is not None

    def test_all_work_executes_exactly_once(self, small_config):
        kernels = pair(n=10)
        result = simulate(kernels, config=small_config,
                          cta_scheduler=MixedCKE(kernels))
        per_warp = len(alu_program())
        assert result.kernel("a").instructions == 10 * 2 * per_warp
        assert result.kernel("b").instructions == 10 * 2 * per_warp
