"""Golden-result store tests: digests, drift lanes, the verify gate."""

import json

import pytest

from repro.harness.jobs import SimJob
from repro.sim.config import GPUConfig
from repro.verify.golden import (DRIFT_LANES, GoldenCell, GoldenError,
                                 GoldenStore, canonical_json,
                                 canonical_result, classify_drift,
                                 diff_paths, golden_matrix, result_digest,
                                 split_lanes, verify_goldens)

SMALL = GPUConfig.small()


def _cell(label="cell-a", scale=0.05, **kwargs):
    return GoldenCell(label, SimJob(names=("kmeans",), scale=scale,
                                    config=SMALL, **kwargs))


# --------------------------------------------------------------------------- #
# canonical JSON + digests
# --------------------------------------------------------------------------- #

class TestCanonicalization:
    def test_canonical_json_is_key_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_digest_stable_under_key_order(self):
        assert (result_digest({"x": 1, "y": 2})
                == result_digest({"y": 2, "x": 1}))

    def test_canonical_result_erases_tuple_list_distinction(self):
        # Goldens live as JSON; a tuple in a live to_dict() must not read
        # as drift against the list that comes back from disk.
        live = {"meta": {"issue_counts": (3, 4)}}
        assert canonical_result(live) == {"meta": {"issue_counts": [3, 4]}}
        assert not diff_paths(canonical_result(live),
                              json.loads(canonical_json(live)))


# --------------------------------------------------------------------------- #
# diff_paths
# --------------------------------------------------------------------------- #

class TestDiffPaths:
    def test_identical_dicts_have_no_diffs(self):
        payload = {"a": 1, "b": {"c": [1, 2]}}
        assert diff_paths(payload, dict(payload)) == []

    def test_leaf_change_is_located_by_path(self):
        diffs = diff_paths({"a": {"b": 1}}, {"a": {"b": 2}})
        assert diffs == [("a.b", 1, 2)]

    def test_missing_key_reported_as_absent(self):
        diffs = diff_paths({"a": 1}, {})
        assert diffs == [("a", 1, "<absent>")]

    def test_list_length_mismatch(self):
        diffs = diff_paths({"xs": [1, 2]}, {"xs": [1]})
        assert any("<len>" in path for path, _, _ in diffs)

    def test_type_change_is_drift(self):
        assert diff_paths({"a": 1}, {"a": 1.0})


# --------------------------------------------------------------------------- #
# lanes
# --------------------------------------------------------------------------- #

class TestLanes:
    def _result(self):
        return {"cycles": 10, "meta": {"timeline": {"cycles": [5, 10]},
                                       "trace": [{"kind": "run.start"}],
                                       "kernels": ["k"]}}

    def test_split_lanes_partitions_meta_riders(self):
        lanes = split_lanes(self._result())
        assert set(lanes) == set(DRIFT_LANES)
        assert "timeline" not in lanes["stats"]["meta"]
        assert "trace" not in lanes["stats"]["meta"]
        assert lanes["timeline"] == {"cycles": [5, 10]}
        assert lanes["telemetry"] == {"trace": [{"kind": "run.start"}]}

    def test_classify_drift_names_only_drifted_lanes(self):
        golden, fresh = self._result(), self._result()
        fresh = json.loads(json.dumps(fresh))
        fresh["meta"]["timeline"] = {"cycles": [5, 11]}
        drift = classify_drift(golden, fresh)
        assert set(drift) == {"timeline"}

    def test_stats_drift_does_not_blame_telemetry(self):
        golden, fresh = self._result(), self._result()
        fresh = json.loads(json.dumps(fresh))
        fresh["cycles"] = 11
        assert set(classify_drift(golden, fresh)) == {"stats"}


# --------------------------------------------------------------------------- #
# the store
# --------------------------------------------------------------------------- #

class TestGoldenStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = GoldenStore(tmp_path)
        cell = _cell()
        store.put(cell, {"cycles": 42})
        entry = store.get(cell.label)
        assert entry["result"] == {"cycles": 42}
        assert entry["fingerprint"] == cell.job.fingerprint()

    def test_get_missing_returns_none(self, tmp_path):
        assert GoldenStore(tmp_path).get("nope") is None

    def test_tampered_entry_fails_digest_check(self, tmp_path):
        store = GoldenStore(tmp_path)
        cell = _cell()
        store.put(cell, {"cycles": 42})
        path = store.path_for(cell.label)
        entry = json.loads(path.read_text())
        entry["result"]["cycles"] = 43   # digest now stale
        path.write_text(json.dumps(entry))
        with pytest.raises(GoldenError, match="digest"):
            store.get(cell.label)

    def test_labels_and_clear_strays(self, tmp_path):
        store = GoldenStore(tmp_path)
        store.put(_cell("cell-a"), {"cycles": 1})
        store.put(_cell("cell-b", scale=0.06), {"cycles": 2})
        (tmp_path / ".tmp-abandoned").write_text("partial")
        assert store.labels() == ["cell-a", "cell-b"]
        assert store.clear_strays() == 1
        assert store.labels() == ["cell-a", "cell-b"]

    def test_bad_label_rejected(self):
        with pytest.raises(GoldenError):
            GoldenCell("has space", SimJob(names=("kmeans",), config=SMALL))


# --------------------------------------------------------------------------- #
# the pinned matrix
# --------------------------------------------------------------------------- #

class TestMatrix:
    @pytest.mark.parametrize("tier", ["smoke", "full"])
    def test_labels_unique_and_jobs_valid(self, tier):
        cells = golden_matrix(tier)
        labels = [cell.label for cell in cells]
        assert len(labels) == len(set(labels))
        for cell in cells:
            assert cell.job.fingerprint()   # constructible + hashable

    def test_full_supersets_smoke_in_size(self):
        assert len(golden_matrix("full")) > len(golden_matrix("smoke"))

    def test_unknown_tier_rejected(self):
        with pytest.raises(GoldenError):
            golden_matrix("nightly-ultra")


# --------------------------------------------------------------------------- #
# the gate
# --------------------------------------------------------------------------- #

class TestVerifyGoldens:
    CELLS = [_cell("gate-a", scale=0.05), _cell("gate-b", scale=0.06)]

    def test_update_then_verify_is_clean(self, tmp_path):
        store = GoldenStore(tmp_path)
        update = verify_goldens(self.CELLS, store, update=True)
        assert update.ok and update.count("updated") == 2
        check = verify_goldens(self.CELLS, store)
        assert check.ok and check.count("ok") == 2

    def test_missing_golden_fails_the_gate(self, tmp_path):
        report = verify_goldens(self.CELLS, GoldenStore(tmp_path))
        assert not report.ok
        assert report.count("missing") == 2

    def test_tampered_value_reports_drift_with_lane_and_path(self, tmp_path):
        store = GoldenStore(tmp_path)
        verify_goldens(self.CELLS, store, update=True)
        cell = self.CELLS[0]
        entry = json.loads(store.path_for(cell.label).read_text())
        entry["result"]["cycles"] += 1
        entry["digest"] = result_digest(entry["result"])
        store.path_for(cell.label).write_text(json.dumps(entry))

        report = verify_goldens(self.CELLS, store)
        assert not report.ok
        [verdict] = report.failures()
        assert verdict.label == cell.label
        assert verdict.status == "drift"
        assert verdict.lanes == ["stats"]
        assert any(path == "cycles" for path, _, _ in
                   verdict.diffs["stats"])
        record = verdict.to_record()
        assert record["kind"] == "golden"
        assert record["diffs"]["stats"][0]["path"] == "cycles"

    def test_stale_fingerprint_detected(self, tmp_path):
        store = GoldenStore(tmp_path)
        verify_goldens(self.CELLS, store, update=True)
        # Same labels, different job description -> stored fingerprint is
        # for a job the matrix no longer describes.
        moved = [_cell("gate-a", scale=0.07), _cell("gate-b", scale=0.08)]
        report = verify_goldens(moved, store)
        assert not report.ok
        assert report.count("stale") == 2

    def test_duplicate_labels_rejected(self, tmp_path):
        with pytest.raises(GoldenError, match="duplicate"):
            verify_goldens([_cell("dup"), _cell("dup", scale=0.06)],
                           GoldenStore(tmp_path))

    def test_summary_line_counts(self, tmp_path):
        store = GoldenStore(tmp_path)
        verify_goldens(self.CELLS, store, update=True)
        line = verify_goldens(self.CELLS, store).summary_line()
        assert "2 cell(s)" in line and "2 ok" in line
