"""Campaign chaos drill, in miniature: real worker subprocesses, real
``kill-worker`` faults, real restarts.

This is the in-repo version of ``make campaign-chaos-smoke`` — smaller
(two cells, two shards, two guaranteed kills) so it stays inside tier-1
wall-time budgets while still proving the end-to-end claim: killed
workers lose their leases, restarted workers reclaim and finish, and the
final table is bitwise-identical to an unfaulted single-worker run.
"""

import textwrap

from repro.design.chaos import run_chaos


def test_kill_restart_drill_converges_bitwise(tmp_path):
    design_file = tmp_path / "drill.toml"
    design_file.write_text(textwrap.dedent("""\
        [design]
        name = "drill"

        [[design.factor]]
        name = "bench"
        levels = ["kmeans", "streaming", "compute"]
    """))
    report = run_chaos(design_file, shards=2, min_kills=2, max_rounds=6,
                       seed=11, root=tmp_path / "chaos", scale=0.02,
                       lease_ttl=1.0, kill_span=1)
    assert report.ok, report.summary_line()
    assert report.kills >= 2
    assert report.counts["done"] == 3
    # Exactly-once: lease arbitration kept racing workers off each
    # other's cells, so no double completions were even needed.
    assert report.duplicate_done == 0
