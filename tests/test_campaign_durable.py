"""Durable-campaign tests: lease protocol, retry budgets, compaction
equivalence, append-failure degradation, and migration from the
manifest era.

The subprocess-level kill/restart drill lives in
``tests/test_campaign_chaos.py``; everything here runs in-process (so no
``kill-worker`` faults — those take the whole interpreter down).
"""

import json
import time

import pytest

from repro.design import (Campaign, CampaignError, Design, DesignEnv,
                          Factor, Journal, fold_records, load_snapshot,
                          replay_journal)
from repro.design.campaign import _LEGACY_MANIFEST, _META
from repro.design.journal import JOURNAL_NAME, SNAPSHOT_NAME
from repro.design.leases import claim_winner, claimable
from repro.harness.cache import ResultCache
from repro.harness.faults import FaultPlan

TINY = 0.02


def _design(benches=("kmeans", "streaming")):
    return Design("camp", factors=[
        Factor.crossed("bench", benches),
        Factor.crossed("policy", (("rr",),)),
    ])


def _fingerprints(campaign):
    return {cell.index: cell.fingerprint for cell in campaign.cells}


class TestLeaseProtocol:
    def test_first_live_claim_in_file_order_wins(self, tmp_path):
        env = DesignEnv(scale=TINY)
        campaign = Campaign.open(_design(), env, root=tmp_path / "c")
        journal = Journal(campaign.path / JOURNAL_NAME, worker="w1")
        journal.append("claim", cell=0, fingerprint="x", nonce="a", ttl=60)
        Journal(campaign.path / JOURNAL_NAME, worker="w2") \
            .append("claim", cell=0, fingerprint="x", nonce="b", ttl=60)
        state = campaign.refresh()
        winner = claim_winner(state.cells[0], state.beats, time.time())
        assert winner["worker"] == "w1" and winner["nonce"] == "a"
        # w2 may not claim cell 0, but cell 1 is free.
        assert claimable(state, now=time.time(), worker="w2") == [1]
        assert claimable(state, now=time.time(), worker="w1") == [0, 1]

    def test_expired_lease_is_reclaimed_and_run(self, tmp_path):
        # A worker claimed a cell and died silently: once its TTL lapses
        # the next run() must reclaim the cell and finish the campaign.
        env = DesignEnv(scale=TINY)
        cache = ResultCache(tmp_path / "cache")
        campaign = Campaign.open(_design(), env, root=tmp_path / "c")
        dead = Journal(campaign.path / JOURNAL_NAME, worker="dead")
        dead.append("claim", cell=0,
                    fingerprint=campaign.cells[0].fingerprint,
                    nonce="dead#1", ttl=0.2)
        state = campaign.refresh()
        assert claimable(state, now=time.time(), worker="live") == [1]
        time.sleep(0.25)
        report = campaign.run(cache=cache, worker_id="live")
        assert report.ok and report.executed == 2
        assert report.leases_reclaimed == 1
        assert any(e["kind"] == "lease.expired" for e in report.events)

    def test_release_unblocks_a_cell_immediately(self, tmp_path):
        env = DesignEnv(scale=TINY)
        campaign = Campaign.open(_design(), env, root=tmp_path / "c")
        other = Journal(campaign.path / JOURNAL_NAME, worker="other")
        other.append("claim", cell=0, fingerprint="x", nonce="n1", ttl=60)
        state = campaign.refresh()
        assert claimable(state, now=time.time(), worker="me") == [1]
        other.append("release", cell=0, nonce="n1")
        state = campaign.refresh()
        assert claimable(state, now=time.time(), worker="me") == [0, 1]

    def test_double_completion_resolves_by_first_done_record(self, tmp_path):
        # Two workers raced one cell (an expired-but-alive holder and its
        # reclaimer both finished): the first done record wins, the
        # second is a counted duplicate, never an error.
        env = DesignEnv(scale=TINY)
        campaign = Campaign.open(_design(), env, root=tmp_path / "c")
        fp = campaign.cells[0].fingerprint
        Journal(campaign.path / JOURNAL_NAME, worker="w1") \
            .append("done", cell=0, fingerprint=fp, cycles=111, ipc=1.0)
        Journal(campaign.path / JOURNAL_NAME, worker="w2") \
            .append("done", cell=0, fingerprint=fp, cycles=111, ipc=1.0)
        state = campaign.refresh()
        assert state.cells[0].status == "done"
        assert state.cells[0].cycles == 111
        assert state.duplicate_done == 1

    def test_done_with_wrong_fingerprint_is_ignored(self, tmp_path):
        env = DesignEnv(scale=TINY)
        campaign = Campaign.open(_design(), env, root=tmp_path / "c")
        Journal(campaign.path / JOURNAL_NAME, worker="stale") \
            .append("done", cell=0, fingerprint="from-another-design",
                    cycles=9, ipc=9.9)
        state = campaign.refresh()
        assert state.cells[0].status == "pending"
        assert state.ignored_records == 1


class TestShardedRuns:
    def test_two_workers_split_one_campaign_in_process(self, tmp_path):
        # Interleave two shard-mode run() calls by hand: worker A claims
        # chunk-by-chunk, so worker B always finds work until the
        # campaign drains; every cell ends done exactly once.
        env = DesignEnv(scale=TINY)
        cache = ResultCache(tmp_path / "cache")
        design = _design(("kmeans", "streaming", "compute"))
        a = Campaign.open(design, env, root=tmp_path / "c")
        ra = a.run(cache=cache, worker_id="A", shard=True, claim_chunk=1)
        b = Campaign.open(design, env, root=tmp_path / "c")
        rb = b.run(cache=cache, worker_id="B", shard=True, claim_chunk=1)
        assert ra.ok and rb.ok
        assert ra.executed == 3 and rb.executed == 0 and rb.resumed == 3
        state = b.refresh()
        assert state.duplicate_done == 0


class TestRetryBudget:
    def test_max_retries_exhausts_a_persistently_failing_cell(self,
                                                              tmp_path):
        env = DesignEnv(scale=TINY)
        root = tmp_path / "c"
        state_dir = str(tmp_path / "faults")
        # fail:0 targets batch position 0 every run; with max_retries=1
        # the cell earns: failed (attempt 1), failed (attempt 2),
        # exhausted.
        first = Campaign.open(_design(), env, root=root)
        r1 = first.run(faults=FaultPlan.parse("fail:0",
                                              state_dir=state_dir),
                       retries=0, max_retries=1)
        assert r1.failed == 1 and r1.exhausted == 0

        second = Campaign.open(_design(), env, root=root)
        r2 = second.run(faults=FaultPlan.parse("fail:0",
                                               state_dir=state_dir),
                        retries=0, max_retries=1)
        assert r2.failed == 0 and r2.exhausted == 1
        assert second.counts()["exhausted"] == 1
        assert not r2.ok

        # An exhausted cell is never claimed again: no faults this time,
        # yet nothing is dispatched for it.
        third = Campaign.open(_design(), env, root=root)
        r3 = third.run(max_retries=1)
        assert r3.executed == 0 and r3.exhausted == 1
        kinds = [r["type"] for r in
                 replay_journal(third.path / JOURNAL_NAME).records]
        assert "exhausted" in kinds

    def test_without_cap_failed_cells_retry_forever(self, tmp_path):
        env = DesignEnv(scale=TINY)
        root = tmp_path / "c"
        state_dir = str(tmp_path / "faults")
        for _ in range(3):
            campaign = Campaign.open(_design(), env, root=root)
            report = campaign.run(
                faults=FaultPlan.parse("fail:0", state_dir=state_dir),
                retries=0)
            assert report.failed == 1 and report.exhausted == 0
        assert campaign.counts()["failed"] == 1


class TestCompaction:
    def test_snapshot_plus_tail_equals_full_journal(self, tmp_path):
        # The mid-campaign equivalence property: fold(snapshot + journal
        # tail) must equal fold(full journal).
        env = DesignEnv(scale=TINY)
        cache = ResultCache(tmp_path / "cache")
        design = _design(("kmeans", "streaming", "compute"))
        campaign = Campaign.open(design, env, root=tmp_path / "c")
        # Complete two cells, keep the full journal aside, compact, then
        # append a post-compaction record.
        fps = _fingerprints(campaign)
        journal = Journal(campaign.path / JOURNAL_NAME, worker="w")
        journal.append("done", cell=0, fingerprint=fps[0], cycles=10,
                       ipc=1.0)
        journal.append("failed", cell=1, fingerprint=fps[1], error="x")
        full_records = list(replay_journal(campaign.path
                                           / JOURNAL_NAME).records)
        assert campaign.compact()
        tail = Journal(campaign.path / JOURNAL_NAME, worker="w")
        tail.append("done", cell=2, fingerprint=fps[2], cycles=30, ipc=3.0)
        tail_record = replay_journal(campaign.path / JOURNAL_NAME).records
        full_records.extend(tail_record)

        via_snapshot = fold_records(
            tail_record, fingerprints=fps,
            base=load_snapshot(campaign.path, campaign.digest))
        via_full = fold_records(full_records, fingerprints=fps)
        for index in fps:
            a, b = via_snapshot.cells[index], via_full.cells[index]
            assert (a.status, a.attempts, a.cycles, a.ipc, a.error) \
                == (b.status, b.attempts, b.cycles, b.ipc, b.error)

    def test_compact_truncates_journal_and_resumes(self, tmp_path):
        env = DesignEnv(scale=TINY)
        cache = ResultCache(tmp_path / "cache")
        campaign = Campaign.open(_design(), env, root=tmp_path / "c")
        campaign.run(cache=cache)
        assert len(replay_journal(campaign.path / JOURNAL_NAME).records) > 0
        assert campaign.compact()
        assert replay_journal(campaign.path / JOURNAL_NAME).records == []
        assert (campaign.path / SNAPSHOT_NAME).exists()
        resumed = Campaign.open(_design(), env, root=tmp_path / "c")
        report = resumed.run(cache=cache)
        assert report.executed == 0 and report.resumed == 2

    def test_compact_refuses_under_a_live_lease(self, tmp_path):
        env = DesignEnv(scale=TINY)
        campaign = Campaign.open(_design(), env, root=tmp_path / "c")
        Journal(campaign.path / JOURNAL_NAME, worker="other") \
            .append("claim", cell=0,
                    fingerprint=campaign.cells[0].fingerprint,
                    nonce="n", ttl=60)
        assert campaign.compact() is False
        assert campaign.compact(force=True) is True

    def test_auto_compaction_during_run(self, tmp_path):
        env = DesignEnv(scale=TINY)
        cache = ResultCache(tmp_path / "cache")
        campaign = Campaign.open(_design(), env, root=tmp_path / "c")
        report = campaign.run(cache=cache, compact_every=1)
        assert report.ok
        assert any(e["kind"] == "journal.compact" for e in report.events)
        resumed = Campaign.open(_design(), env, root=tmp_path / "c")
        assert resumed.counts()["done"] == 2


class TestAppendFailureDegradation:
    def test_campaign_completes_with_warning_and_snapshot_fallback(
            self, tmp_path):
        env = DesignEnv(scale=TINY)
        cache = ResultCache(tmp_path / "cache")
        campaign = Campaign.open(_design(), env, root=tmp_path / "c")
        plan = FaultPlan.parse("fail-append:0",
                               state_dir=str(tmp_path / "faults"))
        with pytest.warns(RuntimeWarning, match="not appendable"):
            report = campaign.run(cache=cache, faults=plan)
        assert report.ok and report.executed == 2
        assert report.journal_append_errors > 0
        assert any(e["kind"] == "campaign.snapshot_fallback"
                   for e in report.events)
        # Nothing reached the journal, but the exit snapshot preserved
        # the outcome: a fresh invocation resumes, not re-executes.
        assert replay_journal(campaign.path / JOURNAL_NAME).records == []
        resumed = Campaign.open(_design(), env, root=tmp_path / "c")
        assert resumed.counts()["done"] == 2
        report = resumed.run(cache=cache)
        assert report.executed == 0 and report.resumed == 2


class TestStoreHygiene:
    def test_legacy_manifest_is_migrated(self, tmp_path):
        env = DesignEnv(scale=TINY)
        campaign = Campaign.open(_design(), env, root=tmp_path / "c")
        # Rebuild the pre-journal store shape: one manifest.json, no
        # meta/journal.
        manifest = {
            "format": 1, "name": campaign.name, "digest": campaign.digest,
            "env": campaign.env.to_payload(), "written": 0.0,
            "cells": [{**cell.to_record(),
                       "status": "done" if cell.index == 0 else "failed",
                       "cycles": 42 if cell.index == 0 else None,
                       "ipc": 1.5 if cell.index == 0 else None,
                       "error": None if cell.index == 0 else "boom"}
                      for cell in campaign.cells],
        }
        for name in (_META, JOURNAL_NAME):
            (campaign.path / name).unlink(missing_ok=True)
        (campaign.path / _LEGACY_MANIFEST).write_text(json.dumps(manifest))

        migrated = Campaign.open(_design(), env, root=tmp_path / "c")
        assert migrated.counts()["done"] == 1
        assert migrated.counts()["failed"] == 1
        assert migrated.cells[0].cycles == 42
        assert migrated.cells[1].attempts == 1
        assert (campaign.path / _META).exists()
        assert not (campaign.path / _LEGACY_MANIFEST).exists()
        assert (campaign.path / (_LEGACY_MANIFEST + ".migrated")).exists()

    def test_stray_tmp_files_are_swept_on_open(self, tmp_path):
        env = DesignEnv(scale=TINY)
        campaign = Campaign.open(_design(), env, root=tmp_path / "c")
        stray = campaign.path / ".tmp-meta-abandoned"
        stray.write_text("half a manifest")
        reopened = Campaign.open(_design(), env, root=tmp_path / "c")
        assert reopened.path == campaign.path
        assert not stray.exists()

    def test_corrupt_meta_is_quarantined_and_rebuilt(self, tmp_path):
        env = DesignEnv(scale=TINY)
        campaign = Campaign.open(_design(), env, root=tmp_path / "c")
        (campaign.path / _META).write_text("{truncated")
        reopened = Campaign.open(_design(), env, root=tmp_path / "c")
        assert len(reopened.cells) == 2
        assert (campaign.path / (_META + ".corrupt")).exists()
        assert json.loads((campaign.path / _META).read_text())["format"] == 2

    def test_corrupt_meta_load_quarantines_then_raises(self, tmp_path):
        env = DesignEnv(scale=TINY)
        campaign = Campaign.open(_design(), env, root=tmp_path / "c")
        (campaign.path / _META).write_text('{"format": 99}')
        with pytest.raises(CampaignError, match="quarantined"):
            Campaign.load(campaign.path)
        assert (campaign.path / (_META + ".corrupt")).exists()

    def test_journal_damage_is_surfaced_as_an_event(self, tmp_path):
        env = DesignEnv(scale=TINY)
        cache = ResultCache(tmp_path / "cache")
        campaign = Campaign.open(_design(), env, root=tmp_path / "c")
        campaign.run(cache=cache)
        with open(campaign.path / JOURNAL_NAME, "ab") as handle:
            handle.write(b'{"type": "done", "torn...')
        resumed = Campaign.open(_design(), env, root=tmp_path / "c")
        report = resumed.run(cache=cache)
        assert report.resumed == 2
        assert any(e["kind"] == "journal.damage"
                   and e["payload"]["torn_tail"] for e in report.events)


class TestHeartbeatLifecycle:
    def test_ttl_jitter_is_deterministic_and_bounded(self):
        from repro.design import TTL_JITTER_FRAC, worker_ttl_jitter
        values = [worker_ttl_jitter(f"worker-{i}") for i in range(16)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert len(set(values)) > 1                 # actually spreads
        assert worker_ttl_jitter("w") == worker_ttl_jitter("w")
        assert 0.0 < TTL_JITTER_FRAC < 1.0

    def test_claimed_ttl_carries_the_worker_jitter(self, tmp_path):
        # N workers given the same --lease-ttl must not expire and
        # reclaim in lockstep; the journaled claim ttl shows the spread.
        from repro.design import TTL_JITTER_FRAC, worker_ttl_jitter
        env = DesignEnv(scale=TINY)
        cache = ResultCache(tmp_path / "cache")
        campaign = Campaign.open(_design(), env, root=tmp_path / "c")
        campaign.run(cache=cache, worker_id="jittered", lease_ttl=30.0)
        claims = [r for r in
                  replay_journal(campaign.path / JOURNAL_NAME).records
                  if r["type"] == "claim"]
        expected = 30.0 * (1.0 + TTL_JITTER_FRAC
                           * worker_ttl_jitter("jittered"))
        assert claims and all(c["ttl"] == pytest.approx(expected)
                              for c in claims)
        assert all(c["ttl"] > 30.0 for c in claims)

    def test_heartbeat_thread_joined_after_clean_run(self, tmp_path):
        import threading
        env = DesignEnv(scale=TINY)
        cache = ResultCache(tmp_path / "cache")
        campaign = Campaign.open(_design(), env, root=tmp_path / "c")
        assert campaign.run(cache=cache).ok
        assert not [t for t in threading.enumerate()
                    if t.name == "campaign-heartbeat"]

    def test_heartbeat_thread_joined_when_cells_fail(self, tmp_path):
        # The worker "dies mid-cell" (every cell fails): the finally
        # must still join the heartbeat — no zombie thread keeps
        # defending leases the worker no longer holds.
        import threading
        env = DesignEnv(scale=TINY)
        campaign = Campaign.open(_design(), env, root=tmp_path / "c")
        plan = FaultPlan.parse("fail:0,fail:1",
                               state_dir=str(tmp_path / "faults"))
        report = campaign.run(faults=plan, retries=0)
        assert report.failed == 2
        assert not [t for t in threading.enumerate()
                    if t.name == "campaign-heartbeat"]


class TestAppendFailureMidCampaign:
    def test_degraded_append_mid_campaign_snapshots_on_exit(self,
                                                            tmp_path):
        # fail-append:3 lets the first three appends land (claim, done,
        # claim) and then the "disk fills": the campaign must still
        # complete, warn once, and leave a snapshot whose fold equals
        # the full outcome — the journaled prefix plus the snapshot.
        env = DesignEnv(scale=TINY)
        cache = ResultCache(tmp_path / "cache")
        campaign = Campaign.open(_design(), env, root=tmp_path / "c")
        plan = FaultPlan.parse("fail-append:3",
                               state_dir=str(tmp_path / "faults"))
        with pytest.warns(RuntimeWarning, match="not appendable"):
            report = campaign.run(cache=cache, faults=plan)
        assert report.ok and report.executed == 2
        assert report.journal_append_errors > 0
        assert any(e["kind"] == "campaign.snapshot_fallback"
                   for e in report.events)
        # Unlike the append-dead-from-birth case, a prefix DID persist;
        # recovery folds snapshot + partial journal, not either alone.
        persisted = replay_journal(campaign.path / JOURNAL_NAME).records
        assert 0 < len(persisted) <= 3
        resumed = Campaign.open(_design(), env, root=tmp_path / "c")
        assert resumed.counts()["done"] == 2
        report = resumed.run(cache=cache)
        assert report.executed == 0 and report.resumed == 2
