"""Tests for LCS: decision rules, monitor, scheduler behaviour."""

import pytest

from repro.core.lcs import (LCSMonitor, LCSScheduler, decide_n_star,
                            decide_n_star_coverage, decide_n_star_tail,
                            decide_n_star_threshold)
from repro.harness.runner import simulate
from repro.sim.config import GPUConfig
from repro.sim.isa import Instruction, Op, alu, exit_
from repro.workloads.suite import make_kernel

from helpers import make_test_kernel


class TestTailRule:
    def test_flat_runner_ups_keep_occupancy(self):
        assert decide_n_star_tail([1000, 500, 490, 480, 470], 0.5, 8) == 5

    def test_cliff_throttles(self):
        assert decide_n_star_tail([1000, 800, 700, 50, 10, 5], 0.5, 8) == 3

    def test_single_count_keeps_occupancy(self):
        assert decide_n_star_tail([1000], 0.5, 8) == 8

    def test_zero_tail_gives_one(self):
        assert decide_n_star_tail([1000, 0, 0], 0.5, 8) == 1

    def test_clamped_to_occupancy(self):
        assert decide_n_star_tail([10, 9, 9, 9], 0.5, 2) == 2

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            decide_n_star_tail([1, 2], 0.0, 4)


class TestCoverageRule:
    def test_full_coverage_needs_all(self):
        assert decide_n_star_coverage([100, 100, 100, 100], 1.0, 8) == 4

    def test_half_coverage(self):
        assert decide_n_star_coverage([100, 100, 100, 100], 0.5, 8) == 2

    def test_heavy_head(self):
        assert decide_n_star_coverage([900, 50, 25, 25], 0.9, 8) == 1

    def test_empty_counts_keep_occupancy(self):
        assert decide_n_star_coverage([], 0.9, 8) == 8

    def test_zero_counts_keep_occupancy(self):
        assert decide_n_star_coverage([0, 0], 0.9, 8) == 8

    def test_invalid_coverage(self):
        with pytest.raises(ValueError):
            decide_n_star_coverage([1], 1.5, 4)


class TestThresholdRule:
    def test_counts_above_fraction_of_max(self):
        assert decide_n_star_threshold([100, 60, 30, 5], 0.5, 8) == 2

    def test_never_below_one(self):
        assert decide_n_star_threshold([100, 0, 0], 0.99, 8) == 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            decide_n_star_threshold([1], 0.0, 4)


class TestDispatch:
    def test_dispatch_by_rule_name(self):
        counts = [1000, 800, 700, 50]
        assert decide_n_star(counts, 8, rule="tail") == \
            decide_n_star_tail(counts, 0.5, 8)
        assert decide_n_star(counts, 8, rule="coverage", param=0.9) == \
            decide_n_star_coverage(counts, 0.9, 8)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            decide_n_star([1], 4, rule="magic")


class TestMonitor:
    def test_invalid_rule_rejected(self):
        with pytest.raises(ValueError):
            LCSMonitor(rule="nope")

    def test_invalid_guard_rejected(self):
        with pytest.raises(ValueError):
            LCSMonitor(util_guard=2.0)


def _cache_thrash_kernel(num_ctas=24, seed_salt=""):
    """Per-warp private random footprints: 2 CTAs fit the small L1."""
    import numpy as np

    def builder(cta_id, warp_idx):
        rng = np.random.default_rng(cta_id * 13 + warp_idx)
        owner = cta_id * 2 + warp_idx
        program = []
        for off in rng.integers(0, 8, size=30):
            program.append(Instruction(Op.LD_GLOBAL,
                                       lines=(owner * 8 + int(off),)))
            program.append(alu(2))
        program.append(exit_())
        return program

    return make_test_kernel(name="thrash" + seed_salt, num_ctas=num_ctas,
                            warps_per_cta=2, builder=builder,
                            regs_per_thread=0)


class TestLCSEndToEnd:
    def test_monitoring_produces_decision(self, small_config):
        kernel = _cache_thrash_kernel()
        scheduler = LCSScheduler(kernel)
        result = simulate(kernel, config=small_config,
                          cta_scheduler=scheduler)
        decision = scheduler.decision
        assert decision is not None
        assert 1 <= decision.n_star <= decision.occupancy
        assert decision.issue_counts == tuple(
            sorted(decision.issue_counts, reverse=True))
        assert result.meta["lcs_decision"] is decision

    def test_limits_snapshot_shows_n_star(self, small_config):
        kernel = _cache_thrash_kernel()
        scheduler = LCSScheduler(kernel)
        result = simulate(kernel, config=small_config,
                          cta_scheduler=scheduler)
        assert set(result.cta_limits.values()) == {scheduler.decision.n_star}

    def test_all_ctas_complete_under_throttling(self, small_config):
        kernel = _cache_thrash_kernel()
        scheduler = LCSScheduler(kernel, rule="threshold", param=0.9)
        result = simulate(kernel, config=small_config,
                          cta_scheduler=scheduler)
        assert result.kernel(kernel.name).finish_cycle is not None

    def test_barrier_kernel_trips_barrier_guard(self, small_config):
        from repro.sim.isa import barrier
        # Heavy barrier phasing with a memory access per phase: the issue
        # signature looks cliff-shaped but must not be trusted.
        def builder(cta_id, warp_idx):
            program = []
            for step in range(8):
                program.append(Instruction(
                    Op.LD_GLOBAL, lines=(cta_id * 64 + step * 4 + warp_idx,)))
                program.append(alu(2))
                program.append(barrier())
            program.append(exit_())
            return program

        kernel = make_test_kernel(name="phased", num_ctas=24,
                                  warps_per_cta=2, builder=builder,
                                  regs_per_thread=0)
        scheduler = LCSScheduler(kernel)
        simulate(kernel, config=small_config, cta_scheduler=scheduler)
        decision = scheduler.decision
        assert decision.barriers_per_warp >= decision.barrier_guard
        assert decision.guard_reason == "barriers"
        # The decision fell back to the coverage rule on the same counts.
        from repro.core.lcs import DEFAULT_COVERAGE
        assert decision.n_star == decide_n_star_coverage(
            decision.issue_counts, DEFAULT_COVERAGE, decision.occupancy)

    def test_invalid_barrier_guard_rejected(self):
        with pytest.raises(ValueError):
            LCSMonitor(barrier_guard=-1.0)

    def test_compute_kernel_trips_guard(self, small_config):
        kernel = make_test_kernel(
            name="hot", num_ctas=16, warps_per_cta=4,
            builder=lambda c, w: [alu(1)] * 60 + [exit_()],
            regs_per_thread=0)
        scheduler = LCSScheduler(kernel)
        simulate(kernel, config=small_config, cta_scheduler=scheduler)
        decision = scheduler.decision
        assert decision.guard_tripped
        assert decision.n_star == decision.occupancy

    def test_rejects_multiple_kernels(self):
        with pytest.raises(ValueError):
            LCSScheduler([make_test_kernel(name="a"),
                          make_test_kernel(name="b")])

    def test_threshold_alias_parameter(self):
        scheduler = LCSScheduler(make_test_kernel(), threshold=0.3)
        assert scheduler.monitor.rule == "threshold"
        assert scheduler.monitor.param == 0.3

    def test_threshold_and_param_conflict(self):
        with pytest.raises(ValueError):
            LCSScheduler(make_test_kernel(), threshold=0.3, param=0.5)

    def test_lcs_beats_baseline_on_cache_sensitive_suite_kernel(self):
        # The headline behaviour at reduced scale on the real config.
        config = GPUConfig()
        base = simulate(make_kernel("kmeans", scale=0.25), config=config)
        kernel = make_kernel("kmeans", scale=0.25)
        scheduler = LCSScheduler(kernel)
        lcs = simulate(kernel, config=config, cta_scheduler=scheduler)
        assert scheduler.decision.throttled
        assert lcs.cycles <= base.cycles * 1.02
