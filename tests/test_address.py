"""Unit tests for address mapping."""

import pytest

from repro.mem.address import dram_coordinates, l2_bank_of, line_of


class TestLineOf:
    def test_basic(self):
        assert line_of(0, 128) == 0
        assert line_of(127, 128) == 0
        assert line_of(128, 128) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            line_of(-1, 128)


class TestL2Bank:
    def test_interleaves_at_line_granularity(self):
        banks = [l2_bank_of(line, 6) for line in range(12)]
        assert banks == [0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5]


class TestDRAMCoordinates:
    def test_row_chunked_channel_interleave(self):
        # 16 consecutive lines share one (channel, bank, row) chunk.
        first = dram_coordinates(0, channels=6, banks=8, row_lines=16)
        last = dram_coordinates(15, channels=6, banks=8, row_lines=16)
        assert first == last

    def test_next_chunk_moves_channel(self):
        a = dram_coordinates(0, channels=6, banks=8, row_lines=16)
        b = dram_coordinates(16, channels=6, banks=8, row_lines=16)
        assert b.channel == (a.channel + 1) % 6

    def test_banks_cycle_after_channels(self):
        row_lines, channels, banks = 16, 6, 8
        a = dram_coordinates(0, channels, banks, row_lines)
        b = dram_coordinates(row_lines * channels, channels, banks, row_lines)
        assert b.channel == a.channel
        assert b.bank == a.bank + 1

    def test_rows_advance_after_all_banks(self):
        row_lines, channels, banks = 16, 6, 8
        stride = row_lines * channels * banks
        a = dram_coordinates(5, channels, banks, row_lines)
        b = dram_coordinates(5 + stride, channels, banks, row_lines)
        assert (b.channel, b.bank) == (a.channel, a.bank)
        assert b.row == a.row + 1

    def test_coordinates_partition_address_space(self):
        seen = set()
        for line in range(6 * 8 * 16 * 2):
            coords = dram_coordinates(line, 6, 8, 16)
            seen.add((coords.channel, coords.bank, coords.row, line % 16))
        # Every (channel, bank, row, offset) combination is hit exactly once.
        assert len(seen) == 6 * 8 * 16 * 2
