"""Shared tiny-kernel/program builders for the test suite."""

from __future__ import annotations

from repro.sim.isa import Instruction, Op
from repro.sim.kernel import Kernel


def alu_program(count: int = 10, latency: int = 2) -> list[Instruction]:
    program = [Instruction(Op.ALU, latency=latency) for _ in range(count)]
    program.append(Instruction(Op.EXIT))
    return program


def load_program(lines: list[int], alu_between: int = 0) -> list[Instruction]:
    program: list[Instruction] = []
    for line in lines:
        program.append(Instruction(Op.LD_GLOBAL, lines=(line,)))
        program.extend(Instruction(Op.ALU, latency=2)
                       for _ in range(alu_between))
    program.append(Instruction(Op.EXIT))
    return program


def make_test_kernel(name: str = "test", num_ctas: int = 4,
                     warps_per_cta: int = 2, builder=None, **kwargs) -> Kernel:
    """A small kernel with a configurable program builder."""
    if builder is None:
        def builder(cta_id: int, warp_idx: int):
            return alu_program()
    kwargs.setdefault("regs_per_thread", 8)
    return Kernel(name, num_ctas, warps_per_cta, builder, **kwargs)
