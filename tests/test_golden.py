"""Golden regression tests: pinned end-to-end numbers for tiny runs.

These exist to catch *accidental* timing-model changes.  The simulator is
fully deterministic, so any diff here means the model's behaviour changed.
If the change is intentional (a model fix or recalibration), update the
goldens AND regenerate the full-scale tables in EXPERIMENTS.md — the two
must move together.

Parametrized over both simulator backends: the vector core is contracted
to reproduce the object core bitwise, so it must hit the exact same
goldens (the default ``gto`` warp scheduler is vector-supported).
"""

import pytest

from repro.harness.runner import simulate
from repro.sim.config import GPUConfig
from repro.workloads.suite import make_kernel

# (kernel, scale) -> (cycles, instructions, l1_misses, dram_reads)
GOLDEN = {
    ("kmeans", 0.05): (3904, 31248, 1152, 1152),
    ("stencil", 0.05): (2451, 12888, 504, 300),
    ("compute", 0.05): (2628, 35280, 576, 576),
}


@pytest.mark.parametrize("backend", ["object", "vector"])
@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_golden_run(key, backend):
    name, scale = key
    result = simulate(make_kernel(name, scale=scale), config=GPUConfig(),
                      backend=backend)
    expected = GOLDEN[key]
    measured = (result.cycles, result.instructions, result.l1.misses,
                result.dram.reads)
    assert measured == expected, (
        f"{name}@{scale} [{backend}]: measured {measured}, golden "
        f"{expected} — if this model change is intentional, update GOLDEN "
        "and re-baseline EXPERIMENTS.md")
