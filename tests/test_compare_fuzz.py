"""Tests for the run-comparison helper and the fuzz workload generator."""

import pytest

from repro.core.lcs import LCSScheduler
from repro.harness.compare import compare_runs, stall_shift
from repro.harness.runner import simulate
from repro.harness.validate import validate_run
from repro.sim.config import GPUConfig
from repro.workloads.fuzz import random_kernel
from repro.workloads.suite import make_kernel

from helpers import make_test_kernel


class TestCompareRuns:
    def make_pair(self, small_config):
        a = simulate(make_test_kernel(num_ctas=8), config=small_config)
        kernel = make_test_kernel(num_ctas=8)
        b = simulate(kernel, config=small_config,
                     cta_scheduler=LCSScheduler(kernel))
        return a, b

    def test_table_shape(self, small_config):
        a, b = self.make_pair(small_config)
        table = compare_runs({"base": a, "lcs": b})
        assert table.column("run") == ["base", "lcs"]
        assert table.row_for("base")[1] == pytest.approx(1.0)

    def test_speedup_relative_to_first(self, small_config):
        a, b = self.make_pair(small_config)
        table = compare_runs({"base": a, "lcs": b})
        assert table.row_for("lcs")[1] == pytest.approx(a.cycles / b.cycles)

    def test_mismatched_work_rejected(self, small_config):
        a = simulate(make_test_kernel(num_ctas=4), config=small_config)
        b = simulate(make_test_kernel(num_ctas=8), config=small_config)
        with pytest.raises(ValueError):
            compare_runs({"a": a, "b": b})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_runs({})

    def test_chart_renders(self, small_config):
        a, b = self.make_pair(small_config)
        table = compare_runs({"base": a, "lcs": b})
        assert "#" in table.render_chart("speedup")

    def test_stall_shift_sums_to_zero(self):
        config = GPUConfig(num_sms=2)
        base = simulate(make_kernel("kmeans", scale=0.05), config=config)
        kernel = make_kernel("kmeans", scale=0.05)
        lcs = simulate(kernel, config=config,
                       cta_scheduler=LCSScheduler(kernel))
        shift = stall_shift(base, lcs, "kmeans")
        assert sum(shift.values()) == pytest.approx(0.0, abs=1e-9)


class TestRandomKernel:
    @pytest.mark.parametrize("seed", range(8))
    def test_runs_and_validates(self, seed, small_config):
        kernel = random_kernel(seed)
        result = simulate(kernel, config=small_config)
        validate_run(result)

    def test_deterministic_in_seed(self, small_config):
        a = simulate(random_kernel(42), config=small_config)
        b = simulate(random_kernel(42), config=small_config)
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions

    def test_different_seeds_differ(self):
        a = random_kernel(1)
        b = random_kernel(2)
        assert (a.num_ctas, a.warps_per_cta,
                a.build_warp_program(0, 0)) != \
               (b.num_ctas, b.warps_per_cta, b.build_warp_program(0, 0))

    def test_barrier_counts_uniform(self):
        for seed in range(10):
            kernel = random_kernel(seed)
            from repro.sim.isa import Op
            counts = {
                sum(1 for inst in kernel.build_warp_program(0, w)
                    if inst.op is Op.BARRIER)
                for w in range(kernel.warps_per_cta)
            }
            assert len(counts) == 1

    def test_name_override(self):
        assert random_kernel(7, name="custom").name == "custom"
