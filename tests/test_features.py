"""Tests for the optional micro-architecture features (prefetch, store
write-combining) and their statistics plumbing."""

from repro.harness.runner import simulate
from repro.harness.validate import validate_run
from repro.sim.config import GPUConfig
from repro.sim.isa import exit_, load, store
from repro.workloads.suite import make_kernel

from helpers import make_test_kernel


class TestPrefetch:
    def test_sequential_loads_trigger_prefetches(self, small_config):
        config = small_config.with_overrides(l1_prefetch_next_line=True)
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [load([i]) for i in range(8)] + [exit_()])
        result = simulate(kernel, config=config)
        assert result.l1.prefetches > 0

    def test_prefetched_line_hits_later(self, small_config):
        config = small_config.with_overrides(l1_prefetch_next_line=True)
        # Load line 0 (prefetches 1), wait via compute, then load line 1.
        from repro.sim.isa import alu
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [load([0])] + [alu(8)] * 30
                                 + [load([1]), exit_()])
        result = simulate(kernel, config=config)
        assert result.l1.hits >= 1
        assert result.dram.reads == 2   # demand + prefetch, no extra

    def test_prefetch_off_by_default(self, small_config):
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [load([i]) for i in range(8)] + [exit_()])
        result = simulate(kernel, config=small_config)
        assert result.l1.prefetches == 0

    def test_prefetch_runs_pass_validation(self):
        config = GPUConfig(num_sms=2, l1_prefetch_next_line=True)
        result = simulate(make_kernel("streaming", scale=0.03), config=config)
        validate_run(result)

    def test_prefetch_helps_dependent_sequential_reader(self, small_config):
        # One warp walking lines with compute between loads: the prefetch
        # hides the next line's latency.
        from repro.sim.isa import alu

        def builder(c, w):
            program = []
            for i in range(16):
                program.append(load([i]))
                program.extend([alu(4)] * 10)
            program.append(exit_())
            return program

        kernel_off = make_test_kernel(num_ctas=1, warps_per_cta=1,
                                      builder=builder)
        off = simulate(kernel_off, config=small_config)
        kernel_on = make_test_kernel(num_ctas=1, warps_per_cta=1,
                                     builder=builder)
        on = simulate(kernel_on, config=small_config.with_overrides(
            l1_prefetch_next_line=True))
        assert on.cycles < off.cycles


class TestStoreCoalescing:
    def test_repeated_store_line_absorbed(self, small_config):
        config = small_config.with_overrides(store_coalescing=True)
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [store([7]) for _ in range(6)] + [exit_()])
        result = simulate(kernel, config=config)
        assert result.l1.stores_coalesced == 5
        assert result.l2.write_accesses == 1

    def test_window_evicts_old_lines(self, small_config):
        config = small_config.with_overrides(store_coalescing=True,
                                             store_coalesce_window=2)
        # Lines 1,2,3 push 1 out of the window; storing 1 again is a miss.
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [store([1]), store([2]), store([3]),
                                  store([1]), exit_()])
        result = simulate(kernel, config=config)
        assert result.l1.stores_coalesced == 0
        assert result.l2.write_accesses == 4

    def test_off_by_default(self, small_config):
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: [store([7]), store([7]), exit_()])
        result = simulate(kernel, config=small_config)
        assert result.l1.stores_coalesced == 0
        assert result.l2.write_accesses == 2

    def test_coalescing_runs_pass_validation(self):
        config = GPUConfig(num_sms=2, store_coalescing=True)
        result = simulate(make_kernel("histogram", scale=0.03), config=config)
        validate_run(result)
        assert result.l1.stores_coalesced > 0

    def test_reduces_dram_writes_on_hot_bins(self, small_config):
        def builder(c, w):
            # All stores hammer 2 lines.
            return [store([w % 2]) for _ in range(20)] + [exit_()]

        off_kernel = make_test_kernel(num_ctas=2, warps_per_cta=2,
                                      builder=builder)
        off = simulate(off_kernel, config=small_config)
        on_kernel = make_test_kernel(num_ctas=2, warps_per_cta=2,
                                     builder=builder)
        on = simulate(on_kernel, config=small_config.with_overrides(
            store_coalescing=True))
        assert on.dram.writes < off.dram.writes


class TestInterconnectBandwidth:
    def test_off_by_default_matches_fixed_latency(self, small_config):
        from helpers import load_program
        kernel = make_test_kernel(
            num_ctas=1, warps_per_cta=1,
            builder=lambda c, w: load_program([0]))
        result = simulate(kernel, config=small_config)
        floor = (2 * small_config.icnt_latency + small_config.l2_latency
                 + small_config.dram_t_row_miss)
        assert result.cycles >= floor

    def test_narrow_link_serialises_traffic(self, small_config):
        from repro.sim.isa import exit_, load

        # The link only binds when it is the bottleneck, so the traffic must
        # be L2-hit traffic (DRAM untouched after warm-up): every warp
        # re-reads an L2-resident region that is far bigger than the L1.
        def builder(c, w):
            program = []
            for repeat in range(3):
                for i in range(8):
                    base = ((c * 32 + w * 8 + i) * 4) % 180
                    program.append(load([base, base + 1, base + 2, base + 3]))
            program.append(exit_())
            return program

        config = small_config.with_overrides(l1_mshr_entries=64,
                                             l1_mshr_max_merge=16)
        wide_kernel = make_test_kernel(num_ctas=8, warps_per_cta=4,
                                       builder=builder)
        wide = simulate(wide_kernel, config=config)
        narrow_kernel = make_test_kernel(num_ctas=8, warps_per_cta=4,
                                         builder=builder)
        narrow = simulate(narrow_kernel, config=config.with_overrides(
            icnt_bw_per_direction=1))
        assert narrow.cycles > wide.cycles * 1.05
        # Same work either way.
        assert narrow.instructions == wide.instructions

    def test_generous_bandwidth_changes_nothing(self, small_config):
        kernel_a = make_test_kernel(num_ctas=4, warps_per_cta=2)
        a = simulate(kernel_a, config=small_config)
        kernel_b = make_test_kernel(num_ctas=4, warps_per_cta=2)
        b = simulate(kernel_b, config=small_config.with_overrides(
            icnt_bw_per_direction=1000))
        assert a.cycles == b.cycles

    def test_validation_holds_with_bandwidth_model(self):
        from repro.harness.validate import validate_run
        config = GPUConfig(num_sms=2, icnt_bw_per_direction=2)
        result = simulate(make_kernel("streaming", scale=0.03), config=config)
        validate_run(result)


class TestStatsPlumbing:
    def test_cache_stats_add_includes_new_counters(self):
        from repro.sim.stats import CacheStats
        a = CacheStats(prefetches=3, stores_coalesced=2)
        b = CacheStats(prefetches=1, stores_coalesced=1)
        b.add(a)
        assert b.prefetches == 4
        assert b.stores_coalesced == 3
