"""Unit tests for the FR-FCFS DRAM model."""

import pytest

from repro.mem.dram import DRAMModel, SCAN_WINDOW
from repro.sim.config import GPUConfig
from repro.sim.events import EventQueue


@pytest.fixture
def setup():
    config = GPUConfig.small()
    events = EventQueue()
    dram = DRAMModel(config, events)
    return config, events, dram


def drain(events, until=1_000_000):
    """Run the event queue to completion; returns the last processed time."""
    last = 0
    while events:
        t = events.next_time()
        assert t <= until, "runaway event chain"
        events.run_due(t)
        last = t
    return last


class TestReads:
    def test_read_completes_and_calls_back(self, setup):
        config, events, dram = setup
        done = []
        dram.read(0, 0, lambda now, arg: done.append((now, arg)), "req")
        drain(events)
        assert len(done) == 1
        now, arg = done[0]
        assert arg == "req"
        # Cold access: row miss + burst at minimum.
        assert now >= config.dram_t_row_miss + config.dram_t_burst

    def test_row_hit_faster_than_row_miss(self, setup):
        config, events, dram = setup
        times = []
        dram.read(0, 0, lambda now, arg: times.append(now))
        drain(events)
        dram.read(1, times[0], lambda now, arg: times.append(now))  # same row
        drain(events)
        hit_latency = times[1] - times[0]
        miss_latency = times[0]
        assert hit_latency < miss_latency
        assert dram.stats.row_hits == 1
        assert dram.stats.row_misses == 1

    def test_sequential_stream_mostly_row_hits(self, setup):
        config, events, dram = setup
        done = []
        for line in range(config.dram_row_lines):
            dram.read(line, 0, lambda now, arg: done.append(now))
        drain(events)
        assert dram.stats.row_hits == config.dram_row_lines - 1
        assert len(done) == config.dram_row_lines

    def test_bus_serializes_same_channel(self, setup):
        config, events, dram = setup
        done = []
        # Two lines in the same chunk -> same channel.
        dram.read(0, 0, lambda now, arg: done.append(now))
        dram.read(1, 0, lambda now, arg: done.append(now))
        drain(events)
        assert abs(done[1] - done[0]) >= config.dram_t_burst

    def test_different_channels_overlap(self, setup):
        config, events, dram = setup
        done = {}
        # Chunked mapping: chunk k -> channel k % channels.
        line_ch0 = 0
        line_ch1 = config.dram_row_lines
        dram.read(line_ch0, 0, lambda now, arg: done.setdefault("a", now))
        dram.read(line_ch1, 0, lambda now, arg: done.setdefault("b", now))
        drain(events)
        # Both are cold row misses; with independent channels they finish
        # at the same cycle instead of serialising.
        assert done["a"] == done["b"]


class TestWrites:
    def test_write_occupies_bandwidth(self, setup):
        config, events, dram = setup
        done = []
        dram.write(0, 0)
        dram.read(1, 0, lambda now, arg: done.append(now))
        drain(events)
        assert dram.stats.writes == 1
        # The read queued behind the write's bus occupancy.
        solo = config.dram_t_row_miss + config.dram_t_burst
        assert done[0] > solo

    def test_write_generates_no_callback(self, setup):
        config, events, dram = setup
        dram.write(0, 0)
        drain(events)  # must not raise or call anything


class TestFRFCFS:
    def test_row_hit_bypasses_older_row_miss(self, setup):
        config, events, dram = setup
        order = []
        # Open a row on bank (chunk 0), then enqueue: a request to a
        # different row of the SAME bank, then a row hit.
        dram.read(0, 0, lambda now, arg: order.append(arg), "warmup")
        drain(events)
        stride = config.dram_row_lines * config.dram_channels * \
            config.dram_banks_per_channel
        start = 10_000
        dram.read(stride, start, lambda now, arg: order.append(arg), "miss")
        dram.read(1, start, lambda now, arg: order.append(arg), "hit")
        drain(events)
        assert order == ["warmup", "hit", "miss"]

    def test_scan_window_bounds_reordering(self, setup):
        config, events, dram = setup
        # A row hit parked beyond the scan window cannot be promoted.
        assert SCAN_WINDOW >= 1

    def test_pending_requests_counter(self, setup):
        config, events, dram = setup
        for line in range(4):
            dram.read(line, 0, lambda now, arg: None)
        assert dram.pending_requests == 4
        drain(events)
        assert dram.pending_requests == 0


class TestOpenRow:
    def test_open_row_tracking(self, setup):
        config, events, dram = setup
        assert dram.open_row(0) is None
        dram.read(0, 0, lambda now, arg: None)
        drain(events)
        assert dram.open_row(0) == 0
