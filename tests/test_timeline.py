"""Tests for the timeline sampler."""

import pytest

from repro.core.cta_schedulers import RoundRobinCTAScheduler
from repro.core.lcs import LCSScheduler
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPU
from repro.sim.timeline import TimelineSampler
from repro.workloads.suite import make_kernel

from helpers import make_test_kernel


def run_with_sampler(kernel, config, scheduler=None, period=50):
    gpu = GPU(config=config)
    sampler = TimelineSampler(gpu, period=period)
    gpu.run(scheduler if scheduler is not None
            else RoundRobinCTAScheduler(kernel))
    return gpu, sampler


class TestSampler:
    def test_period_validated(self, small_config):
        gpu = GPU(config=small_config)
        with pytest.raises(ValueError):
            TimelineSampler(gpu, period=0)

    def test_samples_are_periodic_and_ordered(self, small_config):
        kernel = make_test_kernel(num_ctas=16, warps_per_cta=4)
        gpu, sampler = run_with_sampler(kernel, small_config,
                                        RoundRobinCTAScheduler(kernel))
        assert sampler.samples, "no samples collected"
        cycles = [s.cycle for s in sampler.samples]
        assert cycles == sorted(cycles)
        assert all(c % 50 == 0 for c in cycles)

    def test_issued_counts_monotonic(self, small_config):
        kernel = make_test_kernel(num_ctas=16, warps_per_cta=4)
        gpu, sampler = run_with_sampler(kernel, small_config,
                                        RoundRobinCTAScheduler(kernel))
        issued = [s.issued_total for s in sampler.samples]
        assert issued == sorted(issued)
        assert sum(s.issued_since_last for s in sampler.samples) <= gpu.total_issued

    def test_occupancy_bounded_by_hardware(self, small_config):
        kernel = make_test_kernel(num_ctas=32, warps_per_cta=1,
                                  regs_per_thread=0)
        gpu, sampler = run_with_sampler(kernel, small_config,
                                        RoundRobinCTAScheduler(kernel))
        for sample in sampler.samples:
            assert all(0 <= c <= small_config.max_ctas_per_sm
                       for c in sample.ctas_per_sm)
            assert all(0 <= w <= small_config.max_warps_per_sm
                       for w in sample.warps_per_sm)

    def test_ipc_series_matches_samples(self, small_config):
        kernel = make_test_kernel(num_ctas=8, warps_per_cta=4)
        gpu, sampler = run_with_sampler(kernel, small_config,
                                        RoundRobinCTAScheduler(kernel))
        assert len(sampler.ipc_series) == len(sampler.samples)
        assert all(ipc >= 0 for ipc in sampler.ipc_series)

    def test_lcs_drain_visible_in_occupancy_series(self):
        """After the LCS decision the mean resident CTA count drops."""
        config = GPUConfig(num_sms=4)
        kernel = make_kernel("kmeans", scale=0.15)
        gpu = GPU(config=config)
        sampler = TimelineSampler(gpu, period=500)
        scheduler = LCSScheduler(kernel)
        gpu.run(scheduler)
        decision = scheduler.decision
        assert decision is not None and decision.throttled
        before = [s.mean_ctas_per_sm for s in sampler.samples
                  if s.cycle <= decision.decided_cycle]
        after = [s.mean_ctas_per_sm for s in sampler.samples
                 if s.cycle > decision.decided_cycle * 1.5]
        # Drop tail-of-grid samples where occupancy naturally drains.
        after = [x for x in after if x > 0][:max(1, len(after) // 2)]
        if before and after:
            assert min(after) <= max(before)
