"""Fuzz the scheduling policies with random kernels.

Extends the structured property tests: every policy must terminate,
conserve work and satisfy the run invariants on arbitrary valid kernels.
"""

import pytest

from repro.core.bcs import BCSScheduler
from repro.core.combined import LCSBCSScheduler
from repro.core.cta_schedulers import (DepthFirstCTAScheduler,
                                       StaticLimitCTAScheduler)
from repro.core.dyncta import DynCTAScheduler
from repro.core.lcs import LCSScheduler
from repro.harness.runner import simulate
from repro.harness.validate import validate_run
from repro.sim.config import GPUConfig
from repro.workloads.fuzz import random_kernel

CONFIG = GPUConfig.small()

POLICY_BUILDERS = {
    "static2": lambda k: StaticLimitCTAScheduler(k, limit_per_sm=2),
    "depth-first": DepthFirstCTAScheduler,
    "lcs": LCSScheduler,
    "bcs2": lambda k: BCSScheduler(k, block_size=2),
    "lcs+bcs": LCSBCSScheduler,
    "dyncta": lambda k: DynCTAScheduler(k, window=128),
}


def expected_instructions(kernel):
    return sum(len(kernel.build_warp_program(c, w))
               for c in range(kernel.num_ctas)
               for w in range(kernel.warps_per_cta))


@pytest.mark.parametrize("policy_name", sorted(POLICY_BUILDERS))
@pytest.mark.parametrize("seed", (11, 23, 37))
def test_policy_on_random_kernel(policy_name, seed):
    kernel = random_kernel(seed)
    build = POLICY_BUILDERS[policy_name]
    result = simulate(kernel, config=CONFIG, cta_scheduler=build(kernel))
    validate_run(result)
    reference = random_kernel(seed)
    assert result.instructions == expected_instructions(reference)


@pytest.mark.parametrize("warp_scheduler", ("lrr", "gto", "baws",
                                            "two-level"))
@pytest.mark.parametrize("seed", (5, 17))
def test_warp_scheduler_on_random_kernel(warp_scheduler, seed):
    kernel = random_kernel(seed)
    result = simulate(kernel, config=CONFIG, warp_scheduler=warp_scheduler)
    validate_run(result)


@pytest.mark.parametrize("seed", (3, 9))
def test_random_kernels_with_features_enabled(seed):
    config = GPUConfig.small(l1_prefetch_next_line=True,
                             store_coalescing=True,
                             icnt_bw_per_direction=2)
    kernel = random_kernel(seed)
    result = simulate(kernel, config=config)
    validate_run(result)


@pytest.mark.parametrize("seed", (7, 13))
def test_random_kernel_cycle_accurate_equivalence(seed):
    from repro.core.cta_schedulers import RoundRobinCTAScheduler
    from repro.sim.gpu import GPU
    cycles = []
    for cycle_accurate in (False, True):
        gpu = GPU(config=CONFIG)
        gpu.run(RoundRobinCTAScheduler(random_kernel(seed)),
                cycle_accurate=cycle_accurate)
        cycles.append((gpu.cycle, gpu.total_issued))
    assert cycles[0] == cycles[1]
