"""Unit tests for Kernel description and occupancy arithmetic."""

import pytest

from repro.sim.config import GPUConfig
from repro.sim.isa import Op, alu
from repro.sim.kernel import KernelResourceError

from helpers import alu_program, make_test_kernel


class TestConstruction:
    def test_rejects_zero_ctas(self):
        with pytest.raises(ValueError):
            make_test_kernel(num_ctas=0)

    def test_rejects_zero_warps(self):
        with pytest.raises(ValueError):
            make_test_kernel(warps_per_cta=0)

    def test_rejects_negative_resources(self):
        with pytest.raises(ValueError):
            make_test_kernel(regs_per_thread=-1)

    def test_repr_mentions_name(self):
        assert "test" in repr(make_test_kernel())


class TestProgramBuilding:
    def test_builds_and_validates(self):
        kernel = make_test_kernel()
        program = kernel.build_warp_program(0, 0)
        assert program[-1].op is Op.EXIT

    def test_invalid_builder_output_rejected(self):
        kernel = make_test_kernel(builder=lambda c, w: [alu()])  # no EXIT
        with pytest.raises(ValueError):
            kernel.build_warp_program(0, 0)

    def test_out_of_range_ids_rejected(self):
        kernel = make_test_kernel(num_ctas=2, warps_per_cta=2)
        with pytest.raises(ValueError):
            kernel.build_warp_program(2, 0)
        with pytest.raises(ValueError):
            kernel.build_warp_program(0, 2)

    def test_builder_receives_ids(self):
        seen = []

        def builder(cta_id, warp_idx):
            seen.append((cta_id, warp_idx))
            return alu_program()

        kernel = make_test_kernel(builder=builder)
        kernel.build_warp_program(3, 1)
        assert seen == [(3, 1)]


class TestOccupancy:
    def test_cta_slot_limit(self):
        config = GPUConfig()
        kernel = make_test_kernel(warps_per_cta=1, regs_per_thread=0)
        assert kernel.max_ctas_per_sm(config) == config.max_ctas_per_sm

    def test_warp_limit(self):
        config = GPUConfig()   # 48 warps
        kernel = make_test_kernel(warps_per_cta=12, regs_per_thread=0)
        assert kernel.max_ctas_per_sm(config) == 4

    def test_register_limit(self):
        config = GPUConfig()   # 32768 regs
        # 64 regs x 4 warps x 32 lanes = 8192 regs per CTA -> 4 CTAs.
        kernel = make_test_kernel(warps_per_cta=4, regs_per_thread=64)
        assert kernel.max_ctas_per_sm(config) == 4

    def test_shared_memory_limit(self):
        config = GPUConfig()   # 48 KB
        kernel = make_test_kernel(warps_per_cta=1, regs_per_thread=0,
                                  shmem_per_cta=16384)
        assert kernel.max_ctas_per_sm(config) == 3

    def test_unfittable_kernel_raises(self):
        config = GPUConfig()
        kernel = make_test_kernel(shmem_per_cta=config.shared_mem_per_sm + 1)
        with pytest.raises(KernelResourceError):
            kernel.max_ctas_per_sm(config)

    def test_breakdown_reports_each_resource(self):
        config = GPUConfig()
        kernel = make_test_kernel(warps_per_cta=4, regs_per_thread=64,
                                  shmem_per_cta=8192)
        breakdown = kernel.occupancy_breakdown(config)
        assert breakdown["registers"] == 4
        assert breakdown["shared_mem"] == 6
        assert breakdown["warps"] == 12
        assert kernel.max_ctas_per_sm(config) == min(breakdown.values())

    def test_regs_per_cta(self):
        config = GPUConfig()
        kernel = make_test_kernel(warps_per_cta=2, regs_per_thread=10)
        assert kernel.regs_per_cta(config) == 10 * 2 * 32
