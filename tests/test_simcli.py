"""Tests for the repro-sim single-run CLI."""

from repro.harness.simcli import main
from repro.workloads.suite import make_kernel
from repro.workloads.tracefile import save_kernel_trace


def test_basic_run(capsys):
    assert main(["kmeans", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out
    assert "warp-time breakdown" in out


def test_lcs_policy_prints_decision(capsys):
    assert main(["kmeans", "--scale", "0.05", "--policy", "lcs"]) == 0
    assert "LCS decision" in capsys.readouterr().out


def test_static_policy(capsys):
    assert main(["kmeans", "--scale", "0.05", "--policy", "static:2"]) == 0


def test_static_without_limit_errors(capsys):
    assert main(["kmeans", "--policy", "static"]) == 2
    assert "static:N" in capsys.readouterr().err


def test_bcs_policy_with_baws(capsys):
    assert main(["stencil", "--scale", "0.05", "--warp", "baws",
                 "--policy", "bcs:2"]) == 0


def test_dyncta_policy_prints_quotas(capsys):
    assert main(["kmeans", "--scale", "0.05", "--policy", "dyncta"]) == 0
    assert "DynCTA final quotas" in capsys.readouterr().out


def test_swl_warp_scheduler(capsys):
    assert main(["kmeans", "--scale", "0.05", "--warp", "swl:4"]) == 0


def test_kepler_config(capsys):
    assert main(["compute", "--scale", "0.05", "--config", "kepler"]) == 0


def test_unknown_config_errors(capsys):
    assert main(["kmeans", "--config", "pascal"]) == 2


def test_unknown_policy_errors(capsys):
    assert main(["kmeans", "--policy", "magic"]) == 2


def test_unknown_kernel_errors(capsys):
    assert main(["nonesuch"]) == 2


def test_timeline_output(tmp_path, capsys):
    csv = tmp_path / "timeline.csv"
    assert main(["kmeans", "--scale", "0.05", "--timeline", str(csv),
                 "--timeline-period", "200"]) == 0
    lines = csv.read_text().splitlines()
    header = lines[0].split(",")
    assert header[0] == "cycle"
    assert {"ipc", "resident_ctas", "l1_miss_rate",
            "dram_bus_util"} <= set(header)
    assert len(lines) > 1


def test_timeline_window_to_stdout(capsys):
    assert main(["kmeans", "--scale", "0.05", "--timeline", "500"]) == 0
    out = capsys.readouterr().out
    assert "cycle,ipc" in out
    assert "timeline (" in out


def test_trace_output_chrome_and_jsonl(tmp_path, capsys):
    import json

    chrome = tmp_path / "trace.json"
    assert main(["kmeans", "--scale", "0.05", "--policy", "lcs",
                 "--trace", str(chrome)]) == 0
    doc = json.loads(chrome.read_text())
    assert any(e.get("ph") == "X" for e in doc["traceEvents"])
    assert any(e["name"] == "lcs.decision" for e in doc["traceEvents"])

    jsonl = tmp_path / "trace.jsonl"
    assert main(["kmeans", "--scale", "0.05", "--trace", str(jsonl)]) == 0
    records = [json.loads(line)
               for line in jsonl.read_text().splitlines()]
    assert records[0]["kind"] == "run.start"
    assert records[-1]["kind"] == "run.end"


def test_trace_file_input(tmp_path, capsys):
    path = tmp_path / "k.json"
    save_kernel_trace(make_kernel("kmeans", scale=0.02), path)
    assert main([str(path), "--policy", "lcs"]) == 0
    assert "kmeans" in capsys.readouterr().out


def test_engine_timeout_is_typed_error(capsys):
    assert main(["kmeans", "--scale", "0.05", "--no-cache",
                 "--timeout", "0"]) == 1
    assert "SimulationTimeout" in capsys.readouterr().err


def test_live_path_timeout_is_typed_error(capsys):
    assert main(["kmeans", "--scale", "0.05", "--timeline", "500",
                 "--timeout", "0"]) == 1
    assert "timed out" in capsys.readouterr().err


def test_env_fault_injection_fails_run(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_FAULTS", "fail:0")
    assert main(["kmeans", "--scale", "0.05", "--no-cache"]) == 1
    err = capsys.readouterr().err
    assert "InjectedFault" in err


def test_env_fault_bad_spec_is_usage_error(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_FAULTS", "explode:0")
    assert main(["kmeans", "--scale", "0.05", "--no-cache"]) == 2
    assert "bad fault spec" in capsys.readouterr().err
