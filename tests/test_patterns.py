"""Tests for the address-pattern generators."""

import pytest

from repro.workloads.patterns import (DEFAULT_SEED, Region, gather_lines,
                                      hot_cold_lines, private_footprint,
                                      region_base, rng_for, stream_lines,
                                      tile_with_halo, warp_slice)


class TestRegion:
    def test_line_wraps(self):
        region = Region(100, 10)
        assert region.line(0) == 100
        assert region.line(10) == 100
        assert region.line(13) == 103

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            Region(-1, 10)
        with pytest.raises(ValueError):
            Region(0, 0)


class TestDeterminism:
    def test_rng_reproducible(self):
        a = rng_for(DEFAULT_SEED, "kmeans", 3, 1).integers(0, 1000, 10)
        b = rng_for(DEFAULT_SEED, "kmeans", 3, 1).integers(0, 1000, 10)
        assert list(a) == list(b)

    def test_rng_differs_across_warps(self):
        a = rng_for(DEFAULT_SEED, "kmeans", 3, 1).integers(0, 1000, 10)
        b = rng_for(DEFAULT_SEED, "kmeans", 3, 2).integers(0, 1000, 10)
        assert list(a) != list(b)

    def test_rng_differs_across_kernels(self):
        a = rng_for(DEFAULT_SEED, "kmeans", 0, 0).integers(0, 1000, 10)
        b = rng_for(DEFAULT_SEED, "bfs", 0, 0).integers(0, 1000, 10)
        assert list(a) != list(b)

    def test_region_bases_well_separated(self):
        bases = set()
        for name in ("kmeans", "bfs", "streaming", "spmv"):
            for which in range(3):
                bases.add(region_base(name, which))
        assert len(bases) == 12
        ordered = sorted(bases)
        gaps = [b - a for a, b in zip(ordered, ordered[1:])]
        assert min(gaps) >= 1 << 22


class TestStream:
    def test_streams_are_disjoint(self):
        region = Region(0, 1 << 20)
        a = stream_lines(region, 0, 10)
        b = stream_lines(region, 1, 10)
        assert not set(a) & set(b)

    def test_lines_consecutive(self):
        region = Region(50, 1 << 20)
        lines = stream_lines(region, 2, 5)
        assert lines == [60, 61, 62, 63, 64]


class TestPrivateFootprint:
    def test_stays_inside_footprint(self):
        region = Region(0, 1 << 20)
        rng = rng_for(1, "x", 0, 0)
        lines = private_footprint(region, owner_index=3, footprint=8,
                                  rng=rng, accesses=100)
        assert all(24 <= line < 32 for line in lines)

    def test_owners_disjoint(self):
        region = Region(0, 1 << 20)
        a = private_footprint(region, 0, 8, rng_for(1, "x", 0, 0), 50)
        b = private_footprint(region, 1, 8, rng_for(1, "x", 0, 1), 50)
        assert not set(a) & set(b)


class TestGather:
    def test_lines_distinct_within_access(self):
        region = Region(0, 64)
        gathers = gather_lines(region, rng_for(1, "g", 0, 0), 20, 4)
        for lines in gathers:
            assert len(set(lines)) == 4

    def test_access_count(self):
        region = Region(0, 64)
        assert len(gather_lines(region, rng_for(1, "g", 0, 0), 7, 2)) == 7


class TestHotCold:
    def test_fraction_respected_statistically(self):
        hot = Region(0, 16)
        cold = Region(1 << 20, 1 << 16)
        lines = hot_cold_lines(hot, cold, rng_for(1, "h", 0, 0), 2000, 0.7)
        hot_hits = sum(1 for line in lines if line < 16)
        assert 0.6 < hot_hits / 2000 < 0.8

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            hot_cold_lines(Region(0, 1), Region(10, 1),
                           rng_for(1, "h", 0, 0), 10, 1.5)


class TestTileWithHalo:
    def test_adjacent_ctas_share_exactly_halo(self):
        region = Region(0, 1 << 20)
        a = set(tile_with_halo(region, 0, tile_lines=16, halo_lines=4))
        b = set(tile_with_halo(region, 1, tile_lines=16, halo_lines=4))
        assert len(a & b) == 4

    def test_non_adjacent_ctas_disjoint(self):
        region = Region(0, 1 << 20)
        a = set(tile_with_halo(region, 0, 16, 4))
        c = set(tile_with_halo(region, 2, 16, 4))
        assert not a & c

    def test_offset_shifts_plane(self):
        region = Region(0, 1 << 20)
        base = tile_with_halo(region, 1, 16, 4)
        moved = tile_with_halo(region, 1, 16, 4, offset=1000)
        assert [line - 1000 for line in moved] == base

    def test_invalid_args(self):
        region = Region(0, 100)
        with pytest.raises(ValueError):
            tile_with_halo(region, 0, 0, 4)
        with pytest.raises(ValueError):
            tile_with_halo(region, 0, 4, -1)
        with pytest.raises(ValueError):
            tile_with_halo(region, 0, 4, 1, offset=-5)


class TestWarpSlice:
    def test_round_robin_partition(self):
        lines = list(range(10))
        slices = [warp_slice(lines, w, 4) for w in range(4)]
        assert slices[0] == [0, 4, 8]
        assert slices[3] == [3, 7]
        together = sorted(line for part in slices for line in part)
        assert together == lines

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            warp_slice([1, 2], 2, 2)
