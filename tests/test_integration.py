"""End-to-end invariants on real suite kernels at small scale.

These run the *actual* benchmark kernels through the full stack and check
conservation laws and qualitative behaviours the paper relies on.
"""

import pytest

from repro.core.bcs import BCSScheduler
from repro.core.cta_schedulers import StaticLimitCTAScheduler
from repro.core.lcs import LCSScheduler
from repro.harness.runner import simulate
from repro.sim.config import GPUConfig
from repro.sim.isa import Op
from repro.workloads.suite import SUITE, make_kernel

SCALE = 0.05


def expected_instructions(kernel):
    total = 0
    for cta_id in range(kernel.num_ctas):
        for warp_idx in range(kernel.warps_per_cta):
            total += len(kernel.build_warp_program(cta_id, warp_idx))
    return total


@pytest.mark.parametrize("name", sorted(SUITE))
def test_every_benchmark_runs_and_conserves_instructions(name):
    kernel = make_kernel(name, scale=SCALE)
    result = simulate(kernel, config=GPUConfig())
    reference = make_kernel(name, scale=SCALE)
    assert result.instructions == expected_instructions(reference)
    assert result.kernel(name).finish_cycle is not None
    assert result.cycles > 0


@pytest.mark.parametrize("name", ("kmeans", "stencil", "streaming"))
@pytest.mark.parametrize("warp_sched", ("lrr", "gto", "baws"))
def test_instruction_count_invariant_across_schedulers(name, warp_sched):
    """Scheduling policy must never change *what* executes, only *when*."""
    kernel = make_kernel(name, scale=SCALE)
    result = simulate(kernel, config=GPUConfig(), warp_scheduler=warp_sched)
    reference = make_kernel(name, scale=SCALE)
    assert result.instructions == expected_instructions(reference)


@pytest.mark.parametrize("policy_builder", [
    lambda k: StaticLimitCTAScheduler(k, limit_per_sm=1),
    lambda k: StaticLimitCTAScheduler(k, limit_per_sm=3),
    lambda k: LCSScheduler(k),
    lambda k: BCSScheduler(k, block_size=2),
    lambda k: BCSScheduler(k, block_size=4),
])
def test_instruction_count_invariant_across_cta_policies(policy_builder):
    kernel = make_kernel("kmeans", scale=SCALE)
    result = simulate(kernel, config=GPUConfig(),
                      cta_scheduler=policy_builder(kernel))
    reference = make_kernel("kmeans", scale=SCALE)
    assert result.instructions == expected_instructions(reference)


def test_memory_traffic_conservation():
    """Demand fetches: every L1 miss becomes exactly one L2 access; every
    L2 (load) miss becomes exactly one DRAM read."""
    kernel = make_kernel("kmeans", scale=SCALE)
    result = simulate(kernel, config=GPUConfig())
    assert result.l2.accesses == result.l1.misses
    assert result.dram.reads == result.l2.misses


def test_store_traffic_conservation():
    kernel = make_kernel("streaming", scale=SCALE)
    result = simulate(kernel, config=GPUConfig())
    stores = 0
    reference = make_kernel("streaming", scale=SCALE)
    for cta_id in range(reference.num_ctas):
        for warp_idx in range(reference.warps_per_cta):
            for inst in reference.build_warp_program(cta_id, warp_idx):
                if inst.op is Op.ST_GLOBAL:
                    stores += len(inst.lines)
    assert result.l1.write_accesses == stores
    assert result.l2.write_accesses == stores


def test_occupancy_throttling_reduces_l1_misses_for_cache_kernel():
    kernel = make_kernel("kmeans", scale=0.1)
    throttled = simulate(kernel, config=GPUConfig(),
                         cta_scheduler=StaticLimitCTAScheduler(
                             kernel, limit_per_sm=2))
    kernel2 = make_kernel("kmeans", scale=0.1)
    full = simulate(kernel2, config=GPUConfig())
    assert throttled.l1.miss_rate < full.l1.miss_rate


def test_bcs_reduces_l1_misses_on_halo_kernel():
    kernel = make_kernel("stencil", scale=0.1)
    base = simulate(kernel, config=GPUConfig())
    kernel2 = make_kernel("stencil", scale=0.1)
    bcs = simulate(kernel2, config=GPUConfig(), warp_scheduler="baws",
                   cta_scheduler=BCSScheduler(kernel2))
    assert bcs.l1.miss_rate < base.l1.miss_rate


def test_lcs_decision_is_deterministic():
    def run():
        kernel = make_kernel("kmeans", scale=0.1)
        scheduler = LCSScheduler(kernel)
        simulate(kernel, config=GPUConfig(), cta_scheduler=scheduler)
        return scheduler.decision

    a, b = run(), run()
    assert a.n_star == b.n_star
    assert a.issue_counts == b.issue_counts
    assert a.decided_cycle == b.decided_cycle


def test_num_sms_scaling_speeds_up_execution():
    small = simulate(make_kernel("compute", scale=0.1),
                     config=GPUConfig(num_sms=4))
    large = simulate(make_kernel("compute", scale=0.1),
                     config=GPUConfig(num_sms=15))
    assert large.cycles < small.cycles


def test_larger_l1_reduces_misses():
    base = simulate(make_kernel("kmeans", scale=0.1),
                    config=GPUConfig(l1_size=16 * 1024))
    big = simulate(make_kernel("kmeans", scale=0.1),
                   config=GPUConfig(l1_size=64 * 1024))
    assert big.l1.miss_rate < base.l1.miss_rate
