"""Tests for the trace builder."""

import pytest

from repro.sim.isa import Op
from repro.workloads.programs import (TraceBuilder, instruction_mix,
                                      memory_intensity)


class TestTraceBuilder:
    def test_fluent_chain_builds_valid_program(self):
        program = (TraceBuilder().alu(2).load(5).barrier().store([6, 7])
                   .shared().build())
        assert program[-1].op is Op.EXIT
        assert [i.op for i in program[:-1]] == [
            Op.ALU, Op.ALU, Op.LD_GLOBAL, Op.BARRIER, Op.ST_GLOBAL, Op.SHARED]

    def test_default_latencies(self):
        program = TraceBuilder(alu_latency=7, shared_latency=33) \
            .alu().shared().build()
        assert program[0].latency == 7
        assert program[1].latency == 33

    def test_latency_override(self):
        program = TraceBuilder(alu_latency=4).alu(1, latency=9).build()
        assert program[0].latency == 9

    def test_int_line_accepted(self):
        program = TraceBuilder().load(3).store(4).build()
        assert program[0].lines == (3,)
        assert program[1].lines == (4,)

    def test_load_each_interleaves_alu(self):
        program = TraceBuilder().load_each([1, 2], alu_between=2).build()
        ops = [i.op for i in program[:-1]]
        assert ops == [Op.LD_GLOBAL, Op.ALU, Op.ALU,
                       Op.LD_GLOBAL, Op.ALU, Op.ALU]

    def test_build_once(self):
        builder = TraceBuilder().alu()
        builder.build()
        with pytest.raises(RuntimeError):
            builder.build()

    def test_len_counts_instructions(self):
        builder = TraceBuilder().alu(3)
        assert len(builder) == 3

    def test_load_strided_unit_stride_one_line(self):
        program = TraceBuilder().load_strided(0, 1).build()
        assert program[0].lines == (0,)

    def test_load_strided_scatter(self):
        program = TraceBuilder().load_strided(0, 32).build()
        assert len(program[0].lines) == 32

    def test_load_strided_partial_warp(self):
        program = TraceBuilder().load_strided(0, 8, lanes=4).build()
        assert len(program[0].lines) == 1

    def test_invalid_latencies_rejected(self):
        with pytest.raises(ValueError):
            TraceBuilder(alu_latency=0)


class TestAnalysis:
    def test_instruction_mix(self):
        program = TraceBuilder().alu(2).load(1).build()
        mix = instruction_mix(program)
        assert mix == {"ALU": 2, "LD_GLOBAL": 1, "EXIT": 1}

    def test_memory_intensity(self):
        program = TraceBuilder().alu(2).load(1).store(2).build()
        # 2 memory instructions out of 5 total (incl. EXIT).
        assert memory_intensity(program) == pytest.approx(2 / 5)

    def test_memory_intensity_empty(self):
        assert memory_intensity([]) == 0.0
