#!/usr/bin/env python3
"""Reproduce the paper's motivation on one kernel: IPC vs CTAs per core.

Sweeps the static per-core CTA limit from 1 to the kernel's occupancy and
prints IPC and the memory-system behaviour at each point — the figure that
motivates lazy CTA scheduling (maximum occupancy is not optimal for
memory-sensitive kernels).

Usage::

    python examples/occupancy_sweep.py [benchmark] [scale]
"""

import sys

from repro import GPUConfig, make_kernel, sweep_static_limits


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "kmeans"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    config = GPUConfig()

    kernel = make_kernel(name, scale=scale)
    oracle = sweep_static_limits(kernel, config=config)

    print(f"{name}: occupancy {oracle.occupancy} CTAs/SM, "
          f"{kernel.num_ctas} CTAs total\n")
    print(f"{'CTAs/SM':>8} {'IPC':>8} {'norm':>7} {'L1 miss':>8} "
          f"{'MSHR stalls':>12} {'DRAM rowhit':>12}")
    base_ipc = oracle.baseline.ipc
    for limit in sorted(oracle.results):
        result = oracle.results[limit]
        marker = " <- best" if limit == oracle.best_limit else ""
        print(f"{limit:>8} {result.ipc:>8.2f} {result.ipc / base_ipc:>7.2f} "
              f"{result.l1.miss_rate:>8.3f} {result.l1.mshr_stalls:>12} "
              f"{result.dram.row_hit_rate:>12.3f}{marker}")

    print(f"\nbest static limit: {oracle.best_limit} "
          f"({oracle.best_speedup:.3f}x over maximum occupancy)")


if __name__ == "__main__":
    main()
