#!/usr/bin/env python3
"""Quickstart: simulate one kernel under the baseline and under LCS.

Runs the cache-sensitive ``kmeans`` benchmark twice on the Fermi-class GPU
model — once with the conventional maximum-occupancy round-robin CTA
scheduler, once with the paper's lazy CTA scheduler (LCS) — and prints what
LCS decided and what it bought.

Usage::

    python examples/quickstart.py [scale]

``scale`` (default 0.5) scales the grid size; 1.0 is the full evaluation
size used in EXPERIMENTS.md.
"""

import sys

from repro import GPUConfig, LCSScheduler, make_kernel, simulate


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    config = GPUConfig()

    print(f"GPU: {config.num_sms} SMs, {config.max_ctas_per_sm} CTA slots "
          f"and {config.max_warps_per_sm} warps per SM, "
          f"{config.l1_size // 1024} KB L1 per SM\n")

    # --- baseline: maximum occupancy, greedy-then-oldest warp scheduler ---
    kernel = make_kernel("kmeans", scale=scale)
    occupancy = kernel.max_ctas_per_sm(config)
    print(f"kernel {kernel.name}: {kernel.num_ctas} CTAs x "
          f"{kernel.warps_per_cta} warps, occupancy {occupancy} CTAs/SM")

    baseline = simulate(kernel, config=config, warp_scheduler="gto")
    print("\n[baseline: round-robin CTA scheduler at maximum occupancy]")
    print(baseline.summary())

    # --- LCS: monitor, decide N*, throttle --------------------------------
    kernel = make_kernel("kmeans", scale=scale)
    scheduler = LCSScheduler(kernel)
    lcs = simulate(kernel, config=config, warp_scheduler="gto",
                   cta_scheduler=scheduler)
    decision = scheduler.decision
    print("\n[LCS: lazy CTA scheduling]")
    print(f"monitoring ended at cycle {decision.decided_cycle} "
          f"on SM {decision.monitor_sm}")
    print(f"per-CTA issued instructions: {decision.issue_counts}")
    print(f"issue-slot utilization {decision.utilization:.2f} "
          f"(guard {decision.util_guard:.2f} "
          f"{'tripped - compute-bound' if decision.guard_tripped else 'clear'})")
    print(f"decision: N* = {decision.n_star} of {decision.occupancy} CTAs/SM")
    print(lcs.summary())

    speedup = baseline.cycles / lcs.cycles
    print(f"\nLCS speedup over baseline: {speedup:.3f}x  "
          f"(L1 miss rate {baseline.l1.miss_rate:.3f} -> "
          f"{lcs.l1.miss_rate:.3f})")


if __name__ == "__main__":
    main()
