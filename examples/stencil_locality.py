#!/usr/bin/env python3
"""Block CTA scheduling on a halo-sharing stencil.

Consecutive CTAs of a 1-D stencil read overlapping halo lines.  The
conventional CTA scheduler spreads consecutive CTAs over different cores, so
the shared lines are fetched twice and never reuse each other's L1 fills.
This example compares three configurations on the ``stencil`` benchmark:

1. baseline   — round-robin CTA scheduler + GTO warp scheduler;
2. BCS        — consecutive pairs of CTAs dispatched to the same core;
3. BCS + BAWS — pairs plus the block-aware warp scheduler that keeps the
                siblings temporally aligned.

Usage::

    python examples/stencil_locality.py [benchmark] [scale]

``benchmark`` is any of the locality suite (stencil, hotspot, pathfinder,
srad); default stencil.
"""

import sys

from repro import BCSScheduler, GPUConfig, make_kernel, simulate
from repro.workloads.suite import LOCALITY_SET


def run(name: str, scale: float) -> None:
    config = GPUConfig()

    kernel = make_kernel(name, scale=scale)
    base = simulate(kernel, config=config, warp_scheduler="gto")

    kernel = make_kernel(name, scale=scale)
    bcs = simulate(kernel, config=config, warp_scheduler="gto",
                   cta_scheduler=BCSScheduler(kernel, block_size=2))

    kernel = make_kernel(name, scale=scale)
    baws = simulate(kernel, config=config, warp_scheduler="baws",
                    cta_scheduler=BCSScheduler(kernel, block_size=2))

    print(f"== {name} ==")
    rows = [("baseline (RR + GTO)", base),
            ("BCS pairs + GTO", bcs),
            ("BCS pairs + BAWS", baws)]
    for label, result in rows:
        print(f"  {label:22s} cycles={result.cycles:8d} "
              f"IPC={result.ipc:6.2f} "
              f"L1 miss={result.l1.miss_rate:.3f} "
              f"MSHR merges={result.l1.merges:5d} "
              f"speedup={base.cycles / result.cycles:.3f}x")
    print()


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "stencil"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    if name == "all":
        for bench in LOCALITY_SET:
            run(bench, scale)
    else:
        run(name, scale)


if __name__ == "__main__":
    main()
