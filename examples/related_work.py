#!/usr/bin/env python3
"""Throttling mechanisms side by side: LCS vs its design-space neighbours.

Runs one cache-sensitive kernel under every throttling approach the
literature of the paper's era discusses:

* baseline            — maximum occupancy (no throttling);
* static oracle       — the best fixed CTA limit (offline, exhaustive);
* LCS                 — the paper: one-shot online CTA-granularity decision;
* DynCTA-style        — continuous per-core quota adaptation (prior work);
* SWL                 — static warp limiting (warp-granularity, offline).

Usage::

    python examples/related_work.py [benchmark] [scale]
"""

import sys

from repro import (DynCTAScheduler, GPUConfig, LCSScheduler, make_kernel,
                   simulate, sweep_static_limits)
from repro.core.warp_schedulers import swl_factory


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "kmeans"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    config = GPUConfig()

    baseline = simulate(make_kernel(name, scale=scale), config=config)
    print(f"{name} @ scale {scale}: baseline {baseline.cycles} cycles "
          f"(IPC {baseline.ipc:.2f})\n")

    rows = []

    oracle = sweep_static_limits(make_kernel(name, scale=scale),
                                 config=config)
    rows.append((f"static oracle (n={oracle.best_limit})",
                 oracle.best.cycles))

    kernel = make_kernel(name, scale=scale)
    lcs_sched = LCSScheduler(kernel)
    lcs = simulate(kernel, config=config, cta_scheduler=lcs_sched)
    decision = lcs_sched.decision
    rows.append((f"LCS (online, N*={decision.n_star})", lcs.cycles))

    kernel = make_kernel(name, scale=scale)
    dyn_sched = DynCTAScheduler(kernel)
    dyn = simulate(kernel, config=config, cta_scheduler=dyn_sched)
    quotas = dyn_sched.quotas()
    rows.append((f"DynCTA-style (final quota "
                 f"{min(quotas.values())}-{max(quotas.values())})",
                 dyn.cycles))

    best_swl = None
    for limit in (4, 8, 12, 16):
        run = simulate(make_kernel(name, scale=scale), config=config,
                       warp_scheduler=swl_factory(limit))
        if best_swl is None or run.cycles < best_swl[1]:
            best_swl = (f"SWL oracle (limit {limit}/scheduler)", run.cycles)
    rows.append(best_swl)

    width = max(len(label) for label, _ in rows)
    for label, cycles in rows:
        print(f"  {label.ljust(width)}  {cycles:8d} cycles  "
              f"{baseline.cycles / cycles:.3f}x")

    print("\nThe offline points (static/SWL oracle) bound what throttling "
          "can achieve;\nLCS gets its share with one monitoring pass and "
          "two counters per CTA slot.")


if __name__ == "__main__":
    main()
