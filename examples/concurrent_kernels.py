#!/usr/bin/env python3
"""Mixed concurrent kernel execution on a memory + compute kernel pair.

LCS shows the memory-intensive ``kmeans`` only needs a few CTA slots per
core; the paper's mixed CKE backfills the freed slots with CTAs of a
compute-intensive kernel (``blackscholes``).  This example compares the four
execution models of experiment E8:

* sequential       — kernels run back-to-back;
* spatial          — cores split between the kernels;
* SMK even         — both kernels on every core at an even occupancy split;
* mixed (paper)    — LCS-guided split.

Usage::

    python examples/concurrent_kernels.py [scale]
"""

import sys

from repro import (GPUConfig, MixedCKE, SequentialCKE, SMKEvenCKE,
                   SpatialCKE, make_kernel, simulate)

MEM_KERNEL = "kmeans"
COMPUTE_KERNEL = "blackscholes"


def make_pair(scale: float):
    return [make_kernel(MEM_KERNEL, scale=scale),
            make_kernel(COMPUTE_KERNEL, scale=scale)]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    config = GPUConfig()

    print(f"pair: {MEM_KERNEL} (memory-bound) + {COMPUTE_KERNEL} "
          f"(compute-bound), scale {scale}\n")

    kernels = make_pair(scale)
    sequential = simulate(kernels, config=config,
                          cta_scheduler=SequentialCKE(kernels))
    print(f"sequential: {sequential.cycles} cycles (reference)")

    kernels = make_pair(scale)
    spatial = simulate(kernels, config=config,
                       cta_scheduler=SpatialCKE(kernels))
    print(f"spatial   : {spatial.cycles} cycles "
          f"({sequential.cycles / spatial.cycles:.3f}x)")

    kernels = make_pair(scale)
    smk = simulate(kernels, config=config, cta_scheduler=SMKEvenCKE(kernels))
    print(f"SMK even  : {smk.cycles} cycles "
          f"({sequential.cycles / smk.cycles:.3f}x)")

    kernels = make_pair(scale)
    scheduler = MixedCKE(kernels)
    mixed = simulate(kernels, config=config, cta_scheduler=scheduler)
    decision = scheduler.decision
    print(f"mixed     : {mixed.cycles} cycles "
          f"({sequential.cycles / mixed.cycles:.3f}x)")
    if decision is not None:
        print(f"\nmixed CKE allocated {MEM_KERNEL} N*={decision.n_star} of "
              f"{decision.occupancy} CTA slots per SM; {COMPUTE_KERNEL} "
              f"backfills the rest (decided at cycle "
              f"{decision.decided_cycle}).")


if __name__ == "__main__":
    main()
