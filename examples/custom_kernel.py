#!/usr/bin/env python3
"""Authoring a custom kernel, saving its trace, and watching its timeline.

Demonstrates the downstream-user workflow:

1. describe a kernel with :class:`~repro.workloads.programs.TraceBuilder`
   (here: a reduction-style kernel — strided loads feeding a shared-memory
   tree reduction with barriers);
2. run it under the baseline and under LCS;
3. sample the occupancy/IPC timeline to *see* the LCS drain;
4. round-trip the kernel through the portable JSON trace format.

Usage::

    python examples/custom_kernel.py
"""

import tempfile
from pathlib import Path

from repro import (GPU, GPUConfig, Kernel, LCSScheduler,
                   RoundRobinCTAScheduler, TimelineSampler, TraceBuilder,
                   load_kernel_trace, save_kernel_trace)
from repro.workloads.patterns import Region, region_base, rng_for

NUM_CTAS = 360
WARPS_PER_CTA = 4
SEED = 7


def build_reduction_warp(cta_id: int, warp_idx: int):
    """One warp of a reduction: gather a private random window, then a
    shared-memory tree reduction with a barrier per level."""
    region = Region(region_base("custom-reduce"), 1 << 22)
    rng = rng_for(SEED, "custom-reduce", cta_id, warp_idx)
    tb = TraceBuilder()
    window = cta_id * WARPS_PER_CTA + warp_idx
    for offset in rng.integers(0, 12, size=40):
        tb.load(region.line(window * 12 + int(offset)))
        tb.alu(2)
    for _level in range(4):           # log2(warp count) tree levels
        tb.shared(2)
        tb.barrier()
    tb.store(region.line((1 << 20) + window))
    return tb.build()


def main() -> None:
    config = GPUConfig()
    kernel = Kernel("custom-reduce", NUM_CTAS, WARPS_PER_CTA,
                    build_reduction_warp, regs_per_thread=20,
                    tags=("custom",))
    print(f"custom kernel: {kernel.num_ctas} CTAs, occupancy "
          f"{kernel.max_ctas_per_sm(config)} CTAs/SM")

    # Baseline with a timeline sampler attached.
    gpu = GPU(config=config)
    sampler = TimelineSampler(gpu, period=1000)
    gpu.run(RoundRobinCTAScheduler(kernel))
    print(f"\nbaseline: {gpu.cycle} cycles")
    print("occupancy timeline (mean CTAs/SM per kilocycle):")
    series = [f"{s.mean_ctas_per_sm:.1f}" for s in sampler.samples[:20]]
    print("  " + " ".join(series))

    # LCS on the same kernel.
    kernel2 = Kernel("custom-reduce", NUM_CTAS, WARPS_PER_CTA,
                     build_reduction_warp, regs_per_thread=20)
    gpu2 = GPU(config=config)
    sampler2 = TimelineSampler(gpu2, period=1000)
    scheduler = LCSScheduler(kernel2)
    gpu2.run(scheduler)
    decision = scheduler.decision
    print(f"\nLCS: {gpu2.cycle} cycles "
          f"({gpu.cycle / gpu2.cycle:.3f}x), "
          f"N*={decision.n_star}/{decision.occupancy} "
          f"decided at cycle {decision.decided_cycle}")
    series = [f"{s.mean_ctas_per_sm:.1f}" for s in sampler2.samples[:20]]
    print("occupancy timeline (watch the drain to N*):")
    print("  " + " ".join(series))

    # Round-trip through the portable trace format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "custom-reduce.json"
        save_kernel_trace(kernel, path)
        loaded = load_kernel_trace(path)
        size_kb = path.stat().st_size // 1024
        print(f"\ntrace file: {size_kb} KB; reloaded kernel "
              f"{loaded.name!r} with {loaded.num_ctas} CTAs "
              f"(programs identical: "
              f"{loaded.build_warp_program(0, 0) == kernel.build_warp_program(0, 0)})")


if __name__ == "__main__":
    main()
