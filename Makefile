# Convenience entry points.  Everything assumes the src/ layout:
# PYTHONPATH=src python -m pytest ...
PY      ?= python
PYTEST  = PYTHONPATH=src $(PY) -m pytest

.PHONY: test lint bench bench-smoke bench-engine clean-cache

test:            ## tier-1 test suite
	$(PYTEST) -q

lint:            ## ruff checks (skipped with a notice if ruff is absent)
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "lint: ruff not installed; skipping (CI enforces it)"; \
	fi

bench:           ## full experiment benchmarks (slow)
	$(PYTEST) benchmarks/ --benchmark-only

bench-smoke:     ## quick engine sanity: serial vs parallel vs warm cache
	REPRO_BENCH_SCALE=0.25 $(PYTEST) benchmarks/bench_engine.py \
		--benchmark-only -q

bench-engine:    ## engine benchmarks at the default scale
	$(PYTEST) benchmarks/bench_engine.py --benchmark-only

clean-cache:     ## purge the persistent result cache
	PYTHONPATH=src $(PY) -m repro.harness.cli --clear-cache
