# Convenience entry points.  Everything assumes the src/ layout:
# PYTHONPATH=src python -m pytest ...
PY      ?= python
PYTEST  = PYTHONPATH=src $(PY) -m pytest

.PHONY: test lint bench bench-smoke bench-engine fault-smoke clean-cache

test:            ## tier-1 test suite
	$(PYTEST) -q

lint:            ## ruff checks (skipped with a notice if ruff is absent)
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "lint: ruff not installed; skipping (CI enforces it)"; \
	fi

bench:           ## full experiment benchmarks (slow)
	$(PYTEST) benchmarks/ --benchmark-only

bench-smoke:     ## quick engine sanity: serial vs parallel vs warm cache
	REPRO_BENCH_SCALE=0.25 $(PYTEST) benchmarks/bench_engine.py \
		--benchmark-only -q

bench-engine:    ## engine benchmarks at the default scale
	$(PYTEST) benchmarks/bench_engine.py --benchmark-only

EXP = PYTHONPATH=src $(PY) -m repro.harness.cli

fault-smoke:     ## resilience drill: injected failure + pool-crash recovery
	@out=$$($(EXP) e5 e12 --scale 0.02 --no-cache --retries 0 \
		--faults flaky:0 2>&1); \
	if [ $$? -eq 0 ]; then \
		echo "fault-smoke: injected failure should exit nonzero"; exit 1; \
	fi; \
	echo "$$out" | grep -q "Failure summary" \
		|| { echo "fault-smoke: per-job failure summary missing"; exit 1; }; \
	echo "$$out" | grep -q "E12a" \
		|| { echo "fault-smoke: partial results missing"; exit 1; }; \
	out=$$($(EXP) e5 --scale 0.02 --no-cache --jobs 2 --faults kill:0 2>&1) \
		|| { echo "fault-smoke: crash-recovery run failed"; \
		     echo "$$out"; exit 1; }; \
	echo "$$out" | grep -q "recovered by retry" \
		|| { echo "fault-smoke: killed worker was not retried"; exit 1; }; \
	echo "fault-smoke: ok (failure reported + partial results kept;" \
	     "killed worker recovered)"

clean-cache:     ## purge the persistent result cache
	PYTHONPATH=src $(PY) -m repro.harness.cli --clear-cache
