# Convenience entry points.  Everything assumes the src/ layout:
# PYTHONPATH=src python -m pytest ...
PY      ?= python
PYTEST  = PYTHONPATH=src $(PY) -m pytest

.PHONY: test lint bench bench-smoke bench-engine bench-core \
	bench-core-check fault-smoke resume-smoke design-smoke \
	campaign-chaos-smoke service-smoke service-chaos-smoke \
	cluster-chaos-smoke clean-cache clean-state verify-smoke \
	verify-full goldens table-goldens

test:            ## tier-1 test suite
	$(PYTEST) -q

lint:            ## ruff checks (skipped with a notice if ruff is absent)
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "lint: ruff not installed; skipping (CI enforces it)"; \
	fi

bench:           ## full experiment benchmarks (slow)
	$(PYTEST) benchmarks/ --benchmark-only

bench-smoke:     ## quick engine sanity: serial vs parallel vs warm cache
	REPRO_BENCH_SCALE=0.25 $(PYTEST) benchmarks/bench_engine.py \
		--benchmark-only -q

bench-engine:    ## engine benchmarks at the default scale
	$(PYTEST) benchmarks/bench_engine.py --benchmark-only

bench-core:      ## re-baseline BENCH_core.json: object vs vector wall-clock
	PYTHONPATH=src $(PY) benchmarks/bench_core.py --out BENCH_core.json

bench-core-check: ## assert backend parity + no >20% speedup regression
	PYTHONPATH=src $(PY) benchmarks/bench_core.py --repeats 2 \
		--check BENCH_core.json

EXP = PYTHONPATH=src $(PY) -m repro.harness.cli

fault-smoke:     ## resilience drill: injected failure + pool-crash recovery
	@out=$$($(EXP) e5 e12 --scale 0.02 --no-cache --retries 0 \
		--faults flaky:0 2>&1); \
	if [ $$? -eq 0 ]; then \
		echo "fault-smoke: injected failure should exit nonzero"; exit 1; \
	fi; \
	echo "$$out" | grep -q "Failure summary" \
		|| { echo "fault-smoke: per-job failure summary missing"; exit 1; }; \
	echo "$$out" | grep -q "E12a" \
		|| { echo "fault-smoke: partial results missing"; exit 1; }; \
	out=$$($(EXP) e5 --scale 0.02 --no-cache --jobs 2 --faults kill:0 2>&1) \
		|| { echo "fault-smoke: crash-recovery run failed"; \
		     echo "$$out"; exit 1; }; \
	echo "$$out" | grep -q "recovered by retry" \
		|| { echo "fault-smoke: killed worker was not retried"; exit 1; }; \
	echo "fault-smoke: ok (failure reported + partial results kept;" \
	     "killed worker recovered)"

SIM = PYTHONPATH=src $(PY) -m repro.harness.simcli

resume-smoke:    ## checkpoint/resume drill: mid-run kill, resume, sanitize
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	ref=$$($(SIM) kmeans --scale 0.05 --policy lcs --no-cache \
		| grep '^cycles=') \
		|| { echo "resume-smoke: reference run failed"; exit 1; }; \
	out=$$($(SIM) kmeans --scale 0.05 --policy lcs --no-cache \
		--checkpoint-interval 500 --checkpoint-dir "$$tmp/ckpt" \
		--faults kill-at:0:1500 2>&1) \
		|| { echo "resume-smoke: kill-resume run failed"; \
		     echo "$$out"; exit 1; }; \
	echo "$$out" | grep -q "resumed from cycle" \
		|| { echo "resume-smoke: run did not resume from checkpoint"; \
		     echo "$$out"; exit 1; }; \
	echo "$$out" | grep -qF "$$ref" \
		|| { echo "resume-smoke: resumed stats differ from reference"; \
		     echo "expected: $$ref"; echo "$$out"; exit 1; }; \
	if $(SIM) kmeans --scale 0.05 --policy lcs --no-cache --sanitize \
		--faults corrupt:0:1500 >/dev/null 2>&1; then \
		echo "resume-smoke: sanitizer missed injected corruption"; \
		exit 1; \
	fi; \
	echo "resume-smoke: ok (killed run resumed bitwise-identical;" \
	     "sanitizer caught injected corruption)"

design-smoke:    ## design layer drill: compile all E-designs + campaign resume
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	PYTHONPATH=src $(PY) -c "from repro.design import DesignEnv; \
	from repro.harness.experiments import EXPERIMENT_DESIGNS; \
	env = DesignEnv(scale=0.02); \
	cells = sum(len(b().compile(env)) for b in EXPERIMENT_DESIGNS.values()); \
	print(f'{len(EXPERIMENT_DESIGNS)} designs compiled, {cells} cells')" \
		|| { echo "design-smoke: E-driver design compilation failed"; \
		     exit 1; }; \
	out=$$($(EXP) --design examples/lcs_threshold.toml \
		--campaign-dir "$$tmp/camp" --no-cache 2>&1) \
		|| { echo "design-smoke: campaign run failed"; \
		     echo "$$out"; exit 1; }; \
	echo "$$out" | grep -q "7 dispatched" \
		|| { echo "design-smoke: expected 7 dispatched cells"; \
		     echo "$$out"; exit 1; }; \
	out=$$($(EXP) --design examples/lcs_threshold.toml \
		--campaign-dir "$$tmp/camp" --no-cache 2>&1) \
		|| { echo "design-smoke: campaign resume failed"; \
		     echo "$$out"; exit 1; }; \
	echo "$$out" | grep -q "0 dispatched, 7 already done" \
		|| { echo "design-smoke: resume should skip done cells"; \
		     echo "$$out"; exit 1; }; \
	echo "design-smoke: ok (all E-designs compile; campaign resumed" \
	     "without re-dispatching)"

campaign-chaos-smoke: ## durable-campaign drill: kill/restart 2 shards until bitwise convergence
	@rm -rf .repro-chaos; \
	PYTHONPATH=src $(PY) -m repro.design.chaos examples/shard_demo.toml \
		--shards 2 --min-kills 5 --seed 7 --root .repro-chaos \
		|| { echo "campaign-chaos-smoke: drill failed; journals kept" \
		     "under .repro-chaos/ for inspection"; exit 1; }; \
	rm -rf .repro-chaos; \
	echo "campaign-chaos-smoke: ok (killed workers reclaimed;" \
	     "results bitwise-identical to the unfaulted run)"

SERVE  = PYTHONPATH=src $(PY) -m repro.service.daemon
SUBMIT = PYTHONPATH=src $(PY) -m repro.service.client

service-smoke:   ## service drill: daemon + 2 clients, SIGTERM mid-flight, restart, bitwise convergence
	@rm -rf .repro-service-smoke; mkdir -p .repro-service-smoke; \
	root="$$(pwd)/.repro-service-smoke"; \
	fail() { echo "service-smoke: $$1 (state kept under" \
	         ".repro-service-smoke/ — journal.jsonl + daemon.log)"; \
	         sed -n '1,50p' "$$root/daemon.log" 2>/dev/null; exit 1; }; \
	$(SERVE) --state-dir "$$root/state" --cache-dir "$$root/cache" \
		--workers 2 >>"$$root/daemon.log" 2>&1 & pid=$$!; \
	i=0; until [ -S "$$root/state/serve.sock" ]; do \
		i=$$((i+1)); [ $$i -gt 150 ] && fail "daemon never bound"; \
		sleep 0.1; done; \
	$(SUBMIT) examples/lcs_threshold.toml --socket "$$root/state/serve.sock" \
		--scale 0.02 --tenant alice >"$$root/alice1.out" 2>&1 & c1=$$!; \
	$(SUBMIT) examples/lcs_threshold.toml --socket "$$root/state/serve.sock" \
		--scale 0.02 --tenant bob >"$$root/bob1.out" 2>&1 & c2=$$!; \
	sleep 1.2; kill -TERM $$pid; \
	wait $$pid || fail "SIGTERM drain exited nonzero"; \
	wait $$c1 2>/dev/null; wait $$c2 2>/dev/null; \
	$(SERVE) --state-dir "$$root/state" --cache-dir "$$root/cache" \
		--workers 2 >>"$$root/daemon.log" 2>&1 & pid=$$!; \
	i=0; until [ -S "$$root/state/serve.sock" ]; do \
		i=$$((i+1)); [ $$i -gt 150 ] && fail "restarted daemon never bound"; \
		sleep 0.1; done; \
	$(SUBMIT) examples/lcs_threshold.toml --socket "$$root/state/serve.sock" \
		--scale 0.02 --tenant alice >"$$root/alice2.out" 2>&1 \
		|| fail "alice resubmit after restart failed"; \
	$(SUBMIT) examples/lcs_threshold.toml --socket "$$root/state/serve.sock" \
		--scale 0.02 --tenant bob >"$$root/bob2.out" 2>&1 \
		|| fail "bob resubmit after restart failed"; \
	grep -c "cycles=" "$$root/alice2.out" | grep -qx 7 \
		|| fail "alice did not converge to 7 done cells"; \
	grep "cycles=" "$$root/alice2.out" >"$$root/alice2.rows"; \
	grep "cycles=" "$$root/bob2.out" >"$$root/bob2.rows"; \
	cmp -s "$$root/alice2.rows" "$$root/bob2.rows" \
		|| fail "alice and bob results diverge"; \
	$(SUBMIT) --socket "$$root/state/serve.sock" --drain >/dev/null 2>&1; \
	wait $$pid || fail "final drain exited nonzero"; \
	rm -rf .repro-service-smoke; \
	echo "service-smoke: ok (SIGTERM mid-flight drained clean; restart" \
	     "recovered the queue; both clients bitwise-converged)"

service-chaos-smoke: ## service chaos drill: daemon SIGKILLs, worker wedge, socket drops, 2 clients
	@rm -rf .repro-service-chaos; \
	PYTHONPATH=src $(PY) -m repro.design.chaos examples/lcs_threshold.toml \
		--service --scale 0.02 --seed 7 --root .repro-service-chaos \
		|| { echo "service-chaos-smoke: drill failed; journal +" \
		     "daemon.log kept under .repro-service-chaos/"; exit 1; }; \
	rm -rf .repro-service-chaos; \
	echo "service-chaos-smoke: ok (daemon killed/restarted; every job" \
	     "exactly-once; poison quarantined; drain clean; bitwise-identical)"

cluster-chaos-smoke: ## federation drill: 3 daemons, partition + SIGKILL, lease handoff, all-journal audit
	@rm -rf .repro-cluster-chaos; \
	PYTHONPATH=src $(PY) -m repro.design.chaos examples/lcs_threshold.toml \
		--cluster --scale 0.02 --seed 7 --root .repro-cluster-chaos \
		|| { echo "cluster-chaos-smoke: drill failed; per-daemon" \
		     "journals + logs kept under .repro-cluster-chaos/"; exit 1; }; \
	rm -rf .repro-cluster-chaos; \
	echo "cluster-chaos-smoke: ok (partitioned victim SIGKILLed; jobs" \
	     "reclaimed by survivors; effectively-once; quarantine synced" \
	     "fleet-wide; bitwise-identical)"

table-goldens:   ## regenerate goldens/tables/*.csv after intended changes
	PYTHONPATH=src $(PY) -m repro.verify.tables --update

clean-cache:     ## purge the persistent result cache
	PYTHONPATH=src $(PY) -m repro.harness.cli --clear-cache

clean-state:     ## purge cache + checkpoints + golden-store strays in one shot
	PYTHONPATH=src $(PY) -m repro.harness.cli --clean-state

VERIFY = PYTHONPATH=src $(PY) -m repro.verify.cli

verify-smoke:    ## correctness gate: smoke golden matrix + refmodel + 25 fuzz cases
	$(VERIFY) all --tier smoke --cases 25 --jobs 4 --report-dir .repro-verify

verify-full:     ## nightly-depth gate: full golden matrix + refmodel + 500 fuzz cases
	$(VERIFY) all --tier full --cases 500 --jobs 4 --report-dir .repro-verify

goldens:         ## re-baseline both golden tiers (after an INTENTIONAL model change)
	$(VERIFY) golden --tier smoke --update --jobs 4
	$(VERIFY) golden --tier full --update --jobs 4
