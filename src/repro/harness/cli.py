"""Command-line front end for the experiment harness.

Usage::

    repro-exp --list              # what is available
    repro-exp e3                  # one experiment at the default scale
    repro-exp e1 e6 --scale 0.25  # several, scaled down
    repro-exp all                 # the full reconstructed evaluation
    repro-exp e3 --csv            # machine-readable output
    repro-exp e3 --output out/    # also write CSV files
    repro-exp all --jobs 4        # fan simulations out across 4 processes
    repro-exp all                 # second invocation: warm disk cache,
                                  # zero simulations executed
    repro-exp --clear-cache       # purge .repro-cache/
    repro-exp e1 --timeline --output out/
                                  # + one windowed-telemetry CSV per run
    repro-exp e1 --trace e1.json  # merged chrome://tracing document
    repro-exp all --jobs 8 --retries 3 --timeout 600
                                  # resilient batch: transient worker
                                  # failures retried, runaway jobs become
                                  # typed timeouts, completed results are
                                  # cached even when siblings fail
    repro-exp e3 --fail-fast      # stop at the first failure instead
    repro-exp all --checkpoint-interval 50000 --timeout 600
                                  # long runs snapshot every 50k cycles;
                                  # a crashed or timed-out job resumes
                                  # from its newest checkpoint on retry
                                  # (and on the next invocation)
    repro-exp e3 --sanitize       # check live-state invariants in-flight
    repro-exp --design sweep.toml # run a design file as a resumable
                                  # campaign (.repro-campaigns/ store with
                                  # a write-ahead journal; re-invoking
                                  # resumes where it stopped)
    repro-exp --design sweep.toml --shard &
    repro-exp --design sweep.toml --shard
                                  # two lease-based workers drain one
                                  # campaign concurrently (any number of
                                  # processes, one host or a shared fs)
    repro-exp --design sweep.toml --max-retries 3
                                  # stop retrying a failing cell after 3
                                  # resumes: it is journaled 'exhausted'
                                  # and reported distinctly

Requesting several experiments plans them as one deduplicated batch: the
designs behind the requested ids are compiled up front, cells with
identical job fingerprints (shared baselines, revisited static sweeps)
collapse, and the whole union runs as a single engine batch before the
drivers assemble their tables.

Failures never discard completed work: every finished simulation is cached
as it arrives, failing experiments are reported (per-job failure summary
table + exit status 1) and the remaining experiments still run unless
``--fail-fast`` is given.  See docs/ROBUSTNESS.md for the failure model,
the checkpoint format and the sanitizer's invariant families.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Sequence

from ..design import (DEFAULT_CAMPAIGN_ROOT, DEFAULT_LEASE_TTL, Campaign,
                      CampaignError, DesignEnv, DesignError, load_design)
from ..workloads.patterns import DEFAULT_SEED
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .checkpoints import (DEFAULT_CHECKPOINT_DIR, CheckpointPlan,
                          CheckpointStore)
from .engine import (DEFAULT_RETRIES, JobExecutionError, default_workers)
from .exit_codes import (EXIT_EXHAUSTED, EXIT_OK, EXIT_PARTIAL)
from .experiments import (EXPERIMENT_DESIGNS, EXPERIMENTS, ExperimentContext,
                          design_cell_counts, e12_benchmark_table,
                          e12_config_table, plan_experiments)
from .faults import FaultPlan, FaultSpecError
from .jobs import JobError
from .reporting import Table
from .validate import VALID_BACKENDS

ALL_IDS = tuple(EXPERIMENTS) + ("e12",)


def _parse_args(argv: Sequence[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description="Reproduce the paper's evaluation figures/tables.")
    parser.add_argument("experiments", nargs="*",
                        help=f"experiment ids ({', '.join(ALL_IDS)}) or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list experiments with their design cell "
                             "counts (at --scale) and one-line descriptions")
    parser.add_argument("--design", metavar="FILE",
                        help="run a TOML/JSON design file as a resumable "
                             "campaign instead of built-in experiments "
                             "(see docs/DESIGNS.md)")
    parser.add_argument("--campaign-dir", default=DEFAULT_CAMPAIGN_ROOT,
                        metavar="DIR",
                        help="campaign store root for --design "
                             f"(default {DEFAULT_CAMPAIGN_ROOT}/)")
    parser.add_argument("--shard", action="store_true",
                        help="claim campaign cells in small lease-based "
                             "chunks so several concurrent 'repro-exp "
                             "--design FILE --shard' processes drain one "
                             "campaign together (crashed workers' leases "
                             "expire and are reclaimed)")
    parser.add_argument("--worker-id", metavar="ID", default=None,
                        help="worker id stamped on journal records "
                             "(default: hostname-pid)")
    parser.add_argument("--lease-ttl", type=float, default=None,
                        metavar="SECONDS",
                        help="campaign cell lease time-to-live; a worker "
                             "silent this long loses its cells to other "
                             "shards (default 30)")
    parser.add_argument("--max-retries", type=int, default=None, metavar="N",
                        help="per-cell cap on campaign retries: a cell "
                             "failing on N+1 invocations is journaled "
                             "'exhausted' and never claimed again "
                             "(default: retry on every resume, forever)")
    parser.add_argument("--output", metavar="DIR",
                        help="also write each table as CSV into DIR")
    parser.add_argument("--scale", type=float, default=0.4,
                        help="grid-size scale factor (default 0.4; 1.0 = "
                             "full size, slower)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="workload random seed")
    parser.add_argument("--csv", action="store_true",
                        help="emit CSV instead of aligned tables")
    parser.add_argument("--chart", metavar="COLUMN",
                        help="also render COLUMN as an ASCII bar chart")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for independent simulations "
                             "(default 1 = serial; 0 = one per CPU core)")
    parser.add_argument("--timeline", nargs="?", const=1000, type=int,
                        metavar="WINDOW",
                        help="sample a windowed telemetry timeline per run "
                             "(WINDOW cycles, default 1000); CSVs are "
                             "written when --output is given")
    parser.add_argument("--trace", metavar="FILE",
                        help="write all runs' structured event traces as "
                             "one merged Chrome trace_event document "
                             "(one pid lane per run)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache "
                             f"({DEFAULT_CACHE_DIR}/)")
    parser.add_argument("--clear-cache", action="store_true",
                        help="purge the persistent result cache, then run "
                             "any requested experiments (warns if "
                             "checkpoints remain; see --clean-state)")
    parser.add_argument("--clean-state", action="store_true",
                        help="purge every on-disk state store in one shot: "
                             f"result cache ({DEFAULT_CACHE_DIR}/), "
                             "checkpoints (--checkpoint-dir) and "
                             "golden-store .tmp-* strays; then run any "
                             "requested experiments")
    parser.add_argument("--retries", type=int, default=DEFAULT_RETRIES,
                        metavar="N",
                        help="retries per job for transient failures "
                             "(broken pool, killed worker, OSError; "
                             f"default {DEFAULT_RETRIES}); deterministic "
                             "simulation errors are never retried")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job wall-clock deadline; an overrunning "
                             "job becomes a typed timeout outcome instead "
                             "of hanging the batch (default: none)")
    parser.add_argument("--fail-fast", dest="fail_fast", action="store_true",
                        help="stop at the first failed experiment/job "
                             "(default: keep going, report all failures at "
                             "the end)")
    parser.add_argument("--keep-going", dest="fail_fast",
                        action="store_false",
                        help="run every experiment even after failures "
                             "(the default; negates --fail-fast)")
    parser.add_argument("--faults", metavar="SPEC",
                        help="inject deterministic faults for testing, "
                             "e.g. 'fail:0,kill:2,delay:1:5' (also read "
                             "from $REPRO_FAULTS; see docs/ROBUSTNESS.md)")
    parser.add_argument("--sanitize", action="store_true", default=None,
                        help="check live-state invariants (CTA/resource "
                             "conservation, cache/MSHR balance, "
                             "monotonicity) at window boundaries during "
                             "every run; violations are deterministic "
                             "failures (also read from $REPRO_SANITIZE)")
    parser.add_argument("--checkpoint-interval", type=int, default=None,
                        metavar="CYCLES",
                        help="snapshot every simulation every CYCLES "
                             "simulated cycles; crashed/timed-out jobs "
                             "then resume from their newest checkpoint "
                             "on retry and on the next invocation "
                             "(default: off)")
    parser.add_argument("--checkpoint-dir", default=DEFAULT_CHECKPOINT_DIR,
                        metavar="DIR",
                        help="checkpoint store directory (default "
                             f"{DEFAULT_CHECKPOINT_DIR}/)")
    parser.add_argument("--backend", default="object",
                        choices=VALID_BACKENDS,
                        help="simulator core for every job: 'object' "
                             "(reference) or 'vector' (array-oriented, "
                             "bitwise-identical, faster); jobs using warp "
                             "schedulers the vector core lacks (two-level, "
                             "swl) fall back to the object core "
                             "(default object)")
    parser.set_defaults(fail_fast=False)
    return parser.parse_args(argv)


def _describe_progress(outcome) -> str:
    """How far a timed-out job got, and whether a checkpoint survives."""
    progress = outcome.progress
    if not progress or progress.get("cycle") is None:
        return "-"
    cycle = progress["cycle"]
    text = f"cycle {cycle}"
    max_cycles = progress.get("max_cycles")
    if max_cycles:
        text += f" ({100.0 * cycle / max_cycles:.1f}% of max)"
    saved = progress.get("checkpoint_cycle")
    if saved is not None:
        text += f", checkpoint @ {saved}"
    else:
        text += ", no checkpoint"
    return text


def _failure_table(failures) -> Table:
    """The per-job failure summary printed after a degraded batch."""
    table = Table("Failure summary (per-job outcomes)",
                  ["job", "fingerprint", "status", "attempts", "progress",
                   "error"])
    for outcome in failures:
        error = (outcome.error or "").splitlines()
        table.add_row(outcome.index, outcome.fingerprint[:12], outcome.status,
                      outcome.attempts, _describe_progress(outcome),
                      error[0][:72] if error else "-")
    table.add_note("completed jobs were cached; rerun to resume from them")
    return table


def _describe(exp_id: str) -> str:
    if exp_id == "e12":
        return "configuration and benchmark-characteristics tables"
    doc = EXPERIMENTS[exp_id].__doc__ or ""
    return " ".join(doc.split("\n\n")[0].split()) or exp_id


def _write_telemetry(ctx: ExperimentContext,
                     args: argparse.Namespace) -> None:
    """Export the memoised runs' telemetry (timeline CSVs, merged trace)."""
    runs = ctx.telemetry_runs()
    if not runs:
        return
    if args.timeline is not None and args.output:
        out_dir = Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)
        written = 0
        for label, result in runs:
            timeline = result.meta.get("timeline")
            if not timeline:
                continue
            path = out_dir / f"{label}.timeline.csv"
            path.write_text(timeline.to_csv() + "\n")
            written += 1
        print(f"[timelines: {written} CSV(s) -> {args.output}/]",
              file=sys.stderr)
    if args.trace:
        from ..telemetry.trace import merge_chrome_traces
        named = [(label, result.meta.get("trace") or [],
                  result.meta.get("timeline"))
                 for label, result in runs]
        doc = merge_chrome_traces(named, engine_events=ctx.engine_events())
        Path(args.trace).write_text(json.dumps(doc))
        print(f"[trace: {len(runs)} run(s) merged -> {args.trace}]",
              file=sys.stderr)


def _run_design_campaign(args: argparse.Namespace, workers: int,
                         cache: ResultCache | None, faults,
                         checkpoints: CheckpointPlan | None) -> int:
    """``repro-exp --design FILE``: run a design file as a campaign.

    The campaign store (``<campaign-dir>/<name>-<digest12>/`` — static
    meta plus a write-ahead journal) makes the run resumable and
    shardable: re-invoking with the same file and environment skips
    ``done`` cells entirely, replays interrupted cells from the result
    cache, and with ``--shard`` any number of concurrent invocations
    drain the campaign together under lease-based claiming.

    Exit codes are the uniform service vocabulary
    (:mod:`repro.harness.exit_codes`): 0 every cell done, 1 partial
    (failed cells — a re-invocation retries them), 2 usage error,
    3 at least one cell exhausted its retry budget (terminal; re-running
    cannot finish the campaign).
    """
    try:
        design, env_overrides = load_design(args.design)
    except OSError as error:
        print(f"cannot read design file {args.design}: {error}",
              file=sys.stderr)
        return 2
    except DesignError as error:
        print(f"bad design file {args.design}: {error}", file=sys.stderr)
        return 2
    env_kwargs: dict = {"scale": args.scale, "seed": args.seed,
                        "backend": args.backend,
                        "timeline_window": args.timeline,
                        "trace": bool(args.trace)}
    env_kwargs.update(env_overrides)
    env = DesignEnv(**env_kwargs)
    try:
        campaign = Campaign.open(design, env, root=args.campaign_dir)
    except (CampaignError, DesignError, JobError) as error:
        print(f"cannot open campaign for {args.design}: {error}",
              file=sys.stderr)
        return 2
    counts = campaign.counts()
    extras = "".join(f", {counts[key]} {key}"
                     for key in ("claimed", "exhausted") if counts[key])
    print(f"[campaign {campaign.path.name}: {len(campaign.cells)} cell(s); "
          f"{counts['done']} done, {counts['pending']} pending, "
          f"{counts['failed']} failed{extras}]", file=sys.stderr)
    try:
        report = campaign.run(workers=workers, cache=cache,
                              retries=args.retries, timeout=args.timeout,
                              fail_fast=args.fail_fast, faults=faults,
                              sanitize=args.sanitize,
                              checkpoints=checkpoints,
                              worker_id=args.worker_id,
                              lease_ttl=(args.lease_ttl
                                         if args.lease_ttl is not None
                                         else DEFAULT_LEASE_TTL),
                              max_retries=args.max_retries,
                              shard=args.shard)
    except JobExecutionError as error:
        print(f"[campaign FAILED: {error}]", file=sys.stderr)
        return 1
    table = Table(f"design {campaign.name} ({campaign.digest[:12]})",
                  ["cell", "status", "cycles", "ipc"])
    for cell in campaign.cells:
        table.add_row(cell.label, cell.status,
                      cell.cycles if cell.cycles is not None else "-",
                      cell.ipc if cell.ipc is not None else "-")
    print(table.to_csv() if args.csv else table.render())
    print()
    if args.output:
        out_dir = Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{campaign.name}.csv").write_text(table.to_csv() + "\n")
    if args.trace:
        from ..telemetry.trace import merge_chrome_traces
        doc = merge_chrome_traces([], engine_events=report.engine_events())
        Path(args.trace).write_text(json.dumps(doc))
        print(f"[trace: {len(report.engine_events())} campaign event(s) "
              f"-> {args.trace}]", file=sys.stderr)
    footer = (f"[campaign: {report.executed} dispatched, "
              f"{report.resumed} already done, {report.failed} failed")
    if report.exhausted:
        footer += f", {report.exhausted} exhausted (past --max-retries)"
    if report.lease_conflicts or report.leases_reclaimed:
        footer += (f", leases: {report.lease_conflicts} lost, "
                   f"{report.leases_reclaimed} reclaimed")
    if report.duplicate_done:
        footer += f", {report.duplicate_done} duplicate completion(s)"
    if report.journal_append_errors:
        footer += (f", {report.journal_append_errors} journal append "
                   f"error(s) (snapshot fallback)")
    if report.checkpoint_corrupt:
        footer += (f", {report.checkpoint_corrupt} corrupt checkpoint(s) "
                   f"quarantined")
    if cache is not None and (cache.write_errors or cache.corrupt_entries):
        footer += (f", cache: {cache.write_errors} write error(s), "
                   f"{cache.corrupt_entries} corrupt quarantined")
    print(footer + f" -> {campaign.path}/]", file=sys.stderr)
    # Uniform exit codes (shared with repro-submit; see
    # repro.harness.exit_codes): exhausted cells are terminal — re-running
    # cannot finish the campaign — and outrank plain failures.
    if report.exhausted:
        return EXIT_EXHAUSTED
    return EXIT_OK if report.ok else EXIT_PARTIAL


def main(argv: Sequence[str] | None = None) -> int:
    args = _parse_args(argv)
    if args.list:
        counts = design_cell_counts(DesignEnv(scale=args.scale,
                                              seed=args.seed))
        for exp_id in ALL_IDS:
            cells = (f"{counts[exp_id]:>3} cells"
                     if exp_id in EXPERIMENT_DESIGNS else "   -     ")
            print(f"{exp_id:>4}  {cells}  {_describe(exp_id)}")
        return 0
    if args.clean_state:
        removed = ResultCache().clear()
        print(f"[cache cleared: {removed} entries]", file=sys.stderr)
        ckpts = CheckpointStore(args.checkpoint_dir).clear()
        print(f"[checkpoints cleared: {ckpts} file(s) "
              f"from {args.checkpoint_dir}/]", file=sys.stderr)
        from ..verify.golden import DEFAULT_GOLDEN_ROOT, GoldenStore
        strays = 0
        if DEFAULT_GOLDEN_ROOT.is_dir():
            for tier_dir in sorted(DEFAULT_GOLDEN_ROOT.iterdir()):
                if tier_dir.is_dir():
                    strays += GoldenStore(tier_dir).clear_strays()
        print(f"[golden-store strays cleared: {strays} file(s)]",
              file=sys.stderr)
        if not args.experiments:
            return 0
    elif args.clear_cache:
        removed = ResultCache().clear()
        print(f"[cache cleared: {removed} entries]", file=sys.stderr)
        leftover = CheckpointStore(args.checkpoint_dir)
        stale = len(leftover) + len(leftover.corrupt_strays())
        if stale:
            print(f"[warning: {stale} checkpoint file(s) remain in "
                  f"{args.checkpoint_dir}/ — cached results are gone but "
                  f"their checkpoints are not; use --clean-state or "
                  f"'make clean-state' to drop both]", file=sys.stderr)
        if not args.experiments:
            return 0
    if args.design and args.experiments:
        print("--design runs a design file; pass either experiment ids or "
              "--design, not both", file=sys.stderr)
        return 2
    if not args.experiments and not args.design:
        print("no experiments requested (try --list)", file=sys.stderr)
        return 2
    requested = list(args.experiments)
    if "all" in requested:
        requested = list(ALL_IDS)
    unknown = [e for e in requested if e not in ALL_IDS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; "
              f"available: {', '.join(ALL_IDS)}", file=sys.stderr)
        return 2
    if args.jobs < 0:
        print(f"--jobs must be >= 0, got {args.jobs}", file=sys.stderr)
        return 2
    if args.retries < 0:
        print(f"--retries must be >= 0, got {args.retries}", file=sys.stderr)
        return 2
    if args.timeout is not None and args.timeout < 0:
        print(f"--timeout must be >= 0, got {args.timeout}", file=sys.stderr)
        return 2
    if args.max_retries is not None and args.max_retries < 0:
        print(f"--max-retries must be >= 0, got {args.max_retries}",
              file=sys.stderr)
        return 2
    if args.lease_ttl is not None and args.lease_ttl <= 0:
        print(f"--lease-ttl must be > 0, got {args.lease_ttl}",
              file=sys.stderr)
        return 2
    if not args.design and (args.shard or args.worker_id
                            or args.lease_ttl is not None
                            or args.max_retries is not None):
        print("--shard/--worker-id/--lease-ttl/--max-retries apply to "
              "campaigns; pass --design FILE", file=sys.stderr)
        return 2
    try:
        faults = (FaultPlan.parse(args.faults) if args.faults
                  else FaultPlan.from_env())
    except FaultSpecError as error:
        print(f"bad fault spec: {error}", file=sys.stderr)
        return 2
    checkpoints = None
    if args.checkpoint_interval is not None:
        if args.checkpoint_interval < 1:
            print(f"--checkpoint-interval must be >= 1 cycle, got "
                  f"{args.checkpoint_interval}", file=sys.stderr)
            return 2
        checkpoints = CheckpointPlan(interval=args.checkpoint_interval,
                                     root=args.checkpoint_dir)
    workers = args.jobs if args.jobs else default_workers()
    cache = None if args.no_cache else ResultCache()

    if args.backend == "vector" and checkpoints is not None:
        print("error: the vector backend does not support "
              "checkpoint/resume; drop --checkpoint-interval or use "
              "--backend object", file=sys.stderr)
        return 2
    if args.design:
        return _run_design_campaign(args, workers, cache, faults,
                                    checkpoints)
    ctx = ExperimentContext(scale=args.scale, seed=args.seed,
                            jobs=workers, cache=cache,
                            timeline_window=args.timeline,
                            trace=bool(args.trace),
                            retries=args.retries, timeout=args.timeout,
                            fail_fast=args.fail_fast, faults=faults,
                            sanitize=args.sanitize, checkpoints=checkpoints,
                            backend=args.backend)
    total_started = time.perf_counter()
    # Plan phase: several experiments in one invocation run as a single
    # deduplicated engine batch (their designs share baselines and whole
    # sweeps), so each simulation executes at most once per invocation and
    # parallelism spans experiment boundaries.
    design_ids = [e for e in requested if e in EXPERIMENT_DESIGNS]
    if len(design_ids) > 1:
        plan_started = time.perf_counter()
        try:
            planned = plan_experiments(ctx, design_ids)
        except (JobExecutionError, JobError) as error:
            # --fail-fast stops the shared batch early; the failure is
            # recorded in the context, so the first driver that consumes
            # it reports the experiment below and ends the loop.
            print(f"[plan: batch stopped early: {error}]", file=sys.stderr)
        else:
            print(f"[plan: {planned} unique job(s) across "
                  f"{len(design_ids)} design(s) in "
                  f"{time.perf_counter() - plan_started:.1f}s]",
                  file=sys.stderr)
    failed_experiments: list[str] = []
    for exp_id in requested:
        started = time.perf_counter()
        try:
            if exp_id == "e12":
                tables = [e12_config_table(ctx), e12_benchmark_table(ctx)]
            else:
                tables = [EXPERIMENTS[exp_id](ctx)]
        except (JobExecutionError, JobError) as error:
            # One experiment's failure never discards the rest: completed
            # sibling results are already cached, the remaining experiments
            # still run (unless --fail-fast), and the per-job outcomes are
            # summarised below.
            elapsed = time.perf_counter() - started
            failed_experiments.append(exp_id)
            print(f"[{exp_id} FAILED after {elapsed:.1f}s: {error}]",
                  file=sys.stderr)
            worker_tb = getattr(error, "worker_traceback", None)
            if worker_tb:
                print(worker_tb.rstrip(), file=sys.stderr)
            if args.fail_fast:
                break
            continue
        elapsed = time.perf_counter() - started
        for index, table in enumerate(tables):
            print(table.to_csv() if args.csv else table.render())
            print()
            if args.chart and args.chart in table.columns:
                print(table.render_chart(args.chart))
                print()
            if args.output:
                out_dir = Path(args.output)
                out_dir.mkdir(parents=True, exist_ok=True)
                suffix = chr(ord("a") + index) if len(tables) > 1 else ""
                (out_dir / f"{exp_id}{suffix}.csv").write_text(
                    table.to_csv() + "\n")
        print(f"[{exp_id} finished in {elapsed:.1f}s]", file=sys.stderr)
    if args.timeline is not None or args.trace:
        _write_telemetry(ctx, args)
    failures = ctx.failure_outcomes()
    if failures:
        print(_failure_table(failures).render())
        print()
    total = time.perf_counter() - total_started
    summary = (f"[total: {total:.1f}s for {len(requested)} experiment(s), "
               f"jobs={workers}")
    retried = sum(report.retried for report in ctx.reports)
    if retried:
        summary += f"; {retried} job(s) recovered by retry"
    if failures:
        summary += f"; {len(failures)} job(s) without a result"
    if failed_experiments:
        summary += f"; FAILED: {', '.join(failed_experiments)}"
    resumed = sum(1 for report in ctx.reports
                  for outcome in report.outcomes
                  if outcome.resumed_from is not None)
    if resumed:
        summary += f"; {resumed} job(s) resumed from checkpoint"
    ckpt_corrupt = sum(report.checkpoint_corrupt for report in ctx.reports)
    if ckpt_corrupt:
        summary += (f"; {ckpt_corrupt} corrupt checkpoint(s) quarantined "
                    f"-> {args.checkpoint_dir}/")
    if cache is not None:
        summary += (f"; cache: {cache.hits} hit(s), {cache.misses} miss(es) "
                    f"-> {DEFAULT_CACHE_DIR}/")
        if cache.write_errors:
            summary += f", {cache.write_errors} write error(s)"
        if cache.corrupt_entries:
            summary += (f", {cache.corrupt_entries} corrupt entr"
                        f"{'y' if cache.corrupt_entries == 1 else 'ies'} "
                        f"quarantined")
    print(summary + "]", file=sys.stderr)
    return 1 if (failed_experiments or failures) else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
