"""Command-line front end for the experiment harness.

Usage::

    repro-exp --list              # what is available
    repro-exp e3                  # one experiment at the default scale
    repro-exp e1 e6 --scale 0.25  # several, scaled down
    repro-exp all                 # the full reconstructed evaluation
    repro-exp e3 --csv            # machine-readable output
    repro-exp e3 --output out/    # also write CSV files
    repro-exp all --jobs 4        # fan simulations out across 4 processes
    repro-exp all                 # second invocation: warm disk cache,
                                  # zero simulations executed
    repro-exp --clear-cache       # purge .repro-cache/
    repro-exp e1 --timeline --output out/
                                  # + one windowed-telemetry CSV per run
    repro-exp e1 --trace e1.json  # merged chrome://tracing document
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Sequence

from ..workloads.patterns import DEFAULT_SEED
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .engine import default_workers
from .experiments import (EXPERIMENTS, ExperimentContext, e12_benchmark_table,
                          e12_config_table)

ALL_IDS = tuple(EXPERIMENTS) + ("e12",)


def _parse_args(argv: Sequence[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description="Reproduce the paper's evaluation figures/tables.")
    parser.add_argument("experiments", nargs="*",
                        help=f"experiment ids ({', '.join(ALL_IDS)}) or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list experiments with one-line descriptions")
    parser.add_argument("--output", metavar="DIR",
                        help="also write each table as CSV into DIR")
    parser.add_argument("--scale", type=float, default=0.4,
                        help="grid-size scale factor (default 0.4; 1.0 = "
                             "full size, slower)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="workload random seed")
    parser.add_argument("--csv", action="store_true",
                        help="emit CSV instead of aligned tables")
    parser.add_argument("--chart", metavar="COLUMN",
                        help="also render COLUMN as an ASCII bar chart")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for independent simulations "
                             "(default 1 = serial; 0 = one per CPU core)")
    parser.add_argument("--timeline", nargs="?", const=1000, type=int,
                        metavar="WINDOW",
                        help="sample a windowed telemetry timeline per run "
                             "(WINDOW cycles, default 1000); CSVs are "
                             "written when --output is given")
    parser.add_argument("--trace", metavar="FILE",
                        help="write all runs' structured event traces as "
                             "one merged Chrome trace_event document "
                             "(one pid lane per run)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache "
                             f"({DEFAULT_CACHE_DIR}/)")
    parser.add_argument("--clear-cache", action="store_true",
                        help="purge the persistent result cache, then run "
                             "any requested experiments")
    return parser.parse_args(argv)


def _describe(exp_id: str) -> str:
    if exp_id == "e12":
        return "configuration and benchmark-characteristics tables"
    doc = EXPERIMENTS[exp_id].__doc__ or ""
    return " ".join(doc.split("\n\n")[0].split()) or exp_id


def _write_telemetry(ctx: ExperimentContext,
                     args: argparse.Namespace) -> None:
    """Export the memoised runs' telemetry (timeline CSVs, merged trace)."""
    runs = ctx.telemetry_runs()
    if not runs:
        return
    if args.timeline is not None and args.output:
        out_dir = Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)
        written = 0
        for label, result in runs:
            timeline = result.meta.get("timeline")
            if not timeline:
                continue
            path = out_dir / f"{label}.timeline.csv"
            path.write_text(timeline.to_csv() + "\n")
            written += 1
        print(f"[timelines: {written} CSV(s) -> {args.output}/]",
              file=sys.stderr)
    if args.trace:
        from ..telemetry.trace import merge_chrome_traces
        named = [(label, result.meta.get("trace") or [],
                  result.meta.get("timeline"))
                 for label, result in runs]
        doc = merge_chrome_traces(named)
        Path(args.trace).write_text(json.dumps(doc))
        print(f"[trace: {len(runs)} run(s) merged -> {args.trace}]",
              file=sys.stderr)


def main(argv: Sequence[str] | None = None) -> int:
    args = _parse_args(argv)
    if args.list:
        for exp_id in ALL_IDS:
            print(f"{exp_id:>4}  {_describe(exp_id)}")
        return 0
    if args.clear_cache:
        removed = ResultCache().clear()
        print(f"[cache cleared: {removed} entries]", file=sys.stderr)
        if not args.experiments:
            return 0
    if not args.experiments:
        print("no experiments requested (try --list)", file=sys.stderr)
        return 2
    requested = list(args.experiments)
    if "all" in requested:
        requested = list(ALL_IDS)
    unknown = [e for e in requested if e not in ALL_IDS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; "
              f"available: {', '.join(ALL_IDS)}", file=sys.stderr)
        return 2
    if args.jobs < 0:
        print(f"--jobs must be >= 0, got {args.jobs}", file=sys.stderr)
        return 2
    workers = args.jobs if args.jobs else default_workers()
    cache = None if args.no_cache else ResultCache()

    ctx = ExperimentContext(scale=args.scale, seed=args.seed,
                            jobs=workers, cache=cache,
                            timeline_window=args.timeline,
                            trace=bool(args.trace))
    total_started = time.perf_counter()
    for exp_id in requested:
        started = time.perf_counter()
        if exp_id == "e12":
            tables = [e12_config_table(ctx), e12_benchmark_table(ctx)]
        else:
            tables = [EXPERIMENTS[exp_id](ctx)]
        elapsed = time.perf_counter() - started
        for index, table in enumerate(tables):
            print(table.to_csv() if args.csv else table.render())
            print()
            if args.chart and args.chart in table.columns:
                print(table.render_chart(args.chart))
                print()
            if args.output:
                out_dir = Path(args.output)
                out_dir.mkdir(parents=True, exist_ok=True)
                suffix = chr(ord("a") + index) if len(tables) > 1 else ""
                (out_dir / f"{exp_id}{suffix}.csv").write_text(
                    table.to_csv() + "\n")
        print(f"[{exp_id} finished in {elapsed:.1f}s]", file=sys.stderr)
    if args.timeline is not None or args.trace:
        _write_telemetry(ctx, args)
    total = time.perf_counter() - total_started
    summary = (f"[total: {total:.1f}s for {len(requested)} experiment(s), "
               f"jobs={workers}")
    if cache is not None:
        summary += (f"; cache: {cache.hits} hit(s), {cache.misses} miss(es) "
                    f"-> {DEFAULT_CACHE_DIR}/")
    print(summary + "]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
