"""Persistent, cross-process result cache.

One JSON file per job fingerprint under a cache root (default
``.repro-cache/`` in the working directory).  Writes are atomic — the entry
is written to a temporary file in the same directory and ``os.replace``'d
into place — so concurrent workers (or concurrent ``repro-exp``
invocations) can never observe a half-written entry.  A corrupted or
unreadable entry is treated as a miss and silently recomputed, never a
crash.

The cache key is :meth:`repro.harness.jobs.SimJob.fingerprint`, which
includes the :data:`~repro.harness.jobs.SIM_VERSION` salt; bumping the salt
invalidates every old entry without touching the files.

Rich meta payloads (the ``timeline``/``trace`` riders collected by
:mod:`repro.telemetry`) round-trip through the same JSON entry; their
decode runs inside the same try block as everything else, so an entry with
a mangled timeline or trace is a silent miss and gets recomputed, never a
crash.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from ..sim.stats import RunResult

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: On-disk schema version, distinct from the simulator-version salt: the
#: salt changes the *fingerprint*, this guards the file layout itself.
_ENTRY_FORMAT = 1


class ResultCache:
    """A directory of ``<fingerprint>.json`` result files."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (f"ResultCache({str(self.root)!r}, hits={self.hits}, "
                f"misses={self.misses})")

    # ------------------------------------------------------------------ #
    def path_for(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> RunResult | None:
        """The cached result, or None (counting a miss) if absent/corrupt."""
        path = self.path_for(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry.get("format") != _ENTRY_FORMAT:
                raise ValueError(f"unknown entry format in {path}")
            result = RunResult.from_dict(entry["result"])
        except (OSError, ValueError, KeyError, TypeError):
            # Missing file, bad JSON, truncated write from a killed process,
            # or a schema change: all are treated as a miss.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, fingerprint: str, result: RunResult) -> None:
        """Store a result atomically (tmp file + rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        entry: dict[str, Any] = {
            "format": _ENTRY_FORMAT,
            "fingerprint": fingerprint,
            "result": result.to_dict(),
        }
        payload = json.dumps(entry, separators=(",", ":"))
        fd, tmp_name = tempfile.mkstemp(dir=self.root, prefix=".tmp-",
                                        suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, self.path_for(fingerprint))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry (and stray temp file); return the count."""
        if not self.root.is_dir():
            return 0
        removed = 0
        for path in list(self.root.glob("*.json")) \
                + list(self.root.glob(".tmp-*")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
