"""Persistent, cross-process result cache.

One JSON file per job fingerprint under a cache root (default
``.repro-cache/`` in the working directory).  Writes are atomic — the entry
is written to a temporary file in the same directory and ``os.replace``'d
into place — so concurrent workers (or concurrent ``repro-exp``
invocations) can never observe a half-written entry.  A corrupted or
unreadable entry is treated as a miss and silently recomputed, never a
crash; an *unwritable* cache (disk full, read-only directory) degrades the
same way — :meth:`ResultCache.put` warns once, counts a ``write_errors``
stat and the batch keeps running un-cached.

The cache key is :meth:`repro.harness.jobs.SimJob.fingerprint`, which
includes the :data:`~repro.harness.jobs.SIM_VERSION` salt; bumping the salt
invalidates every old entry without touching the files.

Rich meta payloads (the ``timeline``/``trace`` riders collected by
:mod:`repro.telemetry`) round-trip through the same JSON entry; their
decode runs inside the same try block as everything else, so an entry with
a mangled timeline or trace is a miss and gets recomputed, never a crash.

A *corrupt* entry (the file exists but does not decode) is additionally
**quarantined**: renamed to ``<fingerprint>.corrupt`` — deleted outright
if even the rename fails — and counted in ``corrupt_entries``, so a bad
entry is reported once in the batch summary instead of silently
re-missing on every future run.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Any

from ..sim.stats import RunResult

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: On-disk schema version, distinct from the simulator-version salt: the
#: salt changes the *fingerprint*, this guards the file layout itself.
_ENTRY_FORMAT = 1


class ResultCache:
    """A directory of ``<fingerprint>.json`` result files."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.write_errors = 0
        self.corrupt_entries = 0
        self._warned_unwritable = False

    def __repr__(self) -> str:
        return (f"ResultCache({str(self.root)!r}, hits={self.hits}, "
                f"misses={self.misses}, write_errors={self.write_errors}, "
                f"corrupt_entries={self.corrupt_entries})")

    # ------------------------------------------------------------------ #
    def path_for(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> RunResult | None:
        """The cached result, or None (counting a miss) if absent/corrupt.

        An entry that exists but fails to decode — bad JSON, a truncated
        write from a killed process, a schema change — is quarantined to
        ``<fingerprint>.corrupt`` and counted in :attr:`corrupt_entries`
        before the miss is returned.
        """
        path = self.path_for(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError:
            # Missing or unreadable file: an ordinary miss.
            self.misses += 1
            return None
        try:
            entry = json.loads(raw)
            if entry.get("format") != _ENTRY_FORMAT:
                raise ValueError(f"unknown entry format in {path}")
            result = RunResult.from_dict(entry["result"])
        except (ValueError, KeyError, TypeError, AttributeError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it is reported, not re-read."""
        self.corrupt_entries += 1
        try:
            path.rename(path.with_suffix(".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def put(self, fingerprint: str, result: RunResult) -> bool:
        """Store a result atomically (tmp file + rename).

        Returns True on success.  Storage failures (disk full, read-only
        cache directory, quota) degrade gracefully: the first one warns,
        every one counts a :attr:`write_errors`, and the caller keeps
        running un-cached — a broken cache must never crash a batch.
        """
        entry: dict[str, Any] = {
            "format": _ENTRY_FORMAT,
            "fingerprint": fingerprint,
            "result": result.to_dict(),
        }
        payload = json.dumps(entry, separators=(",", ":"))
        tmp_name = None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=self.root, prefix=".tmp-",
                                            suffix=".json")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, self.path_for(fingerprint))
        except OSError as error:
            self._note_write_error(error)
            self._discard_tmp(tmp_name)
            return False
        except BaseException:
            self._discard_tmp(tmp_name)
            raise
        return True

    def _note_write_error(self, error: OSError) -> None:
        self.write_errors += 1
        if not self._warned_unwritable:
            self._warned_unwritable = True
            warnings.warn(
                f"result cache {self.root} is not writable "
                f"({type(error).__name__}: {error}); continuing un-cached",
                RuntimeWarning, stacklevel=3)

    @staticmethod
    def _discard_tmp(tmp_name: str | None) -> None:
        if tmp_name is None:
            return
        try:
            os.unlink(tmp_name)
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        # Stray .tmp-* files (a worker killed mid-write) are not entries.
        if not self.root.is_dir():
            return 0
        return sum(1 for path in self.root.glob("*.json")
                   if not path.name.startswith(".tmp-"))

    def clear(self) -> int:
        """Delete every entry (plus quarantined/temp files); return count."""
        if not self.root.is_dir():
            return 0
        removed = 0
        for path in {*self.root.glob("*.json"), *self.root.glob("*.corrupt"),
                     *self.root.glob(".tmp-*")}:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
