"""Experiment drivers — one per reconstructed figure/table (E1..E22).

Every driver is now two declarative halves:

* a **design** (``design_eNN``): the experiment's factorial space —
  crossed/nested/derived :class:`~repro.design.Factor`\\ s compiled to
  :class:`SimJob`\\ s by the :mod:`repro.design` layer.  Designs are data:
  the CLI counts their cells for ``--list``, :func:`plan_experiments`
  merges them across experiments into one deduplicated engine batch, and
  campaigns (``repro-exp --design``) run file-borne designs through the
  identical machinery;
* a **table assembly** (``eNN_*``): reads the memoised results back and
  lays out the rows the paper would plot.  Byte-identical to the
  pre-design-layer tables (asserted by ``tests/test_table_goldens.py``).

Each ``eNN_*`` function takes an :class:`ExperimentContext` and returns a
:class:`~repro.harness.reporting.Table`.  The context memoises simulation
runs, so experiments that share configurations (e.g. E3's baseline and
E4's oracle sweep) pay for each simulation once — and a shared
fingerprint *pool* extends that guarantee across hardware sub-contexts,
so identical cells declared by several experiments in one invocation run
exactly once.

Scale convention: ``ExperimentContext(scale=...)`` scales every kernel's
grid; 1.0 is the full evaluation size (~4 waves of CTAs per kernel),
0.25–0.5 gives the same qualitative shapes in a fraction of the time (used
by the test suite and the quick benchmark mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Sequence

from ..design import CompiledCell, Design, DesignEnv, Factor
from ..design.env import build_job
from ..sim.config import GPUConfig
from ..sim.kernel import Kernel
from ..sim.stats import RunResult
from ..workloads.patterns import DEFAULT_SEED
from ..workloads.programs import memory_intensity
from ..workloads.suite import (CKE_PAIRS, LCS_SET, LOCALITY_SET,
                               MOTIVATION_SET, SUITE, make_kernel)
from .cache import ResultCache
from .checkpoints import CheckpointPlan
from .engine import (DEFAULT_RETRIES, BatchReport, JobExecutionError,
                     JobOutcome, run_batch, run_jobs)
from .faults import FaultPlan
from .jobs import SimJob
from .metrics import cke_metrics
from .reporting import Table, geomean, speedup

#: Default LCS decision rule and parameter used across experiments
#: (calibrated by the E9 sensitivity sweep; see EXPERIMENTS.md).
LCS_RULE = "tail"
LCS_PARAM = 0.50

#: Default BCS block size (the paper's consecutive pair).
BCS_BLOCK = 2


@dataclass
class ExperimentContext:
    """Shared settings plus a memo of completed simulation runs.

    ``jobs`` and ``cache`` plug the context into the batch engine
    (:mod:`repro.harness.engine`): experiment drivers *declare* their runs
    up front — as :class:`~repro.design.Design` objects via
    :meth:`prefetch_design`, or as raw job lists via :meth:`prefetch` —
    the engine executes the cache misses across ``jobs`` worker processes
    when ``jobs > 1``, and :meth:`run` then assembles tables entirely from
    the in-memory memo.  Results are bit-identical to serial, uncached
    execution by construction.

    Hardware sub-contexts (:meth:`for_config`) share the parent's
    fingerprint pool, reports list and sub-context registry, so a cell
    two experiments both declare — even under different contexts of the
    same invocation — simulates once.
    """

    scale: float = 0.4
    seed: int = DEFAULT_SEED
    config: GPUConfig = field(default_factory=GPUConfig)
    jobs: int = 1
    cache: ResultCache | None = None
    # Telemetry riders applied to every job this context builds: a windowed
    # timeline (cycles per window) and/or a structured event trace.  They
    # change job fingerprints (telemetry-bearing results cache separately)
    # but never the simulated statistics.
    timeline_window: int | None = None
    trace: bool = False
    # Resilience knobs forwarded to every engine batch (see
    # docs/ROBUSTNESS.md): transient-failure retries, the per-job
    # wall-clock deadline, whether the first failure stops the batch, and
    # an optional deterministic fault-injection plan.
    retries: int = DEFAULT_RETRIES
    timeout: float | None = None
    fail_fast: bool = False
    faults: FaultPlan | None = field(default=None, repr=False)
    # Robustness riders: the in-flight invariant sanitizer and the
    # checkpoint/resume plan.  Neither changes results or fingerprints.
    sanitize: bool | None = None
    checkpoints: CheckpointPlan | None = None
    # Simulator core for every job this context builds ('object' or
    # 'vector').  Not fingerprint-relevant: the backends are
    # bitwise-identical by contract, so tables are too.
    backend: str = "object"
    # Engine reports accumulate here, one per prefetch batch; sub-contexts
    # share the parent's list so a CLI failure summary sees everything.
    reports: list[BatchReport] = field(default_factory=list, repr=False)
    # Cross-context result pool (fingerprint -> result) and the
    # per-hardware sub-context registry.  Both are shared *by reference*
    # with every sub-context: a job two contexts would both run — the
    # gto x rr baseline a dozen experiments share, say — simulates once
    # per invocation, wherever it was declared first.
    _pool: dict[str, RunResult] = field(default_factory=dict, repr=False)
    _subcontexts: dict[GPUConfig, "ExperimentContext"] = \
        field(default_factory=dict, repr=False)
    _cache: dict[tuple, RunResult] = field(default_factory=dict, repr=False)
    _failed: dict[tuple, JobOutcome] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ #
    def kernel(self, name: str, scale_mult: float = 1.0) -> Kernel:
        """A fresh kernel instance (policies hold per-run state)."""
        return make_kernel(name, scale=self.scale * scale_mult, seed=self.seed)

    def occupancy(self, name: str) -> int:
        return self.kernel(name).max_ctas_per_sm(self.config)

    def subcontext(self, config: GPUConfig) -> "ExperimentContext":
        """A context on different hardware sharing every other setting.

        Built with :func:`dataclasses.replace`, so a field added to the
        context tomorrow is forwarded automatically — only the per-config
        run memos reset (their keys deliberately omit the hardware).  The
        ``reports`` list, fingerprint pool and sub-context registry are
        shared by reference, not copied, so sub-context failures surface
        in the parent's summary and shared cells never run twice.
        """
        return replace(self, config=config, _cache={}, _failed={})

    def for_config(self, config: GPUConfig) -> "ExperimentContext":
        """The memoised sub-context for ``config`` (self when equal).

        Two experiments asking for the same hardware variant in one
        invocation get the *same* sub-context — and therefore share its
        run memo — instead of each building a private one.
        """
        if config == self.config:
            return self
        sub = self._subcontexts.get(config)
        if sub is None:
            sub = self.subcontext(config)
            self._subcontexts[config] = sub
        return sub

    # ------------------------------------------------------------------ #
    def job(self, names: str | Sequence[str], *,
            warp: str | tuple = "gto",
            policy: tuple = ("rr",),
            scale_mults: Sequence[float] | None = None) -> SimJob:
        """The declarative job for one :meth:`run` parameter combination.

        Delegates to :func:`repro.design.build_job` — the single job
        construction path shared with the design compiler — so a design
        cell and a hand-built run can never drift apart (vector-backend
        fallback included).
        """
        return build_job(names=names, scale=self.scale, seed=self.seed,
                         config=self.config, warp=warp, policy=policy,
                         scale_mults=scale_mults,
                         timeline_window=self.timeline_window,
                         trace=self.trace, backend=self.backend)

    def design_env(self) -> DesignEnv:
        """This context's settings as a design-compile environment."""
        return DesignEnv(scale=self.scale, seed=self.seed, config=self.config,
                         timeline_window=self.timeline_window,
                         trace=self.trace, backend=self.backend)

    @staticmethod
    def _memo_key(job: SimJob) -> tuple:
        return (job.names, job.scale_mults, job.warp, job.policy)

    def prefetch(self, jobs: Iterable[SimJob]) -> None:
        """Execute not-yet-memoised jobs as one batch (parallel + cached).

        Drivers call this with every run they are about to consume; the
        subsequent :meth:`run` calls are then pure memo lookups.  Jobs
        whose fingerprint is already in the shared pool (declared by an
        earlier experiment of this invocation) are filed from the pool
        without touching the engine.

        Failures are isolated per job: successful results are memoised
        (and cached) regardless of what happened to their batch-mates,
        failed jobs are remembered so :meth:`run` raises a
        :class:`~repro.harness.engine.JobExecutionError` for exactly the
        affected parameter combinations.  With ``fail_fast`` set the first
        failure raises here instead.
        """
        batch: list[tuple[SimJob, str]] = []
        seen: set[tuple] = set()
        for job in jobs:
            if job.scale != self.scale or job.seed != self.seed \
                    or job.config != self.config:
                raise ValueError(
                    "prefetch jobs must be built by this context "
                    "(ctx.job(...)); scale/seed/config differ")
            key = self._memo_key(job)
            if key in self._cache or key in seen:
                continue
            fingerprint = job.fingerprint()
            pooled = self._pool.get(fingerprint)
            if pooled is not None:
                self._cache[key] = pooled
                continue
            seen.add(key)
            batch.append((job, fingerprint))
        if not batch:
            return
        report = run_batch([job for job, _ in batch], workers=self.jobs,
                           cache=self.cache,
                           retries=self.retries, timeout=self.timeout,
                           fail_fast=self.fail_fast, faults=self.faults,
                           sanitize=self.sanitize,
                           checkpoints=self.checkpoints)
        self.reports.append(report)
        for (job, fingerprint), outcome in zip(batch, report.outcomes):
            key = self._memo_key(job)
            if outcome.result is not None:
                self._cache[key] = outcome.result
                self._pool[fingerprint] = outcome.result
            else:
                self._failed[key] = outcome
        if self.fail_fast:
            failure = report.first_failure()
            if failure is not None:
                raise JobExecutionError(failure.fingerprint,
                                        failure.error or failure.status,
                                        failure.worker_traceback)

    def prefetch_design(self, design: Design) -> list[CompiledCell]:
        """Compile a design under this context and batch-execute it.

        Cells carrying their own hardware (a ``config`` factor) are routed
        to the matching :meth:`for_config` sub-context; everything runs as
        one engine batch.  Returns the compiled cells (drivers usually
        ignore them and read results back via :meth:`run`).
        """
        compiled = design.compile(self.design_env())
        prefetch_contexts((self.for_config(cc.job.config), cc.job)
                          for cc in compiled)
        return compiled

    # ------------------------------------------------------------------ #
    def run(self, names: str | Sequence[str], *,
            warp: str | tuple = "gto",
            policy: tuple = ("rr",),
            scale_mults: Sequence[float] | None = None) -> RunResult:
        """Simulate (memoised on the full parameter tuple)."""
        job = self.job(names, warp=warp, policy=policy,
                       scale_mults=scale_mults)
        key = self._memo_key(job)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        failed = self._failed.get(key)
        if failed is not None:
            # The batch already tried (and retried) this combination; raise
            # the recorded outcome instead of re-simulating a known failure.
            raise JobExecutionError(failed.fingerprint,
                                    failed.error or failed.status,
                                    failed.worker_traceback)
        fingerprint = job.fingerprint()
        pooled = self._pool.get(fingerprint)
        if pooled is not None:
            self._cache[key] = pooled
            return pooled
        result = run_jobs([job], cache=self.cache, retries=self.retries,
                          timeout=self.timeout, faults=self.faults,
                          sanitize=self.sanitize,
                          checkpoints=self.checkpoints)[0]
        self._cache[key] = result
        self._pool[fingerprint] = result
        return result

    # ------------------------------------------------------------------ #
    def static_sweep_jobs(self, name: str, *,
                          warp: str | tuple = "gto") -> list[SimJob]:
        """The per-limit jobs of :meth:`static_sweep` (for prefetching)."""
        return [self.job(name, warp=warp, policy=("static", limit))
                for limit in range(1, self.occupancy(name) + 1)]

    def static_sweep(self, name: str, *,
                     warp: str | tuple = "gto") -> dict[int, RunResult]:
        """One run per static CTA limit 1..occupancy."""
        occupancy = self.occupancy(name)
        self.prefetch(self.static_sweep_jobs(name, warp=warp))
        return {limit: self.run(name, warp=warp, policy=("static", limit))
                for limit in range(1, occupancy + 1)}

    def oracle_best(self, name: str, *, warp: str = "gto") -> tuple[int, RunResult]:
        """(best static limit, its run) by cycles."""
        sweep = self.static_sweep(name, warp=warp)
        best = min(sweep, key=lambda limit: (sweep[limit].cycles, limit))
        return best, sweep[best]

    # ------------------------------------------------------------------ #
    @staticmethod
    def _run_label(key: tuple) -> str:
        """A filesystem-safe slug for one memoised run's parameters."""
        names, _mults, warp, policy = key
        warp_part = (f"{warp[0]}{warp[1]}" if isinstance(warp, tuple)
                     else str(warp))
        policy_part = "_".join(str(p) for p in policy if p is not None)
        slug = "+".join(names) + f".{warp_part}.{policy_part}"
        return slug.replace("/", "-").replace(" ", "")

    def telemetry_runs(self) -> list[tuple[str, RunResult]]:
        """Memoised runs that carry telemetry, as (label, result) pairs.

        Labels are deterministic slugs of the run parameters, suitable as
        file stems; runs without a timeline or trace are skipped.
        """
        out = []
        for key, result in self._cache.items():
            if "timeline" in result.meta or "trace" in result.meta:
                out.append((self._run_label(key), result))
        out.sort(key=lambda pair: pair[0])
        return out

    # ------------------------------------------------------------------ #
    def failure_outcomes(self) -> list[JobOutcome]:
        """Every failed/timed-out/skipped outcome across all batches run
        through this context (including shared-report sub-contexts)."""
        return [outcome for report in self.reports
                for outcome in report.outcomes if outcome.result is None]

    def engine_events(self) -> list[dict]:
        """The engine's own trace events (retries, timeouts, respawns)
        across all batches, in batch order."""
        return [event for report in self.reports for event in report.events]


def prefetch_contexts(
        items: Iterable[tuple[ExperimentContext, SimJob]]) -> None:
    """Batch-execute jobs that belong to *several* contexts.

    Designs with hardware factors (E19/E20/E22) compile to jobs on
    different configurations, so their runs live in different contexts;
    this executes all their pending jobs as one engine batch and files
    each result in the owning context's memo — consulting and feeding the
    shared fingerprint pool, so a cell that already ran anywhere in this
    invocation is never dispatched again.
    """
    pending: list[tuple[ExperimentContext, SimJob, str]] = []
    seen: set[tuple] = set()
    for ctx, job in items:
        memo_key = ExperimentContext._memo_key(job)
        key = (id(ctx), memo_key)
        if key in seen or memo_key in ctx._cache:
            continue
        fingerprint = job.fingerprint()
        pooled = ctx._pool.get(fingerprint)
        if pooled is not None:
            ctx._cache[memo_key] = pooled
            continue
        seen.add(key)
        pending.append((ctx, job, fingerprint))
    if not pending:
        return
    workers = max(ctx.jobs for ctx, _, _ in pending)
    lead = pending[0][0]
    report = run_batch([job for _, job, _ in pending], workers=workers,
                       cache=lead.cache, retries=lead.retries,
                       timeout=lead.timeout, fail_fast=lead.fail_fast,
                       faults=lead.faults, sanitize=lead.sanitize,
                       checkpoints=lead.checkpoints)
    lead.reports.append(report)
    for (ctx, job, fingerprint), outcome in zip(pending, report.outcomes):
        key = ExperimentContext._memo_key(job)
        if outcome.result is not None:
            ctx._cache[key] = outcome.result
            ctx._pool[fingerprint] = outcome.result
        else:
            ctx._failed[key] = outcome
    if lead.fail_fast:
        failure = report.first_failure()
        if failure is not None:
            raise JobExecutionError(failure.fingerprint,
                                    failure.error or failure.status,
                                    failure.worker_traceback)


# =========================================================================== #
# design vocabulary shared by the E-driver declarations
# =========================================================================== #

def _bench_factor(benchmarks: Sequence[str]) -> Factor:
    return Factor.crossed("bench", tuple(benchmarks))


def _policy_factor(*policies: tuple) -> Factor:
    return Factor.crossed("policy", tuple(policies))


def _variant_factors(*variants: tuple[str, tuple]) -> list[Factor]:
    """A (warp, policy) combination factor, split by derivation."""
    return [
        Factor.crossed("variant", tuple(variants)),
        Factor.derived("warp", lambda cell, env: cell["variant"][0]),
        Factor.derived("policy", lambda cell, env: cell["variant"][1]),
    ]


def static_sweep_design(benchmarks: Sequence[str], *,
                        warp: str = "gto") -> Design:
    """bench x (limit nested in occupancy) -> ('static', limit) jobs.

    The canonical nested factor: the limit range depends on the
    benchmark's occupancy under the compile environment's scale and
    hardware, so the design stays correct at every ``--scale``.
    """
    return Design(
        "static-sweep",
        factors=[
            _bench_factor(benchmarks),
            Factor.crossed("warp", (warp,)),
            Factor.nested("limit", lambda cell, env: range(
                1, env.occupancy(cell["bench"]) + 1)),
            Factor.derived("policy",
                           lambda cell, env: ("static", cell["limit"])),
        ])


def baseline_design(benchmarks: Sequence[str], *,
                    warp: str = "gto") -> Design:
    """The max-occupancy GTO baseline every speedup normalizes to."""
    return Design("baseline", factors=[
        _bench_factor(benchmarks),
        Factor.crossed("warp", (warp,)),
        _policy_factor(("rr",)),
    ])


# =========================================================================== #
# E1 — motivation: IPC vs CTAs per core
# =========================================================================== #

def design_e1(benchmarks: Sequence[str] = MOTIVATION_SET) -> Design:
    return Design.chain("e1", static_sweep_design(benchmarks))


def e1_occupancy_sweep(ctx: ExperimentContext,
                       benchmarks: Sequence[str] = MOTIVATION_SET) -> Table:
    """Normalized IPC against the per-core CTA limit (paper's motivation
    figure): memory-sensitive kernels peak *below* maximum occupancy."""
    ctx.prefetch_design(design_e1(benchmarks))
    max_occ = max(ctx.occupancy(name) for name in benchmarks)
    columns = ["benchmark"] + [f"n={n}" for n in range(1, max_occ + 1)] \
        + ["best_n", "max_n"]
    table = Table("E1: normalized IPC vs CTAs per core (1.0 = max occupancy)",
                  columns)
    for name in benchmarks:
        sweep = ctx.static_sweep(name)
        occupancy = max(sweep)
        base_ipc = sweep[occupancy].ipc
        cells: list[Any] = [name]
        for n in range(1, max_occ + 1):
            cells.append(sweep[n].ipc / base_ipc if n in sweep else "-")
        best = min(sweep, key=lambda limit: (sweep[limit].cycles, limit))
        cells.extend([best, occupancy])
        table.add_row(*cells)
    table.add_note("values are IPC normalized to the maximum-occupancy run")
    return table


# =========================================================================== #
# E2 — motivation: per-CTA issue counts under GTO
# =========================================================================== #

def design_e2(benchmarks: Sequence[str] = MOTIVATION_SET,
              rule: str = LCS_RULE, param: float = LCS_PARAM) -> Design:
    return Design("e2", factors=[
        _bench_factor(benchmarks),
        _policy_factor(("lcs", rule, param)),
    ])


def e2_issue_signature(ctx: ExperimentContext,
                       benchmarks: Sequence[str] = MOTIVATION_SET,
                       rule: str = LCS_RULE,
                       param: float = LCS_PARAM) -> Table:
    """The monitored core's per-CTA issued-instruction distribution at the
    end of the LCS monitoring period, normalized to the busiest CTA."""
    ctx.prefetch_design(design_e2(benchmarks, rule, param))
    max_occ = max(ctx.occupancy(name) for name in benchmarks)
    columns = ["benchmark"] + [f"cta{r}" for r in range(1, max_occ + 1)] \
        + ["n_star"]
    table = Table("E2: per-CTA issue share under GTO (monitoring period)",
                  columns)
    for name in benchmarks:
        result = ctx.run(name, policy=("lcs", rule, param))
        decision = result.meta["lcs_decision"]
        counts = decision.issue_counts
        busiest = max(counts) if counts else 1
        cells: list[Any] = [name]
        for rank in range(max_occ):
            cells.append(counts[rank] / busiest if rank < len(counts) else "-")
        cells.append(decision.n_star)
        table.add_row(*cells)
    table.add_note(f"n_star computed by the {rule} rule at {param}")
    return table


# =========================================================================== #
# E3 — headline: LCS speedup over the maximum-occupancy baseline
# =========================================================================== #

def design_e3(benchmarks: Sequence[str] = LCS_SET,
              rule: str = LCS_RULE, param: float = LCS_PARAM) -> Design:
    return Design.chain(
        "e3",
        baseline_design(benchmarks),
        Design("e3-lcs", factors=[_bench_factor(benchmarks),
                                  _policy_factor(("lcs", rule, param))]),
        static_sweep_design(benchmarks))


def e3_lcs_speedup(ctx: ExperimentContext,
                   benchmarks: Sequence[str] = LCS_SET,
                   rule: str = LCS_RULE, param: float = LCS_PARAM) -> Table:
    """The headline figure: LCS speedup over the max-occupancy baseline,
    with the exhaustive static oracle alongside."""
    ctx.prefetch_design(design_e3(benchmarks, rule, param))
    table = Table(
        "E3: LCS and oracle speedup over baseline (GTO, max occupancy)",
        ["benchmark", "base_ipc", "lcs_ipc", "oracle_ipc",
         "lcs_speedup", "oracle_speedup", "n_lcs", "n_oracle"])
    lcs_speedups = []
    oracle_speedups = []
    for name in benchmarks:
        base = ctx.run(name)
        lcs = ctx.run(name, policy=("lcs", rule, param))
        best_limit, oracle = ctx.oracle_best(name)
        decision = lcs.meta["lcs_decision"]
        s_lcs = speedup(base.cycles, lcs.cycles)
        s_oracle = speedup(base.cycles, oracle.cycles)
        lcs_speedups.append(s_lcs)
        oracle_speedups.append(s_oracle)
        table.add_row(name, base.ipc, lcs.ipc, oracle.ipc, s_lcs, s_oracle,
                      decision.n_star if decision else "-", best_limit)
    table.add_row("GMEAN", "-", "-", "-", geomean(lcs_speedups),
                  geomean(oracle_speedups), "-", "-")
    return table


# =========================================================================== #
# E4 — LCS decision quality vs the exhaustive oracle
# =========================================================================== #

def design_e4(benchmarks: Sequence[str] = LCS_SET,
              rule: str = LCS_RULE, param: float = LCS_PARAM) -> Design:
    return Design.chain(
        "e4",
        Design("e4-lcs", factors=[_bench_factor(benchmarks),
                                  _policy_factor(("lcs", rule, param))]),
        static_sweep_design(benchmarks))


def e4_lcs_vs_oracle(ctx: ExperimentContext,
                     benchmarks: Sequence[str] = LCS_SET,
                     rule: str = LCS_RULE, param: float = LCS_PARAM) -> Table:
    """Decision quality: the online N* against the oracle's static best."""
    ctx.prefetch_design(design_e4(benchmarks, rule, param))
    table = Table(
        "E4: LCS-chosen CTA count vs oracle static best",
        ["benchmark", "occupancy", "n_lcs", "n_oracle",
         "lcs_vs_oracle_cycles", "within_one"])
    for name in benchmarks:
        lcs = ctx.run(name, policy=("lcs", rule, param))
        decision = lcs.meta["lcs_decision"]
        best_limit, oracle = ctx.oracle_best(name)
        n_lcs = decision.n_star if decision else ctx.occupancy(name)
        ratio = oracle.cycles / lcs.cycles   # 1.0 = LCS matches the oracle
        table.add_row(name, ctx.occupancy(name), n_lcs, best_limit, ratio,
                      abs(n_lcs - best_limit) <= 1)
    return table


# =========================================================================== #
# E5 — warp-scheduler baseline: LRR vs GTO
# =========================================================================== #

def design_e5(benchmarks: Sequence[str] = LCS_SET) -> Design:
    return Design("e5", factors=[
        _bench_factor(benchmarks),
        Factor.crossed("warp", ("lrr", "gto", "two-level")),
        _policy_factor(("rr",)),
    ])


def e5_warp_schedulers(ctx: ExperimentContext,
                       benchmarks: Sequence[str] = LCS_SET) -> Table:
    """Warp-scheduler baselines: LRR vs GTO vs two-level round robin."""
    ctx.prefetch_design(design_e5(benchmarks))
    table = Table(
        "E5: warp schedulers at max occupancy (speedup over LRR)",
        ["benchmark", "lrr_ipc", "gto_ipc", "twolevel_ipc",
         "gto_over_lrr", "twolevel_over_lrr"])
    gto_ratios, two_ratios = [], []
    for name in benchmarks:
        lrr = ctx.run(name, warp="lrr")
        gto = ctx.run(name, warp="gto")
        two = ctx.run(name, warp="two-level")
        r_gto = speedup(lrr.cycles, gto.cycles)
        r_two = speedup(lrr.cycles, two.cycles)
        gto_ratios.append(r_gto)
        two_ratios.append(r_two)
        table.add_row(name, lrr.ipc, gto.ipc, two.ipc, r_gto, r_two)
    table.add_row("GMEAN", "-", "-", "-", geomean(gto_ratios),
                  geomean(two_ratios))
    return table


# =========================================================================== #
# E6 — BCS and BCS+BAWS speedups
# =========================================================================== #

def design_e6(benchmarks: Sequence[str] = LOCALITY_SET,
              block_size: int = BCS_BLOCK) -> Design:
    """The (baseline, BCS, BCS+BAWS) cells E6 and E7 both consume."""
    return Design("e6", factors=[
        _bench_factor(benchmarks),
        *_variant_factors(("gto", ("rr",)),
                          ("gto", ("bcs", block_size, None)),
                          ("baws", ("bcs", block_size, None))),
    ])


def e6_bcs(ctx: ExperimentContext,
           benchmarks: Sequence[str] = LOCALITY_SET,
           block_size: int = BCS_BLOCK) -> Table:
    """BCS and BCS+BAWS speedups on the inter-CTA-locality kernels."""
    ctx.prefetch_design(design_e6(benchmarks, block_size))
    table = Table(
        "E6: BCS speedup over baseline (block = consecutive pair)",
        ["benchmark", "base_ipc", "bcs_gto", "bcs_baws"])
    gto_speedups = []
    baws_speedups = []
    for name in benchmarks:
        base = ctx.run(name)
        bcs = ctx.run(name, policy=("bcs", block_size, None))
        baws = ctx.run(name, warp="baws", policy=("bcs", block_size, None))
        s_gto = speedup(base.cycles, bcs.cycles)
        s_baws = speedup(base.cycles, baws.cycles)
        gto_speedups.append(s_gto)
        baws_speedups.append(s_baws)
        table.add_row(name, base.ipc, s_gto, s_baws)
    table.add_row("GMEAN", "-", geomean(gto_speedups), geomean(baws_speedups))
    return table


# =========================================================================== #
# E7 — L1 behaviour under BCS
# =========================================================================== #

def e7_bcs_l1(ctx: ExperimentContext,
              benchmarks: Sequence[str] = LOCALITY_SET,
              block_size: int = BCS_BLOCK) -> Table:
    """L1 miss rates and MSHR merges under BCS (where the speedup is from)."""
    ctx.prefetch_design(design_e6(benchmarks, block_size))
    table = Table(
        "E7: L1 miss rate and MSHR merges under BCS",
        ["benchmark", "miss_base", "miss_bcs", "miss_baws",
         "merges_base", "merges_bcs", "merges_baws"])
    for name in benchmarks:
        base = ctx.run(name)
        bcs = ctx.run(name, policy=("bcs", block_size, None))
        baws = ctx.run(name, warp="baws", policy=("bcs", block_size, None))
        table.add_row(name, base.l1.miss_rate, bcs.l1.miss_rate,
                      baws.l1.miss_rate, base.l1.merges, bcs.l1.merges,
                      baws.l1.merges)
    return table


# =========================================================================== #
# E8 — concurrent kernel execution
# =========================================================================== #

def design_e8(pairs: Sequence[tuple[str, str, float]] = CKE_PAIRS,
              rule: str = LCS_RULE, param: float = LCS_PARAM) -> Design:
    return Design("e8", factors=[
        Factor.crossed("pair", tuple(pairs)),
        _policy_factor(("sequential",), ("spatial",), ("smk",),
                       ("mixed", rule, param)),
        Factor.derived("bench",
                       lambda cell, env: tuple(cell["pair"][:2])),
        Factor.derived("scale_mults",
                       lambda cell, env: (1.0, cell["pair"][2])),
    ])


def e8_cke(ctx: ExperimentContext,
           pairs: Sequence[tuple[str, str, float]] = CKE_PAIRS,
           rule: str = LCS_RULE, param: float = LCS_PARAM) -> Table:
    """Concurrent kernel execution: sequential vs spatial vs SMK-even vs
    the paper's LCS-guided mixed allocation."""
    ctx.prefetch_design(design_e8(pairs, rule, param))
    table = Table(
        "E8: concurrent kernel execution (speedup over sequential)",
        ["pair", "seq_cycles", "spatial", "smk_even", "mixed", "n_star"])
    spatial_s, smk_s, mixed_s = [], [], []
    for mem_name, compute_name, mult in pairs:
        names = (mem_name, compute_name)
        mults = (1.0, mult)
        seq = ctx.run(names, policy=("sequential",), scale_mults=mults)
        spa = ctx.run(names, policy=("spatial",), scale_mults=mults)
        smk = ctx.run(names, policy=("smk",), scale_mults=mults)
        mix = ctx.run(names, policy=("mixed", rule, param), scale_mults=mults)
        decision = mix.meta["lcs_decision"]
        s_spa = speedup(seq.cycles, spa.cycles)
        s_smk = speedup(seq.cycles, smk.cycles)
        s_mix = speedup(seq.cycles, mix.cycles)
        spatial_s.append(s_spa)
        smk_s.append(s_smk)
        mixed_s.append(s_mix)
        table.add_row(f"{mem_name}+{compute_name}", seq.cycles, s_spa, s_smk,
                      s_mix, decision.n_star if decision else "-")
    table.add_row("GMEAN", "-", geomean(spatial_s), geomean(smk_s),
                  geomean(mixed_s), "-")
    return table


# =========================================================================== #
# E9 — sensitivity: LCS issue-share threshold
# =========================================================================== #

def design_e9(benchmarks: Sequence[str] = LCS_SET,
              variants: Sequence[tuple[str, float]] = (
                  ("tail", 0.3), ("tail", 0.5), ("tail", 0.7),
                  ("coverage", 0.9), ("threshold", 0.18))) -> Design:
    return Design.chain(
        "e9",
        baseline_design(benchmarks),
        Design("e9-variants", factors=[
            _bench_factor(benchmarks),
            Factor.crossed("rule_param", tuple(variants)),
            Factor.derived("policy",
                           lambda cell, env: ("lcs",) + cell["rule_param"]),
        ]))


def e9_lcs_threshold(ctx: ExperimentContext,
                     benchmarks: Sequence[str] = LCS_SET,
                     variants: Sequence[tuple[str, float]] = (
                         ("tail", 0.3), ("tail", 0.5), ("tail", 0.7),
                         ("coverage", 0.9), ("threshold", 0.18)),
                     ) -> Table:
    """Sensitivity of LCS to its decision rule and parameter."""
    ctx.prefetch_design(design_e9(benchmarks, variants))
    columns = ["benchmark"] + [f"{rule[:3]}={param}" for rule, param in variants]
    table = Table("E9: LCS speedup vs decision rule/parameter", columns)
    per_variant: dict[tuple[str, float], list[float]] = {v: [] for v in variants}
    for name in benchmarks:
        base = ctx.run(name)
        cells: list[Any] = [name]
        for rule, param in variants:
            lcs = ctx.run(name, policy=("lcs", rule, param))
            value = speedup(base.cycles, lcs.cycles)
            per_variant[(rule, param)].append(value)
            cells.append(value)
        table.add_row(*cells)
    table.add_row("GMEAN", *[geomean(per_variant[v]) for v in variants])
    return table


# =========================================================================== #
# E10 — sensitivity: BCS block size
# =========================================================================== #

def design_e10(benchmarks: Sequence[str] = LOCALITY_SET,
               sizes: Sequence[int] = (1, 2, 4)) -> Design:
    return Design.chain(
        "e10",
        baseline_design(benchmarks),
        Design("e10-blocks", factors=[
            _bench_factor(benchmarks),
            Factor.crossed("warp", ("baws",)),
            Factor.crossed("block", tuple(sizes)),
            Factor.derived("policy",
                           lambda cell, env: ("bcs", cell["block"], None)),
        ]))


def e10_block_size(ctx: ExperimentContext,
                   benchmarks: Sequence[str] = LOCALITY_SET,
                   sizes: Sequence[int] = (1, 2, 4)) -> Table:
    """Sensitivity of BCS+BAWS to the block size (pairs are the sweet spot)."""
    ctx.prefetch_design(design_e10(benchmarks, sizes))
    columns = ["benchmark"] + [f"block={b}" for b in sizes]
    table = Table("E10: BCS+BAWS speedup vs block size", columns)
    per_size: dict[int, list[float]] = {b: [] for b in sizes}
    for name in benchmarks:
        base = ctx.run(name)
        cells: list[Any] = [name]
        for b in sizes:
            run = ctx.run(name, warp="baws", policy=("bcs", b, None))
            value = speedup(base.cycles, run.cycles)
            per_size[b].append(value)
            cells.append(value)
        table.add_row(*cells)
    table.add_row("GMEAN", *[geomean(per_size[b]) for b in sizes])
    return table


# =========================================================================== #
# E11 — ablation: LCS needs a greedy warp scheduler
# =========================================================================== #

def design_e11(benchmarks: Sequence[str] = ("kmeans", "iindex",
                                            "spmv", "streaming"),
               rule: str = LCS_RULE, param: float = LCS_PARAM) -> Design:
    return Design.chain(
        "e11",
        static_sweep_design(benchmarks),
        Design("e11-matrix", factors=[
            _bench_factor(benchmarks),
            Factor.crossed("warp", ("gto", "lrr")),
            _policy_factor(("rr",), ("lcs", rule, param)),
        ]))


def e11_lcs_needs_gto(ctx: ExperimentContext,
                      benchmarks: Sequence[str] = ("kmeans", "iindex",
                                                   "spmv", "streaming"),
                      rule: str = LCS_RULE, param: float = LCS_PARAM) -> Table:
    """Run the LCS monitor under LRR: without greedy age priority the
    per-CTA issue counts flatten out and the decision degrades."""
    ctx.prefetch_design(design_e11(benchmarks, rule, param))
    table = Table(
        "E11: LCS decision under GTO vs LRR monitoring",
        ["benchmark", "n_oracle", "n_gto", "n_lrr",
         "speedup_gto", "speedup_lrr"])
    for name in benchmarks:
        best_limit, _ = ctx.oracle_best(name)
        base_gto = ctx.run(name)
        base_lrr = ctx.run(name, warp="lrr")
        lcs_gto = ctx.run(name, policy=("lcs", rule, param))
        lcs_lrr = ctx.run(name, warp="lrr", policy=("lcs", rule, param))
        d_gto = lcs_gto.meta["lcs_decision"]
        d_lrr = lcs_lrr.meta["lcs_decision"]
        table.add_row(name, best_limit,
                      d_gto.n_star if d_gto else "-",
                      d_lrr.n_star if d_lrr else "-",
                      speedup(base_gto.cycles, lcs_gto.cycles),
                      speedup(base_lrr.cycles, lcs_lrr.cycles))
    return table


# =========================================================================== #
# E12 — configuration and benchmark-characteristics tables
# =========================================================================== #

def e12_config_table(ctx: ExperimentContext) -> Table:
    config = ctx.config
    table = Table("E12a: simulated GPU configuration", ["parameter", "value"])
    rows = [
        ("SIMT cores", config.num_sms),
        ("warp size", config.warp_size),
        ("max CTAs / core", config.max_ctas_per_sm),
        ("max warps / core", config.max_warps_per_sm),
        ("registers / core", config.registers_per_sm),
        ("shared memory / core", f"{config.shared_mem_per_sm // 1024} KB"),
        ("warp schedulers / core", config.issue_width),
        ("L1D / core", f"{config.l1_size // 1024} KB, "
                       f"{config.l1_assoc}-way, {config.line_size} B lines"),
        ("L1D MSHRs", f"{config.l1_mshr_entries} entries, "
                      f"{config.l1_mshr_max_merge} merges"),
        ("L2 (shared)", f"{config.l2_size // 1024} KB, "
                        f"{config.l2_num_banks} banks, {config.l2_assoc}-way"),
        ("interconnect latency", f"{config.icnt_latency} cycles each way"),
        ("DRAM", f"{config.dram_channels} channels x "
                 f"{config.dram_banks_per_channel} banks, "
                 f"{config.dram_row_lines * config.line_size // 1024} KB rows"),
        ("DRAM timing", f"CAS {config.dram_t_cas} / row-miss "
                        f"{config.dram_t_row_miss} / burst "
                        f"{config.dram_t_burst} cycles"),
    ]
    for name, value in rows:
        table.add_row(name, value)
    return table


def e12_benchmark_table(ctx: ExperimentContext) -> Table:
    table = Table(
        "E12b: benchmark characteristics",
        ["benchmark", "category", "ctas", "warps_per_cta", "occupancy",
         "mem_intensity", "instr_per_warp"])
    for name, info in SUITE.items():
        kernel = ctx.kernel(name)
        program = kernel.build_warp_program(0, 0)
        table.add_row(name, info.category, kernel.num_ctas,
                      kernel.warps_per_cta, kernel.max_ctas_per_sm(ctx.config),
                      memory_intensity(program), len(program))
    return table


# =========================================================================== #
# E13 — extension: LCS vs DynCTA-style continuous throttling
# =========================================================================== #

def design_e13(benchmarks: Sequence[str] = ("kmeans", "iindex", "streaming",
                                            "spmv", "compute", "stencil"),
               rule: str = LCS_RULE, param: float = LCS_PARAM) -> Design:
    return Design("e13", factors=[
        _bench_factor(benchmarks),
        _policy_factor(("rr",), ("lcs", rule, param), ("dyncta",)),
    ])


def e13_lcs_vs_dyncta(ctx: ExperimentContext,
                      benchmarks: Sequence[str] = ("kmeans", "iindex",
                                                   "streaming", "spmv",
                                                   "compute", "stencil"),
                      rule: str = LCS_RULE, param: float = LCS_PARAM) -> Table:
    """Compare the paper's one-shot LCS against the prior continuous
    CTA-throttling approach (DynCTA-style, Kayiran et al. PACT'13)."""
    ctx.prefetch_design(design_e13(benchmarks, rule, param))
    table = Table(
        "E13: LCS vs DynCTA-style throttling (speedup over baseline)",
        ["benchmark", "lcs", "dyncta", "lcs_n_star", "dyncta_final_quota"])
    lcs_speedups, dyn_speedups = [], []
    for name in benchmarks:
        base = ctx.run(name)
        lcs = ctx.run(name, policy=("lcs", rule, param))
        dyn = ctx.run(name, policy=("dyncta",))
        decision = lcs.meta["lcs_decision"]
        quotas = [q for q in dyn.cta_limits.values() if q is not None]
        mean_quota = sum(quotas) / len(quotas) if quotas else "-"
        s_lcs = speedup(base.cycles, lcs.cycles)
        s_dyn = speedup(base.cycles, dyn.cycles)
        lcs_speedups.append(s_lcs)
        dyn_speedups.append(s_dyn)
        table.add_row(name, s_lcs, s_dyn,
                      decision.n_star if decision else "-", mean_quota)
    table.add_row("GMEAN", geomean(lcs_speedups), geomean(dyn_speedups),
                  "-", "-")
    return table


# =========================================================================== #
# E14 — extension: CKE fairness metrics (ANTT / STP)
# =========================================================================== #

def design_e14(pairs: Sequence[tuple[str, str, float]] = CKE_PAIRS[:3],
               rule: str = LCS_RULE, param: float = LCS_PARAM) -> Design:
    return Design.chain(
        "e14",
        # Each kernel alone (the ANTT/STP normalization runs): the memory
        # kernel at its natural size, the compute kernel at the pair's
        # multiplier.
        Design("e14-alone", factors=[
            Factor.crossed("pair", tuple(pairs)),
            Factor.crossed("role", ("mem", "compute")),
            Factor.derived("bench", lambda cell, env: (
                cell["pair"][0] if cell["role"] == "mem"
                else cell["pair"][1])),
            Factor.derived("scale_mults", lambda cell, env: (
                None if cell["role"] == "mem" else (cell["pair"][2],))),
        ]),
        Design("e14-shared", factors=[
            Factor.crossed("pair", tuple(pairs)),
            _policy_factor(("smk",), ("mixed", rule, param)),
            Factor.derived("bench",
                           lambda cell, env: tuple(cell["pair"][:2])),
            Factor.derived("scale_mults",
                           lambda cell, env: (1.0, cell["pair"][2])),
        ]))


def e14_cke_metrics(ctx: ExperimentContext,
                    pairs: Sequence[tuple[str, str, float]] = CKE_PAIRS[:3],
                    rule: str = LCS_RULE, param: float = LCS_PARAM) -> Table:
    """Multiprogram metrics for the CKE policies: beyond total runtime,
    how fairly and how productively do the kernels share the machine?"""
    ctx.prefetch_design(design_e14(pairs, rule, param))
    table = Table(
        "E14: CKE multiprogram metrics (ANTT lower / STP higher is better)",
        ["pair", "policy", "antt", "stp", "fairness"])
    policies = [("smk", ("smk",)), ("mixed", ("mixed", rule, param))]
    for mem_name, compute_name, mult in pairs:
        names = (mem_name, compute_name)
        mults = (1.0, mult)
        alone = {
            mem_name: ctx.run(mem_name),
            compute_name: ctx.run(compute_name, scale_mults=(mult,)),
        }
        for label, policy in policies:
            shared = ctx.run(names, policy=policy, scale_mults=mults)
            metrics = cke_metrics(shared, alone)
            table.add_row(f"{mem_name}+{compute_name}", label,
                          metrics.antt, metrics.stp, metrics.fairness)
    return table


# =========================================================================== #
# E15 — extension: composing LCS with BCS
# =========================================================================== #

def design_e15(benchmarks: Sequence[str] = LOCALITY_SET,
               block_size: int = BCS_BLOCK,
               rule: str = LCS_RULE, param: float = LCS_PARAM) -> Design:
    return Design("e15", factors=[
        _bench_factor(benchmarks),
        *_variant_factors(
            ("gto", ("rr",)),
            ("gto", ("lcs", rule, param)),
            ("baws", ("bcs", block_size, None)),
            ("baws", ("lcs+bcs", block_size, rule, param))),
    ])


def e15_lcs_plus_bcs(ctx: ExperimentContext,
                     benchmarks: Sequence[str] = LOCALITY_SET,
                     block_size: int = BCS_BLOCK,
                     rule: str = LCS_RULE, param: float = LCS_PARAM) -> Table:
    """The paper's two mechanisms composed: block dispatch + lazy limit."""
    ctx.prefetch_design(design_e15(benchmarks, block_size, rule, param))
    table = Table(
        "E15: LCS, BCS and LCS+BCS on the locality kernels "
        "(speedup over baseline)",
        ["benchmark", "lcs", "bcs_baws", "lcs_bcs_baws"])
    col = {"lcs": [], "bcs": [], "both": []}
    for name in benchmarks:
        base = ctx.run(name)
        lcs = ctx.run(name, policy=("lcs", rule, param))
        bcs = ctx.run(name, warp="baws", policy=("bcs", block_size, None))
        both = ctx.run(name, warp="baws",
                       policy=("lcs+bcs", block_size, rule, param))
        s = [speedup(base.cycles, r.cycles) for r in (lcs, bcs, both)]
        col["lcs"].append(s[0])
        col["bcs"].append(s[1])
        col["both"].append(s[2])
        table.add_row(name, *s)
    table.add_row("GMEAN", geomean(col["lcs"]), geomean(col["bcs"]),
                  geomean(col["both"]))
    return table


# =========================================================================== #
# E16 — analysis: warp-state breakdown under the baseline vs LCS
# =========================================================================== #

def design_e16(benchmarks: Sequence[str] = ("kmeans", "iindex",
                                            "streaming", "compute"),
               rule: str = LCS_RULE, param: float = LCS_PARAM) -> Design:
    return Design("e16", factors=[
        _bench_factor(benchmarks),
        _policy_factor(("rr",), ("lcs", rule, param)),
    ])


def e16_stall_breakdown(ctx: ExperimentContext,
                        benchmarks: Sequence[str] = ("kmeans", "iindex",
                                                     "streaming", "compute"),
                        rule: str = LCS_RULE, param: float = LCS_PARAM) -> Table:
    """Why LCS helps: warp-time spent memory-stalled shrinks after
    throttling (the paper's resource-utilization argument made visible)."""
    ctx.prefetch_design(design_e16(benchmarks, rule, param))
    table = Table(
        "E16: warp-state time breakdown, baseline vs LCS "
        "(fractions of total warp wait time)",
        ["benchmark", "policy", "mem", "ready", "alu", "barrier",
         "mem_wait_per_instr"])
    for name in benchmarks:
        for label, policy in (("base", ("rr",)),
                              ("lcs", ("lcs", rule, param))):
            result = ctx.run(name, policy=policy)
            stats = result.kernel(name)
            breakdown = stats.stall_breakdown()
            per_instr = (stats.mem_wait / stats.instructions
                         if stats.instructions else 0.0)
            table.add_row(name, label, breakdown["mem"], breakdown["ready"],
                          breakdown["alu"], breakdown["barrier"], per_instr)
    return table


# =========================================================================== #
# E17 — extension: warp-granularity (SWL) vs CTA-granularity (LCS) throttling
# =========================================================================== #

def design_e17(benchmarks: Sequence[str] = ("kmeans", "iindex", "bfs"),
               warp_limits: Sequence[int] = (4, 8, 12, 16, 24),
               rule: str = LCS_RULE, param: float = LCS_PARAM) -> Design:
    return Design.chain(
        "e17",
        baseline_design(benchmarks),
        Design("e17-swl", factors=[
            _bench_factor(benchmarks),
            Factor.crossed("limit", tuple(warp_limits)),
            Factor.derived("warp", lambda cell, env: ("swl", cell["limit"])),
            _policy_factor(("rr",)),
        ]),
        Design("e17-lcs", factors=[
            _bench_factor(benchmarks),
            _policy_factor(("lcs", rule, param)),
        ]))


def e17_swl_vs_lcs(ctx: ExperimentContext,
                   benchmarks: Sequence[str] = ("kmeans", "iindex", "bfs"),
                   warp_limits: Sequence[int] = (4, 8, 12, 16, 24),
                   rule: str = LCS_RULE, param: float = LCS_PARAM) -> Table:
    """Static warp limiting sweeps the throttle at warp granularity; LCS
    reaches comparable performance at CTA granularity with one online
    decision (the paper's granularity argument)."""
    ctx.prefetch_design(design_e17(benchmarks, warp_limits, rule, param))
    columns = (["benchmark"] + [f"swl={k}" for k in warp_limits]
               + ["best_swl", "lcs"])
    table = Table("E17: SWL (per-scheduler warp limit) vs LCS "
                  "(speedup over baseline)", columns)
    for name in benchmarks:
        base = ctx.run(name)
        cells: list[Any] = [name]
        best = 0.0
        for k in warp_limits:
            run = ctx.run(name, warp=("swl", k))
            value = speedup(base.cycles, run.cycles)
            best = max(best, value)
            cells.append(value)
        lcs = ctx.run(name, policy=("lcs", rule, param))
        cells.append(best)
        cells.append(speedup(base.cycles, lcs.cycles))
        table.add_row(*cells)
    table.add_note("swl=k limits each of the 2 per-SM schedulers to k warps")
    return table


# =========================================================================== #
# E18 — extension/limitation: phase-changing kernels
# =========================================================================== #

def design_e18(benchmark: str = "twophase",
               rule: str = LCS_RULE, param: float = LCS_PARAM) -> Design:
    return Design.chain(
        "e18",
        Design("e18-policies", factors=[
            _bench_factor((benchmark,)),
            _policy_factor(("rr",), ("lcs", rule, param), ("dyncta",)),
        ]),
        static_sweep_design((benchmark,)))


def e18_phase_sensitivity(ctx: ExperimentContext,
                          benchmark: str = "twophase",
                          rule: str = LCS_RULE, param: float = LCS_PARAM,
                          ) -> Table:
    """One-shot LCS decides during the first (cache-thrashing) phase and
    cannot revise when the kernel turns compute-bound; continuous schemes
    re-adapt.  An honest limitation study of the paper's mechanism."""
    ctx.prefetch_design(design_e18(benchmark, rule, param))
    table = Table(
        "E18: phase-changing kernel — one-shot vs adaptive throttling",
        ["policy", "cycles", "speedup_vs_baseline", "final_limit"])
    base = ctx.run(benchmark)
    table.add_row("baseline", base.cycles, 1.0, "-")
    lcs = ctx.run(benchmark, policy=("lcs", rule, param))
    decision = lcs.meta["lcs_decision"]
    table.add_row("lcs", lcs.cycles, speedup(base.cycles, lcs.cycles),
                  decision.n_star if decision else "-")
    dyn = ctx.run(benchmark, policy=("dyncta",))
    quotas = [q for q in dyn.cta_limits.values() if q is not None]
    table.add_row("dyncta", dyn.cycles, speedup(base.cycles, dyn.cycles),
                  sum(quotas) / len(quotas) if quotas else "-")
    best_limit, oracle = ctx.oracle_best(benchmark)
    table.add_row("static_oracle", oracle.cycles,
                  speedup(base.cycles, oracle.cycles), best_limit)
    return table


# =========================================================================== #
# E19 — robustness: a Kepler-class machine
# =========================================================================== #

def design_e19(benchmarks: Sequence[str] = ("kmeans", "iindex",
                                            "stencil", "compute"),
               rule: str = LCS_RULE, param: float = LCS_PARAM) -> Design:
    return Design("e19", factors=[
        Factor.crossed("config", (GPUConfig.kepler_class(),)),
        _bench_factor(benchmarks),
        _policy_factor(("rr",), ("lcs", rule, param)),
    ])


def e19_config_robustness(ctx: ExperimentContext,
                          benchmarks: Sequence[str] = ("kmeans", "iindex",
                                                       "stencil", "compute"),
                          rule: str = LCS_RULE, param: float = LCS_PARAM,
                          ) -> Table:
    """Repeat the LCS and BCS headline comparisons on a Kepler-class
    configuration (13 fat cores, 16 CTA slots, 64 warps): the conclusions
    must not be artefacts of the Fermi-class default."""
    ctx.prefetch_design(design_e19(benchmarks, rule, param))
    kctx = ctx.for_config(GPUConfig.kepler_class())
    table = Table(
        "E19: LCS on a Kepler-class GPU (speedup over baseline)",
        ["benchmark", "occupancy", "n_lcs", "lcs_speedup"])
    for name in benchmarks:
        base = kctx.run(name)
        lcs = kctx.run(name, policy=("lcs", rule, param))
        decision = lcs.meta["lcs_decision"]
        table.add_row(name, kctx.occupancy(name),
                      decision.n_star if decision else "-",
                      speedup(base.cycles, lcs.cycles))
    return table


# =========================================================================== #
# E20 — modelling ablation: L1 MSHR count
# =========================================================================== #

def design_e20(benchmarks: Sequence[str] = ("kmeans", "iindex"),
               mshr_counts: Sequence[int] = (8, 16, 32, 64),
               rule: str = LCS_RULE, param: float = LCS_PARAM) -> Design:
    return Design("e20", factors=[
        Factor.crossed("mshr", tuple(mshr_counts)),
        _bench_factor(benchmarks),
        _policy_factor(("rr",), ("lcs", rule, param)),
        Factor.derived("config", lambda cell, env: {
            "l1_mshr_entries": cell["mshr"]}),
    ])


def e20_mshr_sensitivity(ctx: ExperimentContext,
                         benchmarks: Sequence[str] = ("kmeans", "iindex"),
                         mshr_counts: Sequence[int] = (8, 16, 32, 64),
                         rule: str = LCS_RULE, param: float = LCS_PARAM,
                         ) -> Table:
    """How the L1 MSHR budget shapes the LCS opportunity: few MSHRs throttle
    over-subscription by themselves (small LCS win); many MSHRs let maximum
    occupancy flood the memory system (big LCS win).  Documents the key
    modelling choice of this reproduction (default 16)."""
    ctx.prefetch_design(design_e20(benchmarks, mshr_counts, rule, param))
    table = Table(
        "E20: LCS speedup vs L1 MSHR entries",
        ["benchmark"] + [f"mshr={m}" for m in mshr_counts])
    contexts = {m: ctx.for_config(ctx.config.with_overrides(l1_mshr_entries=m))
                for m in mshr_counts}
    for name in benchmarks:
        cells: list[Any] = [name]
        for m in mshr_counts:
            kctx = contexts[m]
            base = kctx.run(name)
            lcs = kctx.run(name, policy=("lcs", rule, param))
            cells.append(speedup(base.cycles, lcs.cycles))
        table.add_row(*cells)
    return table


# =========================================================================== #
# E21 — ablation: dispatch order (breadth-first vs depth-first vs BCS)
# =========================================================================== #

def design_e21(benchmarks: Sequence[str] = LOCALITY_SET) -> Design:
    return Design("e21", factors=[
        _bench_factor(benchmarks),
        *_variant_factors(("gto", ("rr",)),
                          ("gto", ("depth-first",)),
                          ("baws", ("bcs", BCS_BLOCK, None))),
    ])


def e21_dispatch_order(ctx: ExperimentContext,
                       benchmarks: Sequence[str] = LOCALITY_SET) -> Table:
    """How much of BCS's win is initial placement?  Depth-first dispatch
    co-locates consecutive CTAs at fill time but lets the pairing decay as
    slots refill; BCS maintains it.  (Baseline round-robin never pairs.)"""
    ctx.prefetch_design(design_e21(benchmarks))
    table = Table(
        "E21: CTA dispatch order on the locality kernels "
        "(speedup over round-robin)",
        ["benchmark", "depth_first", "bcs_baws"])
    df_speedups, bcs_speedups = [], []
    for name in benchmarks:
        base = ctx.run(name)
        depth = ctx.run(name, policy=("depth-first",))
        bcs = ctx.run(name, warp="baws", policy=("bcs", BCS_BLOCK, None))
        s_df = speedup(base.cycles, depth.cycles)
        s_bcs = speedup(base.cycles, bcs.cycles)
        df_speedups.append(s_df)
        bcs_speedups.append(s_bcs)
        table.add_row(name, s_df, s_bcs)
    table.add_row("GMEAN", geomean(df_speedups), geomean(bcs_speedups))
    return table


# =========================================================================== #
# E22 — ablation: optional micro-architecture features
# =========================================================================== #

#: Feature label -> GPUConfig overrides (the E22 hardware variants).
_E22_FEATURES: dict[str, dict] = {
    "off": {},
    "prefetch": {"l1_prefetch_next_line": True},
    "store_coalescing": {"store_coalescing": True},
}


def design_e22(benchmarks: Sequence[str] = ("streaming", "kmeans",
                                            "stencil", "histogram")) -> Design:
    return Design("e22", factors=[
        _bench_factor(benchmarks),
        Factor.crossed("feature", tuple(_E22_FEATURES)),
        Factor.derived("config",
                       lambda cell, env: _E22_FEATURES[cell["feature"]]),
    ])


def e22_feature_ablation(ctx: ExperimentContext,
                         benchmarks: Sequence[str] = ("streaming", "kmeans",
                                                      "stencil", "histogram"),
                         ) -> Table:
    """Next-line prefetching and store write-combining, on vs off: neither
    feature is load-bearing for the paper's conclusions (they are off by
    default), but the ablation shows the model responds sensibly."""
    ctx.prefetch_design(design_e22(benchmarks))
    table = Table(
        "E22: optional feature ablation (speedup over features-off)",
        ["benchmark", "prefetch", "store_coalescing", "prefetches",
         "stores_absorbed"])
    pf_ctx = ctx.for_config(
        ctx.config.with_overrides(l1_prefetch_next_line=True))
    sc_ctx = ctx.for_config(ctx.config.with_overrides(store_coalescing=True))
    for name in benchmarks:
        base = ctx.run(name)
        prefetch = pf_ctx.run(name)
        coalesce = sc_ctx.run(name)
        table.add_row(name,
                      speedup(base.cycles, prefetch.cycles),
                      speedup(base.cycles, coalesce.cycles),
                      prefetch.l1.prefetches,
                      coalesce.l1.stores_coalesced)
    return table


# =========================================================================== #
# registries
# =========================================================================== #

EXPERIMENTS = {
    "e1": e1_occupancy_sweep,
    "e2": e2_issue_signature,
    "e3": e3_lcs_speedup,
    "e4": e4_lcs_vs_oracle,
    "e5": e5_warp_schedulers,
    "e6": e6_bcs,
    "e7": e7_bcs_l1,
    "e8": e8_cke,
    "e9": e9_lcs_threshold,
    "e10": e10_block_size,
    "e11": e11_lcs_needs_gto,
    "e13": e13_lcs_vs_dyncta,
    "e14": e14_cke_metrics,
    "e15": e15_lcs_plus_bcs,
    "e16": e16_stall_breakdown,
    "e17": e17_swl_vs_lcs,
    "e18": e18_phase_sensitivity,
    "e19": e19_config_robustness,
    "e20": e20_mshr_sensitivity,
    "e21": e21_dispatch_order,
    "e22": e22_feature_ablation,
}

#: Experiment id -> zero-argument-callable design builder.  E7 shares E6's
#: design (it reads different columns of the same cells) and E12 has no
#: simulations, so it has no design.
EXPERIMENT_DESIGNS: dict[str, Callable[[], Design]] = {
    "e1": design_e1,
    "e2": design_e2,
    "e3": design_e3,
    "e4": design_e4,
    "e5": design_e5,
    "e6": design_e6,
    "e7": design_e6,
    "e8": design_e8,
    "e9": design_e9,
    "e10": design_e10,
    "e11": design_e11,
    "e13": design_e13,
    "e14": design_e14,
    "e15": design_e15,
    "e16": design_e16,
    "e17": design_e17,
    "e18": design_e18,
    "e19": design_e19,
    "e20": design_e20,
    "e21": design_e21,
    "e22": design_e22,
}


def design_cell_counts(env: DesignEnv | None = None) -> dict[str, int]:
    """Experiment id -> number of design cells under ``env`` (``--list``).

    E12 (static tables) reports 0.  Counts come from the declarations
    alone — nothing simulates.
    """
    env = env if env is not None else DesignEnv()
    counts: dict[str, int] = {}
    for exp_id, builder in EXPERIMENT_DESIGNS.items():
        counts[exp_id] = len(builder().cells(env))
    counts["e12"] = 0
    return counts


def plan_experiments(ctx: ExperimentContext,
                     exp_ids: Sequence[str]) -> int:
    """Prefetch the deduplicated union of several experiments' designs.

    The cross-experiment dedup satellite: instead of one engine batch per
    driver, compile every requested design up front, collapse cells with
    identical job fingerprints (the gto x rr baselines E3/E5/E9/... all
    share, the E6/E7 matrix, the static sweeps E1/E3/E4/E11 revisit) and
    run the whole invocation as one maximally parallel batch.  The
    drivers' own ``prefetch_design`` calls then find every cell memoised.

    Returns the number of *unique* jobs planned (after dedup).
    """
    env = ctx.design_env()
    pairs: list[tuple[ExperimentContext, SimJob]] = []
    seen: set[str] = set()
    for exp_id in exp_ids:
        builder = EXPERIMENT_DESIGNS.get(exp_id)
        if builder is None:
            continue
        for cc in builder().compile(env):
            fingerprint = cc.job.fingerprint()
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            pairs.append((ctx.for_config(cc.job.config), cc.job))
    if pairs:
        prefetch_contexts(pairs)
    return len(pairs)


def run_experiment(name: str, ctx: ExperimentContext | None = None) -> Table:
    """Run one experiment by id ('e1'..'e22'); E12 has two table functions."""
    ctx = ctx if ctx is not None else ExperimentContext()
    if name == "e12":
        raise ValueError("e12 has two tables: use e12_config_table and "
                         "e12_benchmark_table")
    try:
        driver = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(f"unknown experiment {name!r}; "
                         f"available: {sorted(EXPERIMENTS)} + e12") from None
    return driver(ctx)
