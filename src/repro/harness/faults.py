"""Deterministic fault injection for the batch engine.

Every recovery path in :mod:`repro.harness.engine` — transient retry,
pool-crash respawn, per-job deadlines, cache-corruption misses — is
exercised by *injecting* the corresponding failure at a known point.  A
:class:`FaultPlan` is a small, picklable schedule of faults keyed by the
job's index within its batch, evaluated inside the worker (or the inline
path) just before the job executes.

Spec grammar (one or more comma/semicolon-separated entries)::

    fail:K          job K raises InjectedFault on every attempt
                    (a deterministic simulation bug: never retried)
    flaky:K         job K raises InjectedTransientFault once, then runs
                    (a transient worker error: retried and recovered)
    kill:K          the worker running job K dies with os._exit once
                    (an OOM-kill: the pool breaks and is respawned;
                    inline execution degrades to a transient raise)
    kill-at:K:C     the worker running job K dies with os._exit once,
                    *mid-run* at simulated cycle C (a crash with work in
                    flight: resume-from-checkpoint territory; inline
                    execution degrades to a transient raise)
    delay:K:S       job K sleeps S seconds before executing
                    (a runaway job: trips the --timeout backstop)
    corrupt:K       job K's cache entry is overwritten with garbage
                    right after it is written (a torn/corrupted entry:
                    the next read must quarantine + miss, never crash)
    corrupt:K:C     job K's *live simulation state* is corrupted once at
                    simulated cycle C (a bookkeeping bug: --sanitize must
                    catch it at the next window boundary; without the
                    sanitizer the run silently completes wrong)

Campaign-grade faults address the durable-campaign layer
(:mod:`repro.design.campaign`) instead of a job; their index K is the
worker's *journal append ordinal*, not a batch position::

    kill-worker:K       the campaign process dies with os._exit right
                        after its K-th journal append, once (a worker
                        crash mid-batch: leases must expire and another
                        worker — or a restart — must reclaim its cells)
    torn-tail:K         the K-th appended journal record is chopped in
                        half, once (a torn write: replay must drop the
                        tail, never crash)
    corrupt-journal:K   a byte inside the K-th appended record is
                        scribbled, once (bit rot: replay must skip
                        exactly that record)
    stall-heartbeat:0   the worker's heartbeat thread never starts (a
                        wedged worker: its leases expire at TTL and the
                        cells are reclaimed by someone else)
    fail-append:K       every journal append from ordinal K on raises
                        OSError (disk full / read-only store: the
                        campaign must warn once and degrade to
                        snapshot-on-exit durability, not abort)

Service-grade faults address the scheduler daemon (:mod:`repro.service`);
their index K is a protocol or dispatch ordinal, not a batch position::

    slow-client:K[:S]   the client stalls S seconds (default 1.0) halfway
                        through writing its K-th protocol frame, once (a
                        slow/hung client: the asyncio daemon must keep
                        serving every other connection meanwhile)
    socket-drop:K       the daemon drops a client connection right after
                        its K-th received frame, once (a flaky network:
                        the client must reconnect and resubmit — safe,
                        because submissions are idempotent by job id)
    worker-wedge:K      the service worker executing dispatch ordinal K
                        goes silent (heartbeats stop, the job hangs) on
                        EVERY attempt — a poison job: the supervisor's
                        watchdog must kill + respawn the worker each time
                        and the circuit breaker must quarantine the
                        fingerprint instead of letting it stall the
                        queue (inline workers degrade the wedge to a
                        transient crash, mirroring ``kill``)

Cluster-grade faults address the federation layer
(:mod:`repro.service.cluster`); they are keyed by *node index* (a
daemon's position in its ``--cluster`` member list), not a job::

    partition:A|B:CYCLES    a network partition: nodes in group A cannot
                            exchange gossip or forwarded frames with
                            nodes in group B (checked symmetrically by
                            sender and receiver) until the local daemon
                            has completed CYCLES gossip rounds, then the
                            partition heals.  Groups are dash-separated
                            node indices, e.g. ``partition:0-1|2:8``
                            splits a three-node fleet 2/1 for 8 rounds.
                            Not once-only: the partition is a *window*,
                            active from boot until it heals.

"once" semantics survive process boundaries through marker files in a
shared state directory (``O_CREAT | O_EXCL`` — exactly one process wins),
so a killed-and-retried job really does succeed on its second attempt
(and a killed-and-restarted campaign worker does not die again at the
same append).

Plans come from three places: tests construct them directly, the CLIs
accept ``--faults SPEC``, and :meth:`FaultPlan.from_env` reads the
``REPRO_FAULTS`` environment variable (state directory override:
``REPRO_FAULTS_STATE``) so CI can inject failures without new flags.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass

#: Environment variables honoured by :meth:`FaultPlan.from_env`.
ENV_SPEC = "REPRO_FAULTS"
ENV_STATE = "REPRO_FAULTS_STATE"

#: Exit status used by ``kill`` faults (visible in worker-crash logs).
KILL_EXIT_CODE = 86

_ACTIONS = ("fail", "flaky", "kill", "kill-at", "delay", "corrupt",
            "kill-worker", "torn-tail", "corrupt-journal",
            "stall-heartbeat", "fail-append",
            "slow-client", "socket-drop", "worker-wedge",
            "partition")

#: The campaign-journal faults fired after an append completes, in the
#: order they are applied when several target the same ordinal.
_JOURNAL_POST_APPEND = ("torn-tail", "corrupt-journal", "kill-worker")


class FaultSpecError(ValueError):
    """A malformed fault-injection spec string."""


class InjectedFault(RuntimeError):
    """A deterministic injected failure (never retried)."""


class InjectedTransientFault(OSError):
    """A transient injected failure (classified as retryable)."""


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: what to do, to which job, with what argument.

    ``partition`` faults are not job-addressed; they carry their group
    spec (``"0-1|2"``) in :attr:`text` and the heal round in :attr:`arg`
    (:attr:`index` is unused and pinned to 0).
    """

    action: str
    index: int
    arg: float | None = None
    text: str | None = None

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise FaultSpecError(f"unknown fault action {self.action!r}; "
                                 f"available: {', '.join(_ACTIONS)}")
        if self.index < 0:
            raise FaultSpecError(f"fault index must be >= 0, got {self.index}")
        if self.action == "delay" and (self.arg is None or self.arg < 0):
            raise FaultSpecError("delay faults need a non-negative duration: "
                                 "delay:K:SECONDS")
        if self.action == "kill-at" and (self.arg is None or self.arg < 0):
            raise FaultSpecError("kill-at faults need a target cycle: "
                                 "kill-at:K:CYCLE")
        if self.action == "corrupt" and self.arg is not None and self.arg < 0:
            raise FaultSpecError("in-flight corrupt faults need a "
                                 "non-negative cycle: corrupt:K:CYCLE")
        if self.action == "partition":
            if self.arg is None or self.arg < 1:
                raise FaultSpecError("partition faults need a heal round "
                                     ">= 1: partition:A|B:CYCLES")
            _parse_partition_groups(self.text or "")

    def partition_groups(self) -> tuple[frozenset, frozenset]:
        """The two node-index groups of a ``partition`` fault."""
        if self.action != "partition":
            raise FaultSpecError(f"{self.action!r} fault has no groups")
        return _parse_partition_groups(self.text or "")


def _parse_partition_groups(spec: str) -> tuple[frozenset, frozenset]:
    """``"0-1|2"`` -> ``(frozenset({0, 1}), frozenset({2}))``; validates."""
    sides = spec.split("|")
    if len(sides) != 2:
        raise FaultSpecError(f"partition groups must be GROUP|GROUP with "
                             f"dash-separated node indices, got {spec!r}")
    groups = []
    for side in sides:
        try:
            members = frozenset(int(n) for n in side.split("-") if n != "")
        except ValueError:
            raise FaultSpecError(
                f"bad node index in partition group {side!r}") from None
        if not members:
            raise FaultSpecError(f"empty partition group in {spec!r}")
        groups.append(members)
    if groups[0] & groups[1]:
        raise FaultSpecError(f"partition groups overlap in {spec!r}: "
                             f"{sorted(groups[0] & groups[1])}")
    return groups[0], groups[1]


class FaultPlan:
    """A picklable schedule of injected faults, shared with workers.

    The plan travels to worker processes by pickle; the *fired-once* state
    lives in ``state_dir`` marker files so it is shared across processes
    and across pool respawns.
    """

    def __init__(self, faults: list[Fault] | tuple[Fault, ...],
                 state_dir: str | None = None) -> None:
        self.faults = tuple(faults)
        if state_dir is None:
            state_dir = tempfile.mkdtemp(prefix="repro-faults-")
        self.state_dir = state_dir

    def __repr__(self) -> str:
        parts = ", ".join(f"{f.action}:{f.index}" for f in self.faults)
        return f"FaultPlan([{parts}])"

    # ------------------------------------------------------------------ #
    # construction
    @classmethod
    def parse(cls, spec: str, state_dir: str | None = None) -> "FaultPlan":
        """Build a plan from a spec string (see module docstring)."""
        faults = []
        for entry in spec.replace(";", ",").split(","):
            entry = entry.strip()
            if not entry:
                continue
            parts = entry.split(":")
            if len(parts) not in (2, 3):
                raise FaultSpecError(
                    f"bad fault entry {entry!r}; expected ACTION:INDEX or "
                    f"ACTION:INDEX:ARG")
            action = parts[0]
            if action == "partition":
                # partition:GROUPS:CYCLES — GROUPS ("0-1|2") is not an
                # integer index, so it rides the text field instead.
                if len(parts) != 3:
                    raise FaultSpecError(
                        f"bad fault entry {entry!r}; expected "
                        f"partition:A|B:CYCLES")
                try:
                    cycles = float(parts[2])
                except ValueError:
                    raise FaultSpecError(
                        f"bad partition heal round in {entry!r}: "
                        f"{parts[2]!r}") from None
                faults.append(Fault(action=action, index=0, arg=cycles,
                                    text=parts[1]))
                continue
            try:
                index = int(parts[1])
            except ValueError:
                raise FaultSpecError(
                    f"bad fault index in {entry!r}: {parts[1]!r}") from None
            arg = None
            if len(parts) == 3:
                try:
                    arg = float(parts[2])
                except ValueError:
                    raise FaultSpecError(
                        f"bad fault argument in {entry!r}: "
                        f"{parts[2]!r}") from None
            faults.append(Fault(action=action, index=index, arg=arg))
        if not faults:
            raise FaultSpecError(f"empty fault spec {spec!r}")
        return cls(faults, state_dir=state_dir)

    @classmethod
    def from_env(cls, environ=os.environ) -> "FaultPlan | None":
        """The plan described by ``REPRO_FAULTS``, or None when unset."""
        spec = environ.get(ENV_SPEC, "").strip()
        if not spec:
            return None
        return cls.parse(spec, state_dir=environ.get(ENV_STATE) or None)

    # ------------------------------------------------------------------ #
    # firing
    def _fire_once(self, tag: str) -> bool:
        """True exactly once per tag, across every participating process."""
        os.makedirs(self.state_dir, exist_ok=True)
        marker = os.path.join(self.state_dir, f"fired-{tag}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def before_execute(self, index: int, *, inline: bool = False) -> None:
        """Apply job-K faults; called right before job K executes.

        ``inline=True`` means the job runs in the batch's own process, so a
        ``kill`` fault degrades to a transient raise instead of taking the
        whole batch down with it.
        """
        for fault in self.faults:
            if fault.index != index:
                continue
            if fault.action == "delay":
                time.sleep(fault.arg or 0.0)
            elif fault.action == "fail":
                raise InjectedFault(f"injected deterministic failure "
                                    f"(job {index})")
            elif fault.action == "flaky":
                if self._fire_once(f"flaky-{index}"):
                    raise InjectedTransientFault(
                        f"injected transient failure (job {index})")
            elif fault.action == "kill":
                if self._fire_once(f"kill-{index}"):
                    if inline:
                        raise InjectedTransientFault(
                            f"injected worker crash (job {index}, inline)")
                    os._exit(KILL_EXIT_CODE)

    def corrupt_cache(self, index: int) -> bool:
        """True (once) if job K's cache entry should be corrupted.

        Only the two-argument ``corrupt:K`` form targets the cache; the
        three-argument ``corrupt:K:CYCLE`` form corrupts live simulation
        state instead (see :meth:`run_saboteur`).
        """
        return any(fault.action == "corrupt" and fault.arg is None
                   and fault.index == index
                   and self._fire_once(f"corrupt-{index}")
                   for fault in self.faults)

    def run_saboteur(self, index: int, *,
                     inline: bool = False) -> "RunSaboteur | None":
        """The mid-run saboteur for job K, or None if no fault targets it.

        Covers the cycle-addressed faults (``kill-at:K:CYCLE`` and
        ``corrupt:K:CYCLE``); the returned object plugs into
        ``GPU.run(..., saboteur=)`` via ``simulate()``.  When several
        cycle-addressed faults name the same job, the earliest wins.
        """
        candidates = [fault for fault in self.faults
                      if fault.index == index and fault.arg is not None
                      and fault.action in ("kill-at", "corrupt")]
        if not candidates:
            return None
        fault = min(candidates, key=lambda f: f.arg)
        return RunSaboteur(plan=self, fault=fault, inline=inline)

    # ------------------------------------------------------------------ #
    # campaign-grade faults (journal/lease layer; K = append ordinal)
    def journal_fail_append(self, ordinal: int) -> bool:
        """Should journal append ``ordinal`` raise OSError?

        ``fail-append:K`` is *persistent* — a full disk does not heal
        between appends — so every ordinal at or past K fails.
        """
        return any(fault.action == "fail-append" and ordinal >= fault.index
                   for fault in self.faults)

    def stall_heartbeats(self) -> bool:
        """True when the worker's heartbeat thread must not run."""
        return any(fault.action == "stall-heartbeat"
                   for fault in self.faults)

    def journal_post_append(self, ordinal: int) -> list[str]:
        """Post-append fault actions due at this ordinal, each once.

        "Once" rides the shared marker files, so a restarted worker that
        replays through the same ordinal does not tear, scribble or die
        a second time.
        """
        return [action for action in _JOURNAL_POST_APPEND
                for fault in self.faults
                if fault.action == action and fault.index == ordinal
                and self._fire_once(f"{action}-{ordinal}")]

    # ------------------------------------------------------------------ #
    # service-grade faults (scheduler daemon; K = protocol/dispatch ordinal)
    def service_slow_client(self, ordinal: int) -> float | None:
        """Seconds the client must stall mid-frame ``ordinal``, or None.

        Fires once (shared markers), so a retried submission does not
        stall again.
        """
        for fault in self.faults:
            if fault.action == "slow-client" and fault.index == ordinal \
                    and self._fire_once(f"slow-client-{ordinal}"):
                return fault.arg if fault.arg is not None else 1.0
        return None

    def service_socket_drop(self, ordinal: int) -> bool:
        """Should the daemon drop the connection after frame ``ordinal``?

        Once per ordinal: a reconnected client replaying through the same
        frame count is not dropped again.
        """
        return any(fault.action == "socket-drop" and fault.index == ordinal
                   and self._fire_once(f"socket-drop-{ordinal}")
                   for fault in self.faults)

    def service_worker_wedge(self, ordinal: int) -> bool:
        """Must the worker executing dispatch ordinal ``ordinal`` wedge?

        Deliberately *not* once-only: a poison job wedges its worker on
        every attempt, which is exactly what drives the circuit breaker.
        """
        return any(fault.action == "worker-wedge" and fault.index == ordinal
                   for fault in self.faults)

    # ------------------------------------------------------------------ #
    # cluster-grade faults (federation layer; keyed by node index)
    def partition_spec(self) -> tuple[frozenset, frozenset, int] | None:
        """``(group_a, group_b, heal_round)`` of the partition, or None."""
        for fault in self.faults:
            if fault.action == "partition":
                group_a, group_b = fault.partition_groups()
                return group_a, group_b, int(fault.arg or 0)
        return None

    def partition_blocks(self, node_a: int, node_b: int,
                         rounds: int) -> bool:
        """Is traffic between nodes ``node_a`` and ``node_b`` blocked?

        ``rounds`` is the asking daemon's completed gossip-round count;
        the partition is a window, active until that counter reaches the
        heal round.  Symmetric, and never blocks a node from itself.
        Nodes outside both groups are unaffected.
        """
        spec = self.partition_spec()
        if spec is None or node_a == node_b:
            return False
        group_a, group_b, heal = spec
        if rounds >= heal:
            return False
        return ((node_a in group_a and node_b in group_b)
                or (node_a in group_b and node_b in group_a))


class RunSaboteur:
    """Fires one cycle-addressed fault from inside the simulation loop.

    The loop's service check calls :meth:`fire` at the first boundary at
    or after :attr:`at`; "once" semantics ride the plan's shared marker
    files, so a killed-and-resumed attempt does not die again.
    """

    def __init__(self, plan: FaultPlan, fault: Fault,
                 inline: bool = False) -> None:
        self.plan = plan
        self.fault = fault
        self.inline = inline
        self.at = int(fault.arg or 0)
        self.done = False

    def fire(self, gpu, cycle: int) -> None:
        self.done = True
        fault = self.fault
        tag = f"{fault.action}-{fault.index}-at-{self.at}"
        if not self.plan._fire_once(tag):
            return
        if fault.action == "kill-at":
            if self.inline:
                raise InjectedTransientFault(
                    f"injected mid-run worker crash (job {fault.index}, "
                    f"cycle {cycle}, inline)")
            os._exit(KILL_EXIT_CODE)
        elif fault.action == "corrupt":
            # Desynchronize one occupancy counter from the resident-CTA
            # list: harmless to completion, poisonous to statistics, and
            # exactly what the sanitizer's sm-accounting check watches.
            gpu.sms[0].used_slots += 1
