"""One-call simulation front end.

:func:`simulate` builds a GPU, runs a CTA-scheduling policy to completion
and assembles a :class:`~repro.sim.stats.RunResult`.  Every experiment,
example and test goes through this function.
"""

from __future__ import annotations

import os
from typing import Sequence

from ..core.cta_schedulers import CTAScheduler, RoundRobinCTAScheduler
from ..sim.checkpoint import CheckpointRecorder, Snapshot
from ..sim.config import GPUConfig
from ..sim.gpu import GPU
from ..sim.invariants import (DEFAULT_SANITIZE_INTERVAL, ENV_SANITIZE,
                              InvariantSanitizer)
from ..sim.kernel import Kernel
from ..sim.stats import CacheStats, RunResult
from ..telemetry.hub import TelemetryHub
from .validate import validate_backend


def simulate(kernels: Kernel | Sequence[Kernel], *,
             config: GPUConfig | None = None,
             warp_scheduler="gto",
             cta_scheduler: CTAScheduler | None = None,
             telemetry: TelemetryHub | None = None,
             wall_timeout: float | None = None,
             sanitize: bool | None = None,
             sanitize_interval: int | None = None,
             checkpoint: CheckpointRecorder | None = None,
             resume_from: Snapshot | None = None,
             saboteur=None,
             backend: str = "object") -> RunResult:
    """Run kernels to completion and return the collected statistics.

    Parameters
    ----------
    kernels:
        One kernel or a sequence (multi-kernel runs need a CKE-capable
        ``cta_scheduler``; the default round-robin runs them first-come
        first-served over shared cores).
    config:
        Hardware description; defaults to the Fermi-class `GPUConfig()`.
    warp_scheduler:
        ``'lrr'``, ``'gto'``, ``'baws'``, ``'two-level'``, ``'swl'`` — or a
        zero-arg factory returning a WarpScheduler (e.g.
        :func:`repro.core.warp_schedulers.swl_factory`).
    cta_scheduler:
        A policy object from ``repro.core``; defaults to the conventional
        round-robin maximum-occupancy baseline.  Must not have been used in
        a previous run (policies hold per-run state).
    telemetry:
        An optional :class:`~repro.telemetry.TelemetryHub`.  When provided,
        the windowed timeline lands in ``result.meta["timeline"]`` (a
        :class:`~repro.telemetry.TimelineResult`) and the structured event
        trace in ``result.meta["trace"]`` (a list of plain dicts).  Neither
        perturbs the simulated statistics.  Hubs are single-use, like
        policy objects.
    wall_timeout:
        Optional wall-clock budget in seconds: a run that exceeds it
        raises a typed :class:`~repro.sim.gpu.SimulationTimeout` instead
        of running (or hanging) indefinitely.  The guard never perturbs
        the statistics of runs that finish in time.
    sanitize:
        Arm the in-flight invariant sanitizer
        (:mod:`repro.sim.invariants`): conservation laws are checked every
        ``sanitize_interval`` cycles (default
        :data:`~repro.sim.invariants.DEFAULT_SANITIZE_INTERVAL`) and a
        violation raises a typed ``InvariantViolation``.  ``None`` (the
        default) defers to the ``REPRO_SANITIZE`` environment variable so
        CI can sanitize whole suites.  A clean sanitized run is
        bitwise-identical to an unsanitized one (checks read state only).
    checkpoint:
        A :class:`~repro.sim.checkpoint.CheckpointRecorder`: the whole
        machine state is snapshotted every ``checkpoint.interval`` cycles
        (and on a cooperative timeout) into the recorder's sink.
    resume_from:
        A :class:`~repro.sim.checkpoint.Snapshot` to continue instead of
        starting at cycle zero.  ``kernels`` must be rebuilt from the same
        job description that produced the snapshot; ``cta_scheduler``,
        ``config``, ``warp_scheduler`` and ``telemetry`` are taken from
        the snapshot itself and must not be passed.  The resumed run's
        final statistics are bitwise-identical to an uninterrupted run.
    saboteur:
        Fault-injection hook (``FaultPlan.run_saboteur``) that kills or
        corrupts the run at a chosen cycle; test/drill use only.
    backend:
        ``'object'`` (default) — the per-object reference core; or
        ``'vector'`` — the array-oriented core (:mod:`repro.sim.vector`),
        bitwise-identical results at a fraction of the wall clock.  The
        vector core supports the named ``lrr``/``gto``/``baws`` warp
        schedulers and no checkpoint/resume/fault-injection riders.
    """
    validate_backend(backend)
    if isinstance(kernels, Kernel):
        kernels = [kernels]
    kernels = list(kernels)
    if resume_from is not None:
        if backend != "object":
            raise ValueError("resume_from restores an object-core GPU; "
                             "use backend='object'")
        if cta_scheduler is not None or telemetry is not None:
            raise ValueError("resume_from restores the snapshotted "
                             "scheduler and telemetry hub; do not pass "
                             "cta_scheduler/telemetry as well")
        gpu = resume_from.restore(kernels)
        if config is not None and config != gpu.config:
            raise ValueError("resume_from snapshot was taken under a "
                             "different hardware configuration")
        config = gpu.config
        cta_scheduler = gpu.cta_scheduler
        telemetry = gpu.telemetry
    else:
        if cta_scheduler is None:
            cta_scheduler = RoundRobinCTAScheduler(kernels)
        elif cta_scheduler.gpu is not None:
            raise ValueError("cta_scheduler was already used in a previous "
                             "run; create a fresh policy object per "
                             "simulate() call")
        else:
            scheduled = {id(k) for k in cta_scheduler.kernels}
            if scheduled != {id(k) for k in kernels}:
                raise ValueError("cta_scheduler was built for different "
                                 "kernels")
        config = config if config is not None else GPUConfig()
        if backend == "vector":
            if checkpoint is not None or saboteur is not None:
                raise ValueError(
                    "the vector backend does not support checkpoint "
                    "recording or fault injection; use backend='object'")
            from ..sim.vector import VectorGPU
            gpu = VectorGPU(config=config, warp_scheduler=warp_scheduler,
                            telemetry=telemetry)
        else:
            gpu = GPU(config=config, warp_scheduler=warp_scheduler,
                      telemetry=telemetry)

    if sanitize is None:
        sanitize = bool(os.environ.get(ENV_SANITIZE, "").strip())
    sanitizer = None
    if sanitize:
        sanitizer = InvariantSanitizer(
            interval=sanitize_interval or DEFAULT_SANITIZE_INTERVAL)
    gpu.run(None if resume_from is not None else cta_scheduler,
            wall_timeout=wall_timeout, sanitizer=sanitizer,
            checkpoint=checkpoint, saboteur=saboteur,
            resume_from=resume_from)

    l1_total = CacheStats()
    for sm in gpu.sms:
        l1_total.add(sm.l1.stats)
    kernel_stats = {run.kernel.name: run.stats for run in gpu.runs}
    meta: dict = {
        "warp_scheduler": gpu.warp_scheduler_name,
        "cta_scheduler": cta_scheduler.name,
        "num_sms": config.num_sms,
        "kernels": [k.name for k in kernels],
        # LCS-style policies expose their monitoring outcome.
        "lcs_decision": getattr(cta_scheduler, "decision", None),
    }
    if telemetry is not None:
        timeline = telemetry.timeline_result()
        if timeline is not None:
            meta["timeline"] = timeline
        if telemetry.trace_enabled:
            meta["trace"] = telemetry.trace_events()
    return RunResult(
        cycles=gpu.cycle,
        instructions=gpu.total_issued,
        kernels=kernel_stats,
        l1=l1_total,
        l2=gpu.mem.l2_stats(),
        dram=gpu.mem.dram.stats,
        issued_by_sm=[sm.issued for sm in gpu.sms],
        cta_limits=cta_scheduler.limits_snapshot(),
        meta=meta,
    )
