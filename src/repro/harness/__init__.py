"""Experiment harness: runner, batch engine, experiment drivers, reporting."""

from .cache import ResultCache
from .checkpoints import CheckpointPlan, CheckpointStore
from .compare import compare_runs, stall_shift
from .engine import (Backoff, BatchError, BatchReport, JobExecutionError,
                     JobOutcome, execute_tagged, run_batch, run_jobs)
from .exit_codes import (EXIT_EXHAUSTED, EXIT_OK, EXIT_PARTIAL, EXIT_SHED,
                         EXIT_USAGE)
from .faults import FaultPlan, FaultSpecError, RunSaboteur
from .jobs import JobError, SimJob
from .metrics import CKEMetrics, cke_metrics
from .runner import simulate
from .sweeps import config_sweep, occupancy_position, sweep_design
from .validate import RunValidationError, validate_run

__all__ = ["Backoff", "BatchError", "BatchReport", "CheckpointPlan",
           "CheckpointStore", "CKEMetrics", "cke_metrics",
           "EXIT_EXHAUSTED", "EXIT_OK", "EXIT_PARTIAL", "EXIT_SHED",
           "EXIT_USAGE", "execute_tagged",
           "compare_runs", "stall_shift", "config_sweep", "FaultPlan",
           "FaultSpecError", "JobError", "JobExecutionError", "JobOutcome",
           "occupancy_position", "ResultCache", "run_batch", "run_jobs",
           "RunSaboteur", "RunValidationError", "simulate", "SimJob",
           "validate_run"]
