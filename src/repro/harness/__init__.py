"""Experiment harness: runner, per-figure experiment drivers, reporting."""

from .compare import compare_runs, stall_shift
from .metrics import CKEMetrics, cke_metrics
from .runner import simulate
from .sweeps import config_sweep, occupancy_position
from .validate import RunValidationError, validate_run

__all__ = ["CKEMetrics", "cke_metrics", "compare_runs", "stall_shift",
           "config_sweep",
           "occupancy_position", "RunValidationError", "simulate",
           "validate_run"]
