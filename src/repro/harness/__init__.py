"""Experiment harness: runner, batch engine, experiment drivers, reporting."""

from .cache import ResultCache
from .checkpoints import CheckpointPlan, CheckpointStore
from .compare import compare_runs, stall_shift
from .engine import (BatchError, BatchReport, JobExecutionError, JobOutcome,
                     run_batch, run_jobs)
from .faults import FaultPlan, FaultSpecError, RunSaboteur
from .jobs import JobError, SimJob
from .metrics import CKEMetrics, cke_metrics
from .runner import simulate
from .sweeps import config_sweep, occupancy_position, sweep_design
from .validate import RunValidationError, validate_run

__all__ = ["BatchError", "BatchReport", "CheckpointPlan", "CheckpointStore",
           "CKEMetrics", "cke_metrics",
           "compare_runs", "stall_shift", "config_sweep", "FaultPlan",
           "FaultSpecError", "JobError", "JobExecutionError", "JobOutcome",
           "occupancy_position", "ResultCache", "run_batch", "run_jobs",
           "RunSaboteur", "RunValidationError", "simulate", "SimJob",
           "validate_run"]
