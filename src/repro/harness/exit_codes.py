"""Uniform process exit codes for every repro CLI.

One vocabulary across ``repro-exp --design``, ``repro-serve`` and
``repro-submit``, so shell scripts and CI can branch on *why* a run
ended without scraping output:

* :data:`EXIT_OK` (0) — everything requested reached a successful
  terminal state.
* :data:`EXIT_PARTIAL` (1) — some work failed (retryable failures,
  non-terminal cells); re-invoking may finish the job.
* :data:`EXIT_USAGE` (2) — bad arguments; nothing was attempted
  (argparse's own convention, kept deliberately).
* :data:`EXIT_EXHAUSTED` (3) — at least one unit of work ran out of its
  retry budget (or was quarantined by the service circuit breaker);
  re-invoking with the same inputs will NOT finish the job.
* :data:`EXIT_SHED` (4) — the service refused admission (queue full,
  rate limit, draining); nothing was lost, retry later.

Precedence when several apply: usage errors win (nothing ran), then
shed (the request never entered the system), then exhausted (terminal),
then partial.  Documented in docs/ROBUSTNESS.md and asserted by
``tests/test_cli.py`` / ``tests/test_service_daemon.py``.
"""

from __future__ import annotations

EXIT_OK = 0
EXIT_PARTIAL = 1
EXIT_USAGE = 2
EXIT_EXHAUSTED = 3
EXIT_SHED = 4
