"""Declarative simulation jobs.

A :class:`SimJob` is a pure *description* of one ``simulate()`` call: suite
benchmark names, grid scaling, the workload seed, a warp-scheduler
descriptor, a CTA-policy descriptor and the hardware configuration.  Jobs
carry no live objects — kernels and policy instances are constructed at
execution time (inside a worker process, for parallel runs), which
sidesteps the "policies hold per-run state" constraint of
:func:`repro.harness.runner.simulate` and keeps jobs picklable.

Every job has a stable, deterministic :meth:`~SimJob.fingerprint` — a
sha256 over a canonical JSON rendering of all inputs plus the
:data:`SIM_VERSION` salt — which keys the persistent result cache
(:mod:`repro.harness.cache`).  Bump :data:`SIM_VERSION` whenever a change
alters simulation *results*; old cache entries then miss and are recomputed.

Descriptor grammar (shared by :class:`ExperimentContext`, the sweeps and
the CLIs):

* warp: ``"lrr" | "gto" | "baws" | "two-level" | "swl"`` or ``("swl", K)``
* policy: ``("rr",)``, ``("static", N)``, ``("lcs",[ rule, param])``,
  ``("bcs", B, limit)``, ``("lcs+bcs", B, rule, param)``, ``("dyncta",)``,
  ``("depth-first",)``, ``("sequential",)``, ``("spatial",)``, ``("smk",)``,
  ``("mixed", rule, param)``
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Sequence

from ..core.bcs import BCSScheduler
from ..core.cke import MixedCKE, SequentialCKE, SMKEvenCKE, SpatialCKE
from ..core.combined import LCSBCSScheduler
from ..core.cta_schedulers import (CTAScheduler, DepthFirstCTAScheduler,
                                   RoundRobinCTAScheduler,
                                   StaticLimitCTAScheduler)
from ..core.dyncta import DynCTAScheduler
from ..core.lcs import LCSScheduler
from ..core.warp_schedulers import available_warp_schedulers, swl_factory
from ..sim.config import GPUConfig
from ..sim.kernel import Kernel
from ..workloads.patterns import DEFAULT_SEED
from ..workloads.suite import SUITE, make_kernel
from .validate import validate_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.checkpoint import Snapshot
    from ..sim.stats import RunResult
    from .checkpoints import CheckpointPlan

#: Fingerprint salt.  Bump on any change that alters simulation results so
#: stale cache entries under ``.repro-cache/`` are recomputed, not reused.
SIM_VERSION = 1


class JobError(ValueError):
    """An invalid job description (unknown benchmark/warp/policy)."""


# --------------------------------------------------------------------------- #
# descriptor validation / construction
# --------------------------------------------------------------------------- #

#: policy kind -> number of accepted argument tuples (for validation).
_POLICY_ARITIES: dict[str, tuple[int, ...]] = {
    "rr": (0,),
    "static": (1,),
    "lcs": (0, 2),
    "bcs": (2,),
    "sequential": (0,),
    "spatial": (0,),
    "smk": (0,),
    "mixed": (2,),
    "dyncta": (0,),
    "depth-first": (0,),
    "lcs+bcs": (3,),
}


def validate_policy(policy: tuple) -> tuple:
    """Check a policy descriptor's shape; return it normalized to a tuple."""
    if not isinstance(policy, tuple) or not policy:
        raise JobError(f"policy descriptor must be a non-empty tuple, "
                       f"got {policy!r}")
    kind, *args = policy
    arities = _POLICY_ARITIES.get(kind)
    if arities is None:
        raise JobError(f"unknown policy descriptor {policy!r}; "
                       f"available kinds: {sorted(_POLICY_ARITIES)}")
    if len(args) not in arities:
        raise JobError(f"policy {kind!r} takes {arities} arguments, "
                       f"got {len(args)}: {policy!r}")
    return tuple(policy)


def validate_warp(warp: str | tuple) -> str | tuple:
    """Check a warp-scheduler descriptor; return it unchanged."""
    if isinstance(warp, tuple):
        if len(warp) != 2 or warp[0] != "swl" or not isinstance(warp[1], int):
            raise JobError(f"unknown warp descriptor {warp!r}; tuple form "
                           f"is ('swl', K)")
        return ("swl", warp[1])
    if warp not in available_warp_schedulers():
        raise JobError(f"unknown warp scheduler {warp!r}; available: "
                       f"{available_warp_schedulers()} or ('swl', K)")
    return warp


def build_policy(policy: tuple, kernels: Sequence[Kernel]) -> CTAScheduler:
    """Instantiate a fresh CTA scheduler from its descriptor."""
    kind, *args = validate_policy(policy)
    kernels = list(kernels)
    if kind == "rr":
        return RoundRobinCTAScheduler(kernels)
    if kind == "static":
        (limit,) = args
        return StaticLimitCTAScheduler(kernels, limit_per_sm=limit)
    if kind == "lcs":
        if args:
            rule, param = args
            return LCSScheduler(kernels, rule=rule, param=param)
        return LCSScheduler(kernels)
    if kind == "bcs":
        block, limit = args
        return BCSScheduler(kernels, block_size=block, limit_per_sm=limit)
    if kind == "sequential":
        return SequentialCKE(kernels)
    if kind == "spatial":
        return SpatialCKE(kernels)
    if kind == "smk":
        return SMKEvenCKE(kernels)
    if kind == "mixed":
        rule, param = args
        return MixedCKE(kernels, rule=rule, param=param)
    if kind == "dyncta":
        return DynCTAScheduler(kernels)
    if kind == "depth-first":
        return DepthFirstCTAScheduler(kernels)
    block, rule, param = args   # kind == "lcs+bcs"
    return LCSBCSScheduler(kernels, block_size=block, rule=rule, param=param)


def build_warp_scheduler(warp: str | tuple):
    """Resolve a warp descriptor to what ``simulate()`` accepts."""
    warp = validate_warp(warp)
    if isinstance(warp, tuple):
        return swl_factory(warp[1])
    return warp


# --------------------------------------------------------------------------- #
# job descriptions
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class KernelSpec:
    """A declarative suite-kernel reference (name + scale + seed).

    The oracle sweep accepts this in place of a live :class:`Kernel` so the
    per-limit simulations can be described as jobs and fanned out / cached.
    """

    name: str
    scale: float = 1.0
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.name not in SUITE:
            raise JobError(f"unknown benchmark {self.name!r}; "
                           f"available: {sorted(SUITE)}")

    def build(self) -> Kernel:
        return make_kernel(self.name, scale=self.scale, seed=self.seed)


@dataclass(frozen=True)
class SimJob:
    """A picklable description of one simulation run."""

    names: tuple[str, ...]
    scale: float = 1.0
    seed: int = DEFAULT_SEED
    scale_mults: tuple[float, ...] | None = None
    warp: str | tuple = "gto"
    policy: tuple = ("rr",)
    config: GPUConfig = field(default_factory=GPUConfig)
    # Telemetry riders: a sampling window (cycles) and/or an event trace.
    # Both default off and only then join the fingerprint payload, so
    # telemetry-free jobs keep their pre-telemetry fingerprints (and cache
    # entries) while telemetry-bearing results are cached separately.
    timeline_window: int | None = None
    trace: bool = False
    # Which simulator core executes the job.  Never part of the
    # fingerprint: the backends are bitwise-identical by contract
    # (enforced by repro-verify's backend-parity layer), so a cached
    # result is valid whichever core produced it.
    backend: str = "object"

    def __post_init__(self) -> None:
        names = ((self.names,) if isinstance(self.names, str)
                 else tuple(self.names))
        if not names:
            raise JobError("a job needs at least one kernel name")
        for name in names:
            if name not in SUITE:
                raise JobError(f"unknown benchmark {name!r}; "
                               f"available: {sorted(SUITE)}")
        mults = self.scale_mults
        if mults is None:
            mults = (1.0,) * len(names)
        mults = tuple(float(m) for m in mults)
        if len(mults) != len(names):
            raise JobError(f"scale_mults has {len(mults)} entries for "
                           f"{len(names)} kernels")
        warp = validate_warp(tuple(self.warp) if isinstance(self.warp, list)
                             else self.warp)
        policy = validate_policy(tuple(self.policy))
        if self.timeline_window is not None and self.timeline_window < 1:
            raise JobError("timeline_window must be >= 1 (or None)")
        try:
            validate_backend(self.backend)
        except ValueError as exc:
            raise JobError(str(exc)) from None
        object.__setattr__(self, "names", names)
        object.__setattr__(self, "scale_mults", mults)
        object.__setattr__(self, "warp", warp)
        object.__setattr__(self, "policy", policy)

    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """sha256 over a canonical JSON of all inputs + the version salt."""
        payload = {
            "version": SIM_VERSION,
            "names": list(self.names),
            "scale": self.scale,
            "seed": self.seed,
            "scale_mults": list(self.scale_mults),
            "warp": (list(self.warp) if isinstance(self.warp, tuple)
                     else self.warp),
            "policy": list(self.policy),
            "config": {f.name: getattr(self.config, f.name)
                       for f in fields(self.config)},
        }
        # Only telemetry-bearing jobs carry these keys: adding them
        # unconditionally would orphan every pre-telemetry cache entry.
        if self.timeline_window is not None:
            payload["timeline_window"] = self.timeline_window
        if self.trace:
            payload["trace"] = True
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    def to_payload(self) -> dict:
        """A JSON-compatible rendering; inverse of :meth:`from_payload`.

        Campaign manifests (:mod:`repro.design.campaign`) persist jobs in
        this form so an interrupted sweep resumes without re-declaring —
        or even re-parsing — its design.
        """
        return {
            "names": list(self.names),
            "scale": self.scale,
            "seed": self.seed,
            "scale_mults": list(self.scale_mults),
            "warp": (list(self.warp) if isinstance(self.warp, tuple)
                     else self.warp),
            "policy": list(self.policy),
            "config": {f.name: getattr(self.config, f.name)
                       for f in fields(self.config)},
            "timeline_window": self.timeline_window,
            "trace": self.trace,
            "backend": self.backend,
        }

    @classmethod
    def from_payload(cls, data: dict) -> "SimJob":
        """Rebuild a job from :meth:`to_payload` output (validated)."""
        warp = data.get("warp", "gto")
        if isinstance(warp, list):
            warp = tuple(warp)
        return cls(names=tuple(data["names"]), scale=data["scale"],
                   seed=data["seed"],
                   scale_mults=tuple(data["scale_mults"]),
                   warp=warp, policy=tuple(data["policy"]),
                   config=GPUConfig(**data["config"]),
                   timeline_window=data.get("timeline_window"),
                   trace=bool(data.get("trace", False)),
                   backend=data.get("backend", "object"))

    # ------------------------------------------------------------------ #
    def build_kernels(self) -> list[Kernel]:
        """Fresh kernel instances (policies hold per-run state)."""
        return [make_kernel(name, scale=self.scale * mult, seed=self.seed)
                for name, mult in zip(self.names, self.scale_mults)]

    def execute(self, *, wall_timeout: float | None = None,
                sanitize: bool | None = None,
                checkpoint: "CheckpointPlan | None" = None,
                resume_from: "Snapshot | None" = None,
                saboteur=None) -> "RunResult":
        """Construct kernels + policy and run the simulation.

        ``wall_timeout`` (seconds) arms the cooperative deadline guard in
        ``GPU.run``: a run exceeding it raises a typed
        :class:`~repro.sim.gpu.SimulationTimeout` instead of hanging its
        worker.  ``sanitize`` arms the in-flight invariant sanitizer;
        ``checkpoint`` (a :class:`~repro.harness.checkpoints.CheckpointPlan`)
        snapshots the run into the plan's store, keyed by this job's
        fingerprint; ``resume_from`` continues a previous attempt from a
        stored snapshot instead of cycle zero.  None of these joins the
        fingerprint — a result is the same result however patient (or
        paranoid, or interrupted) the caller was, which is exactly the
        property the resume tests assert.
        """
        from .runner import simulate   # local import: runner imports nothing
        kernels = self.build_kernels()
        recorder = None
        if checkpoint is not None:
            from ..sim.checkpoint import CheckpointRecorder
            store = checkpoint.store()
            fingerprint = self.fingerprint()
            recorder = CheckpointRecorder(
                checkpoint.interval,
                lambda snapshot: store.put(fingerprint, snapshot))
        if resume_from is not None:
            # The snapshot carries the policy, warp scheduler and telemetry
            # hub mid-state; only fresh kernels (and the riders) go in.
            # (Snapshots are object-core state, so backend stays implicit.)
            return simulate(kernels, config=self.config,
                            wall_timeout=wall_timeout, sanitize=sanitize,
                            checkpoint=recorder, resume_from=resume_from,
                            saboteur=saboteur)
        scheduler = build_policy(self.policy, kernels)
        warp_scheduler = build_warp_scheduler(self.warp)
        telemetry = None
        if self.timeline_window is not None or self.trace:
            from ..telemetry.hub import TelemetryHub
            telemetry = TelemetryHub(window=self.timeline_window,
                                     trace=self.trace)
        return simulate(kernels, config=self.config,
                        warp_scheduler=warp_scheduler,
                        cta_scheduler=scheduler,
                        telemetry=telemetry,
                        wall_timeout=wall_timeout,
                        sanitize=sanitize,
                        checkpoint=recorder,
                        saboteur=saboteur,
                        backend=self.backend)
