"""Side-by-side comparison of simulation runs.

:func:`compare_runs` turns two or more :class:`RunResult`s into one table —
cycles, IPC, memory behaviour, per-kernel stall mix — with speedups against
the first (baseline) run.  It is the programmatic version of what every
example script prints by hand, and what you want when bisecting a policy
change::

    table = compare_runs({"baseline": base, "lcs": lcs, "bcs": bcs})
    print(table.render())
    print(table.render_chart("speedup"))
"""

from __future__ import annotations

from typing import Mapping

from ..sim.stats import RunResult
from .reporting import Table

#: Metrics reported per run: (column, extractor, float?)
_METRICS = (
    ("cycles", lambda r: r.cycles),
    ("ipc", lambda r: r.ipc),
    ("l1_miss", lambda r: r.l1.miss_rate),
    ("mshr_stalls", lambda r: r.l1.mshr_stalls),
    ("l2_miss", lambda r: r.l2.miss_rate),
    ("dram_reads", lambda r: r.dram.reads),
    ("row_hit", lambda r: r.dram.row_hit_rate),
)


def compare_runs(runs: Mapping[str, RunResult],
                 title: str = "run comparison") -> Table:
    """One row per run; speedup is relative to the first entry.

    All runs should execute the same work (same kernels at the same scale)
    for the comparison to be meaningful; a mismatch in total instructions
    raises, catching the classic mistake of comparing different scales.
    """
    if not runs:
        raise ValueError("no runs to compare")
    items = list(runs.items())
    base_name, base = items[0]
    for name, run in items[1:]:
        if run.instructions != base.instructions:
            raise ValueError(
                f"run {name!r} executed {run.instructions} instructions but "
                f"baseline {base_name!r} executed {base.instructions}; "
                "compare runs of identical work")
    table = Table(title, ["run", "speedup"] + [m[0] for m in _METRICS])
    for name, run in items:
        row = [name, base.cycles / run.cycles]
        row.extend(extract(run) for _, extract in _METRICS)
        table.add_row(*row)
    return table


def stall_shift(before: RunResult, after: RunResult,
                kernel: str) -> dict[str, float]:
    """Change in the kernel's warp-time breakdown between two runs.

    Positive values mean the state grew (fraction points).  The interesting
    single number for throttling studies is ``result["mem"]`` — how much
    memory-wait the policy removed.
    """
    b = before.kernel(kernel).stall_breakdown()
    a = after.kernel(kernel).stall_breakdown()
    return {state: a[state] - b[state] for state in b}
