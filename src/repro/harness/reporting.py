"""Table formatting and summary-statistics helpers for the experiments.

Every experiment driver returns a :class:`Table`; the CLI and the benchmark
harness print it with :meth:`Table.render` (fixed-width, like the rows the
paper reports) and tests consume the raw ``rows``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's summary statistic for speedups)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    # fsum keeps the log-sum exact to one rounding, so the result is stable
    # under reordering (experiment rows arrive in varying orders when the
    # engine fans out).
    return math.exp(math.fsum(math.log(v) for v in values) / len(values))


def speedup(baseline_cycles: int, new_cycles: int) -> float:
    """Speedup of ``new`` over ``baseline`` (>1 means faster)."""
    if baseline_cycles <= 0 or new_cycles <= 0:
        raise ValueError("cycle counts must be positive")
    return baseline_cycles / new_cycles


@dataclass
class Table:
    """A small, render-friendly result table."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All values of one column, by header name."""
        try:
            index = list(self.columns).index(name)
        except ValueError:
            raise KeyError(f"no column {name!r} in {self.title!r}") from None
        return [row[index] for row in self.rows]

    def row_for(self, key: Any) -> Sequence[Any]:
        """The first row whose first cell equals ``key``."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"no row {key!r} in {self.title!r}")

    @staticmethod
    def _format(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    def render(self) -> str:
        cells = [[self._format(v) for v in row] for row in self.rows]
        headers = [str(c) for c in self.columns]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def render_chart(self, column: str, *, width: int = 40,
                     reference: float | None = 1.0) -> str:
        """Render one numeric column as a horizontal ASCII bar chart.

        Bars scale to the column maximum; ``reference`` (default 1.0, the
        baseline in a speedup column) is marked with ``|`` so wins and
        losses are visible at a glance.  A reference above the column peak
        clamps to the right edge (with a note) instead of disappearing.
        Non-numeric cells are skipped.
        """
        pairs = [(str(row[0]), value)
                 for row, value in zip(self.rows, self.column(column))
                 if isinstance(value, (int, float))]
        if not pairs:
            raise ValueError(f"column {column!r} has no numeric values")
        peak = max(value for _, value in pairs)
        if peak <= 0:
            raise ValueError(f"column {column!r} has no positive values")
        label_width = max(len(label) for label, _ in pairs)
        lines = [f"== {self.title} — {column} =="]
        clamped = reference is not None and reference > peak
        for label, value in pairs:
            bar_len = max(1, round(value / peak * width))
            bar = "#" * bar_len
            if reference is not None and reference > 0:
                marker = min(reference, peak)
                ref_pos = max(0, round(marker / peak * width) - 1)
                bar = (bar + " " * width)[:width + 1]
                bar = bar[:ref_pos] + "|" + bar[ref_pos + 1:]
                bar = bar.rstrip()
            lines.append(f"{label.ljust(label_width)}  {bar} {value:.3f}")
        if clamped:
            lines.append(f"  note: reference {reference:.3f} exceeds the "
                         f"column peak {peak:.3f}; marker clamped to the "
                         "right edge")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible rendering; inverse of :meth:`from_dict`."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Table":
        table = cls(title=data["title"], columns=list(data["columns"]))
        table.rows = [tuple(row) for row in data["rows"]]
        table.notes = list(data["notes"])
        return table

    def to_csv(self) -> str:
        def esc(value: Any) -> str:
            text = self._format(value)
            if "," in text or '"' in text:
                text = '"' + text.replace('"', '""') + '"'
            return text

        lines = [",".join(esc(c) for c in self.columns)]
        lines.extend(",".join(esc(v) for v in row) for row in self.rows)
        return "\n".join(lines)
