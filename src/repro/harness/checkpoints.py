"""Durable, fingerprint-keyed checkpoint storage for the batch engine.

The sim layer produces :class:`~repro.sim.checkpoint.Snapshot` objects;
this module persists them beside the result cache so a crashed or
timed-out job can resume from its newest snapshot instead of restarting
from cycle zero.  The layout mirrors :mod:`repro.harness.cache`:

* one directory (default ``.repro-checkpoints/`` in the working
  directory), one file per ``(fingerprint, cycle)`` pair, named
  ``<fingerprint>.<cycle>.ckpt`` with the cycle zero-padded so lexical
  order is cycle order;
* writes are atomic (tmp file + ``os.replace``) and *best-effort* — an
  unwritable store warns once, counts ``write_errors`` and the run keeps
  going unprotected rather than crashing;
* every file embeds a sha256 digest of the snapshot payload.  A file that
  fails to load or verify is **quarantined** (renamed to ``*.corrupt``, or
  deleted when even the rename fails), counted in ``corrupt_entries``, and
  the next-newest checkpoint is tried — a truncated write from a killed
  worker can cost at most one checkpoint interval of progress, never the
  run;
* only the newest :data:`KEEP_PER_JOB` checkpoints per fingerprint are
  retained (resume only ever wants the newest; the runner-up survives as
  insurance against a corrupt newest).

:class:`CheckpointPlan` is the *description* half — a frozen, picklable
``(root, interval)`` pair that rides inside job dispatch to worker
processes, each of which opens its own :class:`CheckpointStore` handle.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path

from ..sim.checkpoint import CHECKPOINT_VERSION, Snapshot

#: Default checkpoint directory (relative to the working directory).
DEFAULT_CHECKPOINT_DIR = ".repro-checkpoints"

#: Newest checkpoints kept per job fingerprint.
KEEP_PER_JOB = 2

#: On-disk container format (the snapshot payload itself is versioned
#: separately by :data:`~repro.sim.checkpoint.CHECKPOINT_VERSION`).
_FILE_FORMAT = 1


@dataclass(frozen=True)
class CheckpointPlan:
    """Picklable description of a checkpointing policy for a batch.

    ``interval`` is the snapshot period in simulated cycles; ``root`` is
    the store directory.  Workers build a live :class:`CheckpointStore`
    from the plan at execution time, so the plan itself stays a pure
    value (safe to pickle into a process pool, safe to fingerprint-skip —
    checkpointing never changes results, so it never joins the job
    fingerprint).
    """

    interval: int
    root: str = DEFAULT_CHECKPOINT_DIR

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(f"checkpoint interval must be >= 1 cycle, "
                             f"got {self.interval}")

    def store(self) -> "CheckpointStore":
        return CheckpointStore(self.root)


class CheckpointStore:
    """A directory of ``<fingerprint>.<cycle>.ckpt`` snapshot files."""

    def __init__(self, root: str | Path = DEFAULT_CHECKPOINT_DIR) -> None:
        self.root = Path(root)
        self.write_errors = 0
        self.corrupt_entries = 0
        self._warned_unwritable = False

    def __repr__(self) -> str:
        return (f"CheckpointStore({str(self.root)!r}, "
                f"write_errors={self.write_errors}, "
                f"corrupt_entries={self.corrupt_entries})")

    # ------------------------------------------------------------------ #
    def path_for(self, fingerprint: str, cycle: int) -> Path:
        return self.root / f"{fingerprint}.{cycle:012d}.ckpt"

    def put(self, fingerprint: str, snapshot: Snapshot) -> bool:
        """Persist a snapshot atomically; prune old ones.  True on success.

        Shaped for currying into a
        :class:`~repro.sim.checkpoint.CheckpointRecorder` sink:
        ``CheckpointRecorder(interval, lambda s: store.put(fp, s))``.
        """
        record = {
            "format": _FILE_FORMAT,
            "fingerprint": fingerprint,
            "digest": hashlib.sha256(snapshot.payload).hexdigest(),
            "snapshot": snapshot,
        }
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        tmp_name = None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=self.root, prefix=".tmp-",
                                            suffix=".ckpt")
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, self.path_for(fingerprint, snapshot.cycle))
        except OSError as error:
            self._note_write_error(error)
            self._discard_tmp(tmp_name)
            return False
        except BaseException:
            self._discard_tmp(tmp_name)
            raise
        self._prune(fingerprint)
        return True

    def newest(self, fingerprint: str) -> Snapshot | None:
        """The newest *valid* snapshot for a job, or None.

        Corrupt files (bad pickle, digest mismatch, wrong format or
        version) are quarantined to ``*.corrupt`` and counted, and the
        next-newest candidate is tried.
        """
        for path in sorted(self._entries(fingerprint), reverse=True):
            snapshot = self._load(path, fingerprint)
            if snapshot is not None:
                return snapshot
        return None

    def discard(self, fingerprint: str) -> int:
        """Drop every checkpoint for a finished job; return the count.

        Quarantined ``*.corrupt`` files for the same fingerprint are
        removed too — once the job has completed they hold no forensic
        value and would otherwise accumulate forever (``clear`` was the
        only thing that ever deleted them).
        """
        removed = 0
        for path in self._entries(fingerprint) + self._strays(fingerprint):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def corrupt_strays(self) -> list[Path]:
        """Every quarantined ``*.corrupt`` file currently in the store."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.corrupt"))

    # ------------------------------------------------------------------ #
    def _entries(self, fingerprint: str) -> list[Path]:
        if not self.root.is_dir():
            return []
        return list(self.root.glob(f"{fingerprint}.*.ckpt"))

    def _strays(self, fingerprint: str) -> list[Path]:
        if not self.root.is_dir():
            return []
        return list(self.root.glob(f"{fingerprint}.*.corrupt"))

    def _load(self, path: Path, fingerprint: str) -> Snapshot | None:
        try:
            with open(path, "rb") as handle:
                record = pickle.load(handle)
            if record["format"] != _FILE_FORMAT:
                raise ValueError(f"unknown container format in {path}")
            snapshot = record["snapshot"]
            if not isinstance(snapshot, Snapshot):
                raise TypeError(f"{path} does not hold a Snapshot")
            if record["fingerprint"] != fingerprint:
                raise ValueError(f"{path} belongs to another job")
            digest = hashlib.sha256(snapshot.payload).hexdigest()
            if record["digest"] != digest:
                raise ValueError(f"payload digest mismatch in {path}")
            if snapshot.version != CHECKPOINT_VERSION:
                raise ValueError(f"stale snapshot version in {path}")
        except OSError:
            # Racing process pruned/claimed it: not corruption, just gone.
            return None
        except Exception:   # noqa: BLE001 - any decode failure is corruption
            self._quarantine(path)
            return None
        return snapshot

    def _quarantine(self, path: Path) -> None:
        self.corrupt_entries += 1
        try:
            path.rename(path.with_suffix(".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def _prune(self, fingerprint: str) -> None:
        # Keep the newest KEEP_PER_JOB *valid* checkpoints.  Quarantined
        # ``*.corrupt`` files must never count toward the keep margin —
        # the runner-up exists precisely as insurance against a corrupt
        # newest, so letting a quarantine displace it would defeat it.
        entries = [path for path in self._entries(fingerprint)
                   if path.suffix == ".ckpt"]
        stale = sorted(entries)[:-KEEP_PER_JOB]
        for path in stale:
            try:
                path.unlink()
            except OSError:
                pass

    def _note_write_error(self, error: OSError) -> None:
        self.write_errors += 1
        if not self._warned_unwritable:
            self._warned_unwritable = True
            warnings.warn(
                f"checkpoint store {self.root} is not writable "
                f"({type(error).__name__}: {error}); running unprotected",
                RuntimeWarning, stacklevel=3)

    @staticmethod
    def _discard_tmp(tmp_name: str | None) -> None:
        if tmp_name is None:
            return
        try:
            os.unlink(tmp_name)
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for path in self.root.glob("*.ckpt")
                   if not path.name.startswith(".tmp-"))

    def clear(self) -> int:
        """Delete every checkpoint, quarantine and temp file."""
        if not self.root.is_dir():
            return 0
        removed = 0
        for path in {*self.root.glob("*.ckpt"), *self.root.glob("*.corrupt"),
                     *self.root.glob(".tmp-*")}:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
