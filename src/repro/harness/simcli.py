"""``repro-sim`` — run one simulation from the command line.

The single-run counterpart to ``repro-exp``: pick a benchmark (or a trace
file), a hardware configuration, a warp scheduler and a CTA policy, run it,
and print the summary (optionally with the LCS decision, the stall
breakdown, a windowed telemetry timeline CSV and a structured event trace).

Examples::

    repro-sim kmeans
    repro-sim kmeans --scale 0.25 --policy lcs
    repro-sim stencil --warp baws --policy bcs:2
    repro-sim kmeans --policy static:3 --config kepler
    repro-sim my_kernel.json --policy dyncta --timeline out.csv
    repro-sim kmeans --policy lcs --timeline 500       # window=500, stdout
    repro-sim kmeans --policy lcs --trace out.json     # chrome://tracing
    repro-sim kmeans --trace out.jsonl                 # JSONL event log
    repro-sim kmeans --sanitize                        # in-flight invariants
    repro-sim kmeans --checkpoint-interval 5000        # crash-safe; rerun
                                                       # resumes after a kill

Suite-benchmark runs without ``--timeline``/``--trace`` are described as
declarative jobs and executed through the batch engine, so they share the
persistent result cache with ``repro-exp`` (a repeated invocation replays
the stored statistics instead of re-simulating; disable with
``--no-cache``) and the engine's resilience features — retries, typed
timeouts, checkpoint/resume (``docs/ROBUSTNESS.md``).  Kernel trace files
and telemetry collection use the live in-process objects and always
simulate directly (``--sanitize`` still applies; checkpointing does not).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Sequence

from ..core.bcs import BCSScheduler
from ..core.combined import LCSBCSScheduler
from ..core.cta_schedulers import (CTAScheduler, RoundRobinCTAScheduler,
                                   StaticLimitCTAScheduler)
from ..core.dyncta import DynCTAScheduler
from ..core.lcs import LCSScheduler
from ..core.warp_schedulers import available_warp_schedulers, swl_factory
from ..sim.config import GPUConfig
from ..sim.gpu import GPU, SimulationTimeout
from ..sim.kernel import Kernel
from ..sim.vector import VECTOR_WARP_SCHEDULERS, vector_supported
from ..sim.stats import RunResult
from ..telemetry.hub import TelemetryHub
from ..telemetry.trace import write_trace
from ..workloads.patterns import DEFAULT_SEED
from ..workloads.suite import SUITE, make_kernel
from ..workloads.tracefile import load_kernel_trace
from ..sim.invariants import (DEFAULT_SANITIZE_INTERVAL, ENV_SANITIZE,
                              InvariantSanitizer)
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .checkpoints import DEFAULT_CHECKPOINT_DIR, CheckpointPlan
from .engine import DEFAULT_RETRIES, run_batch
from .faults import FaultPlan, FaultSpecError
from .jobs import SimJob
from .validate import VALID_BACKENDS

CONFIGS = ("fermi", "kepler", "small")
POLICIES = ("rr", "static:N", "lcs", "bcs[:B]", "lcs+bcs[:B]", "dyncta")


def _parse_args(argv: Sequence[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Simulate one kernel under a chosen scheduling policy.")
    parser.add_argument("kernel",
                        help=f"benchmark name ({', '.join(sorted(SUITE))}) "
                             "or a .json trace file")
    parser.add_argument("--scale", type=float, default=0.4,
                        help="grid-size scale for suite benchmarks "
                             "(default 0.4)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--config", default="fermi",
                        help=f"hardware preset: {', '.join(CONFIGS)} "
                             "(default fermi)")
    parser.add_argument("--warp", default="gto",
                        help="warp scheduler: "
                             f"{', '.join(available_warp_schedulers())} or "
                             "swl:K (default gto)")
    parser.add_argument("--policy", default="rr",
                        help=f"CTA policy: {', '.join(POLICIES)} "
                             "(default rr)")
    parser.add_argument("--backend", default="object",
                        choices=VALID_BACKENDS,
                        help="simulator core: 'object' (per-object "
                             "reference) or 'vector' (array-oriented, "
                             "bitwise-identical results, faster; named "
                             "lrr/gto/baws warp schedulers only; default "
                             "object)")
    parser.add_argument("--timeline", metavar="CSV", nargs="?", const="-",
                        help="write the windowed telemetry timeline as CSV "
                             "to FILE ('-' or no value = stdout; an "
                             "all-digits value sets the window instead and "
                             "prints to stdout; forces a live run)")
    parser.add_argument("--timeline-period", type=int, default=1000,
                        metavar="CYCLES",
                        help="timeline sampling window (default 1000)")
    parser.add_argument("--trace", metavar="FILE",
                        help="write the structured event trace ('.jsonl' = "
                             "JSON lines, else Chrome trace_event JSON for "
                             "chrome://tracing; forces a live run)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for the batch engine "
                             "(a single run never fans out; accepted for "
                             "symmetry with repro-exp)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache "
                             f"({DEFAULT_CACHE_DIR}/)")
    parser.add_argument("--retries", type=int, default=DEFAULT_RETRIES,
                        metavar="N",
                        help="retries for transient failures on the engine "
                             f"path (default {DEFAULT_RETRIES})")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock deadline for the run; an overrun "
                             "exits with a typed timeout error instead of "
                             "hanging (default: none)")
    parser.add_argument("--sanitize", action="store_true", default=None,
                        help="check live-state invariants at window "
                             "boundaries during the run; a violation is a "
                             "typed InvariantViolation error (also read "
                             "from $REPRO_SANITIZE)")
    parser.add_argument("--checkpoint-interval", type=int, default=None,
                        metavar="CYCLES",
                        help="snapshot the simulation every CYCLES cycles "
                             "(engine path only); an interrupted run "
                             "resumes from its newest checkpoint on the "
                             "next invocation (default: off)")
    parser.add_argument("--checkpoint-dir", default=DEFAULT_CHECKPOINT_DIR,
                        metavar="DIR",
                        help="checkpoint store directory (default "
                             f"{DEFAULT_CHECKPOINT_DIR}/)")
    parser.add_argument("--faults", metavar="SPEC",
                        help="inject deterministic faults for testing, "
                             "e.g. 'kill-at:0:5000' or 'corrupt:0:5000' "
                             "(also read from $REPRO_FAULTS; see "
                             "docs/ROBUSTNESS.md)")
    return parser.parse_args(argv)


def _load_kernel(spec: str, scale: float, seed: int) -> Kernel:
    if spec.endswith(".json"):
        return load_kernel_trace(spec)
    return make_kernel(spec, scale=scale, seed=seed)


def _make_config(name: str) -> GPUConfig:
    if name == "fermi":
        return GPUConfig()
    if name == "kepler":
        return GPUConfig.kepler_class()
    if name == "small":
        return GPUConfig.small()
    raise ValueError(f"unknown config preset {name!r}; choose from {CONFIGS}")


def _make_policy(spec: str, kernel: Kernel) -> CTAScheduler:
    name, _, arg = spec.partition(":")
    if name == "rr":
        return RoundRobinCTAScheduler(kernel)
    if name == "static":
        if not arg:
            raise ValueError("static policy needs a limit: static:N")
        return StaticLimitCTAScheduler(kernel, limit_per_sm=int(arg))
    if name == "lcs":
        return LCSScheduler(kernel)
    if name == "bcs":
        return BCSScheduler(kernel, block_size=int(arg) if arg else 2)
    if name == "lcs+bcs":
        return LCSBCSScheduler(kernel, block_size=int(arg) if arg else 2)
    if name == "dyncta":
        return DynCTAScheduler(kernel)
    raise ValueError(f"unknown policy {spec!r}; choose from {POLICIES}")


def _make_warp(spec: str):
    name, _, arg = spec.partition(":")
    if name == "swl":
        return swl_factory(int(arg) if arg else 8)
    return spec


def _policy_descriptor(spec: str) -> tuple:
    """Translate a ``--policy`` string into a job-layer descriptor."""
    name, _, arg = spec.partition(":")
    if name == "rr":
        return ("rr",)
    if name == "static":
        if not arg:
            raise ValueError("static policy needs a limit: static:N")
        return ("static", int(arg))
    if name == "lcs":
        return ("lcs",)
    if name == "bcs":
        return ("bcs", int(arg) if arg else 2, None)
    if name == "lcs+bcs":
        return ("lcs+bcs", int(arg) if arg else 2, "tail", None)
    if name == "dyncta":
        return ("dyncta",)
    raise ValueError(f"unknown policy {spec!r}; choose from {POLICIES}")


def _warp_descriptor(spec: str) -> str | tuple:
    name, _, arg = spec.partition(":")
    if name == "swl":
        return ("swl", int(arg) if arg else 8)
    return spec


def _print_result(result: RunResult, kernel_name: str,
                  policy_kind: str) -> None:
    """The shared summary block (engine path and live path alike)."""
    print(result.summary())

    stats = result.kernel(kernel_name)
    breakdown = stats.stall_breakdown()
    print("warp-time breakdown: "
          + "  ".join(f"{k}={v:.2f}" for k, v in breakdown.items()))

    decision = result.meta.get("lcs_decision")
    if decision is not None:
        print(f"LCS decision: N*={decision.n_star}/{decision.occupancy} "
              f"at cycle {decision.decided_cycle} "
              f"(rule {decision.rule}@{decision.param}, "
              f"guard {decision.guard_reason or 'clear'})")
    if policy_kind == "dyncta" and result.cta_limits:
        quotas = result.cta_limits
        print(f"DynCTA final quotas: min={min(quotas.values())} "
              f"max={max(quotas.values())}")


def main(argv: Sequence[str] | None = None) -> int:
    args = _parse_args(argv)
    use_engine = (not args.kernel.endswith(".json")
                  and args.timeline is None
                  and not args.trace)
    try:
        config = _make_config(args.config)
        if args.backend == "vector" and args.checkpoint_interval is not None:
            print("error: the vector backend does not support "
                  "checkpoint/resume; drop --checkpoint-interval or use "
                  "--backend object", file=sys.stderr)
            return 2
        if args.backend == "vector" \
                and not vector_supported(_warp_descriptor(args.warp)):
            print(f"error: warp scheduler {args.warp!r} is not supported "
                  "by the vector backend (supported: "
                  f"{', '.join(sorted(VECTOR_WARP_SCHEDULERS))}); use "
                  "--backend object", file=sys.stderr)
            return 2
        if use_engine:
            job = SimJob(names=(args.kernel,), scale=args.scale,
                         seed=args.seed,
                         warp=_warp_descriptor(args.warp),
                         policy=_policy_descriptor(args.policy),
                         config=config, backend=args.backend)
            kernel = job.build_kernels()[0]
        else:
            kernel = _load_kernel(args.kernel, args.scale, args.seed)
            policy = _make_policy(args.policy, kernel)
            warp = _make_warp(args.warp)
    except (ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    occupancy = kernel.max_ctas_per_sm(config)
    print(f"kernel {kernel.name}: {kernel.num_ctas} CTAs x "
          f"{kernel.warps_per_cta} warps, occupancy {occupancy} CTAs/SM, "
          f"config {args.config}, warp {args.warp}, policy {args.policy}, "
          f"backend {args.backend}\n")

    if use_engine:
        cache = None if args.no_cache else ResultCache()
        try:
            faults = (FaultPlan.parse(args.faults) if args.faults
                      else FaultPlan.from_env())
        except FaultSpecError as error:
            print(f"bad fault spec: {error}", file=sys.stderr)
            return 2
        checkpoints = None
        if args.checkpoint_interval is not None:
            if args.checkpoint_interval < 1:
                print(f"--checkpoint-interval must be >= 1 cycle, got "
                      f"{args.checkpoint_interval}", file=sys.stderr)
                return 2
            checkpoints = CheckpointPlan(interval=args.checkpoint_interval,
                                         root=args.checkpoint_dir)
        report = run_batch([job], workers=max(args.jobs, 1), cache=cache,
                           retries=max(args.retries, 0),
                           timeout=args.timeout, faults=faults,
                           sanitize=args.sanitize, checkpoints=checkpoints)
        outcome = report.outcomes[0]
        if outcome.result is None:
            print(f"error: job {outcome.fingerprint[:12]} "
                  f"{outcome.status}: {outcome.error}", file=sys.stderr)
            if outcome.worker_traceback:
                print(outcome.worker_traceback.rstrip(), file=sys.stderr)
            if outcome.status == "timeout" and checkpoints is not None \
                    and outcome.progress \
                    and outcome.progress.get("checkpoint_cycle") is not None:
                print(f"[checkpoint @ cycle "
                      f"{outcome.progress['checkpoint_cycle']} saved in "
                      f"{args.checkpoint_dir}/; rerun to resume]",
                      file=sys.stderr)
            return 1
        if outcome.resumed_from is not None:
            print(f"[resumed from cycle {outcome.resumed_from}]",
                  file=sys.stderr)
        if cache is not None:
            state = "hit" if cache.hits else "miss"
            print(f"[cache {state}: {job.fingerprint()[:12]} in "
                  f"{DEFAULT_CACHE_DIR}/]", file=sys.stderr)
        _print_result(outcome.result, kernel.name, job.policy[0])
        return 0

    # Telemetry configuration for the live path: `--timeline 500` (all
    # digits) means "window 500 cycles, CSV to stdout"; anything else is
    # the destination file ('-' = stdout) sampled at --timeline-period.
    window = None
    timeline_dest = None
    if args.timeline is not None:
        if args.timeline.isdigit():
            window = int(args.timeline)
            timeline_dest = "-"
        else:
            window = args.timeline_period
            timeline_dest = args.timeline
    hub = TelemetryHub(window=window, trace=bool(args.trace))

    sanitize = args.sanitize
    if sanitize is None:
        sanitize = bool(os.environ.get(ENV_SANITIZE, "").strip())
    sanitizer = (InvariantSanitizer(interval=DEFAULT_SANITIZE_INTERVAL)
                 if sanitize else None)
    if args.backend == "vector":
        from ..sim.vector import VectorBackendError, VectorGPU
        try:
            gpu = VectorGPU(config=config, warp_scheduler=warp,
                            telemetry=hub)
        except VectorBackendError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        gpu = GPU(config=config, warp_scheduler=warp, telemetry=hub)
    try:
        gpu.run(policy, wall_timeout=args.timeout, sanitizer=sanitizer)
    except SimulationTimeout as error:
        print(f"error: simulation timed out ({error})", file=sys.stderr)
        return 1

    # Assemble the same summary simulate() would give.
    from ..sim.stats import CacheStats
    l1_total = CacheStats()
    for sm in gpu.sms:
        l1_total.add(sm.l1.stats)
    result = RunResult(
        cycles=gpu.cycle, instructions=gpu.total_issued,
        kernels={run.kernel.name: run.stats for run in gpu.runs},
        l1=l1_total, l2=gpu.mem.l2_stats(), dram=gpu.mem.dram.stats,
        issued_by_sm=[sm.issued for sm in gpu.sms],
        cta_limits=policy.limits_snapshot(),
        meta={"lcs_decision": getattr(policy, "decision", None)})
    _print_result(result, kernel.name, args.policy.partition(":")[0])

    timeline = hub.timeline_result()
    if timeline_dest is not None and timeline is not None:
        csv = timeline.to_csv() + "\n"
        if timeline_dest == "-":
            print(f"\ntimeline ({len(timeline)} windows of "
                  f"{timeline.window} cycles):")
            sys.stdout.write(csv)
        else:
            Path(timeline_dest).write_text(csv)
            print(f"timeline: {len(timeline)} windows of "
                  f"{timeline.window} cycles -> {timeline_dest}")
    if args.trace:
        write_trace(args.trace, hub.events, timeline=timeline)
        print(f"trace: {len(hub.events)} events -> {args.trace}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    raise SystemExit(main())
