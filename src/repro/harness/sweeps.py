"""Generic configuration/parameter sweeps.

A small utility for the sensitivity studies: run the same (kernel, policy)
under a sequence of hardware-configuration variants and tabulate a metric.
Used by the E20 ablation (L1-MSHR sensitivity) and available to users
exploring their own design spaces::

    from repro.harness.sweeps import config_sweep
    table = config_sweep("kmeans", "l1_mshr_entries", [8, 16, 32],
                         policies={"base": ("rr",), "lcs": ("lcs",)})

The sweep is declared as a two-factor :class:`~repro.design.Design`
(swept value x policy, with a derived hardware factor) and compiled by
the design layer — the same lowering path as the E-drivers and design
files — so invalid descriptors fail up front with the engine's uniform
:class:`~repro.harness.jobs.JobError` before any simulation runs, and the
whole sweep fans out across ``jobs`` worker processes and memoises into
``cache``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

# Submodule imports (not the package) keep this importable from either
# direction of the repro.design <-> repro.harness package boundary.
from ..design.design import Design, Factor
from ..design.env import DesignEnv
from ..sim.config import GPUConfig
from ..workloads.patterns import DEFAULT_SEED
from .cache import ResultCache
from .engine import run_jobs
from .jobs import KernelSpec
from .reporting import Table


def sweep_design(benchmark: str, field: str, values: Sequence, *,
                 policies: Mapping[str, tuple],
                 warp_scheduler: str = "gto") -> Design:
    """The declarative form of :func:`config_sweep`'s cell matrix.

    ``value`` is the outer factor and ``policy`` the inner one, so the
    compiled order matches the table layout (one row per value, one
    column per policy).
    """
    return Design(f"sweep-{benchmark}-{field}", factors=[
        Factor.crossed("value", tuple(values)),
        Factor.crossed("bench", (benchmark,)),
        Factor.crossed("warp", (warp_scheduler,)),
        Factor.crossed("policy", tuple(policies.values())),
        Factor.derived("config",
                       lambda cell, env: {field: cell["value"]}),
    ])


def config_sweep(benchmark: str, field: str, values: Sequence,
                 *, policies: Mapping[str, tuple] | None = None,
                 base_config: GPUConfig | None = None,
                 scale: float = 0.4, seed: int = DEFAULT_SEED,
                 warp_scheduler: str = "gto",
                 jobs: int = 1, cache: ResultCache | None = None) -> Table:
    """Sweep one ``GPUConfig`` field; report IPC per (value, policy).

    ``policies`` maps a column label to a policy descriptor (``("rr",)``,
    ``("static", n)``, ``("lcs",)``, or any other descriptor the job layer
    knows); default is the baseline only.  Returns a table with one row
    per swept value.
    """
    if not values:
        raise ValueError("values must be non-empty")
    if policies is None:
        policies = {"ipc": ("rr",)}
    base_config = base_config if base_config is not None else GPUConfig()
    if not hasattr(base_config, field):
        raise ValueError(f"GPUConfig has no field {field!r}")

    # Compile the design up front: descriptor validation (benchmark name,
    # warp scheduler, policy shape) happens here, before anything runs.
    design = sweep_design(benchmark, field, values, policies=policies,
                          warp_scheduler=warp_scheduler)
    env = DesignEnv(scale=scale, seed=seed, config=base_config)
    compiled = design.compile(env)
    results = iter(run_jobs([cc.job for cc in compiled],
                            workers=jobs, cache=cache))

    columns = [field] + [f"{label}_ipc" for label in policies]
    if len(policies) > 1:
        columns.append("best_policy")
    table = Table(f"{benchmark}: sweep of {field}", columns)
    for value in values:
        cells: list = [value]
        best_label, best_ipc = None, -1.0
        for label in policies:
            result = next(results)
            cells.append(result.ipc)
            if result.ipc > best_ipc:
                best_label, best_ipc = label, result.ipc
        if len(policies) > 1:
            cells.append(best_label)
        table.add_row(*cells)
    return table


def occupancy_position(benchmark: str, *, config: GPUConfig | None = None,
                       scale: float = 0.4, seed: int = DEFAULT_SEED,
                       jobs: int = 1,
                       cache: ResultCache | None = None) -> dict:
    """Convenience: where does this kernel's best static limit sit?

    Returns ``{"occupancy": o, "best": n, "best_over_max": s}`` — the raw
    material of the motivation figure for one kernel.
    """
    from ..core.oracle import sweep_static_limits
    config = config if config is not None else GPUConfig()
    spec = KernelSpec(benchmark, scale=scale, seed=seed)
    oracle = sweep_static_limits(spec, config=config, jobs=jobs, cache=cache)
    return {
        "occupancy": oracle.occupancy,
        "best": oracle.best_limit,
        "best_over_max": oracle.best_speedup,
    }
