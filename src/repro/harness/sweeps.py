"""Generic configuration/parameter sweeps.

A small utility for the sensitivity studies: run the same (kernel, policy)
under a sequence of hardware-configuration variants and tabulate a metric.
Used by the E20 ablation (L1-MSHR sensitivity) and available to users
exploring their own design spaces::

    from repro.harness.sweeps import config_sweep
    table = config_sweep("kmeans", "l1_mshr_entries", [8, 16, 32],
                         policies={"base": ("rr",), "lcs": ("lcs",)})
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.cta_schedulers import RoundRobinCTAScheduler, StaticLimitCTAScheduler
from ..core.lcs import LCSScheduler
from ..sim.config import GPUConfig
from ..workloads.patterns import DEFAULT_SEED
from ..workloads.suite import make_kernel
from .reporting import Table
from .runner import simulate


def _build_policy(descriptor: tuple, kernel):
    kind, *args = descriptor
    if kind == "rr":
        return RoundRobinCTAScheduler(kernel)
    if kind == "static":
        (limit,) = args
        return StaticLimitCTAScheduler(kernel, limit_per_sm=limit)
    if kind == "lcs":
        return LCSScheduler(kernel)
    raise ValueError(f"unknown policy descriptor {descriptor!r} "
                     "(sweeps support rr, static:N, lcs)")


def config_sweep(benchmark: str, field: str, values: Sequence,
                 *, policies: Mapping[str, tuple] | None = None,
                 base_config: GPUConfig | None = None,
                 scale: float = 0.4, seed: int = DEFAULT_SEED,
                 warp_scheduler: str = "gto") -> Table:
    """Sweep one ``GPUConfig`` field; report IPC per (value, policy).

    ``policies`` maps a column label to a policy descriptor (``("rr",)``,
    ``("static", n)``, ``("lcs",)``); default is the baseline only.
    Returns a table with one row per swept value.
    """
    if not values:
        raise ValueError("values must be non-empty")
    if policies is None:
        policies = {"ipc": ("rr",)}
    base_config = base_config if base_config is not None else GPUConfig()
    if not hasattr(base_config, field):
        raise ValueError(f"GPUConfig has no field {field!r}")

    columns = [field] + [f"{label}_ipc" for label in policies]
    if len(policies) > 1:
        columns.append("best_policy")
    table = Table(f"{benchmark}: sweep of {field}", columns)
    for value in values:
        config = base_config.with_overrides(**{field: value})
        cells: list = [value]
        best_label, best_ipc = None, -1.0
        for label, descriptor in policies.items():
            kernel = make_kernel(benchmark, scale=scale, seed=seed)
            scheduler = _build_policy(descriptor, kernel)
            result = simulate(kernel, config=config,
                              warp_scheduler=warp_scheduler,
                              cta_scheduler=scheduler)
            cells.append(result.ipc)
            if result.ipc > best_ipc:
                best_label, best_ipc = label, result.ipc
        if len(policies) > 1:
            cells.append(best_label)
        table.add_row(*cells)
    return table


def occupancy_position(benchmark: str, *, config: GPUConfig | None = None,
                       scale: float = 0.4, seed: int = DEFAULT_SEED) -> dict:
    """Convenience: where does this kernel's best static limit sit?

    Returns ``{"occupancy": o, "best": n, "best_over_max": s}`` — the raw
    material of the motivation figure for one kernel.
    """
    from ..core.oracle import sweep_static_limits
    config = config if config is not None else GPUConfig()
    kernel = make_kernel(benchmark, scale=scale, seed=seed)
    oracle = sweep_static_limits(kernel, config=config)
    return {
        "occupancy": oracle.occupancy,
        "best": oracle.best_limit,
        "best_over_max": oracle.best_speedup,
    }
