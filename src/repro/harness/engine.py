"""Batch execution engine: fan independent simulations out across cores.

:func:`run_jobs` takes declarative :class:`~repro.harness.jobs.SimJob`
descriptions and returns their :class:`~repro.sim.stats.RunResult`\\ s in
input order.  Results are memoised on disk through an optional
:class:`~repro.harness.cache.ResultCache`; only cache misses are executed.

Execution strategy:

* ``workers <= 1`` (or a single pending job): run inline in this process —
  no IPC, no pickling, identical to calling ``job.execute()`` directly.
* ``workers > 1``: a ``concurrent.futures.ProcessPoolExecutor`` with a
  chunking heuristic (several jobs per IPC round-trip) so many tiny runs
  don't drown in process-pool overhead.  If the platform cannot spawn a
  process pool (restricted environments, missing ``fork``/semaphores), the
  engine silently falls back to the serial path — results are identical by
  construction, only wall-clock differs.

Worker exceptions are re-raised in the parent as
:class:`JobExecutionError`, tagged with the failing job's fingerprint and
carrying the worker traceback text.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Sequence

from ..sim.stats import RunResult
from .cache import ResultCache
from .jobs import SimJob

#: ``progress(done, total)`` is invoked after every completed job.
ProgressFn = Callable[[int, int], None]


class JobExecutionError(RuntimeError):
    """A job failed inside a worker (or the inline path)."""

    def __init__(self, fingerprint: str, message: str,
                 worker_traceback: str | None = None) -> None:
        super().__init__(f"job {fingerprint[:12]} failed: {message}")
        self.fingerprint = fingerprint
        self.worker_traceback = worker_traceback


def default_workers() -> int:
    """The CLI default for ``--jobs``: one worker per available core."""
    return os.cpu_count() or 1


def _chunksize(pending: int, workers: int) -> int:
    """Jobs per IPC round-trip: aim for ~4 chunks per worker so the pool
    stays load-balanced without paying one round-trip per tiny job."""
    return max(1, pending // (workers * 4))


def _execute_tagged(job: SimJob):
    """Worker entry point: never raises, returns a tagged outcome."""
    try:
        return ("ok", job.execute())
    except Exception as error:   # noqa: BLE001 - transported to the parent
        import traceback
        return ("err", job.fingerprint(),
                f"{type(error).__name__}: {error}", traceback.format_exc())


def run_jobs(jobs: Iterable[SimJob], *, workers: int = 1,
             cache: ResultCache | None = None,
             progress: ProgressFn | None = None) -> list[RunResult]:
    """Execute jobs (parallel, cached) and return results in input order."""
    jobs = list(jobs)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    fingerprints = [job.fingerprint() for job in jobs]
    results: list[RunResult | None] = [None] * len(jobs)

    pending: list[int] = []
    for index, fingerprint in enumerate(fingerprints):
        cached = cache.get(fingerprint) if cache is not None else None
        if cached is not None:
            results[index] = cached
        else:
            pending.append(index)

    done = len(jobs) - len(pending)
    if progress is not None and done:
        progress(done, len(jobs))

    if not pending:
        return results   # type: ignore[return-value]

    outcomes = None
    if workers > 1 and len(pending) > 1:
        outcomes = _run_pool([jobs[i] for i in pending], workers)
    if outcomes is None:
        outcomes = (_execute_tagged(jobs[i]) for i in pending)

    for index, outcome in zip(pending, outcomes):
        if outcome[0] == "err":
            _, fingerprint, message, worker_tb = outcome
            raise JobExecutionError(fingerprint, message, worker_tb)
        result = outcome[1]
        results[index] = result
        if cache is not None:
            cache.put(fingerprints[index], result)
        done += 1
        if progress is not None:
            progress(done, len(jobs))
    return results   # type: ignore[return-value]


def _run_pool(jobs: Sequence[SimJob], workers: int):
    """Map jobs over a process pool; None if no pool can be created."""
    try:
        from concurrent.futures import ProcessPoolExecutor
        pool = ProcessPoolExecutor(max_workers=min(workers, len(jobs)))
    except (ImportError, NotImplementedError, OSError, PermissionError):
        return None   # no usable multiprocessing: inline fallback
    try:
        with pool:
            # list() inside the ``with`` so worker crashes surface here.
            return list(pool.map(_execute_tagged, jobs,
                                 chunksize=_chunksize(len(jobs), workers)))
    except (OSError, PermissionError, RuntimeError):
        # The pool died before producing results (e.g. sandboxed fork);
        # fall back to inline execution.
        return None
