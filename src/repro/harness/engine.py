"""Batch execution engine: fan independent simulations out across cores.

:func:`run_batch` takes declarative :class:`~repro.harness.jobs.SimJob`
descriptions and returns a :class:`BatchReport` with one
:class:`JobOutcome` per job, in input order.  Results are memoised on disk
through an optional :class:`~repro.harness.cache.ResultCache`; only cache
misses are executed.  :func:`run_jobs` is the historical list-of-results
wrapper on top of it.

Execution strategy:

* ``workers <= 1`` (or a single pending job): run inline in this process —
  no IPC, no pickling, identical to calling ``job.execute()`` directly.
* ``workers > 1``: a ``concurrent.futures.ProcessPoolExecutor`` driven by
  per-job ``submit()`` calls (at most ``workers`` in flight at a time), so
  each job fails, retries and times out independently.  If the platform
  cannot spawn a process pool (restricted environments, missing
  ``fork``/semaphores), the engine silently falls back to the serial path —
  results are identical by construction, only wall-clock differs.

Resilience model (see ``docs/ROBUSTNESS.md``):

* **Fault isolation** — one bad job never discards the rest of the batch:
  every completed result is recorded (and cached) as it arrives, and the
  batch always runs to completion unless ``fail_fast`` is set.
* **Retry with backoff** — failures are classified *transient* (a broken
  process pool, a killed worker, ``OSError``/``MemoryError``) or
  *deterministic* (simulation exceptions).  Transients are retried up to
  ``retries`` times with exponential backoff; a broken pool is respawned
  transparently and only the in-flight jobs are re-dispatched.
* **Deadlines** — ``timeout`` seconds per job, enforced twice: a
  cooperative wall-clock guard inside ``GPU.run`` makes the worker itself
  raise :class:`~repro.sim.gpu.SimulationTimeout`, and the parent keeps a
  backstop (timeout + grace) that abandons a stuck worker's pool and
  re-dispatches the other in-flight jobs.  A timed-out job is a typed
  ``"timeout"`` outcome, never a hang.
* **Fault injection** — a :class:`~repro.harness.faults.FaultPlan` drops
  deterministic failures, transient failures, worker kills (including
  mid-run, cycle-addressed kills), delays, cache corruption and live-state
  corruption onto chosen jobs so every path above is testable.
* **Checkpoint/resume** — with a
  :class:`~repro.harness.checkpoints.CheckpointPlan`, every attempt
  snapshots its simulation periodically into a fingerprint-keyed store
  and starts by resuming from the newest stored snapshot.  A worker crash
  or cooperative timeout therefore costs at most one checkpoint interval
  of simulated progress on retry, and a timed-out job is re-dispatched
  (``"timeout-resume"``) as long as each attempt checkpointed *past* its
  predecessor — guaranteed forward progress, still bounded by
  ``retries``.  Resumed attempts produce bitwise-identical statistics to
  uninterrupted ones (property-tested in ``tests/test_checkpoint.py``);
  checkpoints are discarded once their job completes.
* **Sanitizing** — ``sanitize=True`` arms the in-flight invariant checker
  (:mod:`repro.sim.invariants`) in every attempt; violations are
  deterministic failures (retrying would re-corrupt identically).
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ..sim.gpu import SimulationTimeout
from ..sim.stats import RunResult
from .cache import ResultCache
from .checkpoints import CheckpointPlan
from .faults import FaultPlan
from .jobs import SimJob

#: ``progress(done, total)`` is invoked after every completed job.
ProgressFn = Callable[[int, int], None]

#: ``on_outcome(outcome)`` fires the moment a job reaches a terminal
#: state (ok/cached/failed/timeout/skipped), before the batch finishes —
#: the campaign layer journals outcomes as they arrive, so a crash later
#: in the batch loses nothing already completed.
OutcomeFn = Callable[["JobOutcome"], None]

#: Default number of *retries* per job (attempts = retries + 1) for
#: transient failures; deterministic failures are never retried.
DEFAULT_RETRIES = 2

#: First-retry backoff in seconds; doubles per subsequent attempt.
DEFAULT_BACKOFF = 0.25

#: Exceptions a worker classifies as transient (environment, not the job).
TRANSIENT_EXCEPTIONS = (OSError, EOFError, MemoryError)

#: Poll interval while waiting on in-flight futures (also bounds how often
#: the parent's deadline backstop is evaluated).
_WAIT_TICK = 0.1


@dataclass(frozen=True)
class Backoff:
    """Exponential backoff schedule shared by every retry loop.

    The engine's transient-failure retries, the service supervisor's
    worker respawns and the service client's reconnects all pace
    themselves with this one policy: ``delay(attempt)`` for attempt
    ``n >= 1`` is ``base * 2**(n-1)``, capped at ``cap`` seconds.
    """

    base: float = DEFAULT_BACKOFF
    cap: float = 30.0

    def delay(self, attempt: int) -> float:
        return min(self.base * (2 ** (max(attempt, 1) - 1)), self.cap)


class JobExecutionError(RuntimeError):
    """A job failed inside a worker (or the inline path)."""

    def __init__(self, fingerprint: str, message: str,
                 worker_traceback: str | None = None) -> None:
        super().__init__(f"job {fingerprint[:12]} failed: {message}")
        self.fingerprint = fingerprint
        self.worker_traceback = worker_traceback


class BatchError(RuntimeError):
    """Asked for a complete result list, but some jobs did not finish."""

    def __init__(self, report: "BatchReport") -> None:
        failures = report.failures()
        first = failures[0]
        super().__init__(
            f"{len(failures)} of {len(report.outcomes)} job(s) did not "
            f"produce a result (first: job {first.index} "
            f"[{first.fingerprint[:12]}] {first.status}: {first.error})")
        self.report = report


def default_workers() -> int:
    """The CLI default for ``--jobs``: one worker per available core."""
    return os.cpu_count() or 1


# --------------------------------------------------------------------------- #
# outcomes and reports
# --------------------------------------------------------------------------- #

@dataclass
class JobOutcome:
    """What happened to one job of a batch.

    ``status`` is one of:

    * ``"ok"`` — executed (possibly after retries) and produced a result
    * ``"cached"`` — replayed from the persistent result cache
    * ``"failed"`` — a deterministic failure, or retries exhausted
    * ``"timeout"`` — exceeded the per-job deadline (typed, never a hang)
    * ``"skipped"`` — not attempted because ``fail_fast`` stopped the batch
    """

    index: int
    fingerprint: str
    status: str = "skipped"
    result: RunResult | None = None
    attempts: int = 0
    error: str | None = None
    worker_traceback: str | None = None
    duration: float = 0.0
    #: Cycle the winning attempt resumed from (None = ran from cycle 0).
    resumed_from: int | None = None
    #: For ``"timeout"`` outcomes: how far the run got before the deadline
    #: (``{"cycle", "max_cycles", "kind", "checkpoint_cycle",
    #: "resumed_from"}``), so the failure table can report partial
    #: progress and checkpoint availability instead of a bare error.
    progress: dict[str, Any] | None = None

    @property
    def retried(self) -> bool:
        """Whether this job needed more than one attempt."""
        return self.attempts > 1


@dataclass
class BatchReport:
    """Structured record of one :func:`run_batch` invocation.

    ``outcomes`` is in input order, one entry per job.  ``events`` is the
    engine's own trace (retries, timeouts, pool respawns, cache write
    errors) as plain dicts ``{"kind", "t", "payload"}`` with ``t`` in
    seconds since the batch started — exportable next to the simulators'
    cycle-domain traces (see ``repro.telemetry.trace``).
    """

    outcomes: list[JobOutcome] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)
    elapsed: float = 0.0
    #: Corrupt checkpoint files quarantined by workers during this batch
    #: (worker-process counts, threaded back via the tagged outcomes).
    checkpoint_corrupt: int = 0

    def __len__(self) -> int:
        return len(self.outcomes)

    def count(self, status: str) -> int:
        return sum(1 for outcome in self.outcomes
                   if outcome.status == status)

    @property
    def retried(self) -> int:
        """Jobs that needed more than one attempt."""
        return sum(1 for outcome in self.outcomes if outcome.retried)

    def failures(self) -> list[JobOutcome]:
        """Outcomes without a result (failed, timed out or skipped)."""
        return [outcome for outcome in self.outcomes
                if outcome.result is None]

    def first_failure(self) -> JobOutcome | None:
        failures = self.failures()
        return failures[0] if failures else None

    def results(self) -> list[RunResult]:
        """All results in input order; raises :class:`BatchError` if any
        job failed (every completed result is already cached by then)."""
        if self.failures():
            raise BatchError(self)
        return [outcome.result for outcome in self.outcomes]

    def summary_line(self) -> str:
        """One-line digest for CLI footers."""
        parts = [f"{self.count('ok') + self.count('cached')} ok"]
        for status in ("failed", "timeout", "skipped"):
            if self.count(status):
                parts.append(f"{self.count(status)} {status}")
        if self.retried:
            parts.append(f"{self.retried} retried")
        if self.checkpoint_corrupt:
            parts.append(f"{self.checkpoint_corrupt} corrupt checkpoint(s) "
                         f"quarantined")
        return ", ".join(parts)


# --------------------------------------------------------------------------- #
# worker entry point
# --------------------------------------------------------------------------- #

def execute_tagged(index: int, job: SimJob, faults: FaultPlan | None,
                   wall_timeout: float | None, inline: bool = False,
                   sanitize: bool | None = None,
                   checkpoints: CheckpointPlan | None = None):
    """Worker entry point: never raises, returns a tagged outcome.

    This is the dispatch core every execution surface shares: the pool
    workers below, the inline fallback, and the ``repro-serve`` service
    worker (:mod:`repro.service.worker`) all run jobs through this one
    function, so fault injection, timeout typing, checkpoint resume and
    transient-vs-deterministic classification behave identically whether
    a job came from a one-shot batch or the scheduler daemon.

    Tags: ``("ok", index, result, meta)``, ``("timeout", index, message,
    progress)`` or ``("err", index, message, traceback_text, transient)``.
    ``meta`` carries ``{"resumed_from": cycle | None}``; ``progress``
    carries ``{"cycle", "max_cycles", "kind", "checkpoint_cycle",
    "resumed_from"}`` so the parent can report partial progress and decide
    whether a resume-retry can make headway.

    With a checkpoint plan, every attempt first looks for the newest valid
    snapshot under this job's fingerprint and resumes it — so a retried
    (or re-invoked) job continues where the previous attempt's last
    checkpoint left off instead of starting over.
    """
    resumed_from = None
    ckpt_corrupt = 0
    try:
        resume_from = None
        if checkpoints is not None:
            store = checkpoints.store()
            resume_from = store.newest(job.fingerprint())
            # Quarantines happen in *this* process; the count must ride
            # the tagged outcome or the parent footer never sees it.
            ckpt_corrupt = store.corrupt_entries
            if resume_from is not None:
                resumed_from = resume_from.cycle
        saboteur = (faults.run_saboteur(index, inline=inline)
                    if faults is not None else None)
        if faults is not None:
            faults.before_execute(index, inline=inline)
        result = job.execute(wall_timeout=wall_timeout, sanitize=sanitize,
                             checkpoint=checkpoints, resume_from=resume_from,
                             saboteur=saboteur)
        return ("ok", index, result, {"resumed_from": resumed_from,
                                      "checkpoint_corrupt": ckpt_corrupt})
    except SimulationTimeout as error:
        progress = {"cycle": error.cycle, "max_cycles": error.max_cycles,
                    "kind": error.kind,
                    "checkpoint_cycle": error.checkpoint_cycle,
                    "resumed_from": resumed_from,
                    "checkpoint_corrupt": ckpt_corrupt}
        return ("timeout", index, f"{type(error).__name__}: {error}",
                progress)
    except TRANSIENT_EXCEPTIONS as error:
        import traceback
        return ("err", index, f"{type(error).__name__}: {error}",
                traceback.format_exc(), True)
    except Exception as error:   # noqa: BLE001 - transported to the parent
        import traceback
        return ("err", index, f"{type(error).__name__}: {error}",
                traceback.format_exc(), False)


#: Backwards-compatible alias (the pool pickles this by qualified name).
_execute_tagged = execute_tagged


# --------------------------------------------------------------------------- #
# batch state shared by the inline and pool paths
# --------------------------------------------------------------------------- #

class _BatchState:
    """Outcome recording, caching and engine-event bookkeeping."""

    def __init__(self, jobs: list[SimJob], fingerprints: list[str],
                 cache: ResultCache | None, faults: FaultPlan | None,
                 progress: ProgressFn | None,
                 sanitize: bool | None = None,
                 checkpoints: CheckpointPlan | None = None,
                 on_outcome: OutcomeFn | None = None) -> None:
        self.jobs = jobs
        self.cache = cache
        self.faults = faults
        self.progress = progress
        self.on_outcome = on_outcome
        self.sanitize = sanitize
        self.checkpoints = checkpoints
        self.checkpoint_store = (checkpoints.store()
                                 if checkpoints is not None else None)
        self.started = time.monotonic()
        self.outcomes = [JobOutcome(index=i, fingerprint=fp)
                         for i, fp in enumerate(fingerprints)]
        self.events: list[dict[str, Any]] = []
        self.done = 0
        self.checkpoint_corrupt = 0

    def note_checkpoint_corrupt(self, index: int, count: int) -> None:
        """Accumulate worker-side quarantine counts into the batch."""
        if count:
            self.checkpoint_corrupt += count
            self.event("checkpoint.corrupt", job=index, count=count)

    def event(self, kind: str, **payload: Any) -> None:
        self.events.append({"kind": kind,
                            "t": time.monotonic() - self.started,
                            "payload": payload})

    def _advance(self, index: int | None = None) -> None:
        self.done += 1
        if self.progress is not None:
            self.progress(self.done, len(self.jobs))
        if index is not None and self.on_outcome is not None:
            # Terminal-state hook: fires *after* the result is cached, so
            # a listener that journals "done" can rely on the cache entry
            # already existing.
            self.on_outcome(self.outcomes[index])

    # ------------------------------------------------------------------ #
    def record_cached(self, index: int, result: RunResult) -> None:
        outcome = self.outcomes[index]
        outcome.status = "cached"
        outcome.result = result
        self._advance(index)

    def record_ok(self, index: int, result: RunResult, attempts: int,
                  duration: float, meta: dict[str, Any] | None = None) -> None:
        outcome = self.outcomes[index]
        outcome.status = "ok"
        outcome.result = result
        outcome.attempts = attempts
        outcome.duration = duration
        resumed = (meta or {}).get("resumed_from")
        if resumed is not None:
            outcome.resumed_from = resumed
            self.event("job.resumed", job=index, cycle=resumed)
        self.note_checkpoint_corrupt(
            index, int((meta or {}).get("checkpoint_corrupt") or 0))
        if self.checkpoint_store is not None:
            # The job is done (and about to be cached): its checkpoints
            # have served their purpose.
            self.checkpoint_store.discard(outcome.fingerprint)
        if self.cache is not None:
            if not self.cache.put(outcome.fingerprint, result):
                self.event("cache.write_error", job=index,
                           fingerprint=outcome.fingerprint[:12])
            elif self.faults is not None and self.faults.corrupt_cache(index):
                # Injected corruption: scribble over the entry just written
                # so the next read exercises the miss-not-crash path.
                self.cache.path_for(outcome.fingerprint).write_text(
                    "{corrupted", encoding="utf-8")
                self.event("cache.corrupted", job=index)
        if attempts > 1:
            self.event("job.recovered", job=index, attempts=attempts)
        self._advance(index)

    def record_failure(self, index: int, message: str, traceback_text: str | None,
                       attempts: int, duration: float) -> None:
        outcome = self.outcomes[index]
        outcome.status = "failed"
        outcome.error = message
        outcome.worker_traceback = traceback_text
        outcome.attempts = attempts
        outcome.duration = duration
        self.event("job.failed", job=index, attempts=attempts, error=message)
        self._advance(index)

    def record_timeout(self, index: int, message: str, attempts: int,
                       duration: float,
                       progress: dict[str, Any] | None = None) -> None:
        outcome = self.outcomes[index]
        outcome.status = "timeout"
        outcome.error = message
        outcome.attempts = attempts
        outcome.duration = duration
        outcome.progress = progress
        self.event("job.timeout", job=index, attempts=attempts, error=message,
                   progress=progress)
        self.note_checkpoint_corrupt(
            index, int((progress or {}).get("checkpoint_corrupt") or 0))
        self._advance(index)

    def record_skipped(self, index: int) -> None:
        outcome = self.outcomes[index]
        outcome.status = "skipped"
        outcome.error = "skipped: fail-fast stopped the batch"
        self._advance(index)

    def retry_delay(self, index: int, attempts: int, backoff: float,
                    reason: str) -> float:
        delay = Backoff(base=backoff, cap=float("inf")).delay(attempts)
        self.event("job.retry", job=index, attempt=attempts + 1,
                   delay=round(delay, 3), reason=reason)
        return delay

    def can_resume_timeout(self, progress: dict[str, Any] | None) -> bool:
        """Is a resume-retry of this cooperative timeout worthwhile?

        Only when checkpointing is on, the deadline was the *wall-clock*
        guard (a ``max-cycles`` overrun is deterministic: resuming would
        overrun again), and this attempt checkpointed strictly past the
        snapshot it started from — so every retry makes forward progress
        and the attempt bound is an upper limit, not a treadmill.
        """
        if self.checkpoints is None or not progress:
            return False
        if progress.get("kind") != "wall":
            return False
        saved = progress.get("checkpoint_cycle")
        if saved is None:
            return False
        resumed = progress.get("resumed_from")
        return saved > (resumed if resumed is not None else -1)


# --------------------------------------------------------------------------- #
# public API
# --------------------------------------------------------------------------- #

def run_batch(jobs: Iterable[SimJob], *, workers: int = 1,
              cache: ResultCache | None = None,
              progress: ProgressFn | None = None,
              retries: int = DEFAULT_RETRIES,
              timeout: float | None = None,
              fail_fast: bool = False,
              faults: FaultPlan | None = None,
              backoff: float = DEFAULT_BACKOFF,
              grace: float | None = None,
              sanitize: bool | None = None,
              checkpoints: CheckpointPlan | None = None,
              on_outcome: OutcomeFn | None = None) -> BatchReport:
    """Execute jobs (parallel, cached, fault-isolated); return the report.

    Never raises for a job failure: each job's fate is a
    :class:`JobOutcome` and every completed result is cached as it
    arrives.  ``fail_fast=True`` stops dispatching new jobs after the
    first failure (already-running jobs still complete and are recorded;
    undispatched jobs become ``"skipped"``).

    ``timeout`` is the per-job wall-clock deadline in seconds; ``grace``
    is how long past it the parent waits for the worker's own cooperative
    :class:`~repro.sim.gpu.SimulationTimeout` before abandoning the pool
    (default ``max(2, timeout/2)``).

    ``sanitize`` arms the in-flight invariant sanitizer in every job;
    ``checkpoints`` (a :class:`~repro.harness.checkpoints.CheckpointPlan`)
    makes every attempt periodically snapshot its simulation and start by
    resuming the newest stored snapshot, turning worker crashes and
    cooperative timeouts into at-most-one-interval losses (see the module
    docstring's resilience model).  Neither changes any result.

    ``on_outcome`` is called with each :class:`JobOutcome` the moment it
    reaches a terminal state (after any caching), so callers that keep
    their own durable record — the campaign journal — never trail the
    engine by more than one job.
    """
    jobs = list(jobs)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout < 0:
        raise ValueError(f"timeout must be >= 0, got {timeout}")
    fingerprints = [job.fingerprint() for job in jobs]
    state = _BatchState(jobs, fingerprints, cache, faults, progress,
                        sanitize, checkpoints, on_outcome)
    state.event("batch.start", jobs=len(jobs), workers=workers,
                retries=retries, timeout=timeout,
                sanitize=bool(sanitize),
                checkpoint_interval=(checkpoints.interval
                                     if checkpoints is not None else None))

    pending: list[int] = []
    for index, fingerprint in enumerate(fingerprints):
        cached = cache.get(fingerprint) if cache is not None else None
        if cached is not None:
            state.record_cached(index, cached)
        else:
            pending.append(index)

    if pending:
        remaining = pending
        if workers > 1 and len(pending) > 1:
            remaining = _run_pool(state, pending, workers=workers,
                                  retries=retries, timeout=timeout,
                                  fail_fast=fail_fast, backoff=backoff,
                                  grace=grace)
        if remaining:
            _run_inline(state, remaining, retries=retries, timeout=timeout,
                        fail_fast=fail_fast, backoff=backoff)

    report = BatchReport(outcomes=state.outcomes, events=state.events,
                         elapsed=time.monotonic() - state.started,
                         checkpoint_corrupt=state.checkpoint_corrupt)
    state.event("batch.end", summary=report.summary_line())
    return report


def run_jobs(jobs: Iterable[SimJob], *, workers: int = 1,
             cache: ResultCache | None = None,
             progress: ProgressFn | None = None,
             retries: int = DEFAULT_RETRIES,
             timeout: float | None = None,
             faults: FaultPlan | None = None,
             sanitize: bool | None = None,
             checkpoints: CheckpointPlan | None = None) -> list[RunResult]:
    """Execute jobs and return results in input order.

    The raising wrapper over :func:`run_batch`: if any job fails, a
    :class:`JobExecutionError` for the first failure is raised — but only
    after the *whole* batch has run and every completed result has been
    recorded and cached (an early failure never discards later successes).
    """
    report = run_batch(jobs, workers=workers, cache=cache, progress=progress,
                       retries=retries, timeout=timeout, faults=faults,
                       sanitize=sanitize, checkpoints=checkpoints)
    failure = report.first_failure()
    if failure is not None:
        raise JobExecutionError(failure.fingerprint,
                                failure.error or failure.status,
                                failure.worker_traceback)
    return [outcome.result for outcome in report.outcomes]


# --------------------------------------------------------------------------- #
# inline execution (serial; also the no-multiprocessing fallback)
# --------------------------------------------------------------------------- #

def _run_inline(state: _BatchState, pending: list[int], *, retries: int,
                timeout: float | None, fail_fast: bool,
                backoff: float) -> None:
    stopped = False
    for index in pending:
        if stopped:
            state.record_skipped(index)
            continue
        attempts = 0
        started = time.monotonic()
        while True:
            attempts += 1
            outcome = execute_tagged(index, state.jobs[index], state.faults,
                                      timeout, True, state.sanitize,
                                      state.checkpoints)
            duration = time.monotonic() - started
            tag = outcome[0]
            if tag == "ok":
                state.record_ok(index, outcome[2], attempts, duration,
                                outcome[3] if len(outcome) > 3 else None)
                break
            if tag == "timeout":
                progress = outcome[3] if len(outcome) > 3 else None
                if state.can_resume_timeout(progress) and attempts <= retries:
                    time.sleep(state.retry_delay(index, attempts, backoff,
                                                 "timeout-resume"))
                    continue
                state.record_timeout(index, outcome[2], attempts, duration,
                                     progress)
                stopped = stopped or fail_fast
                break
            _, _, message, traceback_text, transient = outcome
            if transient and attempts <= retries:
                time.sleep(state.retry_delay(index, attempts, backoff,
                                             "transient"))
                continue
            state.record_failure(index, message, traceback_text, attempts,
                                 duration)
            stopped = stopped or fail_fast
            break


# --------------------------------------------------------------------------- #
# pool execution (submit-based futures, bounded in-flight)
# --------------------------------------------------------------------------- #

def _make_pool(workers: int):
    try:
        from concurrent.futures import ProcessPoolExecutor
        return ProcessPoolExecutor(max_workers=workers)
    except (ImportError, NotImplementedError, OSError, PermissionError,
            RuntimeError):
        return None


def _run_pool(state: _BatchState, pending: list[int], *, workers: int,
              retries: int, timeout: float | None, fail_fast: bool,
              backoff: float, grace: float | None) -> list[int]:
    """Drive the pending jobs through a process pool.

    Returns the indices that still need to run (non-empty only when no
    pool could be created or a respawn failed — the caller then degrades
    to inline execution, preserving the engine's old fallback contract).
    """
    from concurrent.futures import FIRST_COMPLETED, wait
    from concurrent.futures.process import BrokenProcessPool

    max_workers = min(workers, len(pending))
    pool = _make_pool(max_workers)
    if pool is None:
        return pending
    if grace is None:
        grace = max(2.0, timeout / 2) if timeout else 2.0

    queue: deque[tuple[int, float]] = deque((i, 0.0) for i in pending)
    attempts = {index: 0 for index in pending}
    inflight: dict[Any, tuple[int, float]] = {}
    stopped = False

    def pop_ready(now: float) -> int | None:
        """Next index whose backoff delay has elapsed (queue order kept)."""
        for _ in range(len(queue)):
            index, not_before = queue.popleft()
            if not_before <= now:
                return index
            queue.append((index, not_before))
        return None

    def requeue(index: int, not_before: float) -> None:
        queue.append((index, not_before))

    def respawn(reason: str) -> bool:
        """Replace a dead/abandoned pool; False degrades to inline."""
        nonlocal pool
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:   # noqa: BLE001 - the pool is already broken
            pass
        state.event("pool.respawn", reason=reason,
                    inflight=len(inflight) + len(queue))
        pool = _make_pool(max_workers)
        return pool is not None

    def fail_transient(index: int, message: str, reason: str) -> None:
        """A transient, non-job fault (crash/abandonment): retry or fail."""
        if attempts[index] <= retries:
            delay = state.retry_delay(index, attempts[index], backoff, reason)
            requeue(index, time.monotonic() + delay)
        else:
            state.record_failure(index, message, None, attempts[index], 0.0)

    while queue or inflight:
        now = time.monotonic()
        # Keep at most ``max_workers`` futures outstanding so a submitted
        # job starts (almost) immediately — that's what makes the
        # submit-time stamp a usable deadline reference.
        while not stopped and pool is not None \
                and len(inflight) < max_workers:
            index = pop_ready(now)
            if index is None:
                break
            attempts[index] += 1
            try:
                future = pool.submit(execute_tagged, index,
                                     state.jobs[index], state.faults,
                                     timeout, False, state.sanitize,
                                     state.checkpoints)
            except (BrokenProcessPool, RuntimeError):
                attempts[index] -= 1
                requeue(index, now)
                if not respawn("submit-failed"):
                    break
                continue
            inflight[future] = (index, now)

        if not inflight:
            if stopped or pool is None:
                break
            if queue:   # every queued job is waiting out its backoff
                next_ready = min(nb for _, nb in queue)
                time.sleep(max(0.0, min(next_ready - time.monotonic(),
                                        _WAIT_TICK)))
                continue
            break

        done, _ = wait(set(inflight), timeout=_WAIT_TICK,
                       return_when=FIRST_COMPLETED)

        if not done and timeout is not None:
            # Parent-side backstop: the worker's cooperative guard should
            # have fired by ``timeout``; past timeout + grace the worker is
            # wedged (a sleep, a native loop) — abandon the pool, mark the
            # job timed out and re-dispatch the other in-flight jobs
            # without charging them an attempt.
            now = time.monotonic()
            overdue = [(future, index, submitted)
                       for future, (index, submitted) in inflight.items()
                       if now - submitted > timeout + grace]
            if overdue:
                for future, index, submitted in overdue:
                    inflight.pop(future)
                    state.record_timeout(
                        index, f"exceeded --timeout {timeout:g}s "
                        f"(parent backstop after "
                        f"{now - submitted:.1f}s)",
                        attempts[index], now - submitted)
                    stopped = stopped or fail_fast
                for future, (index, _) in list(inflight.items()):
                    inflight.pop(future)
                    attempts[index] -= 1   # not this job's fault
                    requeue(index, now)
                if not respawn("stuck-worker"):
                    break
            continue

        for future in done:
            index, submitted = inflight.pop(future)
            duration = time.monotonic() - submitted
            try:
                outcome = future.result()
            except BrokenProcessPool as error:
                # A worker died (OOM-kill, os._exit): the executor fails
                # *every* in-flight future.  Treat them all as transient.
                crashed = [index] + [i for i, _ in inflight.values()]
                inflight.clear()
                for crashed_index in crashed:
                    fail_transient(crashed_index,
                                   f"worker crashed: {error}", "pool-broken")
                # A failed respawn leaves ``pool`` as None; the loop then
                # exits and the caller degrades to inline execution.
                respawn("worker-crashed")
                break
            except Exception as error:   # noqa: BLE001 - e.g. unpicklable
                state.record_failure(index, f"{type(error).__name__}: "
                                     f"{error}", None, attempts[index],
                                     duration)
                stopped = stopped or fail_fast
                continue

            tag = outcome[0]
            if tag == "ok":
                state.record_ok(index, outcome[2], attempts[index], duration,
                                outcome[3] if len(outcome) > 3 else None)
            elif tag == "timeout":
                progress = outcome[3] if len(outcome) > 3 else None
                if state.can_resume_timeout(progress) \
                        and attempts[index] <= retries:
                    delay = state.retry_delay(index, attempts[index],
                                              backoff, "timeout-resume")
                    requeue(index, time.monotonic() + delay)
                else:
                    state.record_timeout(index, outcome[2], attempts[index],
                                         duration, progress)
                    stopped = stopped or fail_fast
            else:
                _, _, message, traceback_text, transient = outcome
                if transient and attempts[index] <= retries:
                    delay = state.retry_delay(index, attempts[index],
                                              backoff, "transient")
                    requeue(index, time.monotonic() + delay)
                else:
                    state.record_failure(index, message, traceback_text,
                                         attempts[index], duration)
                    stopped = stopped or fail_fast

    if stopped:
        for index, _ in queue:
            state.record_skipped(index)
        queue.clear()
    leftovers = [index for index, _ in queue]
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)
    return leftovers
