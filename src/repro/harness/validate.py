"""Run-result validation: the invariants every simulation must satisfy.

:func:`validate_run` checks a finished :class:`RunResult` against the
conservation laws and sanity bounds the model guarantees.  The test suite
applies it broadly, and users extending the simulator can call it on their
own runs to catch bookkeeping bugs early.
"""

from __future__ import annotations

from ..sim.stats import RunResult

#: Simulator cores selectable via ``--backend`` / ``SimJob.backend``.
#: ``object`` is the per-object reference core; ``vector`` the
#: array-oriented core (see :mod:`repro.sim.vector`).
VALID_BACKENDS = ("object", "vector")


class RunValidationError(AssertionError):
    """A RunResult violated a simulator invariant."""


def validate_backend(backend: str) -> str:
    """Check a backend name; returns it unchanged.

    Raises ``ValueError`` with the accepted names — callers (SimJob,
    the CLIs) surface this directly, so keep it actionable.
    """
    if backend not in VALID_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose one of "
            f"{'/'.join(VALID_BACKENDS)}")
    return backend


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise RunValidationError(message)


def validate_run(result: RunResult) -> None:
    """Raise :class:`RunValidationError` if any invariant is violated.

    Checked invariants:

    * every kernel finished, and per-kernel instruction counts sum to the
      machine total (which equals the per-SM sum);
    * demand-traffic conservation: L1 misses == L2 accesses, L2 load misses
      == DRAM reads, store counts match at L1 and L2;
    * cache counter consistency (accesses = hits + misses + merges, rates
      within [0, 1]);
    * cycle counts positive and IPC consistent;
    * warp-state time integrals are non-negative.
    """
    _check(result.cycles > 0, "run has no cycles")
    _check(result.instructions > 0, "run issued no instructions")
    _check(abs(result.ipc - result.instructions / result.cycles) < 1e-9,
           "IPC inconsistent with instructions/cycles")
    _check(sum(result.issued_by_sm) == result.instructions,
           "per-SM issue counts do not sum to the machine total")

    kernel_total = 0
    for name, stats in result.kernels.items():
        _check(stats.finish_cycle is not None, f"kernel {name!r} unfinished")
        _check(stats.instructions > 0, f"kernel {name!r} issued nothing")
        kernel_total += stats.instructions
        for field in ("ready_wait", "alu_wait", "mem_wait", "barrier_wait"):
            _check(getattr(stats, field) >= 0,
                   f"kernel {name!r}: negative {field}")
    _check(kernel_total == result.instructions,
           "per-kernel instruction counts do not sum to the machine total")

    for label, cache in (("L1", result.l1), ("L2", result.l2)):
        _check(cache.accesses == cache.hits + cache.misses + cache.merges,
               f"{label}: accesses != hits + misses + merges")
        _check(0.0 <= cache.miss_rate <= 1.0, f"{label}: miss rate out of range")
        _check(cache.write_hits <= cache.write_accesses,
               f"{label}: more write hits than write accesses")

    _check(result.l2.accesses == result.l1.misses + result.l1.prefetches,
           "L1 misses (+prefetches) and L2 accesses disagree "
           "(demand-fetch conservation)")
    _check(result.dram.reads == result.l2.misses,
           "L2 misses and DRAM reads disagree")
    _check(result.l2.write_accesses
           == result.l1.write_accesses - result.l1.stores_coalesced,
           "store write-through counts disagree between L1 and L2")
    _check(result.dram.writes <= result.l2.write_accesses,
           "DRAM writes exceed the stores that reached L2")
    _check(0.0 <= result.dram.row_hit_rate <= 1.0,
           "DRAM row hit rate out of range")
