"""Multiprogram (CKE) performance metrics.

The concurrent-kernel-execution literature the paper builds on reports more
than raw completion time; this module implements the standard metrics so E8
can report them alongside total-cycles speedup:

* **ANTT** (average normalized turnaround time, lower is better): mean over
  kernels of ``T_shared / T_alone`` — how much each kernel was slowed down
  by co-execution.
* **STP** (system throughput, higher is better): sum over kernels of
  ``T_alone / T_shared`` — aggregate progress rate in "kernels' worth of
  machine".
* **Fairness** (0..1, higher is better): min over kernel pairs of relative
  slowdown ratios.

``T_alone`` is the kernel's solo execution time on the whole machine;
``T_shared`` is its turnaround (launch to finish) in the co-scheduled run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..sim.stats import RunResult


@dataclass(frozen=True)
class CKEMetrics:
    antt: float
    stp: float
    fairness: float
    slowdowns: tuple[float, ...]    # per kernel, T_shared / T_alone

    def __str__(self) -> str:
        return (f"ANTT={self.antt:.3f} STP={self.stp:.3f} "
                f"fairness={self.fairness:.3f}")


def kernel_turnaround(shared: RunResult, name: str) -> int:
    """Launch-to-finish time of one kernel inside a co-scheduled run."""
    stats = shared.kernel(name)
    if stats.finish_cycle is None:
        raise ValueError(f"kernel {name!r} did not finish")
    return stats.finish_cycle - stats.launch_cycle


def cke_metrics(shared: RunResult,
                alone: Mapping[str, RunResult]) -> CKEMetrics:
    """Compute ANTT / STP / fairness for one co-scheduled run.

    ``alone`` maps each kernel name to its solo RunResult (same scale and
    configuration).
    """
    names = list(shared.kernels)
    if set(names) - set(alone):
        missing = sorted(set(names) - set(alone))
        raise ValueError(f"missing solo runs for {missing}")
    slowdowns = []
    for name in names:
        t_alone = alone[name].cycles
        if t_alone <= 0:
            raise ValueError(f"solo run for {name!r} has no cycles")
        slowdowns.append(kernel_turnaround(shared, name) / t_alone)
    antt = sum(slowdowns) / len(slowdowns)
    stp = sum(1.0 / s for s in slowdowns)
    fairness = min(
        min(a / b, b / a)
        for i, a in enumerate(slowdowns)
        for b in slowdowns[i + 1:]
    ) if len(slowdowns) > 1 else 1.0
    return CKEMetrics(antt=antt, stp=stp, fairness=fairness,
                      slowdowns=tuple(slowdowns))
