"""CTA (thread block) runtime state.

A CTA is created when the CTA scheduler dispatches it to an SM.  It tracks
barrier arrivals, warp completions and — centrally for LCS — the number of
instructions its warps have issued (``issued_instrs``), which is the signal
the paper's lazy CTA scheduler reads during its monitoring phase.

``seq`` is the global dispatch sequence number (GTO ages by it); ``block_seq``
is the dispatch sequence of the *block* of consecutive CTAs the scheduler
grouped this CTA into (BCS/BAWS age by it; for non-block schedulers every CTA
is its own block).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .warp import Warp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .gpu import KernelRun
    from .sm import SM


class CTA:
    __slots__ = ("run", "cta_id", "seq", "block_seq", "sm", "warps",
                 "barrier_arrived", "done_warps", "issued_instrs",
                 "issued_barriers", "dispatch_cycle", "complete_cycle")

    def __init__(self, run: "KernelRun", cta_id: int, seq: int,
                 block_seq: int, sm: "SM", dispatch_cycle: int) -> None:
        self.run = run
        self.cta_id = cta_id
        self.seq = seq
        self.block_seq = block_seq
        self.sm = sm
        self.warps: list[Warp] = []
        self.barrier_arrived = 0
        self.done_warps = 0
        self.issued_instrs = 0
        self.issued_barriers = 0
        self.dispatch_cycle = dispatch_cycle
        self.complete_cycle: int | None = None

    def __repr__(self) -> str:
        return (f"CTA(kernel={self.run.kernel.name}, id={self.cta_id}, "
                f"seq={self.seq}, sm={self.sm.sm_id})")

    @property
    def kernel(self):
        return self.run.kernel

    @property
    def num_warps(self) -> int:
        return len(self.warps)

    @property
    def live_warps(self) -> int:
        """Warps that have not executed EXIT yet (barrier arrival target)."""
        return len(self.warps) - self.done_warps

    @property
    def complete(self) -> bool:
        return self.done_warps == len(self.warps)

    @property
    def lifetime(self) -> int | None:
        if self.complete_cycle is None:
            return None
        return self.complete_cycle - self.dispatch_cycle
