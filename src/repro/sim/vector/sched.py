"""Int-packed ready heaps for the vector core.

The object schedulers keep a lazy min-heap of ``(priority_key, epoch,
Warp)`` tuples.  Heap order is entirely determined by the key (keys end in
the unique ``(cta.seq, warp.idx)`` pair, so ties never reach the epoch or
the Warp), which means the whole entry can be collapsed into one machine
integer whose numeric order equals the tuple's lexicographic order::

    entry = key << SLOT_BITS | slot

with ``key`` the policy priority packed most-significant-field-first:

=========  =============================================================
policy     key layout (most significant first)
=========  =============================================================
``lrr``    ``(last_issue + 1) << AGE_BITS | age``
``gto``    ``age``                      (static per warp)
``baws``   ``block_seq << (LI_BITS + AGE_BITS)
           | (last_issue + 1) << AGE_BITS | age``
=========  =============================================================

where ``age = cta.seq << IDX_BITS | warp.idx`` is the packed form of the
object core's ``age_key`` tuple and ``last_issue + 1`` keeps the initial
``-1`` non-negative.  The *top* field of each layout may exceed its
nominal width without breaking order (Python ints are unbounded and
nothing above it exists to collide with); every *inner* field is
width-guarded at dispatch (:data:`MAX_CTA_SEQ`, :data:`MAX_WARP_IDX`) or
at construction (``max_cycles`` vs :data:`MAX_LAST_ISSUE`).

Staleness without epochs
------------------------
Under lrr/gto/baws every READY warp has at most one live heap entry (a
warp leaves READY only by issuing, and issuing pops its entry or consumes
the entry-less greedy pointer), so an entry is valid exactly when its
warp is READY *and* its key equals the warp's most recently pushed key
(the ``entry_key`` column).  That replaces the object core's
``epoch`` attribute with one list compare.
"""

from __future__ import annotations

#: Bits for the warp index inside ``age`` (warps_per_cta <= 128 —
#: far above any real occupancy limit).
IDX_BITS = 7
#: Bits for the packed ``age`` field: ``cta.seq << IDX_BITS | warp.idx``.
AGE_BITS = 31
#: Bits reserved for ``last_issue + 1`` when it sits *below* another field
#: (baws puts ``block_seq`` above it).  2**36 cycles is far beyond any
#: configured ``max_cycles``; guarded at VectorGPU construction.
LI_BITS = 36
#: Bits for the slot id appended below the key.
SLOT_BITS = 21

SLOT_MASK = (1 << SLOT_BITS) - 1

#: Capacity limits implied by the field widths above.
MAX_WARP_IDX = 1 << IDX_BITS
MAX_CTA_SEQ = 1 << (AGE_BITS - IDX_BITS)
MAX_SLOTS = 1 << SLOT_BITS
MAX_LAST_ISSUE = (1 << LI_BITS) - 2

#: Scheduler-kind codes (``VectorSM._kind``).
KIND_LRR = 0
KIND_GTO = 1
KIND_BAWS = 2

KIND_BY_NAME = {"lrr": KIND_LRR, "gto": KIND_GTO, "baws": KIND_BAWS}

#: Greedy pointer semantics per kind (mirrors ``WarpScheduler.greedy``).
GREEDY_KINDS = frozenset({KIND_GTO, KIND_BAWS})

#: Mirrors ``WarpScheduler.SCAN_LIMIT`` — candidates examined per pick
#: when the LD/ST queue is full.
SCAN_LIMIT = 6


class VecScheduler:
    """One issue slot's scheduler state: an int heap + greedy slot."""

    __slots__ = ("heap", "greedy_slot")

    def __init__(self) -> None:
        self.heap: list[int] = []
        #: Slot id of the greedy warp, or -1 (mirrors ``_greedy_warp``).
        self.greedy_slot = -1

    @property
    def pending_entries(self) -> int:
        """Heap size, stale entries included (tests/diagnostics)."""
        return len(self.heap)
