"""Struct-of-arrays warp state for the vector core.

One :class:`WarpColumns` instance per SM holds every warp the SM has ever
dispatched, indexed by a dense *slot* id (slots are never recycled — a
completed CTA's columns stay in place, exactly like the object core keeps
its ``Warp`` objects alive until the CTA releases).

The hot columns are plain Python lists, not numpy arrays.  The cycle loop
touches *individual* warps (the one warp a scheduler picked, the one warp
a fill woke), and a single-element ``ndarray.__getitem__`` /
``__setitem__`` round-trip through a numpy scalar costs several times a
list index in CPython — measured on this workload the all-ndarray variant
was ~2.5x *slower* than the object core.  The struct-of-arrays layout is
what buys the speed (no per-warp attribute dictionaries or descriptor
lookups, int-packed scheduler keys, batched wakeups); numpy enters where
arrays genuinely win: the :meth:`snapshot` structured-array view that
analysis tooling can slice column-wise without walking objects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .. import warp as _warp_mod
from . import ensure_numpy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cta import CTA
    from ..warp import Warp

#: dtype of :meth:`WarpColumns.snapshot` — one record per slot, mirroring
#: the ``Warp`` attributes the object core exposes.
SNAPSHOT_FIELDS = (
    ("slot", "i8"),
    ("state", "i1"),
    ("pc", "i8"),
    ("state_since", "i8"),
    ("t_ready", "i8"),
    ("t_alu", "i8"),
    ("t_mem", "i8"),
    ("t_barrier", "i8"),
    ("last_issue", "i8"),
    ("cta_seq", "i8"),
    ("warp_idx", "i2"),
    ("sched", "i2"),
)


class WarpColumns:
    """Parallel per-slot columns for one SM's warps."""

    __slots__ = ("state", "pc", "since", "t_ready", "t_alu", "t_mem",
                 "t_barrier", "last_issue", "entry_key", "ops", "lat",
                 "lines", "warps", "ctas", "sched", "age", "baws_base")

    def __init__(self) -> None:
        #: WarpState as a plain int (READY=0 .. DONE=4).
        self.state: list[int] = []
        self.pc: list[int] = []
        self.since: list[int] = []
        self.t_ready: list[int] = []
        self.t_alu: list[int] = []
        self.t_mem: list[int] = []
        self.t_barrier: list[int] = []
        self.last_issue: list[int] = []
        #: Key of the slot's most recent heap push (staleness check).
        self.entry_key: list[int] = []
        #: Encoded program: ``ops`` packs the Op codes into ``bytes`` (one
        #: byte per instruction — a tight, cache-friendly int sequence),
        #: ``lat`` / ``lines`` carry the latency and coalesced-line tuples.
        self.ops: list[bytes] = []
        self.lat: list[tuple[int, ...]] = []
        self.lines: list[tuple[tuple[int, ...], ...]] = []
        #: The warp/CTA objects behind each slot (synced at CTA release).
        self.warps: list["Warp"] = []
        self.ctas: list["CTA"] = []
        #: Issue-slot (scheduler) index the warp is pinned to.
        self.sched: list[int] = []
        #: Packed age key ``cta.seq << IDX_BITS | warp.idx``.
        self.age: list[int] = []
        #: Precomputed BAWS key base ``block_seq << (LI+AGE) | age``.
        self.baws_base: list[int] = []

    def __len__(self) -> int:
        return len(self.state)

    def add(self, warp: "Warp", cta: "CTA", *, now: int, sched: int,
            age: int, baws_base: int, ops: bytes,
            lat: tuple[int, ...],
            lines: tuple[tuple[int, ...], ...]) -> int:
        """Register a dispatched warp; returns its slot id."""
        slot = len(self.state)
        self.state.append(0)
        self.pc.append(0)
        self.since.append(now)
        self.t_ready.append(0)
        self.t_alu.append(0)
        self.t_mem.append(0)
        self.t_barrier.append(0)
        self.last_issue.append(-1)
        self.entry_key.append(-1)
        self.ops.append(ops)
        self.lat.append(lat)
        self.lines.append(lines)
        self.warps.append(warp)
        self.ctas.append(cta)
        self.sched.append(sched)
        self.age.append(age)
        self.baws_base.append(baws_base)
        return slot

    def sync_warp(self, slot: int) -> "Warp":
        """Write a slot's columns back into its ``Warp`` object."""
        warp = self.warps[slot]
        warp.state = _warp_mod.WarpState(self.state[slot])
        warp.pc = self.pc[slot]
        warp.state_since = self.since[slot]
        warp.last_issue = self.last_issue[slot]
        warp.t_ready = self.t_ready[slot]
        warp.t_alu = self.t_alu[slot]
        warp.t_mem = self.t_mem[slot]
        warp.t_barrier = self.t_barrier[slot]
        return warp

    def snapshot(self):
        """The columns as a numpy structured array (one record per slot).

        Analysis-facing: lets tooling slice warp state column-wise
        (``table["t_mem"].sum()``, ready masks via ``table["state"] == 0``)
        without walking Python objects.  Never used on the hot path.
        """
        numpy = ensure_numpy()
        table = numpy.zeros(len(self.state), dtype=list(SNAPSHOT_FIELDS))
        table["slot"] = numpy.arange(len(self.state))
        table["state"] = self.state
        table["pc"] = self.pc
        table["state_since"] = self.since
        table["t_ready"] = self.t_ready
        table["t_alu"] = self.t_alu
        table["t_mem"] = self.t_mem
        table["t_barrier"] = self.t_barrier
        table["last_issue"] = self.last_issue
        table["cta_seq"] = [cta.seq for cta in self.ctas]
        table["warp_idx"] = [warp.idx for warp in self.warps]
        table["sched"] = self.sched
        return table
