"""``VectorSM`` — the SM hot path over warp columns.

Subclasses :class:`repro.sim.sm.SM` so every *cold* path (resource
accounting, ``can_accept``/``free_cta_capacity``, the store-coalescing
window, prefetch, telemetry snapshot assembly) is inherited unchanged, and
overrides exactly the per-cycle machinery:

* ``dispatch``    — builds warp columns straight from the kernel's column
  traces (:meth:`repro.sim.kernel.Kernel.build_warp_columns`), never
  materialising ``Instruction`` objects;
* ``tick``        — int-heap picks + column-based issue, fully inlined
  (pick, issue and ALU-wake scheduling are one bytecode stream — the
  per-warp virtual dispatch of the object core is the cost this backend
  exists to remove);
* ``_ldst_tick``  — same L1/queue walk, but the request's ``warp`` field
  carries the *slot id* (the memory subsystem treats it opaquely) and
  hit-completion wakeups go through the batched wake calendar;
* ``mem_response``— fills wake slots directly, no object hop;
* ``warp_state_counts`` / ``resident_warp_states`` — column reads for the
  telemetry probes and the DynCTA sampler.

Parity invariants this file preserves (vs. the object core):

* Issue order: each scheduler examines candidates in exactly the object
  heap's priority order (the packed-int keys order identically, see
  :mod:`.sched`), with the same greedy-pointer and SCAN_LIMIT semantics.
* Wake attribution: a wakeup adds ``now - state_since`` to the same
  ``t_*`` bucket at the same ``now`` the object core's event callback
  would have used (the loop's current cycle, not the scheduled cycle —
  ``EventQueue.run_due`` passes the loop clock).
* Within-cycle ordering between ALU-calendar wakes and memory-event wakes
  is immaterial: both only flip disjoint warps to READY, increment
  ``num_ready`` and clear ``gate_blocked``; no same-cycle code observes
  the intermediate interleaving before the issue stage runs.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Callable

from ...mem.cache import Access
from ..config import GPUConfig
from ..cta import CTA
from ..sm import PREFETCH, SM
from ..warp import MemRequest, Warp
from . import VectorBackendError
from .columns import WarpColumns
from .sched import (AGE_BITS, GREEDY_KINDS, IDX_BITS, LI_BITS, MAX_CTA_SEQ,
                    MAX_SLOTS, MAX_WARP_IDX, SCAN_LIMIT, SLOT_BITS,
                    SLOT_MASK, VecScheduler)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..gpu import KernelRun
    from .gpu import VectorGPU

#: Vector warps never walk an Instruction list — the columns carry the
#: whole trace — so the ``Warp`` objects (kept for completion-time stats
#: sync and policy hooks) get an empty program.  Any accidental read of
#: ``warp.program[...]`` on this backend fails loudly instead of lying.
_NO_PROGRAM: tuple = ()


class VectorSM(SM):
    __slots__ = ("cols", "_state", "_pc", "_since", "_t_ready", "_t_alu",
                 "_t_mem", "_t_barrier", "_li", "_ekey", "_ops", "_lat",
                 "_lines", "_cta_of", "_sched_of", "_age", "_baws",
                 "_cta_slots", "_vsched", "_kind", "_greedy", "_cal",
                 "_calheap", "_wake_base")

    def __init__(self, gpu: "VectorGPU", sm_id: int, config: GPUConfig,
                 scheduler_factory: Callable[[], object], kind: int,
                 cal: dict, calheap: list) -> None:
        super().__init__(gpu, sm_id, config, scheduler_factory)
        self.cols = WarpColumns()
        cols = self.cols
        # Aliases of the column lists (same objects, mutated in place):
        # the hot path reads them as one attribute hop instead of two.
        self._state = cols.state
        self._pc = cols.pc
        self._since = cols.since
        self._t_ready = cols.t_ready
        self._t_alu = cols.t_alu
        self._t_mem = cols.t_mem
        self._t_barrier = cols.t_barrier
        self._li = cols.last_issue
        self._ekey = cols.entry_key
        self._ops = cols.ops
        self._lat = cols.lat
        self._lines = cols.lines
        self._cta_of = cols.ctas
        self._sched_of = cols.sched
        self._age = cols.age
        self._baws = cols.baws_base
        #: cta.seq -> list of slot ids (insertion = warp index order).
        self._cta_slots: dict[int, list[int]] = {}
        self._vsched = [VecScheduler() for _ in range(config.issue_width)]
        self._kind = kind
        self._greedy = kind in GREEDY_KINDS
        # Shared GPU-level wake calendar: {cycle: [packed entries]} plus a
        # min-heap of pending cycles.  Entry layout:
        #   sm_id << (SLOT_BITS + 1) | slot << 1 | is_mem_wake
        self._cal = cal
        self._calheap = calheap
        self._wake_base = sm_id << (SLOT_BITS + 1)

    # ------------------------------------------------------------------ #
    # Dispatch
    def dispatch(self, run: "KernelRun", cta_id: int, seq: int,
                 block_seq: int, now: int) -> CTA:
        kernel = run.kernel
        if seq >= MAX_CTA_SEQ:
            raise VectorBackendError(
                f"CTA seq {seq} exceeds the vector backend's packed-key "
                f"capacity ({MAX_CTA_SEQ}); use --backend object")
        if kernel.warps_per_cta > MAX_WARP_IDX:
            raise VectorBackendError(
                f"{kernel.warps_per_cta} warps/CTA exceeds the vector "
                f"backend's packed-key capacity ({MAX_WARP_IDX}); "
                f"use --backend object")
        if len(self._state) + kernel.warps_per_cta > MAX_SLOTS:
            raise VectorBackendError(
                f"SM {self.sm_id} exceeds {MAX_SLOTS} lifetime warp slots; "
                f"use --backend object")
        cta = CTA(run, cta_id, seq, block_seq, self, now)
        cols = self.cols
        vsched = self._vsched
        nsched = len(vsched)
        baws_high = block_seq << (LI_BITS + AGE_BITS)
        slots = []
        for warp_idx in range(kernel.warps_per_cta):
            trace = kernel.build_warp_columns(cta_id, warp_idx)
            warp = Warp(cta, warp_idx, _NO_PROGRAM)
            warp.state_since = now
            sched_idx = self._sched_rr
            self._sched_rr = (sched_idx + 1) % nsched
            age = (seq << IDX_BITS) | warp_idx
            slot = cols.add(
                warp, cta, now=now, sched=sched_idx, age=age,
                baws_base=baws_high | age,
                ops=trace.ops, lat=trace.lat, lines=trace.lines)
            self._push(vsched[sched_idx], slot)
            self.num_ready += 1
            cta.warps.append(warp)
            slots.append(slot)
        self._cta_slots[seq] = slots
        self.gate_blocked = False
        self.active_ctas.append(cta)
        self.used_slots += 1
        self.used_warps += kernel.warps_per_cta
        self.used_regs += run.regs_per_cta
        self.used_shmem += kernel.shmem_per_cta
        self.kernel_active[run.kernel_id] += 1
        return cta

    # ------------------------------------------------------------------ #
    # Scheduler primitives (cold-path form; the tick inlines this logic)
    def _push(self, sched: VecScheduler, slot: int) -> None:
        """``on_ready``: (re-)insert a slot into its scheduler heap."""
        if slot == sched.greedy_slot:
            # The greedy pointer guarantees this slot is picked while
            # READY; a heap entry would only ever be skipped as stale.
            return
        kind = self._kind
        if kind == 1:    # gto: oldest first
            key = self._age[slot]
        elif kind == 0:  # lrr: least recently issued first
            key = ((self._li[slot] + 1) << AGE_BITS) | self._age[slot]
        else:            # baws: oldest block, then least recently issued
            key = self._baws[slot] + ((self._li[slot] + 1) << AGE_BITS)
        self._ekey[slot] = key
        heappush(sched.heap, (key << SLOT_BITS) | slot)

    # ------------------------------------------------------------------ #
    # Per-cycle behaviour
    def tick(self, now: int) -> bool:
        active = False
        if self.ldst and not self.ldst_blocked:
            self._ldst_tick(now)
            active = True
        if self.num_ready and not self.gate_blocked:
            state = self._state
            ops = self._ops
            pcs = self._pc
            ekey = self._ekey
            since = self._since
            t_ready = self._t_ready
            lat = self._lat
            lines = self._lines
            cta_of = self._cta_of
            li = self._li
            cal = self._cal
            calheap = self._calheap
            wake_base = self._wake_base
            ldst = self.ldst
            depth = self._ldst_depth
            greedy = self._greedy
            push = heappush
            pop = heappop
            issued = 0
            for sched in self._vsched:
                # ---- pick (the object scheduler's exact priority walk) --
                qfull = len(ldst) >= depth
                slot = -1
                if greedy:
                    g = sched.greedy_slot
                    if g >= 0 and state[g] == 0:
                        if not qfull:
                            slot = g
                        else:
                            op = ops[g][pcs[g]]
                            if op < 2 or op > 3:  # not LD/ST
                                slot = g
                            else:
                                # Greedy warp blocked at issue: make it
                                # findable again, let age order decide.
                                sched.greedy_slot = -1
                                self._push(sched, g)
                if slot < 0:
                    heap = sched.heap
                    if qfull:
                        skipped = None
                        scans = 0
                        while heap:
                            entry = pop(heap)
                            s = entry & SLOT_MASK
                            if state[s] != 0 or \
                                    (entry >> SLOT_BITS) != ekey[s]:
                                continue  # stale entry
                            op = ops[s][pcs[s]]
                            if op < 2 or op > 3:
                                slot = s
                                break
                            if skipped is None:
                                skipped = [entry]
                            else:
                                skipped.append(entry)
                            scans += 1
                            if scans >= SCAN_LIMIT:
                                break
                        if skipped is not None:
                            for entry in skipped:
                                push(heap, entry)
                    else:
                        while heap:
                            entry = pop(heap)
                            s = entry & SLOT_MASK
                            if state[s] == 0 and \
                                    (entry >> SLOT_BITS) == ekey[s]:
                                slot = s
                                break
                    if greedy:
                        sched.greedy_slot = slot
                if slot < 0:
                    continue
                # ---- issue ------------------------------------------- #
                issued += 1
                pc = pcs[slot]
                op = ops[slot][pc]
                t_ready[slot] += now - since[slot]    # leaving READY
                since[slot] = now
                pcs[slot] = pc + 1
                cta = cta_of[slot]
                cta.issued_instrs += 1
                # Incremented *before* the op branch: completion hooks
                # (the LCS monitor) read sm.issued mid-tick.
                self.issued += 1
                li[slot] = now                        # on_issue
                self.num_ready -= 1
                if op < 2:       # ALU / SHARED
                    state[slot] = 1
                    at = now + lat[slot][pc]
                    bucket = cal.get(at)
                    if bucket is None:
                        cal[at] = [wake_base | (slot << 1)]
                        push(calheap, at)
                    else:
                        bucket.append(wake_base | (slot << 1))
                elif op == 2:    # LD_GLOBAL
                    state[slot] = 2
                    ldst.append(
                        MemRequest(slot, lines[slot][pc], is_store=False))
                elif op == 3:    # ST_GLOBAL
                    state[slot] = 2
                    ldst.append(
                        MemRequest(slot, lines[slot][pc], is_store=True))
                elif op == 4:    # BARRIER
                    cta.issued_barriers += 1
                    state[slot] = 3
                    cta.barrier_arrived += 1
                    if cta.barrier_arrived >= \
                            len(cta.warps) - cta.done_warps:
                        self._release_barrier_vec(cta, now)
                else:            # EXIT
                    state[slot] = 4
                    cta.done_warps += 1
                    if cta.done_warps == len(cta.warps):
                        self._release_vec(cta, now)
                    elif cta.barrier_arrived and \
                            cta.barrier_arrived >= \
                            len(cta.warps) - cta.done_warps:
                        # Exit satisfied a barrier its siblings wait at
                        # (uneven barrier counts; must not deadlock).
                        self._release_barrier_vec(cta, now)
            if issued:
                active = True
            else:
                self.gate_blocked = True
        return active

    def _schedule_wake(self, at: int, entry: int) -> None:
        bucket = self._cal.get(at)
        if bucket is None:
            self._cal[at] = [entry]
            heappush(self._calheap, at)
        else:
            bucket.append(entry)

    # ------------------------------------------------------------------ #
    # Wakeups / barrier release
    def _wake_alu_slot(self, now: int, slot: int) -> None:
        self._t_alu[slot] += now - self._since[slot]
        self._since[slot] = now
        self._state[slot] = 0
        sched = self._vsched[self._sched_of[slot]]
        if slot != sched.greedy_slot:
            kind = self._kind
            if kind == 1:
                key = self._age[slot]
            elif kind == 0:
                key = ((self._li[slot] + 1) << AGE_BITS) | self._age[slot]
            else:
                key = self._baws[slot] + ((self._li[slot] + 1) << AGE_BITS)
            self._ekey[slot] = key
            heappush(sched.heap, (key << SLOT_BITS) | slot)
        self.num_ready += 1
        self.gate_blocked = False

    def _wake_mem_slot(self, now: int, slot: int) -> None:
        self._t_mem[slot] += now - self._since[slot]
        self._since[slot] = now
        self._state[slot] = 0
        sched = self._vsched[self._sched_of[slot]]
        if slot != sched.greedy_slot:
            kind = self._kind
            if kind == 1:
                key = self._age[slot]
            elif kind == 0:
                key = ((self._li[slot] + 1) << AGE_BITS) | self._age[slot]
            else:
                key = self._baws[slot] + ((self._li[slot] + 1) << AGE_BITS)
            self._ekey[slot] = key
            heappush(sched.heap, (key << SLOT_BITS) | slot)
        self.num_ready += 1
        self.gate_blocked = False

    def _release_barrier_vec(self, cta: CTA, now: int) -> None:
        cta.barrier_arrived = 0
        state = self._state
        since = self._since
        t_barrier = self._t_barrier
        vsched = self._vsched
        sched_of = self._sched_of
        woke = 0
        for slot in self._cta_slots[cta.seq]:
            if state[slot] == 3:
                t_barrier[slot] += now - since[slot]
                since[slot] = now
                state[slot] = 0
                self._push(vsched[sched_of[slot]], slot)
                woke += 1
        self.num_ready += woke
        self.gate_blocked = False

    def _release_vec(self, cta: CTA, now: int) -> None:
        # Results and policy hooks read the completing CTA's warps
        # (t_* stall accounting, final pc/state): write the columns back.
        cols = self.cols
        for slot in self._cta_slots.pop(cta.seq):
            cols.sync_warp(slot)
        self._release(cta, now)

    # ------------------------------------------------------------------ #
    # LD/ST unit
    def _ldst_tick(self, now: int) -> None:
        l1 = self.l1
        ldst = self.ldst
        request = ldst[0]
        idx = request.idx
        req_lines = request.lines
        line = req_lines[idx]
        if request.is_store:
            l1.write_probe(line)
            if self._store_coalescing and self._store_absorbed(line):
                l1.stats.stores_coalesced += 1
            else:
                self._mem.store(self, line, now)
        else:
            outcome = l1.lookup_load(line, request)
            if outcome is Access.STALL:
                self.ldst_blocked = True
                return
            if outcome is Access.MISS:
                request.outstanding += 1
                self._mem.load(self, line, now)
                if self._prefetch_next:
                    self._maybe_prefetch(line + 1, now)
            elif outcome is Access.MERGED:
                request.outstanding += 1
            # Access.HIT needs no further action.
        request.idx = idx + 1
        if idx + 1 == len(req_lines):
            ldst.popleft()
            self.gate_blocked = False   # a queue slot opened up
            request.accepted = True
            if request.complete:
                # All transactions hit (or it was a store): the warp
                # resumes after the L1 hit latency — via the wake
                # calendar instead of a per-request event.
                self._schedule_wake(
                    now + self._l1_hit_latency,
                    self._wake_base | (request.warp << 1) | 1)

    def mem_response(self, now: int, line: int) -> None:
        self.ldst_blocked = False
        for request in self.l1.fill(line):
            if request is PREFETCH:
                continue
            request.outstanding -= 1
            if request.complete:
                self._wake_mem_slot(now, request.warp)

    # ------------------------------------------------------------------ #
    # Read-only views (telemetry probes, DynCTA sampling)
    def warp_state_counts(self) -> tuple[int, int, int, int]:
        ready = alu = mem = barrier = 0
        state = self._state
        cta_slots = self._cta_slots
        for cta in self.active_ctas:
            for slot in cta_slots[cta.seq]:
                value = state[slot]
                if value == 0:
                    ready += 1
                elif value == 1:
                    alu += 1
                elif value == 2:
                    mem += 1
                elif value == 3:
                    barrier += 1
        return ready, alu, mem, barrier

    def resident_warp_states(self) -> list[int]:
        state = self._state
        cta_slots = self._cta_slots
        return [state[slot]
                for cta in self.active_ctas
                for slot in cta_slots[cta.seq]
                if state[slot] != 4]
