"""``repro.sim.vector`` — the array-oriented (vector) simulator backend.

The object core (:mod:`repro.sim.gpu` / :mod:`repro.sim.sm`) advances the
machine one Python object at a time: every warp is a ``Warp`` instance,
every scheduler heap entry a ``(key, epoch, Warp)`` tuple, every ALU
completion its own ``EventQueue`` callback.  That representation is the
*reference*: easy to read, easy to instrument, and the thing every other
layer (refmodel, goldens, fuzzer) validates against.

This package re-implements the hot cycle loop in struct-of-arrays form:

* **Columns, not objects** (:mod:`.columns`) — warp state lives in parallel
  per-SM columns (``state``/``pc``/``state_since``/``t_*``/``last_issue``)
  indexed by a dense *slot* id, with a numpy structured-array view for
  analysis tooling.  ``Warp`` objects still exist (policies and results
  read them at CTA completion) but are written back only at sync points.
* **Int-packed ready heaps** (:mod:`.sched`) — the per-scheduler lazy
  heaps hold single machine integers encoding ``(priority key, slot)``
  instead of tuples holding Python objects, and staleness is a column
  compare instead of an epoch attribute read.
* **A batched wake calendar** (:mod:`.core` / :mod:`.gpu`) — ALU/SHARED
  completions and L1-hit load wakeups are grouped per wake cycle in one
  ``{cycle: [packed sm/slot]}`` calendar drained at the loop top, instead
  of one ``EventQueue`` entry per instruction.  The event queue keeps only
  genuine memory-system traffic, which shrinks it by orders of magnitude
  on compute-heavy kernels.

The contract is **bitwise parity**: for every supported configuration the
vector backend must produce a ``RunResult`` identical to the object core —
stats, timeline and telemetry.  ``repro-verify backend`` and the fuzzer's
``backend`` invariant enforce it; see docs/PERFORMANCE.md ("Backends").

Scope: the vector core supports the ``lrr``/``gto``/``baws`` warp
schedulers (all CTA policies work — they sit above the SM and are shared).
``two-level``/``swl`` keep per-warp membership state with object identity
semantics and stay on the object core; :func:`vector_supported` reports
the split so callers can route.
"""

from __future__ import annotations

from ..gpu import SimulationError

#: Warp schedulers the vector core reproduces bitwise.  ``two-level`` and
#: ``swl`` mutate per-warp membership sets during ``pick`` (object-identity
#: semantics); they stay on the object reference core.
VECTOR_WARP_SCHEDULERS = frozenset({"lrr", "gto", "baws"})


class VectorBackendError(SimulationError):
    """The vector backend cannot run this configuration (unsupported
    scheduler, missing numpy, or a packed-key capacity limit)."""


def ensure_numpy():
    """Import and return numpy, or raise an actionable error.

    The vector backend's analysis views (:meth:`WarpColumns.snapshot`) are
    numpy structured arrays, so the backend declares numpy as a hard
    dependency up front — at ``VectorGPU`` construction, not at first use —
    and with a remediation hint instead of a bare ImportError traceback.
    """
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise VectorBackendError(
            "the vector backend requires numpy, which is not installed; "
            "install numpy or re-run with --backend object"
        ) from exc
    return numpy


def vector_supported(warp: object) -> bool:
    """True if the vector backend supports this warp-scheduler descriptor.

    Accepts the harness' warp descriptors: a plain name string or a
    ``("swl", limit)`` style tuple (tuples are always object-only).
    """
    return isinstance(warp, str) and warp in VECTOR_WARP_SCHEDULERS


from .gpu import VectorGPU  # noqa: E402  (circular-free; re-export)

__all__ = [
    "VECTOR_WARP_SCHEDULERS",
    "VectorBackendError",
    "VectorGPU",
    "ensure_numpy",
    "vector_supported",
]
