"""``VectorGPU`` — the run loop over the vector core.

Semantically identical to :meth:`repro.sim.gpu.GPU._loop`, with the
per-iteration fixed costs paid only when due:

* **completion counter** — the object loop evaluates
  ``cta_scheduler.done`` (a generator over every run) each iteration; the
  vector loop counts completions in :meth:`on_cta_complete` and compares
  two ints.  The policy's own ``done`` is asserted once at loop exit.
* **fill gate** — ``fill()`` is called only when the scheduler's
  ``_need_fill`` flag is up (the flag is the first thing ``fill`` itself
  checks, so gating on it cannot change behaviour; no policy overrides
  ``fill``).
* **event gate** — ``events.run_due`` runs only when the queue's head is
  due, via a direct heap peek.
* **inline wake drain** — the batched ALU/L1-hit wake calendar is drained
  at the loop top (before ``run_due``), and the fast-forward jump targets
  the earlier of the next event-queue entry and the next calendar cycle.

Both orderings of calendar-vs-event processing at the same cycle are
equivalent (wakes and memory events touch disjoint warps and only ever
move them *into* READY), and the jump rule preserves the fast-forward
invariant: nothing can change state strictly before the earliest pending
wake or event.
"""

from __future__ import annotations

from heapq import heappop
from time import monotonic as _monotonic
from typing import TYPE_CHECKING, Callable

from ...core.warp_schedulers import WarpScheduler, warp_scheduler_factory
from ..config import GPUConfig
from ..cta import CTA
from ..gpu import GPU, SimulationDeadlock, SimulationError, SimulationTimeout
from ..sm import SM
from . import VECTOR_WARP_SCHEDULERS, VectorBackendError, ensure_numpy
from .core import VectorSM
from .sched import KIND_BY_NAME, MAX_LAST_ISSUE, SLOT_BITS, SLOT_MASK

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...core.cta_schedulers import CTAScheduler
    from ...telemetry.hub import TelemetryHub

_WAKE_SM_SHIFT = SLOT_BITS + 1


class VectorGPU(GPU):
    """Drop-in :class:`GPU` with the array-oriented hot path.

    Accepts only the warp schedulers the vector core reproduces bitwise
    (:data:`VECTOR_WARP_SCHEDULERS`); everything else — configs, CTA
    policies, telemetry hubs — is shared with the object core.
    """

    def __init__(self, config: GPUConfig | None = None,
                 warp_scheduler: str | Callable[[], WarpScheduler] = "gto",
                 telemetry: "TelemetryHub | None" = None) -> None:
        ensure_numpy()
        if not isinstance(warp_scheduler, str):
            raise VectorBackendError(
                "the vector backend needs a named warp scheduler "
                f"({', '.join(sorted(VECTOR_WARP_SCHEDULERS))}), not a "
                "custom factory; use backend='object'")
        if warp_scheduler not in VECTOR_WARP_SCHEDULERS:
            raise VectorBackendError(
                f"warp scheduler {warp_scheduler!r} is not supported by "
                f"the vector backend (supported: "
                f"{', '.join(sorted(VECTOR_WARP_SCHEDULERS))}); "
                "use backend='object'")
        super().__init__(config=config, warp_scheduler=warp_scheduler,
                         telemetry=telemetry)
        if self.config.max_cycles > MAX_LAST_ISSUE:
            raise VectorBackendError(
                f"max_cycles={self.config.max_cycles} exceeds the vector "
                f"backend's packed-key range ({MAX_LAST_ISSUE}); "
                "use backend='object'")
        #: Batched wake calendar: cycle -> [packed (sm, slot, kind)].
        self._wake_cal: dict[int, list[int]] = {}
        self._wake_heap: list[int] = []
        self._ctas_done = 0
        kind = KIND_BY_NAME[warp_scheduler]
        factory = warp_scheduler_factory(warp_scheduler)
        # The probes read gpu.sms dynamically, so swapping in the vector
        # SMs after the base constructor is safe.
        self.sms = [VectorSM(self, sm_id, self.config, factory, kind,
                             self._wake_cal, self._wake_heap)
                    for sm_id in range(self.config.num_sms)]

    # ------------------------------------------------------------------ #
    def on_cta_complete(self, sm: SM, cta: CTA, now: int) -> None:
        self._ctas_done += 1
        super().on_cta_complete(sm, cta, now)

    def run(self, *args, **kwargs) -> None:
        super().run(*args, **kwargs)
        # Every CTA completed and the event queue drained; a leftover wake
        # would mean a warp is still mid-instruction — impossible unless
        # the core and calendar disagree.  Cheap self-check, loud failure.
        if self._wake_heap:
            raise SimulationError(
                "vector backend: wake calendar not empty after run "
                f"(next at cycle {self._wake_heap[0]})")

    def _loop(self, cta_scheduler: "CTAScheduler", cycle_accurate: bool,
              deadline: float | None = None, service=None) -> int:
        events = self.events
        run_due = events.run_due
        ev_heap = events._heap
        fill = cta_scheduler.fill
        sms = self.sms
        cal_pop = self._wake_cal.pop
        calheap = self._wake_heap
        max_cycles = self.config.max_cycles
        cycle = self.cycle
        total_ctas = sum(run.kernel.num_ctas for run in self.runs)
        service_at = service.next_cycle if service is not None else None
        while self._ctas_done < total_ctas:
            if deadline is not None and _monotonic() >= deadline:
                self.cycle = cycle
                saved = (service.on_timeout(self, cycle)
                         if service is not None else None)
                raise SimulationTimeout(
                    f"wall-clock timeout at cycle {cycle}; "
                    f"runs={self.runs!r}",
                    cycle=cycle, max_cycles=max_cycles, kind="wall",
                    checkpoint_cycle=saved)
            if service_at is not None and cycle >= service_at:
                self.cycle = cycle
                service_at = service.service(self, cycle)
            if calheap and calheap[0] <= cycle:
                while calheap and calheap[0] <= cycle:
                    for entry in cal_pop(heappop(calheap)):
                        sm = sms[entry >> _WAKE_SM_SHIFT]
                        if entry & 1:
                            sm._wake_mem_slot(cycle,
                                              (entry >> 1) & SLOT_MASK)
                        else:
                            sm._wake_alu_slot(cycle,
                                              (entry >> 1) & SLOT_MASK)
            if ev_heap and ev_heap[0][0] <= cycle:
                run_due(cycle)
            if cta_scheduler._need_fill:
                fill(cycle)
            active = False
            for sm in sms:
                if ((sm.ldst and not sm.ldst_blocked)
                        or (sm.num_ready and not sm.gate_blocked)):
                    if sm.tick(cycle):
                        active = True
            if active:
                cycle += 1
            else:
                if ev_heap:
                    next_event = ev_heap[0][0]
                    if calheap and calheap[0] < next_event:
                        next_event = calheap[0]
                elif calheap:
                    next_event = calheap[0]
                else:
                    self.cycle = cycle
                    raise SimulationDeadlock(
                        f"cycle {cycle}: no progress possible; "
                        f"runs={self.runs!r}")
                if cycle_accurate:
                    cycle += 1
                else:
                    cycle = max(cycle + 1, next_event)
            if cycle > max_cycles:
                self.cycle = cycle
                raise SimulationTimeout(
                    f"exceeded max_cycles={max_cycles}; runs={self.runs!r}",
                    cycle=cycle, max_cycles=max_cycles, kind="max-cycles",
                    checkpoint_cycle=(service.checkpoint_cycle
                                      if service is not None else None))
        if not cta_scheduler.done:
            raise SimulationError(
                "vector backend: completion counter reached "
                f"{self._ctas_done}/{total_ctas} but the CTA scheduler "
                "disagrees — counter drift")
        return cycle

    def _loop_windowed(self, cta_scheduler: "CTAScheduler",
                       cycle_accurate: bool, hub: "TelemetryHub",
                       deadline: float | None = None, service=None) -> int:
        events = self.events
        run_due = events.run_due
        ev_heap = events._heap
        fill = cta_scheduler.fill
        sms = self.sms
        cal_pop = self._wake_cal.pop
        calheap = self._wake_heap
        max_cycles = self.config.max_cycles
        cycle = self.cycle
        window = hub.window
        boundary = (cycle // window + 1) * window
        total_ctas = sum(run.kernel.num_ctas for run in self.runs)
        service_at = service.next_cycle if service is not None else None
        while self._ctas_done < total_ctas:
            while cycle >= boundary:
                hub.close_window(boundary)
                boundary += window
            if deadline is not None and _monotonic() >= deadline:
                self.cycle = cycle
                saved = (service.on_timeout(self, cycle)
                         if service is not None else None)
                raise SimulationTimeout(
                    f"wall-clock timeout at cycle {cycle}; "
                    f"runs={self.runs!r}",
                    cycle=cycle, max_cycles=max_cycles, kind="wall",
                    checkpoint_cycle=saved)
            if service_at is not None and cycle >= service_at:
                self.cycle = cycle
                service_at = service.service(self, cycle)
            if calheap and calheap[0] <= cycle:
                while calheap and calheap[0] <= cycle:
                    for entry in cal_pop(heappop(calheap)):
                        sm = sms[entry >> _WAKE_SM_SHIFT]
                        if entry & 1:
                            sm._wake_mem_slot(cycle,
                                              (entry >> 1) & SLOT_MASK)
                        else:
                            sm._wake_alu_slot(cycle,
                                              (entry >> 1) & SLOT_MASK)
            if ev_heap and ev_heap[0][0] <= cycle:
                run_due(cycle)
            if cta_scheduler._need_fill:
                fill(cycle)
            active = False
            for sm in sms:
                if ((sm.ldst and not sm.ldst_blocked)
                        or (sm.num_ready and not sm.gate_blocked)):
                    if sm.tick(cycle):
                        active = True
            if active:
                cycle += 1
            else:
                if ev_heap:
                    next_event = ev_heap[0][0]
                    if calheap and calheap[0] < next_event:
                        next_event = calheap[0]
                elif calheap:
                    next_event = calheap[0]
                else:
                    self.cycle = cycle
                    raise SimulationDeadlock(
                        f"cycle {cycle}: no progress possible; "
                        f"runs={self.runs!r}")
                if cycle_accurate:
                    cycle += 1
                else:
                    cycle = max(cycle + 1, next_event)
            if cycle > max_cycles:
                self.cycle = cycle
                raise SimulationTimeout(
                    f"exceeded max_cycles={max_cycles}; runs={self.runs!r}",
                    cycle=cycle, max_cycles=max_cycles, kind="max-cycles",
                    checkpoint_cycle=(service.checkpoint_cycle
                                      if service is not None else None))
        if not cta_scheduler.done:
            raise SimulationError(
                "vector backend: completion counter reached "
                f"{self._ctas_done}/{total_ctas} but the CTA scheduler "
                "disagrees — counter drift")
        return cycle
