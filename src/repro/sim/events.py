"""Time-ordered event queue for the memory hierarchy.

The simulator is cycle-driven on the core side (warp schedulers and LD/ST
units tick every cycle) and event-driven on the memory side: interconnect
traversals, L2 lookups and DRAM completions are scheduled as future events.
Events at the same cycle fire in insertion order (FIFO), which keeps runs
deterministic.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable


class EventQueue:
    """A min-heap of ``(time, seq, callback, arg)`` entries."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callable[[int, Any], None], Any]] = []
        self._seq = count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, time: int, callback: Callable[[int, Any], None], arg: Any = None) -> None:
        """Schedule ``callback(time, arg)`` to fire at ``time``."""
        heapq.heappush(self._heap, (time, next(self._seq), callback, arg))

    def next_time(self) -> int | None:
        """Cycle of the earliest pending event, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def run_due(self, now: int) -> int:
        """Fire every event scheduled at or before ``now``; return the count."""
        fired = 0
        heap = self._heap
        heappop = heapq.heappop
        while heap and heap[0][0] <= now:
            _, _, callback, arg = heappop(heap)
            callback(now, arg)
            fired += 1
        return fired
