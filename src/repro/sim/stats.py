"""Statistics containers shared across the simulator.

Component-local counters (`CacheStats`, `DRAMStats`) are owned by the
hardware models and mutated in the hot path; `KernelStats` and `RunResult`
are assembled once at the end of a run by ``repro.harness.runner``.

Every container serialises losslessly through ``to_dict``/``from_dict``
(plain JSON-compatible values), which is what the persistent result cache
(:mod:`repro.harness.cache`) and the parallel engine rely on: a result that
round-trips through disk must compare equal, field for field, to the run
that produced it.

Meta encoding contract
----------------------
``RunResult.meta`` is an open dict, but every value stored in it must be
either JSON-native (str/int/float/bool/None, lists and dicts thereof) or
one of the rich types below, which ``_encode_meta`` wraps in a
single-entry marker dict so ``_decode_meta`` can reconstruct them:

====================  ============================  =========================
meta key              value type                    marker key
====================  ============================  =========================
``lcs_decision``      ``repro.core.lcs.LCSDecision``  ``__lcs_decision__``
``timeline``          ``repro.telemetry.TimelineResult``  ``__timeline__``
====================  ============================  =========================

``meta["trace"]`` (the structured event trace) is deliberately a plain
list of ``{"kind", "cycle", "payload"}`` dicts and needs no marker.
Rich types are imported lazily inside the codec so ``repro.sim`` stays
free of core/telemetry-layer dependencies.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any


@dataclass
class CacheStats:
    """Counters for one cache (or an aggregate of several)."""

    accesses: int = 0          # load lookups
    hits: int = 0
    misses: int = 0            # misses that allocated a new MSHR entry
    merges: int = 0            # misses merged into a pending MSHR entry
    mshr_stalls: int = 0       # cycles an access was rejected (MSHR/merge full)
    write_accesses: int = 0
    write_hits: int = 0
    fills: int = 0
    evictions: int = 0
    prefetches: int = 0        # prefetch requests issued (L1 only)
    stores_coalesced: int = 0  # stores absorbed by the write-combining buffer

    @property
    def miss_rate(self) -> float:
        """Load miss rate counting merged misses as misses (demand view)."""
        if not self.accesses:
            return 0.0
        return (self.misses + self.merges) / self.accesses

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate if self.accesses else 0.0

    def add(self, other: "CacheStats") -> None:
        """Accumulate another cache's counters into this one."""
        self.accesses += other.accesses
        self.hits += other.hits
        self.misses += other.misses
        self.merges += other.merges
        self.mshr_stalls += other.mshr_stalls
        self.write_accesses += other.write_accesses
        self.write_hits += other.write_hits
        self.fills += other.fills
        self.evictions += other.evictions
        self.prefetches += other.prefetches
        self.stores_coalesced += other.stores_coalesced

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CacheStats":
        return cls(**data)


@dataclass
class DRAMStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    bus_busy_cycles: int = 0   # total channel-bus occupancy (all channels)

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DRAMStats":
        return cls(**data)


@dataclass
class KernelStats:
    """Per-kernel outcome of a simulation run."""

    name: str
    kernel_id: int
    num_ctas: int
    instructions: int = 0
    launch_cycle: int = 0      # when the kernel became eligible for dispatch
    first_dispatch_cycle: int | None = None
    finish_cycle: int | None = None
    # Warp-state time integrals, summed over all the kernel's warps:
    # cycles spent ready-but-not-issued, waiting on ALU latency, waiting on
    # memory, and waiting at barriers.
    ready_wait: int = 0
    alu_wait: int = 0
    mem_wait: int = 0
    barrier_wait: int = 0

    @property
    def cycles(self) -> int:
        """Cycles from launch to completion (0 if unfinished)."""
        if self.finish_cycle is None:
            return 0
        return self.finish_cycle - self.launch_cycle

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def stall_breakdown(self) -> dict[str, float]:
        """Fraction of warp-time per wait state (sums to ~1)."""
        total = self.ready_wait + self.alu_wait + self.mem_wait \
            + self.barrier_wait
        if not total:
            return {"ready": 0.0, "alu": 0.0, "mem": 0.0, "barrier": 0.0}
        return {
            "ready": self.ready_wait / total,
            "alu": self.alu_wait / total,
            "mem": self.mem_wait / total,
            "barrier": self.barrier_wait / total,
        }

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "KernelStats":
        return cls(**data)


@dataclass
class RunResult:
    """Everything a simulation run reports back to the harness."""

    cycles: int
    instructions: int
    kernels: dict[str, KernelStats]
    l1: CacheStats
    l2: CacheStats
    dram: DRAMStats
    issued_by_sm: list[int]
    # Per-SM CTA limits in force at the end of the run (LCS decisions show
    # up here; None means "no policy limit beyond occupancy").
    cta_limits: dict[int, int | None] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def kernel(self, name: str) -> KernelStats:
        return self.kernels[name]

    def summary(self) -> str:
        """A short human-readable digest (used by examples)."""
        lines = [
            f"cycles={self.cycles}  instructions={self.instructions}  IPC={self.ipc:.3f}",
            f"L1: accesses={self.l1.accesses} miss_rate={self.l1.miss_rate:.3f} "
            f"mshr_stalls={self.l1.mshr_stalls}",
            f"L2: accesses={self.l2.accesses} miss_rate={self.l2.miss_rate:.3f}",
            f"DRAM: reads={self.dram.reads} writes={self.dram.writes} "
            f"row_hit_rate={self.dram.row_hit_rate:.3f}",
        ]
        for ks in self.kernels.values():
            lines.append(
                f"  kernel {ks.name}: instrs={ks.instructions} cycles={ks.cycles} "
                f"IPC={ks.ipc:.3f}"
            )
            sb = ks.stall_breakdown()
            lines.append(
                f"    stalls: ready={sb['ready']:.2f} alu={sb['alu']:.2f} "
                f"mem={sb['mem']:.2f} barrier={sb['barrier']:.2f}"
            )
        lines.append(self._cta_limits_line())
        return "\n".join(lines)

    def _cta_limits_line(self) -> str:
        """Compact rendering of the per-SM CTA limits in force."""
        if not self.cta_limits:
            return "CTA limits: (none recorded)"
        limits = set(self.cta_limits.values())
        num_sms = len(self.cta_limits)
        if limits == {None}:
            return f"CTA limits: occupancy-bound on all {num_sms} SMs"
        if len(limits) == 1:
            return f"CTA limits: {limits.pop()} CTAs/SM on all {num_sms} SMs"
        parts = []
        for sm_id in sorted(self.cta_limits):
            limit = self.cta_limits[sm_id]
            parts.append(f"SM{sm_id}={'occ' if limit is None else limit}")
        return "CTA limits: " + " ".join(parts)

    # ------------------------------------------------------------------ #
    # serialisation (persistent result cache, worker <-> parent transport)
    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible rendering; inverse of :meth:`from_dict`."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "kernels": {name: ks.to_dict()
                        for name, ks in self.kernels.items()},
            "l1": self.l1.to_dict(),
            "l2": self.l2.to_dict(),
            "dram": self.dram.to_dict(),
            "issued_by_sm": list(self.issued_by_sm),
            "cta_limits": {str(sm_id): limit
                           for sm_id, limit in self.cta_limits.items()},
            "meta": _encode_meta(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunResult":
        return cls(
            cycles=data["cycles"],
            instructions=data["instructions"],
            kernels={name: KernelStats.from_dict(ks)
                     for name, ks in data["kernels"].items()},
            l1=CacheStats.from_dict(data["l1"]),
            l2=CacheStats.from_dict(data["l2"]),
            dram=DRAMStats.from_dict(data["dram"]),
            issued_by_sm=list(data["issued_by_sm"]),
            cta_limits={int(sm_id): limit
                        for sm_id, limit in data["cta_limits"].items()},
            meta=_decode_meta(data["meta"]),
        )


#: Marker keys for values that need reconstruction beyond plain JSON
#: (see the module docstring's meta encoding contract).
_LCS_DECISION_KEY = "__lcs_decision__"
_TIMELINE_KEY = "__timeline__"


def _encode_meta(meta: dict[str, Any]) -> dict[str, Any]:
    encoded: dict[str, Any] = {}
    for key, value in meta.items():
        if key == "lcs_decision" and value is not None:
            encoded[key] = {_LCS_DECISION_KEY: asdict(value)}
        elif key == "timeline" and value is not None:
            encoded[key] = {_TIMELINE_KEY: value.to_dict()}
        else:
            encoded[key] = value
    return encoded


def _decode_meta(meta: dict[str, Any]) -> dict[str, Any]:
    decoded: dict[str, Any] = {}
    for key, value in meta.items():
        if isinstance(value, dict) and _LCS_DECISION_KEY in value:
            # Imported lazily to keep sim free of core-layer dependencies.
            from ..core.lcs import LCSDecision
            payload = dict(value[_LCS_DECISION_KEY])
            payload["issue_counts"] = tuple(payload["issue_counts"])
            decoded[key] = LCSDecision(**payload)
        elif isinstance(value, dict) and _TIMELINE_KEY in value:
            from ..telemetry.timeline import TimelineResult
            decoded[key] = TimelineResult.from_dict(value[_TIMELINE_KEY])
        else:
            decoded[key] = value
    return decoded
