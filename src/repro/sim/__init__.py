"""GPU timing-simulator substrate (cores, warps, CTAs, events, config)."""

from .checkpoint import (CHECKPOINT_VERSION, CheckpointError,
                         CheckpointRecorder, Snapshot)
from .config import DEFAULT_CONFIG, GPUConfig
from .gpu import (GPU, KernelRun, SimulationDeadlock, SimulationError,
                  SimulationTimeout)
from .invariants import (DEFAULT_SANITIZE_INTERVAL, InvariantSanitizer,
                         InvariantViolation)
from .isa import Instruction, Op, alu, barrier, exit_, load, shared, store
from .kernel import Kernel, KernelResourceError
from .stats import CacheStats, DRAMStats, KernelStats, RunResult
from .timeline import Sample, TimelineSampler

__all__ = [
    "CHECKPOINT_VERSION", "CheckpointError", "CheckpointRecorder",
    "Snapshot", "DEFAULT_CONFIG", "GPUConfig", "GPU", "KernelRun",
    "SimulationDeadlock", "SimulationError", "SimulationTimeout",
    "DEFAULT_SANITIZE_INTERVAL", "InvariantSanitizer", "InvariantViolation",
    "Instruction", "Op", "alu", "barrier", "exit_", "load", "shared",
    "store", "Kernel", "KernelResourceError", "CacheStats", "DRAMStats",
    "KernelStats", "RunResult", "Sample", "TimelineSampler",
]
