"""GPU timing-simulator substrate (cores, warps, CTAs, events, config)."""

from .config import DEFAULT_CONFIG, GPUConfig
from .gpu import (GPU, KernelRun, SimulationDeadlock, SimulationError,
                  SimulationTimeout)
from .isa import Instruction, Op, alu, barrier, exit_, load, shared, store
from .kernel import Kernel, KernelResourceError
from .stats import CacheStats, DRAMStats, KernelStats, RunResult
from .timeline import Sample, TimelineSampler

__all__ = [
    "DEFAULT_CONFIG", "GPUConfig", "GPU", "KernelRun", "SimulationDeadlock",
    "SimulationError", "SimulationTimeout", "Instruction", "Op", "alu",
    "barrier", "exit_", "load", "shared", "store", "Kernel",
    "KernelResourceError", "CacheStats", "DRAMStats", "KernelStats",
    "RunResult", "Sample", "TimelineSampler",
]
