"""Kernel (grid) description and occupancy arithmetic.

A :class:`Kernel` is the static description of a launch: how many CTAs, how
many warps per CTA, the per-thread/per-CTA resource appetite, and a builder
that produces each warp's instruction trace on demand (traces are built
lazily at CTA dispatch so large grids never materialise in memory at once).

Occupancy — the maximum number of CTAs of this kernel resident on one SM —
is the min over four hardware limits (CTA slots, warp contexts, registers,
shared memory), exactly the quantity the paper's schedulers manipulate.
"""

from __future__ import annotations

from typing import Callable, Sequence

from . import isa as _isa
from .config import GPUConfig
from .isa import ColumnProgram, Instruction, program_columns, validate_program

ProgramBuilder = Callable[[int, int], Sequence[Instruction]]


class KernelResourceError(ValueError):
    """Raised when a kernel cannot fit even one CTA on an SM."""


class Kernel:
    """Static description of one kernel launch."""

    __slots__ = ("name", "num_ctas", "warps_per_cta", "regs_per_thread",
                 "shmem_per_cta", "_builder", "tags")

    def __init__(self, name: str, num_ctas: int, warps_per_cta: int,
                 program_builder: ProgramBuilder, *, regs_per_thread: int = 20,
                 shmem_per_cta: int = 0, tags: tuple[str, ...] = ()) -> None:
        if num_ctas < 1:
            raise ValueError("num_ctas must be >= 1")
        if warps_per_cta < 1:
            raise ValueError("warps_per_cta must be >= 1")
        if regs_per_thread < 0 or shmem_per_cta < 0:
            raise ValueError("resource requirements must be non-negative")
        self.name = name
        self.num_ctas = num_ctas
        self.warps_per_cta = warps_per_cta
        self.regs_per_thread = regs_per_thread
        self.shmem_per_cta = shmem_per_cta
        self._builder = program_builder
        self.tags = tags

    def __repr__(self) -> str:
        return (f"Kernel({self.name!r}, ctas={self.num_ctas}, "
                f"warps_per_cta={self.warps_per_cta})")

    # ------------------------------------------------------------------ #
    def build_warp_program(self, cta_id: int, warp_idx: int) -> list[Instruction]:
        """Build (and validate) the trace of one warp."""
        if not 0 <= cta_id < self.num_ctas:
            raise ValueError(f"cta_id {cta_id} out of range")
        if not 0 <= warp_idx < self.warps_per_cta:
            raise ValueError(f"warp_idx {warp_idx} out of range")
        program = list(self._builder(cta_id, warp_idx))
        validate_program(program)
        return program

    def build_warp_columns(self, cta_id: int, warp_idx: int) -> ColumnProgram:
        """Column form of one warp's trace (the vector backend's input).

        A column-capable builder (``TraceBuilder``) skips ``Instruction``
        materialisation entirely; any other builder falls back to the
        normal build-and-validate path followed by a conversion, so
        replay kernels and custom builders work unchanged.  Both paths
        encode the same (op, latency, lines) rows — the cores therefore
        execute the identical trace either way.
        """
        if not 0 <= cta_id < self.num_ctas:
            raise ValueError(f"cta_id {cta_id} out of range")
        if not 0 <= warp_idx < self.warps_per_cta:
            raise ValueError(f"warp_idx {warp_idx} out of range")
        _isa._COLUMN_MODE = True
        try:
            program = self._builder(cta_id, warp_idx)
        finally:
            _isa._COLUMN_MODE = False
        if type(program) is ColumnProgram:
            return program
        program = list(program)
        validate_program(program)
        return program_columns(program)

    # ------------------------------------------------------------------ #
    def regs_per_cta(self, config: GPUConfig) -> int:
        return self.regs_per_thread * self.warps_per_cta * config.warp_size

    def max_ctas_per_sm(self, config: GPUConfig) -> int:
        """Hardware occupancy limit for this kernel (the paper's 'maximum')."""
        limit = min(config.max_ctas_per_sm,
                    config.max_warps_per_sm // self.warps_per_cta)
        regs = self.regs_per_cta(config)
        if regs:
            limit = min(limit, config.registers_per_sm // regs)
        if self.shmem_per_cta:
            limit = min(limit, config.shared_mem_per_sm // self.shmem_per_cta)
        if limit < 1:
            raise KernelResourceError(
                f"kernel {self.name!r} cannot fit a single CTA on an SM")
        return limit

    def occupancy_breakdown(self, config: GPUConfig) -> dict[str, int]:
        """Per-resource CTA limits (for the configuration tables in E12)."""
        breakdown = {
            "cta_slots": config.max_ctas_per_sm,
            "warps": config.max_warps_per_sm // self.warps_per_cta,
        }
        regs = self.regs_per_cta(config)
        breakdown["registers"] = (config.registers_per_sm // regs) if regs else config.max_ctas_per_sm
        breakdown["shared_mem"] = (
            config.shared_mem_per_sm // self.shmem_per_cta
            if self.shmem_per_cta else config.max_ctas_per_sm
        )
        return breakdown
