"""Versioned snapshot/restore of a mid-run simulation.

A :class:`Snapshot` captures the *entire* live simulation state — GPU cycle
and event queue, every SM's warp/CTA/resource state, warp- and
CTA-scheduler internals (LCS monitor, BCS pairing, CKE phases), L1/L2 tag
arrays and MSHRs, DRAM channel queues, statistics, and the telemetry hub's
window position and trace — as one pickle of the ``GPU`` object graph.
The whole machine is plain Python state reachable from the ``GPU`` root
(the scheduler hangs off ``gpu.cta_scheduler``, event callbacks are bound
methods, which pickle by reference through the shared memo), so a single
graph dump is complete and internally consistent by construction.

The one thing that cannot travel by value is a :class:`~.kernel.Kernel`:
its trace builder is a closure over the workload generator.  Kernels are
therefore *externalized* — the pickler writes a persistent id
``("repro.kernel", kernel_id)`` wherever a kernel appears, and
:meth:`Snapshot.restore` re-injects fresh kernel objects rebuilt
deterministically from the job description (same name/scale/seed =>
byte-identical traces, guaranteed by the workload layer's stateless
seeding).  Everything *derived* from a kernel at runtime (warp programs,
per-run occupancy) is captured by value, so the restored machine never
re-runs the builder mid-flight.

The resume contract (property-tested in ``tests/test_checkpoint.py``): a
run snapshotted at an arbitrary cycle and resumed in a fresh process
produces **bitwise-identical** final statistics to the uninterrupted run.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass
from typing import Callable, Sequence

from .gpu import GPU, SimulationError
from .kernel import Kernel

#: Snapshot payload protocol version.  Bump whenever the simulator's object
#: graph changes shape; old snapshots then fail restore with a typed error
#: instead of resuming into a subtly-wrong machine.
CHECKPOINT_VERSION = 1

#: Persistent-id tag for externalized kernels.
_KERNEL_TAG = "repro.kernel"


class CheckpointError(SimulationError):
    """A snapshot could not be taken, validated or restored."""


class _KernelPickler(pickle.Pickler):
    """Pickles the GPU graph with kernels replaced by persistent ids."""

    def __init__(self, file, kernel_ids: dict[int, int]) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._kernel_ids = kernel_ids

    def persistent_id(self, obj):
        if isinstance(obj, Kernel):
            kernel_id = self._kernel_ids.get(id(obj))
            if kernel_id is None:
                raise CheckpointError(
                    f"kernel {obj.name!r} is referenced by live state but "
                    f"was not launched on this GPU")
            return (_KERNEL_TAG, kernel_id)
        return None


class _KernelUnpickler(pickle.Unpickler):
    """Resolves kernel persistent ids against freshly rebuilt kernels."""

    def __init__(self, file, kernels: Sequence[Kernel]) -> None:
        super().__init__(file)
        self._kernels = kernels

    def persistent_load(self, pid):
        try:
            tag, kernel_id = pid
        except (TypeError, ValueError):
            raise CheckpointError(f"malformed persistent id {pid!r}") from None
        if tag != _KERNEL_TAG or not 0 <= kernel_id < len(self._kernels):
            raise CheckpointError(
                f"snapshot references kernel #{kernel_id}, but only "
                f"{len(self._kernels)} kernel(s) were provided")
        return self._kernels[kernel_id]


@dataclass(frozen=True)
class Snapshot:
    """One captured machine state, ready to persist or resume.

    ``payload`` is the kernel-externalized pickle of the ``GPU`` graph;
    ``kernels`` records the launched kernel names (in kernel-id order) so a
    restore against the wrong workload fails loudly instead of resuming a
    different simulation.
    """

    version: int
    cycle: int
    kernels: tuple[str, ...]
    payload: bytes

    @classmethod
    def capture(cls, gpu: GPU) -> "Snapshot":
        """Snapshot a GPU mid-run (``gpu.cycle`` must be current)."""
        if not gpu.runs:
            raise CheckpointError("nothing to snapshot: no kernels launched")
        kernel_ids = {id(run.kernel): run.kernel_id for run in gpu.runs}
        buffer = io.BytesIO()
        try:
            _KernelPickler(buffer, kernel_ids).dump(gpu)
        except CheckpointError:
            raise
        except Exception as error:
            raise CheckpointError(
                f"simulation state is not snapshottable: "
                f"{type(error).__name__}: {error}") from error
        return cls(version=CHECKPOINT_VERSION, cycle=gpu.cycle,
                   kernels=tuple(run.kernel.name for run in gpu.runs),
                   payload=buffer.getvalue())

    def restore(self, kernels: Sequence[Kernel]) -> GPU:
        """Rebuild the captured GPU, re-injecting the given kernels.

        ``kernels`` must be rebuilt from the same job description that
        produced the snapshotted run (same names, scales and seed, in
        launch order); resume then continues with ``gpu.run(...,
        resume_from=snapshot)``.
        """
        if self.version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"snapshot version {self.version} != supported "
                f"{CHECKPOINT_VERSION}")
        kernels = list(kernels)
        names = tuple(kernel.name for kernel in kernels)
        if names != self.kernels:
            raise CheckpointError(
                f"snapshot was taken with kernels {self.kernels}, "
                f"got {names}")
        try:
            gpu = _KernelUnpickler(io.BytesIO(self.payload), kernels).load()
        except CheckpointError:
            raise
        except Exception as error:
            raise CheckpointError(
                f"corrupt snapshot payload: {type(error).__name__}: "
                f"{error}") from error
        if not isinstance(gpu, GPU) or gpu.cycle != self.cycle:
            raise CheckpointError(
                f"restored object does not match snapshot header "
                f"(cycle {getattr(gpu, 'cycle', None)} != {self.cycle})")
        if gpu.cta_scheduler is None:
            raise CheckpointError("snapshot has no bound CTA scheduler; "
                                  "it was not taken from a running GPU")
        return gpu


class CheckpointRecorder:
    """Periodically captures Snapshots and hands them to a sink.

    The sink (typically ``CheckpointStore.put`` curried with the job
    fingerprint) returns True when the snapshot was durably stored; a
    failing sink is counted, never raised — losing a checkpoint must not
    kill the run it was meant to protect.
    """

    def __init__(self, interval: int,
                 sink: Callable[[Snapshot], bool]) -> None:
        if interval < 1:
            raise ValueError(f"checkpoint interval must be >= 1, "
                             f"got {interval}")
        self.interval = interval
        self.sink = sink
        self.last_saved: int | None = None
        self.saves = 0
        self.save_errors = 0

    def save(self, gpu: GPU, cycle: int) -> int | None:
        """Capture + persist; returns the newest durably-saved cycle."""
        try:
            snapshot = Snapshot.capture(gpu)
            stored = bool(self.sink(snapshot))
        except Exception:   # noqa: BLE001 - checkpointing is best-effort
            stored = False
        if stored:
            self.saves += 1
            self.last_saved = cycle
        else:
            self.save_errors += 1
        return self.last_saved
