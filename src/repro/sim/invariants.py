"""In-flight invariant sanitizer: conservation laws checked *during* a run.

:mod:`repro.harness.validate` checks the finished :class:`RunResult`; this
module checks the live machine while it is still running, so corruption
(a bookkeeping bug, a bad checkpoint restore, an injected ``corrupt``
fault) is caught at the window boundary where state first goes bad instead
of surfacing as silently-wrong statistics at end-of-run.

An :class:`InvariantSanitizer` is handed to ``GPU.run(..., sanitizer=)``
(usually via ``simulate(..., sanitize=True)`` or the CLIs' ``--sanitize``)
and invoked from the loop top every :attr:`~InvariantSanitizer.interval`
cycles — the same quiescent boundaries telemetry samples at, so the checks
read state only and can never perturb results.  A violated invariant
raises a typed :class:`InvariantViolation`, which the batch engine
classifies as *deterministic* (retrying would re-corrupt identically).

Checked invariant families (the live mirrors of ``validate_run``):

* **CTA conservation** — per kernel, CTAs dispatched = completed +
  resident, with ``0 <= completed <= dispatched <= num_ctas``.
* **SM resource accounting** — slot/warp/register/shared-memory usage
  recomputed from the resident CTA list equals the incremental counters,
  and every counter respects its configured hardware limit (occupancy can
  never exceed the config).
* **Cache/MSHR balance** — ``accesses = hits + misses + merges`` for every
  L1 and L2 bank, outstanding MSHR entries within capacity, every pending
  entry carrying at least one (and at most ``mshr_max_merge``) waiters.
* **Monotonicity** — the cycle counter and every cumulative statistic
  (issued instructions, cache accesses, DRAM traffic) only move forward
  between consecutive checks.

The ``REPRO_SANITIZE`` environment variable (any non-empty value) turns
the sanitizer on for every ``simulate()`` call that does not say
otherwise, so CI can run the whole tier-1 suite sanitized without
touching a single test.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .gpu import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mem.cache import Cache
    from .gpu import GPU

#: Environment variable honoured by ``simulate(..., sanitize=None)``.
ENV_SANITIZE = "REPRO_SANITIZE"

#: Default check period in cycles (matches the default telemetry window).
DEFAULT_SANITIZE_INTERVAL = 1000


class InvariantViolation(SimulationError):
    """A live-state conservation law failed mid-run.

    Deterministic by definition: the same inputs corrupt the same state at
    the same cycle, so the batch engine never retries one.
    """

    def __init__(self, message: str, *, cycle: int, check: str) -> None:
        super().__init__(f"invariant {check!r} violated at cycle {cycle}: "
                         f"{message}")
        self.cycle = cycle
        self.check = check


class InvariantSanitizer:
    """Periodic live-state checker driven from the ``GPU.run`` loop top."""

    def __init__(self, interval: int = DEFAULT_SANITIZE_INTERVAL) -> None:
        if interval < 1:
            raise ValueError(f"sanitize interval must be >= 1, got {interval}")
        self.interval = interval
        self.checks_run = 0
        self._last_cycle: int | None = None
        # Cumulative-counter baselines from the previous check, keyed by a
        # stable label; reset on resume (a fresh sanitizer) is safe — the
        # monotone checks simply restart from the restored values.
        self._baselines: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    def check(self, gpu: "GPU", cycle: int) -> None:
        """Run every invariant family; raise on the first violation."""
        self.checks_run += 1
        self._check_cycle(cycle)
        self._check_cta_conservation(gpu, cycle)
        self._check_sm_resources(gpu, cycle)
        self._check_caches(gpu, cycle)
        self._check_monotone(gpu, cycle)

    # ------------------------------------------------------------------ #
    def _check_cycle(self, cycle: int) -> None:
        last = self._last_cycle
        if cycle < 0 or (last is not None and cycle <= last):
            raise InvariantViolation(
                f"cycle moved from {last} to {cycle}",
                cycle=cycle, check="monotone-cycle")
        self._last_cycle = cycle

    def _check_cta_conservation(self, gpu: "GPU", cycle: int) -> None:
        for run in gpu.runs:
            dispatched, completed = run.next_cta, run.completed
            total = run.kernel.num_ctas
            if not 0 <= completed <= dispatched <= total:
                raise InvariantViolation(
                    f"kernel {run.kernel.name!r}: completed={completed}, "
                    f"dispatched={dispatched}, num_ctas={total}",
                    cycle=cycle, check="cta-bounds")
            resident = sum(sm.kernel_active.get(run.kernel_id, 0)
                           for sm in gpu.sms)
            if dispatched - completed != resident:
                raise InvariantViolation(
                    f"kernel {run.kernel.name!r}: dispatched({dispatched}) - "
                    f"completed({completed}) != resident({resident})",
                    cycle=cycle, check="cta-conservation")
        total_completed = sum(run.completed for run in gpu.runs)
        by_sm = sum(sm.completed_ctas for sm in gpu.sms)
        if total_completed != by_sm:
            raise InvariantViolation(
                f"per-SM completions ({by_sm}) != per-kernel completions "
                f"({total_completed})", cycle=cycle, check="cta-conservation")

    def _check_sm_resources(self, gpu: "GPU", cycle: int) -> None:
        config = gpu.config
        for sm in gpu.sms:
            ctas = sm.active_ctas
            slots = len(ctas)
            warps = sum(len(cta.warps) for cta in ctas)
            regs = sum(cta.run.regs_per_cta for cta in ctas)
            shmem = sum(cta.run.kernel.shmem_per_cta for cta in ctas)
            recomputed = (slots, warps, regs, shmem)
            counters = (sm.used_slots, sm.used_warps, sm.used_regs,
                        sm.used_shmem)
            if recomputed != counters:
                raise InvariantViolation(
                    f"SM{sm.sm_id}: counters (slots,warps,regs,shmem)="
                    f"{counters} but resident CTAs say {recomputed}",
                    cycle=cycle, check="sm-accounting")
            limits = (config.max_ctas_per_sm, config.max_warps_per_sm,
                      config.registers_per_sm, config.shared_mem_per_sm)
            if any(used > limit for used, limit in zip(counters, limits)):
                raise InvariantViolation(
                    f"SM{sm.sm_id}: usage {counters} exceeds configured "
                    f"limits {limits}", cycle=cycle, check="occupancy-limit")
            active = {kid: 0 for kid in sm.kernel_active}
            for cta in ctas:
                active[cta.run.kernel_id] = active.get(cta.run.kernel_id,
                                                       0) + 1
            if active != sm.kernel_active:
                raise InvariantViolation(
                    f"SM{sm.sm_id}: kernel_active={sm.kernel_active} but "
                    f"resident CTAs say {active}",
                    cycle=cycle, check="sm-accounting")
            for cta in ctas:
                if not 0 <= cta.done_warps <= len(cta.warps):
                    raise InvariantViolation(
                        f"SM{sm.sm_id} CTA{cta.cta_id}: done_warps="
                        f"{cta.done_warps} of {len(cta.warps)}",
                        cycle=cycle, check="cta-bounds")
            if sm.num_ready < 0 or sm.issued < 0:
                raise InvariantViolation(
                    f"SM{sm.sm_id}: num_ready={sm.num_ready}, "
                    f"issued={sm.issued}", cycle=cycle, check="sm-accounting")

    def _check_caches(self, gpu: "GPU", cycle: int) -> None:
        caches: list["Cache"] = [sm.l1 for sm in gpu.sms]
        caches.extend(gpu.mem.l2_banks)
        for cache in caches:
            stats = cache.stats
            if stats.accesses != stats.hits + stats.misses + stats.merges:
                raise InvariantViolation(
                    f"{cache.name}: accesses({stats.accesses}) != "
                    f"hits({stats.hits}) + misses({stats.misses}) + "
                    f"merges({stats.merges})",
                    cycle=cycle, check="cache-balance")
            if stats.write_hits > stats.write_accesses:
                raise InvariantViolation(
                    f"{cache.name}: write_hits({stats.write_hits}) > "
                    f"write_accesses({stats.write_accesses})",
                    cycle=cycle, check="cache-balance")
            outstanding = cache._mshr
            if len(outstanding) > cache.mshr_entries:
                raise InvariantViolation(
                    f"{cache.name}: {len(outstanding)} outstanding MSHR "
                    f"entries exceed capacity {cache.mshr_entries}",
                    cycle=cycle, check="mshr-balance")
            for line, waiters in outstanding.items():
                if not 1 <= len(waiters) <= cache.mshr_max_merge:
                    raise InvariantViolation(
                        f"{cache.name}: MSHR entry for line {line:#x} has "
                        f"{len(waiters)} waiters (max_merge="
                        f"{cache.mshr_max_merge})",
                        cycle=cycle, check="mshr-balance")

    def _check_monotone(self, gpu: "GPU", cycle: int) -> None:
        counters: dict[str, int] = {"issued": gpu.total_issued}
        for sm in gpu.sms:
            counters[f"l1[{sm.sm_id}].accesses"] = sm.l1.stats.accesses
        for index, bank in enumerate(gpu.mem.l2_banks):
            counters[f"l2[{index}].accesses"] = bank.stats.accesses
        dram = gpu.mem.dram.stats
        counters["dram.reads"] = dram.reads
        counters["dram.writes"] = dram.writes
        baselines = self._baselines
        for name, value in counters.items():
            previous = baselines.get(name)
            if value < 0 or (previous is not None and value < previous):
                raise InvariantViolation(
                    f"counter {name} moved from {previous} to {value}",
                    cycle=cycle, check="monotone-stats")
        self._baselines = counters
