"""The SIMT core (SM) model.

Per cycle an SM does two things:

1. **LD/ST unit tick** — processes one memory transaction from the head of
   its in-order (FIFO) LD/ST queue: L1 hit, MSHR allocate + forward, MSHR
   merge, or stall on MSHR exhaustion (which blocks the unit until a fill
   arrives — the backpressure that makes high occupancy hurt memory-bound
   kernels).

2. **Issue** — each of its ``issue_width`` warp schedulers picks one READY
   warp *that can structurally issue* and issues its next instruction.  A
   memory instruction needs a free LD/ST queue slot; when the queue is
   full, the scheduler skips that warp and tries the next per its priority
   order.  Under a greedy-then-oldest policy this is what hands the scarce
   LD/ST slots to the oldest CTAs first, starving younger CTAs' memory
   instructions when the memory pipe saturates — the signal LCS reads
   (see ``repro.core.lcs``).

Resource accounting (CTA slots, warp contexts, registers, shared memory)
lives here; the CTA scheduler asks :meth:`can_accept` before dispatching.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from ..mem.cache import Access, Cache
from .config import GPUConfig
from .cta import CTA
from .isa import Op
from .warp import MemRequest, Warp, WarpState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .gpu import GPU, KernelRun


class _PrefetchSentinel:
    """The MSHR-waiter marker for prefetch requests.

    Checked with ``is`` throughout the memory path, so it must survive
    pickling (checkpoint snapshots) as the *same* object: ``__reduce__``
    resolves back to the module-level singleton instead of creating a new
    instance in the restoring process.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "<PREFETCH>"

    def __reduce__(self):
        return (_prefetch_sentinel, ())


def _prefetch_sentinel() -> "_PrefetchSentinel":
    return PREFETCH


PREFETCH = _PrefetchSentinel()


class SM:
    __slots__ = ("gpu", "sm_id", "config", "l1", "schedulers", "ldst",
                 "ldst_blocked", "gate_blocked", "num_ready", "issued",
                 "active_ctas", "used_slots", "used_warps", "used_regs",
                 "used_shmem", "kernel_active", "_sched_rr", "completed_ctas",
                 "_store_window", "_store_window_set", "_mem", "_events",
                 "_ldst_depth", "_store_coalescing", "_prefetch_next",
                 "_l1_hit_latency")

    #: Sentinel registered as the MSHR waiter of a prefetch request; fills
    #: install the line but wake nobody.  A module-level singleton (not a
    #: bare ``object()``) so identity survives checkpoint snapshots.
    PREFETCH = PREFETCH

    def __init__(self, gpu: "GPU", sm_id: int, config: GPUConfig,
                 scheduler_factory: Callable[[], "object"]) -> None:
        self.gpu = gpu
        self.sm_id = sm_id
        self.config = config
        self.l1 = Cache(
            f"L1[{sm_id}]",
            num_sets=config.l1_num_sets,
            assoc=config.l1_assoc,
            mshr_entries=config.l1_mshr_entries,
            mshr_max_merge=config.l1_mshr_max_merge,
        )
        self.schedulers = [scheduler_factory() for _ in range(config.issue_width)]
        self.ldst: deque[MemRequest] = deque()
        self.ldst_blocked = False
        # True when every ready warp is structurally blocked (LD/ST queue
        # full); nothing can issue until the queue drains or a warp wakes.
        self.gate_blocked = False
        self.num_ready = 0
        self.issued = 0
        self.active_ctas: list[CTA] = []
        self.used_slots = 0
        self.used_warps = 0
        self.used_regs = 0
        self.used_shmem = 0
        # kernel_id -> number of resident CTAs of that kernel
        self.kernel_active: dict[int, int] = {}
        self._sched_rr = 0
        self.completed_ctas = 0
        # Write-combining window (recently accepted store lines).
        self._store_window: deque[int] = deque(
            maxlen=config.store_coalesce_window)
        self._store_window_set: set[int] = set()
        # Hot-path shortcuts: these are read every cycle (or every memory
        # transaction), so resolve the gpu.*/config.* indirections once.
        self._mem = gpu.mem
        self._events = gpu.events
        self._ldst_depth = config.ldst_queue_depth
        self._store_coalescing = config.store_coalescing
        self._prefetch_next = config.l1_prefetch_next_line
        self._l1_hit_latency = config.l1_hit_latency

    def __repr__(self) -> str:
        return f"SM({self.sm_id}, ctas={self.used_slots}, warps={self.used_warps})"

    # ------------------------------------------------------------------ #
    # Resource accounting / dispatch
    def can_accept(self, run: "KernelRun") -> bool:
        """True if one more CTA of this kernel fits (hardware limits only)."""
        kernel = run.kernel
        config = self.config
        return (
            self.used_slots < config.max_ctas_per_sm
            and self.used_warps + kernel.warps_per_cta <= config.max_warps_per_sm
            and self.used_regs + run.regs_per_cta <= config.registers_per_sm
            and self.used_shmem + kernel.shmem_per_cta <= config.shared_mem_per_sm
        )

    def free_cta_capacity(self, run: "KernelRun") -> int:
        """How many more CTAs of this kernel the SM could host right now."""
        kernel = run.kernel
        config = self.config
        limit = config.max_ctas_per_sm - self.used_slots
        limit = min(limit, (config.max_warps_per_sm - self.used_warps)
                    // kernel.warps_per_cta)
        if run.regs_per_cta:
            limit = min(limit, (config.registers_per_sm - self.used_regs)
                        // run.regs_per_cta)
        if kernel.shmem_per_cta:
            limit = min(limit, (config.shared_mem_per_sm - self.used_shmem)
                        // kernel.shmem_per_cta)
        return max(limit, 0)

    def active_count(self, kernel_id: int) -> int:
        return self.kernel_active.get(kernel_id, 0)

    def dispatch(self, run: "KernelRun", cta_id: int, seq: int, block_seq: int,
                 now: int) -> CTA:
        """Create a CTA, build its warp traces, and make its warps schedulable."""
        kernel = run.kernel
        cta = CTA(run, cta_id, seq, block_seq, self, now)
        for warp_idx in range(kernel.warps_per_cta):
            program = kernel.build_warp_program(cta_id, warp_idx)
            warp = Warp(cta, warp_idx, program)
            warp.state_since = now
            scheduler = self.schedulers[self._sched_rr]
            self._sched_rr = (self._sched_rr + 1) % len(self.schedulers)
            warp.scheduler = scheduler
            warp.epoch += 1
            scheduler.on_ready(warp)
            self.num_ready += 1
            cta.warps.append(warp)
        self.gate_blocked = False
        self.active_ctas.append(cta)
        self.used_slots += 1
        self.used_warps += kernel.warps_per_cta
        self.used_regs += run.regs_per_cta
        self.used_shmem += kernel.shmem_per_cta
        # Kernel ids are pre-registered at launch (see GPU.launch), so this
        # is a plain increment rather than a get()+store pair.
        self.kernel_active[run.kernel_id] += 1
        return cta

    def _release(self, cta: CTA, now: int) -> None:
        cta.complete_cycle = now
        self.active_ctas.remove(cta)
        self.used_slots -= 1
        self.used_warps -= cta.num_warps
        self.used_regs -= cta.run.regs_per_cta
        self.used_shmem -= cta.kernel.shmem_per_cta
        self.kernel_active[cta.run.kernel_id] -= 1
        self.completed_ctas += 1
        self.gpu.on_cta_complete(self, cta, now)

    # ------------------------------------------------------------------ #
    # Per-cycle behaviour
    def tick(self, now: int) -> bool:
        """Advance one cycle; returns True if the SM can still make progress
        without waiting for a memory-system event."""
        active = False
        if self.ldst and not self.ldst_blocked:
            self._ldst_tick(now)
            active = True
        if self.num_ready and not self.gate_blocked:
            ldst = self.ldst
            depth = self._ldst_depth
            qfull = self._can_issue_qfull
            issued_any = False
            for scheduler in self.schedulers:
                # With LD/ST queue space free, *every* ready warp passes the
                # structural check, so skip the per-warp call entirely; when
                # the queue is full it cannot drain during a pick, so only
                # the instruction kind matters (the queue can fill mid-loop,
                # hence the per-scheduler test).
                warp = scheduler.pick(None if len(ldst) < depth else qfull)
                if warp is not None:
                    self._issue(warp, scheduler, now)
                    issued_any = True
            if issued_any:
                active = True
            else:
                # Every candidate is waiting for an LD/ST queue slot; skip
                # the issue stage until the queue drains or a warp wakes.
                self.gate_blocked = True
        return active

    def _can_issue(self, warp: Warp) -> bool:
        """Structural check at the issue stage: a memory instruction needs a
        free slot in the LD/ST queue."""
        if warp.program[warp.pc].is_memory:
            return len(self.ldst) < self._ldst_depth
        return True

    def _can_issue_qfull(self, warp: Warp) -> bool:
        """:meth:`_can_issue` specialised for a full LD/ST queue (it cannot
        drain during a pick, so only the instruction kind matters)."""
        return not warp.program[warp.pc].is_memory

    def _issue(self, warp: Warp, scheduler, now: int) -> None:
        instruction = warp.program[warp.pc]
        warp.t_ready += now - warp.state_since   # leaving READY
        warp.state_since = now
        warp.pc += 1
        warp.issued += 1
        warp.cta.issued_instrs += 1
        self.issued += 1
        scheduler.on_issue(warp, now)
        self.num_ready -= 1
        op = instruction.op
        if op == Op.ALU or op == Op.SHARED:
            warp.state = WarpState.WAIT_ALU
            self._events.schedule(now + instruction.latency, self._wake_alu, warp)
        elif op == Op.LD_GLOBAL:
            warp.state = WarpState.WAIT_MEM
            self.ldst.append(MemRequest(warp, instruction.lines, is_store=False))
        elif op == Op.ST_GLOBAL:
            warp.state = WarpState.WAIT_MEM
            self.ldst.append(MemRequest(warp, instruction.lines, is_store=True))
        elif op == Op.BARRIER:
            warp.cta.issued_barriers += 1
            self._arrive_barrier(warp, now)
        else:  # Op.EXIT
            warp.state = WarpState.DONE
            cta = warp.cta
            cta.done_warps += 1
            if cta.complete:
                self._release(cta, now)
            elif cta.barrier_arrived and cta.barrier_arrived >= cta.live_warps:
                # This warp's exit satisfied a barrier its siblings wait at
                # (traces with uneven barrier counts; CUDA forbids this but
                # the simulator must not deadlock on it).
                self._release_barrier(cta, now)

    def _release_barrier(self, cta: CTA, now: int) -> None:
        cta.barrier_arrived = 0
        for peer in cta.warps:
            if peer.state == WarpState.WAIT_BARRIER:
                peer.t_barrier += now - peer.state_since
                peer.state_since = now
                peer.state = WarpState.READY
                peer.epoch += 1
                peer.scheduler.on_ready(peer)
                self.num_ready += 1
        self.gate_blocked = False

    def _arrive_barrier(self, warp: Warp, now: int) -> None:
        cta = warp.cta
        warp.state = WarpState.WAIT_BARRIER
        cta.barrier_arrived += 1
        if cta.barrier_arrived >= cta.live_warps:
            self._release_barrier(cta, now)

    def _wake_alu(self, now: int, warp: Warp) -> None:
        warp.t_alu += now - warp.state_since
        warp.state_since = now
        warp.state = WarpState.READY
        warp.epoch += 1
        warp.scheduler.on_ready(warp)
        self.num_ready += 1
        self.gate_blocked = False

    def _wake_mem(self, now: int, warp: Warp) -> None:
        warp.t_mem += now - warp.state_since
        warp.state_since = now
        warp.state = WarpState.READY
        warp.epoch += 1
        warp.scheduler.on_ready(warp)
        self.num_ready += 1
        self.gate_blocked = False

    # ------------------------------------------------------------------ #
    # LD/ST unit
    def _ldst_tick(self, now: int) -> None:
        l1 = self.l1
        request = self.ldst[0]
        line = request.lines[request.idx]
        if request.is_store:
            # Write-through, no-allocate: probe updates LRU on hit, then the
            # write travels to L2 — unless the write-combining window just
            # saw the same line.
            l1.write_probe(line)
            if self._store_coalescing and self._store_absorbed(line):
                l1.stats.stores_coalesced += 1
            else:
                self._mem.store(self, line, now)
        else:
            outcome = l1.lookup_load(line, request)
            if outcome is Access.STALL:
                self.ldst_blocked = True
                return
            if outcome is Access.MISS:
                request.outstanding += 1
                self._mem.load(self, line, now)
                if self._prefetch_next:
                    self._maybe_prefetch(line + 1, now)
            elif outcome is Access.MERGED:
                request.outstanding += 1
            # Access.HIT needs no further action.
        request.idx += 1
        if request.idx == len(request.lines):
            self.ldst.popleft()
            self.gate_blocked = False   # a queue slot opened up
            request.accepted = True
            if request.complete:
                # All transactions hit (or it was a store): the warp resumes
                # after the L1 hit latency.
                self._events.schedule(now + self._l1_hit_latency,
                                      self._wake_mem_event, request.warp)

    def _wake_mem_event(self, now: int, warp: Warp) -> None:
        self._wake_mem(now, warp)

    def _store_absorbed(self, line: int) -> bool:
        """True if the write-combining window absorbs this store."""
        if line in self._store_window_set:
            return True
        if len(self._store_window) == self._store_window.maxlen \
                and self._store_window:
            self._store_window_set.discard(self._store_window[0])
        self._store_window.append(line)
        self._store_window_set.add(line)
        return False

    def _maybe_prefetch(self, line: int, now: int) -> None:
        """Best-effort next-line prefetch: never stalls, never merges —
        dropped outright when the line is present, pending, or no MSHR
        entry is free."""
        l1 = self.l1
        if l1.contains(line) or l1.pending(line) or l1.mshr_free == 0:
            return
        outcome = l1.lookup_load(line, self.PREFETCH)
        if outcome is Access.MISS:
            # Undo the demand-access accounting for the speculative fetch.
            l1.stats.accesses -= 1
            l1.stats.misses -= 1
            l1.stats.prefetches += 1
            self._mem.load(self, line, now)

    def mem_response(self, now: int, line: int) -> None:
        """A missed line returned from the memory system: fill L1, wake warps."""
        self.ldst_blocked = False
        for request in self.l1.fill(line):
            if request is self.PREFETCH:
                continue
            request.outstanding -= 1
            if request.complete:
                self._wake_mem(now, request.warp)

    # ------------------------------------------------------------------ #
    @property
    def resident_warps(self) -> int:
        return self.used_warps

    def ctas_of(self, kernel_id: int) -> list[CTA]:
        return [cta for cta in self.active_ctas if cta.run.kernel_id == kernel_id]

    def resident_warp_states(self) -> list[WarpState]:
        """States of every non-DONE warp of the resident CTAs.

        The read-only sampling view DynCTA-style policies use (a policy
        that walked ``cta.warps`` directly would see stale state on the
        vector backend, which keeps warp state in columns and writes the
        ``Warp`` objects back only at CTA completion).  Order is
        unspecified; callers aggregate.
        """
        return [warp.state for cta in self.active_ctas
                for warp in cta.warps if not warp.done]

    # ------------------------------------------------------------------ #
    # Telemetry probe interface (read-only; see repro.telemetry.probes).
    def warp_state_counts(self) -> tuple[int, int, int, int]:
        """Resident warps per state: (ready, wait_alu, wait_mem, wait_barrier).

        DONE warps of still-resident CTAs are excluded — they no longer
        compete for anything.  Pure read; never mutates scheduler state.
        """
        ready = alu = mem = barrier = 0
        for cta in self.active_ctas:
            for warp in cta.warps:
                state = warp.state
                if state == WarpState.READY:
                    ready += 1
                elif state == WarpState.WAIT_ALU:
                    alu += 1
                elif state == WarpState.WAIT_MEM:
                    mem += 1
                elif state == WarpState.WAIT_BARRIER:
                    barrier += 1
        return ready, alu, mem, barrier

    def telemetry_snapshot(self) -> dict:
        """Instantaneous core state for telemetry probes (read-only)."""
        ready, alu, mem, barrier = self.warp_state_counts()
        return {
            "sm": self.sm_id,
            "issued": self.issued,
            "resident_ctas": self.used_slots,
            "resident_warps": self.used_warps,
            "ldst_queue": len(self.ldst),
            "l1_mshr_occupancy": self.l1.outstanding_misses,
            "warps_ready": ready,
            "warps_wait_alu": alu,
            "warps_wait_mem": mem,
            "warps_wait_barrier": barrier,
        }
