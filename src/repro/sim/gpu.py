"""Top-level GPU: ties SMs, the memory system and a CTA scheduler together.

The run loop is cycle-driven with event-queue fast-forward: when no SM can
make progress without a memory response, the clock jumps straight to the
next pending event (results are identical to ticking every cycle — the skip
condition is exactly "no state transition can happen before that event").
"""

from __future__ import annotations

from time import monotonic as _monotonic
from typing import TYPE_CHECKING, Callable, Iterable

from ..core.warp_schedulers import WarpScheduler, warp_scheduler_factory
from ..mem.subsystem import MemorySubsystem
from .config import DEFAULT_CONFIG, GPUConfig
from .cta import CTA
from .events import EventQueue
from .kernel import Kernel
from .sm import SM
from .stats import KernelStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.cta_schedulers import CTAScheduler
    from ..telemetry.hub import TelemetryHub


class SimulationError(RuntimeError):
    """Base class for simulator failures."""


class SimulationDeadlock(SimulationError):
    """No SM can progress, no event is pending, yet work remains."""


class SimulationTimeout(SimulationError):
    """The run exceeded its budget: ``GPUConfig.max_cycles`` or the
    wall-clock deadline of ``GPU.run(..., wall_timeout=...)``.

    Carries structured partial-progress fields so callers (the batch
    engine's failure table, checkpoint-aware retries) can report how far
    the run got instead of just the message string:

    * ``cycle`` — the simulated cycle the run was interrupted at;
    * ``max_cycles`` — the configured cycle budget;
    * ``kind`` — ``"wall"`` (wall-clock deadline; resumable) or
      ``"max-cycles"`` (simulated-cycle budget; resuming cannot help);
    * ``checkpoint_cycle`` — newest durably-saved checkpoint, or None.
    """

    def __init__(self, message: str, *, cycle: int | None = None,
                 max_cycles: int | None = None, kind: str = "wall",
                 checkpoint_cycle: int | None = None) -> None:
        super().__init__(message)
        self.cycle = cycle
        self.max_cycles = max_cycles
        self.kind = kind
        self.checkpoint_cycle = checkpoint_cycle


class _RunService:
    """Coordinates the optional per-run riders of the simulation loop:
    the invariant sanitizer, the checkpoint recorder and the fault
    saboteur.  ``next_cycle`` is the earliest cycle any rider wants; the
    loops test one local against it per iteration, so disabled riders
    cost nothing and enabled ones fire only at their boundaries.

    Boundaries are recomputed from the current cycle with the same
    ``(cycle // interval + 1) * interval`` formula on every call, so a
    resumed run services at exactly the cycles the uninterrupted run
    would have — and since the sanitizer only reads state and the
    recorder only copies it, neither can perturb results even if the
    boundaries differed (only the saboteur mutates, by design)."""

    __slots__ = ("sanitizer", "checkpoint", "saboteur", "_next_check",
                 "_next_save", "next_cycle")

    def __init__(self, sanitizer, checkpoint, saboteur, cycle: int) -> None:
        self.sanitizer = sanitizer
        self.checkpoint = checkpoint
        self.saboteur = saboteur
        self._next_check = (self._boundary(cycle, sanitizer.interval)
                            if sanitizer is not None else None)
        self._next_save = (self._boundary(cycle, checkpoint.interval)
                           if checkpoint is not None else None)
        self.next_cycle: int | None = None
        self._recompute()

    @staticmethod
    def _boundary(cycle: int, interval: int) -> int:
        return (cycle // interval + 1) * interval

    def _recompute(self) -> None:
        pending = [at for at in (self._next_check, self._next_save)
                   if at is not None]
        saboteur = self.saboteur
        if saboteur is not None and not saboteur.done:
            pending.append(saboteur.at)
        self.next_cycle = min(pending) if pending else None

    def service(self, gpu: "GPU", cycle: int) -> int | None:
        """Fire every due rider; returns the next service cycle.

        Order matters: the saboteur first (an injected crash loses the
        checkpoint it would have gotten this boundary, like a real one),
        then the sanitizer (so injected corruption is caught *before* it
        can be checkpointed), then the recorder.
        """
        saboteur = self.saboteur
        if saboteur is not None and not saboteur.done \
                and cycle >= saboteur.at:
            saboteur.fire(gpu, cycle)
        if self._next_check is not None and cycle >= self._next_check:
            self.sanitizer.check(gpu, cycle)
            self._next_check = self._boundary(cycle, self.sanitizer.interval)
        if self._next_save is not None and cycle >= self._next_save:
            self.checkpoint.save(gpu, cycle)
            self._next_save = self._boundary(cycle, self.checkpoint.interval)
        self._recompute()
        return self.next_cycle

    def on_timeout(self, gpu: "GPU", cycle: int) -> int | None:
        """Final cooperative-timeout checkpoint; newest saved cycle."""
        if self.checkpoint is None:
            return None
        return self.checkpoint.save(gpu, cycle)

    @property
    def checkpoint_cycle(self) -> int | None:
        if self.checkpoint is None:
            return None
        return self.checkpoint.last_saved


class KernelRun:
    """Runtime state of one launched kernel."""

    __slots__ = ("kernel", "kernel_id", "stats", "next_cta", "completed",
                 "regs_per_cta", "occupancy", "eligible")

    def __init__(self, kernel: Kernel, kernel_id: int, config: GPUConfig) -> None:
        self.kernel = kernel
        self.kernel_id = kernel_id
        self.stats = KernelStats(name=kernel.name, kernel_id=kernel_id,
                                 num_ctas=kernel.num_ctas)
        self.next_cta = 0
        self.completed = 0
        self.regs_per_cta = kernel.regs_per_cta(config)
        self.occupancy = kernel.max_ctas_per_sm(config)
        self.eligible = True

    def __repr__(self) -> str:
        return (f"KernelRun({self.kernel.name!r}, dispatched={self.next_cta}/"
                f"{self.kernel.num_ctas}, completed={self.completed})")

    @property
    def pending(self) -> bool:
        return self.next_cta < self.kernel.num_ctas

    @property
    def done(self) -> bool:
        return self.completed == self.kernel.num_ctas


class GPU:
    """One simulated device.  Create, then :meth:`run` a CTA scheduler."""

    def __init__(self, config: GPUConfig | None = None,
                 warp_scheduler: str | Callable[[], WarpScheduler] = "gto",
                 telemetry: "TelemetryHub | None" = None) -> None:
        self.config = config if config is not None else DEFAULT_CONFIG
        self.events = EventQueue()
        # Telemetry is strictly opt-in: with no hub the run loop below is
        # the exact pre-telemetry loop (the null check happens once per
        # run, never per cycle) and the per-CTA emit guards cost one
        # attribute test per dispatch/completion.
        self.telemetry = telemetry
        self.mem = MemorySubsystem(self.config, self.events)
        if isinstance(warp_scheduler, str):
            self.warp_scheduler_name = warp_scheduler
            factory = warp_scheduler_factory(warp_scheduler)
        else:
            factory = warp_scheduler
            self.warp_scheduler_name = getattr(factory, "name", "custom")
        self.sms = [SM(self, sm_id, self.config, factory)
                    for sm_id in range(self.config.num_sms)]
        self.runs: list[KernelRun] = []
        self.cycle = 0
        self.cta_scheduler: "CTAScheduler | None" = None
        self._cta_seq = 0
        self._block_seq = 0
        if telemetry is not None:
            telemetry.attach(self)

    # ------------------------------------------------------------------ #
    def launch(self, kernels: Iterable[Kernel]) -> list[KernelRun]:
        """Register kernels for execution (called by the CTA scheduler)."""
        if self.runs:
            raise SimulationError("kernels already launched on this GPU")
        self.runs = [KernelRun(kernel, kernel_id, self.config)
                     for kernel_id, kernel in enumerate(kernels)]
        if not self.runs:
            raise ValueError("at least one kernel is required")
        # Pre-register every kernel id in the per-SM residency counters so
        # the dispatch hot path can use plain increments.
        for sm in self.sms:
            for run in self.runs:
                sm.kernel_active.setdefault(run.kernel_id, 0)
        return self.runs

    def next_block_seq(self) -> int:
        seq = self._block_seq
        self._block_seq += 1
        return seq

    def dispatch(self, sm: SM, run: KernelRun, block_seq: int | None,
                 now: int) -> CTA:
        """Dispatch the kernel's next CTA onto ``sm``."""
        cta_id = run.next_cta
        run.next_cta += 1
        seq = self._cta_seq
        self._cta_seq += 1
        if block_seq is None:
            block_seq = self.next_block_seq()
        hub = self.telemetry
        if run.stats.first_dispatch_cycle is None:
            run.stats.first_dispatch_cycle = now
            if hub is not None:
                hub.emit("kernel.start", now, kernel=run.kernel.name,
                         kernel_id=run.kernel_id,
                         num_ctas=run.kernel.num_ctas)
        if hub is not None:
            hub.emit("cta.dispatch", now, kernel=run.kernel.name,
                     cta=cta_id, sm=sm.sm_id, block_seq=block_seq)
        return sm.dispatch(run, cta_id, seq, block_seq, now)

    def on_cta_complete(self, sm: SM, cta: CTA, now: int) -> None:
        run = cta.run
        run.completed += 1
        run.stats.instructions += cta.issued_instrs
        stats = run.stats
        for warp in cta.warps:
            stats.ready_wait += warp.t_ready
            stats.alu_wait += warp.t_alu
            stats.mem_wait += warp.t_mem
            stats.barrier_wait += warp.t_barrier
        if run.done:
            run.stats.finish_cycle = now
        hub = self.telemetry
        if hub is not None:
            hub.emit("cta.complete", now, kernel=run.kernel.name,
                     cta=cta.cta_id, sm=sm.sm_id,
                     issued_instrs=cta.issued_instrs)
            if run.done:
                hub.emit("kernel.done", now, kernel=run.kernel.name,
                         kernel_id=run.kernel_id)
        if self.cta_scheduler is not None:
            self.cta_scheduler.on_cta_complete(sm, cta, now)

    # ------------------------------------------------------------------ #
    def run(self, cta_scheduler: "CTAScheduler | None" = None, *,
            cycle_accurate: bool = False,
            wall_timeout: float | None = None,
            sanitizer=None, checkpoint=None, saboteur=None,
            resume_from=None) -> None:
        """Execute until every launched kernel completes.

        ``cycle_accurate=True`` disables the event fast-forward and ticks
        every single cycle.  Results are identical by construction (the
        skip condition enumerates every possible state change); the flag
        exists so the test suite can *prove* that equivalence, and as a
        debugging aid.

        ``wall_timeout`` is a cooperative wall-clock budget in seconds: a
        run that exceeds it raises a typed :class:`SimulationTimeout` from
        the loop top instead of hanging its caller (the batch engine's
        per-job ``--timeout`` rides on this).  The check never perturbs
        results — it only decides whether the run is *allowed to finish* —
        and costs one ``is not None`` test per iteration when disabled.

        ``sanitizer`` (an :class:`~repro.sim.invariants.InvariantSanitizer`)
        checks live-state conservation laws at its interval boundaries;
        ``checkpoint`` (a :class:`~repro.sim.checkpoint.CheckpointRecorder`)
        snapshots the whole machine at its own interval and once more on a
        cooperative wall-clock timeout; ``saboteur`` is the fault
        injector's mid-run hook (kill/corrupt at a chosen cycle).  All
        three ride one loop-top service check costing a single comparison
        per iteration, and none is stored on the GPU — snapshots never
        capture the machinery that takes them.

        ``resume_from`` continues a run restored by
        :meth:`~repro.sim.checkpoint.Snapshot.restore`: ``self`` must be
        the GPU that restore() returned, ``cta_scheduler`` must be None
        (the restored scheduler is already bound), and launch/bind/
        telemetry-start are skipped — the loop picks up at the captured
        cycle as if the interruption never happened.

        Telemetry never rides the event queue (extra queue entries would
        change fast-forward jumps and the drain's final cycle): windowed
        sampling runs a dedicated loop variant selected *once* per run, so
        a GPU without a hub executes the exact pre-telemetry loop.
        """
        deadline = (None if wall_timeout is None
                    else _monotonic() + wall_timeout)
        hub = self.telemetry
        if resume_from is not None:
            if cta_scheduler is not None:
                raise SimulationError(
                    "resume_from resumes the snapshotted scheduler; "
                    "do not pass cta_scheduler as well")
            cta_scheduler = self.cta_scheduler
            if cta_scheduler is None or self.cycle != resume_from.cycle:
                raise SimulationError(
                    "resume_from requires the GPU object returned by "
                    "Snapshot.restore() for that same snapshot")
            # No on_run_start/bind: the restored hub already holds the
            # run.start event and window position, the restored scheduler
            # is mid-flight.
        else:
            if cta_scheduler is None:
                raise SimulationError("a CTA scheduler is required "
                                      "(or resume_from= a snapshot)")
            if hub is not None:
                # Before bind(): policy on_bound hooks emit trace events
                # (lcs.monitor, cke.phase) that must follow run.start.
                hub.on_run_start(self.cycle)
            self.cta_scheduler = cta_scheduler
            cta_scheduler.bind(self)
        service = None
        if sanitizer is not None or checkpoint is not None \
                or saboteur is not None:
            service = _RunService(sanitizer, checkpoint, saboteur,
                                  self.cycle)
        if hub is not None and hub.window is not None:
            cycle = self._loop_windowed(cta_scheduler, cycle_accurate, hub,
                                        deadline, service)
        else:
            cycle = self._loop(cta_scheduler, cycle_accurate, deadline,
                               service)
        # All CTAs have completed; drain in-flight memory traffic (pending
        # write-throughs and late fills) so the memory-system statistics are
        # complete.  The clock advances with the drain: a kernel is not done
        # until its stores are visible.
        events = self.events
        while events:
            drain_to = events.next_time()
            events.run_due(drain_to)
            cycle = max(cycle, drain_to)
        self.cycle = cycle
        if hub is not None:
            hub.on_run_end(cycle)

    def _loop(self, cta_scheduler: "CTAScheduler", cycle_accurate: bool,
              deadline: float | None = None,
              service: "_RunService | None" = None) -> int:
        """The telemetry-free run loop (the pre-telemetry hot path)."""
        events = self.events
        sms = self.sms
        max_cycles = self.config.max_cycles
        cycle = self.cycle
        service_at = service.next_cycle if service is not None else None
        while not cta_scheduler.done:
            if deadline is not None and _monotonic() >= deadline:
                self.cycle = cycle
                saved = (service.on_timeout(self, cycle)
                         if service is not None else None)
                raise SimulationTimeout(
                    f"wall-clock timeout at cycle {cycle}; "
                    f"runs={self.runs!r}",
                    cycle=cycle, max_cycles=max_cycles, kind="wall",
                    checkpoint_cycle=saved)
            if service_at is not None and cycle >= service_at:
                self.cycle = cycle
                service_at = service.service(self, cycle)
            events.run_due(cycle)
            cta_scheduler.fill(cycle)
            active = False
            for sm in sms:
                # Mirror of SM.tick's entry guards: an SM with nothing in
                # the LD/ST unit and nothing issuable does nothing this
                # cycle, so skip the call (memory-bound phases spend most
                # cycles with every SM in this state).
                if ((sm.ldst and not sm.ldst_blocked)
                        or (sm.num_ready and not sm.gate_blocked)):
                    if sm.tick(cycle):
                        active = True
            if active:
                cycle += 1
            else:
                next_event = events.next_time()
                if next_event is None:
                    self.cycle = cycle
                    raise SimulationDeadlock(
                        f"cycle {cycle}: no progress possible; "
                        f"runs={self.runs!r}")
                if cycle_accurate:
                    cycle += 1
                else:
                    cycle = max(cycle + 1, next_event)
            if cycle > max_cycles:
                self.cycle = cycle
                raise SimulationTimeout(
                    f"exceeded max_cycles={max_cycles}; runs={self.runs!r}",
                    cycle=cycle, max_cycles=max_cycles, kind="max-cycles",
                    checkpoint_cycle=(service.checkpoint_cycle
                                      if service is not None else None))
        return cycle

    def _loop_windowed(self, cta_scheduler: "CTAScheduler",
                       cycle_accurate: bool, hub: "TelemetryHub",
                       deadline: float | None = None,
                       service: "_RunService | None" = None) -> int:
        """:meth:`_loop` plus window-boundary sampling.

        The boundary check sits at the *top* of the iteration, before
        events due at ``cycle`` fire, so a boundary crossed inside a
        fast-forward jump samples exactly the state a cycle-accurate run
        would have had at that cycle — nothing can have changed between
        the jump origin and the boundary (that is the fast-forward
        invariant), and events *at* the boundary fire after the sample in
        both modes.  Sampling reads state only; results are untouched.

        Window closes precede the timeout raise and the service check, so
        at any snapshot point every boundary <= cycle has been sampled —
        that makes the resume-time recomputation of ``boundary`` land on
        exactly the next unclosed window (no double-sampled or skipped
        windows across a checkpoint/restore).
        """
        events = self.events
        sms = self.sms
        max_cycles = self.config.max_cycles
        cycle = self.cycle
        window = hub.window
        boundary = (cycle // window + 1) * window
        service_at = service.next_cycle if service is not None else None
        while not cta_scheduler.done:
            while cycle >= boundary:
                hub.close_window(boundary)
                boundary += window
            if deadline is not None and _monotonic() >= deadline:
                self.cycle = cycle
                saved = (service.on_timeout(self, cycle)
                         if service is not None else None)
                raise SimulationTimeout(
                    f"wall-clock timeout at cycle {cycle}; "
                    f"runs={self.runs!r}",
                    cycle=cycle, max_cycles=max_cycles, kind="wall",
                    checkpoint_cycle=saved)
            if service_at is not None and cycle >= service_at:
                self.cycle = cycle
                service_at = service.service(self, cycle)
            events.run_due(cycle)
            cta_scheduler.fill(cycle)
            active = False
            for sm in sms:
                if ((sm.ldst and not sm.ldst_blocked)
                        or (sm.num_ready and not sm.gate_blocked)):
                    if sm.tick(cycle):
                        active = True
            if active:
                cycle += 1
            else:
                next_event = events.next_time()
                if next_event is None:
                    self.cycle = cycle
                    raise SimulationDeadlock(
                        f"cycle {cycle}: no progress possible; "
                        f"runs={self.runs!r}")
                if cycle_accurate:
                    cycle += 1
                else:
                    cycle = max(cycle + 1, next_event)
            if cycle > max_cycles:
                self.cycle = cycle
                raise SimulationTimeout(
                    f"exceeded max_cycles={max_cycles}; runs={self.runs!r}",
                    cycle=cycle, max_cycles=max_cycles, kind="max-cycles",
                    checkpoint_cycle=(service.checkpoint_cycle
                                      if service is not None else None))
        return cycle

    # ------------------------------------------------------------------ #
    @property
    def total_issued(self) -> int:
        return sum(sm.issued for sm in self.sms)
