"""Trace-level instruction set.

The simulator is trace-driven: each warp executes a straight-line list of
:class:`Instruction` objects.  Control flow, register identities and SIMT
divergence are resolved when the trace is built (``repro.workloads``), so an
instruction carries only what the timing model needs:

* ``ALU``       — occupies the warp for ``latency`` cycles (dependent chain);
* ``SHARED``    — shared-memory access; like ALU but with the shared-memory
                  latency (bank conflicts are folded into ``latency`` by the
                  trace builder);
* ``LD_GLOBAL`` — global load; ``lines`` holds the post-coalescer 128-byte
                  line addresses; the warp blocks until all lines return;
* ``ST_GLOBAL`` — global store; write-through traffic, the warp resumes once
                  the LD/ST unit has accepted every transaction;
* ``BARRIER``   — CTA-wide barrier;
* ``EXIT``      — warp termination (must be the last instruction).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Sequence


class Op(IntEnum):
    """Trace instruction kinds (see the module docstring for semantics)."""

    ALU = 0
    SHARED = 1
    LD_GLOBAL = 2
    ST_GLOBAL = 3
    BARRIER = 4
    EXIT = 5


_MEMORY_OPS = (Op.LD_GLOBAL, Op.ST_GLOBAL)


@dataclass(frozen=True, slots=True)
class Instruction:
    """A single trace instruction.

    ``lines`` is the tuple of distinct 128-byte line addresses the access
    touches after coalescing (empty for non-memory ops).  ``latency`` is the
    dependent-issue latency for ALU/SHARED ops and ignored for memory ops
    (their timing comes from the memory hierarchy).
    """

    op: Op
    latency: int = 1
    lines: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.op in _MEMORY_OPS:
            if not self.lines:
                raise ValueError(f"{self.op.name} instruction needs at least one line")
            if len(set(self.lines)) != len(self.lines):
                raise ValueError("memory instruction lines must be distinct (coalesced)")
        elif self.lines:
            raise ValueError(f"{self.op.name} instruction cannot carry line addresses")
        if self.latency < 1:
            raise ValueError("latency must be >= 1")

    @property
    def is_memory(self) -> bool:
        return self.op in _MEMORY_OPS


# Convenience constructors -------------------------------------------------

def alu(latency: int = 4) -> Instruction:
    """An arithmetic instruction with the given dependent latency."""
    return Instruction(Op.ALU, latency=latency)


def shared(latency: int = 24) -> Instruction:
    """A shared-memory access (latency includes any bank-conflict penalty)."""
    return Instruction(Op.SHARED, latency=latency)


def load(lines: Iterable[int]) -> Instruction:
    """A global load touching the given coalesced line addresses."""
    return Instruction(Op.LD_GLOBAL, lines=tuple(lines))


def store(lines: Iterable[int]) -> Instruction:
    """A global store touching the given coalesced line addresses."""
    return Instruction(Op.ST_GLOBAL, lines=tuple(lines))


def barrier() -> Instruction:
    return Instruction(Op.BARRIER)


def exit_() -> Instruction:
    return Instruction(Op.EXIT)


def validate_program(program: Sequence[Instruction]) -> None:
    """Check the static well-formedness rules for a warp trace.

    A valid program is non-empty, ends with exactly one EXIT (its last
    instruction), and contains no EXIT anywhere else.
    """
    if not program:
        raise ValueError("warp program must not be empty")
    if program[-1].op is not Op.EXIT:
        raise ValueError("warp program must end with EXIT")
    for inst in program[:-1]:
        if inst.op is Op.EXIT:
            raise ValueError("EXIT may only appear as the final instruction")


# Column traces -------------------------------------------------------------

#: Build-protocol flag: while true, a column-capable trace builder
#: (``repro.workloads.programs.TraceBuilder``) returns a
#: :class:`ColumnProgram` from ``build()`` instead of materialising
#: ``Instruction`` objects.  Toggled only by
#: :meth:`repro.sim.kernel.Kernel.build_warp_columns` around the builder
#: call; the simulator is single-threaded per process, so a plain module
#: flag (reset in a ``finally``) is race-free.
_COLUMN_MODE = False


class ColumnProgram:
    """Column (structure-of-arrays) form of a validated warp trace.

    The vector backend's per-warp representation: one ``bytes`` of opcode
    values plus parallel latency/line tuples, indexable by pc.  Carries
    exactly the fields the timing model reads — building one skips every
    ``Instruction`` allocation and per-instruction validation, which is a
    measurable share of short-run wall clock.
    """

    __slots__ = ("ops", "lat", "lines")

    def __init__(self, ops: bytes, lat: tuple, lines: tuple) -> None:
        self.ops = ops
        self.lat = lat
        self.lines = lines

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:
        return f"ColumnProgram({len(self.ops)} instructions)"


def program_columns(program: Sequence[Instruction]) -> ColumnProgram:
    """Column form of an ``Instruction`` sequence.

    The fallback for program builders that are not column-capable (replay
    kernels, hand-written builders): the instructions are materialised as
    usual and converted.  ``program`` must already be validated.
    """
    return ColumnProgram(
        bytes(inst.op for inst in program),
        tuple(inst.latency for inst in program),
        tuple(inst.lines for inst in program))
