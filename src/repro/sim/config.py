"""GPU hardware configuration.

The defaults model a Fermi-class GPU (GTX 480 / the configuration GPGPU-Sim
shipped for that generation), which is the class of machine the paper's
evaluation simulates: 15 SIMT cores, 32-wide warps, up to 8 CTAs and 48 warps
resident per core, a small per-core L1 data cache with a limited number of
MSHRs, a banked shared L2, and a handful of DRAM channels.

All latencies are expressed in core clock cycles; the simulator runs a single
clock domain (see DESIGN.md, "Out of scope").
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace


@dataclass(frozen=True)
class GPUConfig:
    """Immutable hardware description consumed by every simulator component.

    Use :func:`GPUConfig.small` for unit tests (tiny GPU, fast) and the
    default constructor for experiments.
    """

    # --- SIMT cores -------------------------------------------------------
    num_sms: int = 15
    warp_size: int = 32
    max_ctas_per_sm: int = 8
    max_warps_per_sm: int = 48
    registers_per_sm: int = 32768
    shared_mem_per_sm: int = 49152
    issue_width: int = 2          # independent warp schedulers per SM
    alu_latency: int = 4          # dependent-issue latency of a default ALU op
    shared_latency: int = 24      # shared-memory access latency (no conflicts)
    ldst_queue_depth: int = 8     # memory instructions the LD/ST unit buffers

    # --- L1 data cache (per SM) -------------------------------------------
    line_size: int = 128
    l1_size: int = 16 * 1024
    l1_assoc: int = 4
    l1_mshr_entries: int = 16
    l1_mshr_max_merge: int = 8
    l1_hit_latency: int = 1       # hits are satisfied by the LD/ST pipeline

    # --- Interconnect -----------------------------------------------------
    icnt_latency: int = 40        # one-way SM <-> L2 partition latency
    # Optional bandwidth model: transactions per cycle each direction can
    # carry (0 = unlimited, the default; contention is then modelled at
    # MSHRs, L2 banks and DRAM only — see docs/MODEL.md).
    icnt_bw_per_direction: int = 0

    # --- L2 cache (shared, banked by line address) -------------------------
    l2_num_banks: int = 6
    l2_size: int = 768 * 1024     # total across banks
    l2_assoc: int = 8
    l2_latency: int = 40
    l2_mshr_entries: int = 64     # per bank
    l2_mshr_max_merge: int = 16

    # --- DRAM ---------------------------------------------------------------
    dram_channels: int = 6
    dram_banks_per_channel: int = 8
    dram_row_lines: int = 16      # 128B lines per row buffer (2 KB rows)
    dram_t_cas: int = 40          # row-hit access latency
    dram_t_row_miss: int = 120    # precharge + activate + CAS
    dram_t_burst: int = 8         # channel bus occupancy per 128B transfer

    # --- Optional micro-architecture features (ablations) -------------------
    # Next-line prefetch into L1 on a demand miss (dropped, not stalled,
    # when no MSHR is free).  Helps streaming, wastes MSHRs on random access.
    l1_prefetch_next_line: bool = False
    # Write-combining: a store whose line matches one of the last few
    # accepted stores is absorbed instead of written through.
    store_coalescing: bool = False
    store_coalesce_window: int = 4

    # --- Simulation guard-rails ---------------------------------------------
    max_cycles: int = 200_000_000

    #: Fields where 0 means "feature off" rather than an invalid size.
    _ZERO_OK = ("icnt_bw_per_direction",)

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, bool):
                continue   # feature flags
            if not isinstance(value, int):
                raise ValueError(f"GPUConfig.{f.name} must be an int, got {value!r}")
            minimum = 0 if f.name in self._ZERO_OK else 1
            if value < minimum:
                raise ValueError(
                    f"GPUConfig.{f.name} must be >= {minimum}, got {value!r}")
        if self.l1_size % (self.line_size * self.l1_assoc):
            raise ValueError("l1_size must be a multiple of line_size * l1_assoc")
        if self.l2_size % self.l2_num_banks:
            raise ValueError("l2_size must divide evenly across l2_num_banks")
        bank_size = self.l2_size // self.l2_num_banks
        if bank_size % (self.line_size * self.l2_assoc):
            raise ValueError("per-bank l2 size must be a multiple of line_size * l2_assoc")
        if self.max_warps_per_sm < self.max_ctas_per_sm:
            raise ValueError("max_warps_per_sm must be >= max_ctas_per_sm")
        if self.issue_width > self.max_warps_per_sm:
            raise ValueError("issue_width cannot exceed max_warps_per_sm")

    # ------------------------------------------------------------------ #
    @property
    def max_threads_per_sm(self) -> int:
        return self.max_warps_per_sm * self.warp_size

    @property
    def l1_num_sets(self) -> int:
        return self.l1_size // (self.line_size * self.l1_assoc)

    @property
    def l2_bank_num_sets(self) -> int:
        return self.l2_size // self.l2_num_banks // (self.line_size * self.l2_assoc)

    def with_overrides(self, **kwargs) -> "GPUConfig":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **kwargs)

    @classmethod
    def kepler_class(cls, **kwargs) -> "GPUConfig":
        """A Kepler-class (GTX-Titan-like) machine: fewer, fatter cores.

        13 SMX-style cores with 16 CTA slots, 64 warp contexts and twice the
        register file.  Used by the E19 robustness experiment to check that
        the scheduling conclusions are not artefacts of the Fermi-class
        default.
        """
        defaults = dict(
            num_sms=13,
            max_ctas_per_sm=16,
            max_warps_per_sm=64,
            registers_per_sm=65536,
            l1_size=16 * 1024,
            l2_size=1536 * 1024,
            l2_num_banks=6,
            dram_channels=6,
        )
        defaults.update(kwargs)
        return cls(**defaults)

    @classmethod
    def small(cls, **kwargs) -> "GPUConfig":
        """A scaled-down GPU for unit tests: 2 SMs, small caches, short latencies.

        Keeps every structural feature (MSHRs, banking, row buffers) so tests
        exercise the same code paths as the full configuration.
        """
        defaults = dict(
            num_sms=2,
            max_ctas_per_sm=4,
            max_warps_per_sm=16,
            registers_per_sm=8192,
            shared_mem_per_sm=16384,
            l1_size=4 * 1024,
            l1_assoc=2,
            l1_mshr_entries=8,
            l1_mshr_max_merge=4,
            icnt_latency=10,
            l2_num_banks=2,
            l2_size=32 * 1024,
            l2_assoc=4,
            l2_latency=10,
            l2_mshr_entries=16,
            dram_channels=2,
            dram_banks_per_channel=4,
            dram_t_cas=20,
            dram_t_row_miss=50,
            dram_t_burst=4,
        )
        defaults.update(kwargs)
        return cls(**defaults)


DEFAULT_CONFIG = GPUConfig()
