"""Warp execution state.

A warp is the unit the per-SM schedulers operate on.  Its lifecycle::

    READY --issue ALU/SHARED--> WAIT_ALU --(latency event)--> READY
    READY --issue LD/ST------> WAIT_MEM --(all lines back)--> READY
    READY --issue BARRIER----> WAIT_BARRIER --(CTA arrives)--> READY
    READY --issue EXIT-------> DONE

``epoch`` increments every time the warp (re)enters READY; scheduler heaps
store the epoch at push time so stale entries can be skipped lazily.
"""

from __future__ import annotations

from enum import IntEnum
from typing import TYPE_CHECKING, Sequence

from .isa import Instruction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cta import CTA


class WarpState(IntEnum):
    READY = 0
    WAIT_ALU = 1
    WAIT_MEM = 2
    WAIT_BARRIER = 3
    DONE = 4


class Warp:
    __slots__ = ("cta", "idx", "program", "pc", "state", "epoch",
                 "issued", "last_issue", "scheduler", "age_key",
                 "state_since", "t_ready", "t_alu", "t_mem", "t_barrier")

    def __init__(self, cta: "CTA", idx: int, program: Sequence[Instruction]) -> None:
        self.cta = cta
        self.idx = idx
        self.program = program
        self.pc = 0
        self.state = WarpState.READY
        self.epoch = 0
        self.issued = 0
        self.last_issue = -1
        self.scheduler = None  # set by SM.dispatch
        # Stall accounting: cycles spent in each wait state (see SM).
        self.state_since = 0
        self.t_ready = 0
        self.t_alu = 0
        self.t_mem = 0
        self.t_barrier = 0
        # Fixed at dispatch: GTO prefers the oldest CTA, then the lowest
        # warp index.  (BAWS derives its key from cta.block_seq dynamically.)
        self.age_key = (cta.seq, idx)

    def __repr__(self) -> str:
        return (f"Warp(cta={self.cta.cta_id}, idx={self.idx}, "
                f"state={self.state.name}, pc={self.pc})")

    @property
    def is_ready(self) -> bool:
        return self.state == WarpState.READY

    @property
    def done(self) -> bool:
        return self.state == WarpState.DONE

    def next_instruction(self) -> Instruction:
        return self.program[self.pc]


class MemRequest:
    """One in-flight global memory instruction owned by the LD/ST unit.

    ``idx`` walks the transaction list one line per cycle; ``outstanding``
    counts lines that missed in L1 and have not returned yet; ``accepted``
    flips once every transaction has been processed by the LD/ST unit.
    """

    __slots__ = ("warp", "lines", "idx", "outstanding", "accepted", "is_store")

    def __init__(self, warp: Warp, lines: tuple[int, ...], is_store: bool) -> None:
        self.warp = warp
        self.lines = lines
        self.idx = 0
        self.outstanding = 0
        self.accepted = False
        self.is_store = is_store

    @property
    def complete(self) -> bool:
        return self.accepted and (self.is_store or self.outstanding == 0)
