"""Timeline sampling: occupancy and issue rate over time.

A :class:`TimelineSampler` rides the GPU's event queue and records, every
``period`` cycles, a :class:`Sample` of per-SM resident CTAs/warps and the
machine-wide issue count.  This is how the LCS drain phase, BCS pairing and
mixed-CKE backfill become *visible* (the occupancy staircase after the LCS
decision, for instance), and it costs one event per period — negligible.

Usage::

    gpu = GPU(config)
    sampler = TimelineSampler(gpu, period=500)
    gpu.run(scheduler)
    for sample in sampler.samples:
        print(sample.cycle, sample.mean_ctas_per_sm, sample.ipc_since_last)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .gpu import GPU


@dataclass(frozen=True)
class Sample:
    cycle: int
    ctas_per_sm: tuple[int, ...]
    warps_per_sm: tuple[int, ...]
    issued_total: int
    issued_since_last: int

    @property
    def mean_ctas_per_sm(self) -> float:
        return sum(self.ctas_per_sm) / len(self.ctas_per_sm)

    @property
    def mean_warps_per_sm(self) -> float:
        return sum(self.warps_per_sm) / len(self.warps_per_sm)


class TimelineSampler:
    """Attach to a GPU *before* ``run()``; samples accumulate in order."""

    def __init__(self, gpu: "GPU", period: int = 1000) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        self.gpu = gpu
        self.period = period
        self.samples: list[Sample] = []
        self._last_issued = 0
        gpu.events.schedule(period, self._tick, None)

    def _tick(self, now: int, _arg) -> None:
        gpu = self.gpu
        issued = gpu.total_issued
        self.samples.append(Sample(
            cycle=now,
            ctas_per_sm=tuple(sm.used_slots for sm in gpu.sms),
            warps_per_sm=tuple(sm.used_warps for sm in gpu.sms),
            issued_total=issued,
            issued_since_last=issued - self._last_issued,
        ))
        self._last_issued = issued
        # Keep sampling while the machine is busy; the GPU drains pending
        # events after completion, so stop once everything went idle.
        if any(sm.used_slots for sm in gpu.sms) or not self._done():
            gpu.events.schedule(now + self.period, self._tick, None)

    def _done(self) -> bool:
        scheduler = self.gpu.cta_scheduler
        return scheduler is not None and scheduler.done

    @property
    def ipc_series(self) -> list[float]:
        """Machine IPC per sampling period."""
        return [s.issued_since_last / self.period for s in self.samples]

    def occupancy_series(self) -> list[float]:
        return [s.mean_ctas_per_sm for s in self.samples]
