"""Memory-access coalescing.

Real hardware coalesces the 32 per-lane byte addresses of a warp's global
access into the minimal set of 128-byte transactions.  Our traces carry
post-coalescer line addresses, so coalescing runs once at trace-build time.
This module is the single place where byte-level access patterns become line
tuples, and it preserves the properties the timing model depends on:

* distinct lines only (hardware merges duplicate lanes);
* first-touch order (transactions issue in lane order);
* one transaction per 128-byte segment touched.
"""

from __future__ import annotations

from typing import Iterable


def coalesce(byte_addresses: Iterable[int], line_size: int = 128) -> tuple[int, ...]:
    """Collapse per-lane byte addresses into distinct line addresses.

    Order of first touch is preserved, matching the issue order of the
    generated transactions.
    """
    seen: dict[int, None] = {}
    for addr in byte_addresses:
        if addr < 0:
            raise ValueError("byte addresses must be non-negative")
        seen[addr // line_size] = None
    if not seen:
        raise ValueError("an access must touch at least one address")
    return tuple(seen)


def warp_access(base: int, stride: int, *, lanes: int = 32, elem_size: int = 4,
                line_size: int = 128) -> tuple[int, ...]:
    """Lines touched by a warp access ``base + lane * stride * elem_size``.

    ``stride`` is in elements: stride 1 with 4-byte elements is the classic
    fully-coalesced pattern (one 128-byte line per warp); stride 32 makes
    every lane hit its own line (32 transactions).
    """
    if lanes < 1 or lanes > 32:
        raise ValueError("lanes must be in 1..32")
    if stride < 0:
        raise ValueError("stride must be non-negative")
    return coalesce((base + lane * stride * elem_size for lane in range(lanes)),
                    line_size=line_size)


def transactions_per_access(stride: int, *, lanes: int = 32, elem_size: int = 4,
                            line_size: int = 128) -> int:
    """How many transactions a strided warp access generates (base aligned)."""
    return len(warp_access(0, stride, lanes=lanes, elem_size=elem_size,
                           line_size=line_size))
