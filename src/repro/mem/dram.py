"""DRAM timing model: channels, banks, row buffers, FR-FCFS scheduling.

Models the three effects CTA-scheduling studies care about:

* **latency** — a request pays CAS latency on a row-buffer hit and
  precharge+activate+CAS on a row-buffer miss;
* **bandwidth** — each 128-byte transfer occupies its channel's data bus for
  ``t_burst`` cycles, so concurrent requests queue behind one another;
* **row locality under contention** — the per-channel scheduler is
  FR-FCFS-like: among the oldest ``SCAN_WINDOW`` pending requests it first
  serves one that hits an open row on a ready bank, falling back to the
  oldest ready request.  (Pure FCFS would make interleaved streams from
  many cores thrash every row buffer, which real memory controllers avoid.)

The model is event-driven: requests enqueue, the channel wakes itself
through the GPU event queue, and read completions are delivered through the
callback supplied by the caller.
"""

from __future__ import annotations

from typing import Any, Callable

from ..sim.config import GPUConfig
from ..sim.events import EventQueue
from ..sim.stats import DRAMStats
from .address import dram_coordinates

#: How many of the oldest pending requests the scheduler considers for a
#: row hit (finite scheduler visibility, like real controllers).
SCAN_WINDOW = 32

ResponseCallback = Callable[[int, Any], None]


class _Request:
    __slots__ = ("line", "bank", "row", "callback", "arg", "is_write")

    def __init__(self, line: int, bank: int, row: int,
                 callback: ResponseCallback | None, arg: Any,
                 is_write: bool) -> None:
        self.line = line
        self.bank = bank
        self.row = row
        self.callback = callback
        self.arg = arg
        self.is_write = is_write


class _Channel:
    __slots__ = ("pending", "bus_free", "bank_ready", "open_row", "wake_at")

    def __init__(self, num_banks: int) -> None:
        self.pending: list[_Request] = []
        self.bus_free = 0
        self.bank_ready = [0] * num_banks
        self.open_row = [-1] * num_banks
        self.wake_at: int | None = None   # already-scheduled service time


class DRAMModel:
    """All channels of the device, scheduled FR-FCFS per channel."""

    __slots__ = ("_events", "_channels", "_banks", "_row_lines", "_t_cas",
                 "_t_row_miss", "_t_burst", "_num_channels", "stats")

    def __init__(self, config: GPUConfig, events: EventQueue) -> None:
        self._events = events
        self._num_channels = config.dram_channels
        self._banks = config.dram_banks_per_channel
        self._row_lines = config.dram_row_lines
        self._t_cas = config.dram_t_cas
        self._t_row_miss = config.dram_t_row_miss
        self._t_burst = config.dram_t_burst
        self._channels = [_Channel(self._banks)
                          for _ in range(self._num_channels)]
        self.stats = DRAMStats()

    # ------------------------------------------------------------------ #
    def read(self, line: int, now: int, callback: ResponseCallback,
             arg: Any = None) -> None:
        """Enqueue a read; ``callback(completion_cycle, arg)`` fires later."""
        self.stats.reads += 1
        self._enqueue(line, now, callback, arg, is_write=False)

    def write(self, line: int, now: int) -> None:
        """Enqueue a write (fire-and-forget; still occupies bank and bus)."""
        self.stats.writes += 1
        self._enqueue(line, now, None, None, is_write=True)

    def _enqueue(self, line: int, now: int, callback: ResponseCallback | None,
                 arg: Any, is_write: bool) -> None:
        coords = dram_coordinates(line, self._num_channels, self._banks,
                                  self._row_lines)
        channel = self._channels[coords.channel]
        channel.pending.append(
            _Request(line, coords.bank, coords.row, callback, arg, is_write))
        self._wake(coords.channel, max(now, channel.bus_free))

    # ------------------------------------------------------------------ #
    def _wake(self, channel_idx: int, when: int) -> None:
        """Arrange for :meth:`_service` to run at ``when`` (deduplicated:
        at most one *live* service event per channel; superseded events are
        recognised by their stamped time and ignored)."""
        channel = self._channels[channel_idx]
        if channel.wake_at is not None and channel.wake_at <= when:
            return
        channel.wake_at = when
        self._events.schedule(when, self._service, (channel_idx, when))

    def _service(self, now: int, arg: tuple[int, int]) -> None:
        channel_idx, stamp = arg
        channel = self._channels[channel_idx]
        if channel.wake_at != stamp:
            return  # superseded by an earlier wake
        channel.wake_at = None
        if not channel.pending:
            return
        if channel.bus_free > now:
            self._wake(channel_idx, channel.bus_free)
            return
        request = self._pick(channel, now)
        if request is None:
            # Every candidate's bank is mid-activate; retry when one frees.
            window = channel.pending[:SCAN_WINDOW]
            self._wake(channel_idx,
                       min(channel.bank_ready[r.bank] for r in window))
            return
        channel.pending.remove(request)
        bank = request.bank
        if channel.open_row[bank] == request.row:
            access_latency = self._t_cas
            self.stats.row_hits += 1
            channel.bank_ready[bank] = now + self._t_burst
        else:
            access_latency = self._t_row_miss
            self.stats.row_misses += 1
            channel.open_row[bank] = request.row
            # Precharge + activate occupies the bank, not the bus.
            channel.bank_ready[bank] = now + self._t_row_miss
        channel.bus_free = now + self._t_burst
        self.stats.bus_busy_cycles += self._t_burst
        if request.callback is not None:
            completion = now + access_latency + self._t_burst
            self._events.schedule(completion, request.callback, request.arg)
        if channel.pending:
            self._wake(channel_idx, channel.bus_free)

    def _pick(self, channel: _Channel, now: int) -> _Request | None:
        """FR-FCFS over the oldest SCAN_WINDOW requests."""
        window = channel.pending[:SCAN_WINDOW]
        oldest_ready = None
        for request in window:
            if channel.bank_ready[request.bank] > now:
                continue
            if channel.open_row[request.bank] == request.row:
                return request           # first ready row hit wins
            if oldest_ready is None:
                oldest_ready = request
        return oldest_ready

    # ------------------------------------------------------------------ #
    @property
    def pending_requests(self) -> int:
        return sum(len(ch.pending) for ch in self._channels)

    def telemetry_snapshot(self) -> dict:
        """Cumulative counters + queue depth for telemetry probes.

        The DRAM model's reporting interface (pure read): per-window bus
        utilization is ``Δbus_busy_cycles / (window × channels)``.
        """
        stats = self.stats
        return {
            "reads": stats.reads,
            "writes": stats.writes,
            "row_hits": stats.row_hits,
            "row_misses": stats.row_misses,
            "bus_busy_cycles": stats.bus_busy_cycles,
            "pending_requests": self.pending_requests,
            "channels": self._num_channels,
        }

    def open_row(self, line: int) -> int | None:
        """Currently open row of the bank serving ``line`` (None if closed)."""
        coords = dram_coordinates(line, self._num_channels, self._banks,
                                  self._row_lines)
        row = self._channels[coords.channel].open_row[coords.bank]
        return None if row < 0 else row
