"""Address-mapping helpers.

The whole memory system works in units of cache-line addresses ("lines"):
``line = byte_address // line_size``.  Workload generators produce line
addresses directly (the coalescer takes care of byte-level patterns), so
these helpers centralise the mapping from a line to cache sets, L2 banks and
DRAM channels/banks/rows.
"""

from __future__ import annotations

from dataclasses import dataclass


def line_of(byte_address: int, line_size: int) -> int:
    """Cache-line address containing ``byte_address``."""
    if byte_address < 0:
        raise ValueError("byte_address must be non-negative")
    return byte_address // line_size


def l2_bank_of(line: int, num_banks: int) -> int:
    """L2 partition a line maps to (low-order interleaving)."""
    return line % num_banks


@dataclass(frozen=True, slots=True)
class DRAMCoordinates:
    channel: int
    bank: int
    row: int


def dram_coordinates(line: int, channels: int, banks: int, row_lines: int) -> DRAMCoordinates:
    """Map a line address to (channel, bank, row).

    Interleaving is *row-chunked*: ``row_lines`` consecutive lines live in
    one (channel, bank, row), then the next chunk moves to the next channel.
    A sequential stream therefore produces runs of row-buffer hits while
    still spreading across channels and banks at coarse grain — the
    behaviour GPU memory controllers' address hashing aims for.  (Pure
    line-granularity interleaving makes every stream touch every channel,
    which together with many concurrent streams thrashes every row buffer.)
    """
    chunk = line // row_lines
    channel = chunk % channels
    bank = (chunk // channels) % banks
    row = chunk // (channels * banks)
    return DRAMCoordinates(channel, bank, row)
