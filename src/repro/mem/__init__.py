"""Memory-hierarchy substrate: caches, MSHRs, coalescing, DRAM, L2 fabric."""

from .address import DRAMCoordinates, dram_coordinates, l2_bank_of, line_of
from .cache import Access, Cache
from .coalescer import coalesce, transactions_per_access, warp_access
from .dram import DRAMModel
from .subsystem import MemorySubsystem

__all__ = [
    "DRAMCoordinates", "dram_coordinates", "l2_bank_of", "line_of",
    "Access", "Cache", "coalesce", "transactions_per_access", "warp_access",
    "DRAMModel", "MemorySubsystem",
]
