"""The shared memory system behind the per-SM L1s.

Wires together: a fixed-latency interconnect (SM <-> L2 partition), the
banked L2 (one :class:`~repro.mem.cache.Cache` per partition, with MSHRs and
an input queue that absorbs MSHR-full backpressure), and the DRAM channel
model.  All timing flows through the GPU's event queue.

Request lifecycle for a load that misses everywhere::

    SM L1 miss --icnt--> L2 lookup (miss, MSHR alloc) --> DRAM read
      --> L2 fill --icnt--> SM.mem_response (L1 fill, warps wake)

Stores are write-through from L1 and write-no-allocate at L2: a store that
hits in L2 is absorbed there; a store that misses is forwarded to DRAM.
Stores never generate responses (the SM considers a store complete once the
LD/ST unit accepted its transactions).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..sim.config import GPUConfig
from ..sim.events import EventQueue
from ..sim.stats import CacheStats
from .address import l2_bank_of
from .cache import Access, Cache
from .dram import DRAMModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.sm import SM


class MemorySubsystem:
    """Everything below the L1s: interconnect, L2 banks, DRAM."""

    __slots__ = ("_config", "_events", "_icnt", "_l2_latency", "_icnt_bw",
                 "_icnt_next_free", "l2_banks", "_bank_queues", "dram")

    def __init__(self, config: GPUConfig, events: EventQueue) -> None:
        self._config = config
        self._events = events
        self._icnt = config.icnt_latency
        self._l2_latency = config.l2_latency
        # Optional interconnect bandwidth model: when enabled, each
        # direction carries config.icnt_bw_per_direction transactions per
        # cycle; excess traffic queues (serialisation before the fixed
        # pipeline latency).
        self._icnt_bw = config.icnt_bw_per_direction
        self._icnt_next_free = [0.0, 0.0]   # [to L2, from L2]
        self.l2_banks = [
            Cache(
                f"L2[{bank}]",
                num_sets=config.l2_bank_num_sets,
                assoc=config.l2_assoc,
                mshr_entries=config.l2_mshr_entries,
                mshr_max_merge=config.l2_mshr_max_merge,
            )
            for bank in range(config.l2_num_banks)
        ]
        # Requests rejected by a full L2 MSHR wait here and are retried on
        # every fill of that bank.
        self._bank_queues: list[deque[tuple["SM", int]]] = [
            deque() for _ in range(config.l2_num_banks)
        ]
        self.dram = DRAMModel(config, events)

    # ------------------------------------------------------------------ #
    def _icnt_arrival(self, direction: int, start: int) -> int:
        """Cycle a transaction injected at ``start`` crosses the network."""
        if not self._icnt_bw:
            return start + self._icnt
        slot = max(float(start), self._icnt_next_free[direction])
        self._icnt_next_free[direction] = slot + 1.0 / self._icnt_bw
        return int(slot) + self._icnt

    # ------------------------------------------------------------------ #
    # SM-facing API (called by the LD/ST unit on an L1 miss / write-through)
    def load(self, sm: "SM", line: int, now: int) -> None:
        """Forward an L1 load miss toward L2."""
        self._events.schedule(self._icnt_arrival(0, now),
                              self._on_l2_load, (sm, line))

    def store(self, sm: "SM", line: int, now: int) -> None:
        """Forward a write-through store toward L2."""
        self._events.schedule(self._icnt_arrival(0, now),
                              self._on_l2_store, (sm, line))

    # ------------------------------------------------------------------ #
    def _on_l2_load(self, now: int, arg: tuple["SM", int]) -> None:
        sm, line = arg
        bank = l2_bank_of(line, len(self.l2_banks))
        self._l2_lookup(now, bank, sm, line, queue_on_stall=True)

    def _l2_lookup(self, now: int, bank: int, sm: "SM", line: int,
                   queue_on_stall: bool) -> bool:
        """Run one L2 load lookup; returns False if it stalled (MSHR full)."""
        cache = self.l2_banks[bank]
        outcome = cache.lookup_load(line, sm)
        if outcome is Access.HIT:
            self._events.schedule(
                self._icnt_arrival(1, now + self._l2_latency),
                self._deliver, (sm, line))
            return True
        if outcome is Access.MISS:
            self.dram.read(line, now + self._l2_latency,
                           self._on_dram_fill, (bank, line))
            return True
        if outcome is Access.MERGED:
            return True
        # Access.STALL: the bank's MSHR (or merge capacity) is exhausted.
        if queue_on_stall:
            self._bank_queues[bank].append((sm, line))
        return False

    def _on_l2_store(self, now: int, arg: tuple["SM", int]) -> None:
        sm, line = arg
        bank = l2_bank_of(line, len(self.l2_banks))
        cache = self.l2_banks[bank]
        if not cache.write_probe(line):
            # Write-no-allocate: L2 miss goes straight to DRAM.
            self.dram.write(line, now + self._l2_latency)

    def _on_dram_fill(self, now: int, arg: tuple[int, int]) -> None:
        bank, line = arg
        cache = self.l2_banks[bank]
        for sm in cache.fill(line):
            self._events.schedule(self._icnt_arrival(1, now),
                                  self._deliver, (sm, line))
        self._drain_bank_queue(now, bank)

    def _drain_bank_queue(self, now: int, bank: int) -> None:
        """Retry queued requests now that an MSHR entry freed up."""
        queue = self._bank_queues[bank]
        while queue:
            sm, line = queue[0]
            if not self._l2_lookup(now, bank, sm, line, queue_on_stall=False):
                break
            queue.popleft()

    @staticmethod
    def _deliver(now: int, arg: tuple["SM", int]) -> None:
        sm, line = arg
        sm.mem_response(now, line)

    # ------------------------------------------------------------------ #
    def l2_stats(self) -> CacheStats:
        """Aggregate counters across all L2 banks."""
        total = CacheStats()
        for bank in self.l2_banks:
            total.add(bank.stats)
        return total

    @property
    def queued_requests(self) -> int:
        return sum(len(q) for q in self._bank_queues)

    def telemetry_snapshot(self) -> dict:
        """Aggregate L2 counters + queue pressure for telemetry probes.

        The memory system's reporting interface (pure read): sums the
        per-bank cache snapshots and adds the bank-queue backlog (requests
        parked on full MSHRs, the backpressure signal).
        """
        accesses = hits = misses = merges = stalls = occupancy = 0
        for bank in self.l2_banks:
            snap = bank.telemetry_snapshot()
            accesses += snap["accesses"]
            hits += snap["hits"]
            misses += snap["misses"]
            merges += snap["merges"]
            stalls += snap["mshr_stalls"]
            occupancy += snap["mshr_occupancy"]
        return {
            "accesses": accesses,
            "hits": hits,
            "misses": misses,
            "merges": merges,
            "mshr_stalls": stalls,
            "mshr_occupancy": occupancy,
            "queued_requests": self.queued_requests,
            "dram_pending": self.dram.pending_requests,
        }
