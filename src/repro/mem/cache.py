"""Set-associative cache with LRU replacement and MSHRs.

Used for both the per-SM L1 data caches and the banked shared L2.  The cache
is a *tag store only* — data values are never modelled, only presence and
timing-relevant state.

Load path outcomes (:class:`Access`):

* ``HIT``          — line present; satisfied immediately.
* ``MISS``         — new MSHR entry allocated; the caller must forward the
                     request down the hierarchy and later call :meth:`fill`.
* ``MERGED``       — a request for the same line is already outstanding; the
                     waiter was appended to the existing MSHR entry.
* ``STALL``        — no MSHR entry free, or the matching entry is at its
                     merge capacity; the caller must retry later
                     (backpressure).

Stores are write-through / no-allocate (the policy GPGPU-Sim uses for global
stores in the Fermi model): :meth:`write_probe` updates LRU state on a hit
and never allocates; the caller forwards the write down the hierarchy
unconditionally.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Any

from ..sim.stats import CacheStats


class Access(IntEnum):
    HIT = 0
    MISS = 1
    MERGED = 2
    STALL = 3


class Cache:
    """A single cache (one L1, or one L2 bank)."""

    __slots__ = ("name", "num_sets", "assoc", "mshr_entries", "mshr_max_merge",
                 "_sets", "_mshr", "stats")

    def __init__(self, name: str, num_sets: int, assoc: int,
                 mshr_entries: int, mshr_max_merge: int) -> None:
        if num_sets < 1 or assoc < 1:
            raise ValueError("cache geometry must be positive")
        if mshr_entries < 1 or mshr_max_merge < 1:
            raise ValueError("MSHR geometry must be positive")
        self.name = name
        self.num_sets = num_sets
        self.assoc = assoc
        self.mshr_entries = mshr_entries
        self.mshr_max_merge = mshr_max_merge
        # One insertion-ordered dict per set: oldest key is the LRU victim.
        self._sets: list[dict[int, None]] = [{} for _ in range(num_sets)]
        # line -> list of waiters registered by the caller.
        self._mshr: dict[int, list[Any]] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    # The set-index expression is inlined in the probes below: lookup_load
    # and write_probe run once per memory transaction, and the extra method
    # call showed up in profiles.

    def lookup_load(self, line: int, waiter: Any) -> Access:
        """Probe for a load; register ``waiter`` on a miss/merge."""
        stats = self.stats
        tags = self._sets[line % self.num_sets]
        if line in tags:
            # LRU touch: move to the most-recently-used end.
            del tags[line]
            tags[line] = None
            stats.accesses += 1
            stats.hits += 1
            return Access.HIT
        mshr = self._mshr
        pending = mshr.get(line)
        if pending is not None:
            if len(pending) >= self.mshr_max_merge:
                stats.mshr_stalls += 1
                return Access.STALL
            pending.append(waiter)
            stats.accesses += 1
            stats.merges += 1
            return Access.MERGED
        if len(mshr) >= self.mshr_entries:
            stats.mshr_stalls += 1
            return Access.STALL
        mshr[line] = [waiter]
        stats.accesses += 1
        stats.misses += 1
        return Access.MISS

    def write_probe(self, line: int) -> bool:
        """Probe for a store (write-through, no allocate). Returns hit?"""
        stats = self.stats
        stats.write_accesses += 1
        tags = self._sets[line % self.num_sets]
        if line in tags:
            del tags[line]
            tags[line] = None
            stats.write_hits += 1
            return True
        return False

    def fill(self, line: int) -> list[Any]:
        """Install a returning line; pop and return its registered waiters.

        Evicts the LRU way if the set is full.  Filling a line with no MSHR
        entry (e.g. a prefetch) is allowed and returns an empty list.
        """
        waiters = self._mshr.pop(line, [])
        tags = self._sets[line % self.num_sets]
        if line not in tags:
            if len(tags) >= self.assoc:
                victim = next(iter(tags))
                del tags[victim]
                self.stats.evictions += 1
            tags[line] = None
            self.stats.fills += 1
        return waiters

    # ------------------------------------------------------------------ #
    def contains(self, line: int) -> bool:
        """Non-intrusive presence check (does not touch LRU state)."""
        return line in self._sets[line % self.num_sets]

    def pending(self, line: int) -> bool:
        """True if a miss for this line is outstanding."""
        return line in self._mshr

    @property
    def mshr_free(self) -> int:
        return self.mshr_entries - len(self._mshr)

    @property
    def outstanding_misses(self) -> int:
        return len(self._mshr)

    def telemetry_snapshot(self) -> dict:
        """Cumulative counters + instantaneous MSHR state for telemetry.

        This is the cache's *reporting* interface: probes read it at
        window boundaries instead of groveling through ``stats``
        attributes, so the counter layout can evolve without touching the
        telemetry layer.  Pure read — never mutates tag or MSHR state.
        """
        stats = self.stats
        return {
            "name": self.name,
            "accesses": stats.accesses,
            "hits": stats.hits,
            "misses": stats.misses,
            "merges": stats.merges,
            "mshr_stalls": stats.mshr_stalls,
            "write_accesses": stats.write_accesses,
            "mshr_occupancy": len(self._mshr),
            "mshr_entries": self.mshr_entries,
        }

    def flush(self) -> None:
        """Drop all cached lines (MSHRs must be drained first)."""
        if self._mshr:
            raise RuntimeError(f"cannot flush {self.name}: {len(self._mshr)} misses pending")
        for tags in self._sets:
            tags.clear()
