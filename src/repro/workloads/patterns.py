"""Address-pattern building blocks for synthetic kernels.

All patterns work in units of 128-byte cache lines and are fully
deterministic: randomness comes from :func:`rng_for`, which seeds a
generator from (suite seed, kernel name, CTA id, warp index) via numpy's
``SeedSequence`` (stable across processes and platforms).

These are the signatures that drive the paper's phenomena:

* :func:`stream_lines`          — unique coalesced lines, no reuse
  (bandwidth-bound);
* :func:`private_footprint`     — a small per-warp region accessed randomly
  (cache-sensitive: hit if few CTAs resident, thrash if many);
* :func:`gather_lines`          — multi-line uncoalesced accesses (MSHR
  pressure);
* :func:`hot_cold_lines`        — a small shared hot set mixed with a large
  cold region (irregular/graph);
* :func:`tile_with_halo`        — per-CTA tile plus a halo overlapping the
  *next* CTA's tile (inter-CTA locality: the BCS target).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

#: Default global seed for the whole suite (overridable per kernel factory).
DEFAULT_SEED = 20140219  # HPCA 2014 conference dates


def rng_for(seed: int, kernel_name: str, cta_id: int, warp_idx: int) -> np.random.Generator:
    """A deterministic per-warp random generator."""
    salt = zlib.crc32(kernel_name.encode("utf-8"))
    return np.random.default_rng(
        np.random.SeedSequence([seed, salt, cta_id, warp_idx]))


def region_base(kernel_name: str, which: int = 0) -> int:
    """A deterministic, well-separated line-address base for a kernel array.

    Different kernels (and different arrays of one kernel) get regions at
    least 2**22 lines apart, so concurrent kernels never alias.
    """
    salt = zlib.crc32(kernel_name.encode("utf-8")) % 997
    return (salt * 16 + which) * (1 << 22)


@dataclass(frozen=True)
class Region:
    """A contiguous array of cache lines."""

    base: int
    length: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.length < 1:
            raise ValueError("region must have non-negative base, positive length")

    def line(self, offset: int) -> int:
        return self.base + (offset % self.length)


# --------------------------------------------------------------------------- #
def stream_lines(region: Region, stream_index: int, count: int) -> list[int]:
    """``count`` unique consecutive lines for the ``stream_index``-th stream.

    Each stream (typically one per warp) walks its own disjoint slice, the
    classic fully-coalesced streaming pattern: no reuse anywhere.
    """
    start = stream_index * count
    return [region.line(start + i) for i in range(count)]


def private_footprint(region: Region, owner_index: int, footprint: int,
                      rng: np.random.Generator, accesses: int) -> list[int]:
    """Random accesses within a small private footprint.

    Owner ``owner_index`` owns lines ``[owner*footprint, (owner+1)*footprint)``
    of the region.  Reuse is high *if* the footprint stays cache-resident —
    which is exactly what the number of co-resident CTAs decides.
    """
    base = owner_index * footprint
    offsets = rng.integers(0, footprint, size=accesses)
    return [region.line(base + int(off)) for off in offsets]


def gather_lines(region: Region, rng: np.random.Generator, accesses: int,
                 lines_per_access: int) -> list[tuple[int, ...]]:
    """Uncoalesced gathers: each access touches several distinct lines."""
    out: list[tuple[int, ...]] = []
    for _ in range(accesses):
        offsets = rng.choice(region.length, size=lines_per_access, replace=False)
        out.append(tuple(region.base + int(off) for off in offsets))
    return out


def hot_cold_lines(hot: Region, cold: Region, rng: np.random.Generator,
                   accesses: int, hot_fraction: float) -> list[int]:
    """A mix of a small shared hot set and a large cold region."""
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")
    picks = rng.random(accesses) < hot_fraction
    hot_offsets = rng.integers(0, hot.length, size=accesses)
    cold_offsets = rng.integers(0, cold.length, size=accesses)
    return [hot.line(int(h)) if is_hot else cold.line(int(c))
            for is_hot, h, c in zip(picks, hot_offsets, cold_offsets)]


def tile_with_halo(region: Region, cta_id: int, tile_lines: int,
                   halo_lines: int, offset: int = 0) -> list[int]:
    """The read set of CTA ``cta_id`` in a 1-D stencil decomposition.

    CTA *i* owns tile ``[i*T, (i+1)*T)`` and additionally reads the first
    ``halo_lines`` of CTA *i+1*'s tile — so consecutive CTAs share exactly
    ``halo_lines`` lines.  Placed on the same core close in time (BCS+BAWS),
    the shared lines are fetched once; spread across cores (baseline), they
    are fetched twice.  ``offset`` shifts the whole plane (time-marching
    stencils read a different plane per step).
    """
    if halo_lines < 0 or tile_lines < 1:
        raise ValueError("tile_lines must be >= 1, halo_lines >= 0")
    if offset < 0:
        raise ValueError("offset must be non-negative")
    start = offset + cta_id * tile_lines
    return [region.line(start + i) for i in range(tile_lines + halo_lines)]


def warp_slice(lines: list[int], warp_idx: int, num_warps: int) -> list[int]:
    """Round-robin split of a CTA-wide line list among its warps."""
    if not 0 <= warp_idx < num_warps:
        raise ValueError("warp_idx out of range")
    return lines[warp_idx::num_warps]
