"""Trace builder: composes per-warp instruction lists.

``TraceBuilder`` is a tiny fluent helper the benchmark factories use to
assemble warp programs; it enforces the ISA's well-formedness rules (single
trailing EXIT) via :func:`repro.sim.isa.validate_program` at build time.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..sim.isa import Instruction, Op, validate_program


class TraceBuilder:
    """Accumulates instructions for one warp."""

    def __init__(self, *, alu_latency: int = 4, shared_latency: int = 24) -> None:
        if alu_latency < 1 or shared_latency < 1:
            raise ValueError("latencies must be >= 1")
        self._alu_latency = alu_latency
        self._shared_latency = shared_latency
        self._program: list[Instruction] = []
        self._built = False

    # ------------------------------------------------------------------ #
    def alu(self, count: int = 1, latency: int | None = None) -> "TraceBuilder":
        latency = latency if latency is not None else self._alu_latency
        inst = Instruction(Op.ALU, latency=latency)
        self._program.extend([inst] * count)
        return self

    def shared(self, count: int = 1, latency: int | None = None) -> "TraceBuilder":
        latency = latency if latency is not None else self._shared_latency
        inst = Instruction(Op.SHARED, latency=latency)
        self._program.extend([inst] * count)
        return self

    def load(self, lines: int | Iterable[int]) -> "TraceBuilder":
        if isinstance(lines, int):
            lines = (lines,)
        self._program.append(Instruction(Op.LD_GLOBAL, lines=tuple(lines)))
        return self

    def load_strided(self, base_byte: int, stride_elems: int, *,
                     lanes: int = 32, elem_size: int = 4) -> "TraceBuilder":
        """A byte-level warp access, coalesced by the hardware rules.

        Lane *i* reads ``base_byte + i * stride_elems * elem_size``; the
        coalescer collapses the 32 lanes into the minimal set of 128-byte
        transactions (1 for unit stride, up to 32 for scattered strides).
        This is the entry point for users thinking in addresses rather
        than cache lines.
        """
        from ..mem.coalescer import warp_access
        lines = warp_access(base_byte, stride_elems, lanes=lanes,
                            elem_size=elem_size)
        self._program.append(Instruction(Op.LD_GLOBAL, lines=lines))
        return self

    def load_each(self, lines: Iterable[int],
                  alu_between: int = 0) -> "TraceBuilder":
        """One single-line load per element, optionally interleaved with ALU."""
        for line in lines:
            self.load(line)
            if alu_between:
                self.alu(alu_between)
        return self

    def store(self, lines: int | Iterable[int]) -> "TraceBuilder":
        if isinstance(lines, int):
            lines = (lines,)
        self._program.append(Instruction(Op.ST_GLOBAL, lines=tuple(lines)))
        return self

    def barrier(self) -> "TraceBuilder":
        self._program.append(Instruction(Op.BARRIER))
        return self

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._program)

    def build(self) -> list[Instruction]:
        """Append EXIT, validate, and return the finished program."""
        if self._built:
            raise RuntimeError("TraceBuilder.build() may only be called once")
        self._built = True
        self._program.append(Instruction(Op.EXIT))
        validate_program(self._program)
        return self._program


def instruction_mix(program: Sequence[Instruction]) -> dict[str, int]:
    """Histogram of opcodes (used by the benchmark-characteristics table)."""
    mix: dict[str, int] = {}
    for inst in program:
        mix[inst.op.name] = mix.get(inst.op.name, 0) + 1
    return mix


def memory_intensity(program: Sequence[Instruction]) -> float:
    """Fraction of instructions that access global memory."""
    if not program:
        return 0.0
    mem = sum(1 for inst in program if inst.is_memory)
    return mem / len(program)
