"""Trace builder: composes per-warp instruction lists.

``TraceBuilder`` is a tiny fluent helper the benchmark factories use to
assemble warp programs; it enforces the ISA's well-formedness rules (the
same checks ``Instruction`` and :func:`repro.sim.isa.validate_program`
apply) as the rows are appended, which makes two build outputs possible
from one accumulation:

* the classic ``list[Instruction]`` (with non-memory instructions
  *interned* — ``Instruction`` is a frozen value type, so the thousands
  of identical ALU/EXIT objects a suite kernel used to allocate per warp
  collapse into shared singletons);
* a :class:`repro.sim.isa.ColumnProgram` when the build runs under
  ``Kernel.build_warp_columns`` (the vector backend's path), skipping
  ``Instruction`` materialisation entirely.

Both encode the identical (op, latency, lines) rows, so the simulator
cores execute the same trace either way.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..sim import isa as _isa
from ..sim.isa import ColumnProgram, Instruction, Op

#: Interned non-memory instructions, keyed by ``(op, latency)``.  Bounded
#: in practice by the handful of distinct latencies the factories use.
_NONMEM_CACHE: dict[tuple[Op, int], Instruction] = {}


class TraceBuilder:
    """Accumulates instructions for one warp."""

    def __init__(self, *, alu_latency: int = 4, shared_latency: int = 24) -> None:
        if alu_latency < 1 or shared_latency < 1:
            raise ValueError("latencies must be >= 1")
        self._alu_latency = alu_latency
        self._shared_latency = shared_latency
        self._ops: list[Op] = []
        self._lat: list[int] = []
        self._lines: list[tuple[int, ...]] = []
        self._built = False
        self._columns = _isa._COLUMN_MODE

    # ------------------------------------------------------------------ #
    def alu(self, count: int = 1, latency: int | None = None) -> "TraceBuilder":
        latency = latency if latency is not None else self._alu_latency
        if latency < 1:
            raise ValueError("latency must be >= 1")
        self._ops.extend((Op.ALU,) * count)
        self._lat.extend((latency,) * count)
        self._lines.extend(((),) * count)
        return self

    def shared(self, count: int = 1, latency: int | None = None) -> "TraceBuilder":
        latency = latency if latency is not None else self._shared_latency
        if latency < 1:
            raise ValueError("latency must be >= 1")
        self._ops.extend((Op.SHARED,) * count)
        self._lat.extend((latency,) * count)
        self._lines.extend(((),) * count)
        return self

    def _memory(self, op: Op, lines: int | Iterable[int]) -> "TraceBuilder":
        if isinstance(lines, int):
            lines = (lines,)
        else:
            lines = tuple(lines)
        if not lines:
            raise ValueError(f"{op.name} instruction needs at least one line")
        if len(set(lines)) != len(lines):
            raise ValueError("memory instruction lines must be distinct (coalesced)")
        self._ops.append(op)
        self._lat.append(1)
        self._lines.append(lines)
        return self

    def load(self, lines: int | Iterable[int]) -> "TraceBuilder":
        return self._memory(Op.LD_GLOBAL, lines)

    def load_strided(self, base_byte: int, stride_elems: int, *,
                     lanes: int = 32, elem_size: int = 4) -> "TraceBuilder":
        """A byte-level warp access, coalesced by the hardware rules.

        Lane *i* reads ``base_byte + i * stride_elems * elem_size``; the
        coalescer collapses the 32 lanes into the minimal set of 128-byte
        transactions (1 for unit stride, up to 32 for scattered strides).
        This is the entry point for users thinking in addresses rather
        than cache lines.
        """
        from ..mem.coalescer import warp_access
        lines = warp_access(base_byte, stride_elems, lanes=lanes,
                            elem_size=elem_size)
        return self._memory(Op.LD_GLOBAL, lines)

    def load_each(self, lines: Iterable[int],
                  alu_between: int = 0) -> "TraceBuilder":
        """One single-line load per element, optionally interleaved with ALU."""
        for line in lines:
            self.load(line)
            if alu_between:
                self.alu(alu_between)
        return self

    def store(self, lines: int | Iterable[int]) -> "TraceBuilder":
        return self._memory(Op.ST_GLOBAL, lines)

    def barrier(self) -> "TraceBuilder":
        self._ops.append(Op.BARRIER)
        self._lat.append(1)
        self._lines.append(())
        return self

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._ops)

    def build(self) -> "list[Instruction] | ColumnProgram":
        """Append EXIT and return the finished program.

        Well-formedness is enforced as rows are appended (the fluent API
        cannot express an interior EXIT), so the output always satisfies
        :func:`repro.sim.isa.validate_program` — which
        ``Kernel.build_warp_program`` re-checks independently.
        """
        if self._built:
            raise RuntimeError("TraceBuilder.build() may only be called once")
        self._built = True
        ops = self._ops
        lat = self._lat
        all_lines = self._lines
        ops.append(Op.EXIT)
        lat.append(1)
        all_lines.append(())
        if self._columns:
            return ColumnProgram(bytes(ops), tuple(lat), tuple(all_lines))
        cache = _NONMEM_CACHE
        program: list[Instruction] = []
        append = program.append
        for op, latency, lines in zip(ops, lat, all_lines):
            if lines:
                append(Instruction(op, latency, lines))
            else:
                key = (op, latency)
                inst = cache.get(key)
                if inst is None:
                    inst = Instruction(op, latency=latency)
                    cache[key] = inst
                append(inst)
        return program


def instruction_mix(program: Sequence[Instruction]) -> dict[str, int]:
    """Histogram of opcodes (used by the benchmark-characteristics table)."""
    mix: dict[str, int] = {}
    for inst in program:
        mix[inst.op.name] = mix.get(inst.op.name, 0) + 1
    return mix


def memory_intensity(program: Sequence[Instruction]) -> float:
    """Fraction of instructions that access global memory."""
    if not program:
        return 0.0
    mem = sum(1 for inst in program if inst.is_memory)
    return mem / len(program)
