"""The benchmark suite.

Twenty-two synthetic kernels whose memory/compute signatures mirror the
Rodinia/Parboil/ISPASS-class workloads GPGPU scheduling papers evaluate on.
The fifteen ``CORE_SET`` kernels form the evaluated suite of the E1–E11
tables; the remainder are extension kernels used by E17/E18 and the tests.
Each is built from the address patterns in :mod:`repro.workloads.patterns`;
the *category* says which phenomenon the kernel is designed to exhibit:

``compute``    issue-bound; more CTAs never hurt (MM-style tiled matmul,
               arithmetic kernels).
``bandwidth``  DRAM-bandwidth-bound streaming; performance saturates at a
               low CTA count and stays flat (the mixed-CKE donors).
``cache``      small per-warp/per-CTA working sets with high reuse; L1
               capacity decides everything, so maximum occupancy *thrashes*
               and LCS wins big.
``mshr``       uncoalesced gathers that exhaust the L1 MSHRs at low
               occupancy; extra CTAs only add queueing.
``irregular``  graph-style mixes of a hot shared set and cold random lines.
``locality``   1-D stencil decompositions where consecutive CTAs share halo
               lines — the BCS/BAWS targets.

Every factory takes ``scale`` (scales the grid size, so tests can run tiny
versions of the exact same code paths) and ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..sim.isa import Instruction
from ..sim.kernel import Kernel
from .patterns import (DEFAULT_SEED, Region, gather_lines, hot_cold_lines,
                       private_footprint, region_base, rng_for, stream_lines,
                       tile_with_halo, warp_slice)
from .programs import TraceBuilder


def _scaled_ctas(base: int, scale: float, minimum: int = 6) -> int:
    if scale <= 0:
        raise ValueError("scale must be positive")
    return max(minimum, int(round(base * scale)))


# =========================================================================== #
# compute-bound kernels
# =========================================================================== #

def make_compute(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """CP-style arithmetic kernel: long ALU chains, a trickle of loads."""
    name = "compute"
    num_ctas = _scaled_ctas(480, scale)
    warps_per_cta = 6
    region = Region(region_base(name), 1 << 20)

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        stream = cta_id * warps_per_cta + warp_idx
        lines = stream_lines(region, stream, 4)
        tb = TraceBuilder()
        for i in range(24):
            tb.alu(10)
            if i % 6 == 0:
                tb.load(lines[i // 6])
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build, regs_per_thread=21,
                  tags=("compute",))


def make_blackscholes(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """BLK-style option pricing: long *high-latency* dependency chains
    (transcendental-heavy code).  Needs many resident warps to hide its own
    ALU latency, so its performance keeps scaling all the way to maximum
    occupancy — which makes it the ideal backfill partner for mixed
    concurrent kernel execution."""
    name = "blackscholes"
    num_ctas = _scaled_ctas(480, scale)
    warps_per_cta = 6
    region = Region(region_base(name), 1 << 20)

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        stream = cta_id * warps_per_cta + warp_idx
        lines = stream_lines(region, stream, 2)
        tb = TraceBuilder()
        tb.load(lines[0])
        for _i in range(12):
            tb.alu(20, latency=12)
        tb.load(lines[1])
        tb.alu(12, latency=12)
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build, regs_per_thread=21,
                  tags=("compute", "latency"))


def make_matmul(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """MM-style tiled matrix multiply: shared-memory tiles, barriers,
    B-matrix lines shared by all warps of a CTA (intra-CTA reuse)."""
    name = "matmul"
    num_ctas = _scaled_ctas(300, scale)
    warps_per_cta = 8
    tiles = 8
    a_region = Region(region_base(name, 0), 1 << 20)
    b_region = Region(region_base(name, 1), 1 << 20)
    c_region = Region(region_base(name, 2), 1 << 20)

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        tb = TraceBuilder()
        for tile in range(tiles):
            a_line = a_region.line((cta_id * tiles + tile) * warps_per_cta + warp_idx)
            b_line = b_region.line(cta_id * tiles + tile)  # shared in the CTA
            tb.load(a_line).load(b_line)
            tb.barrier()
            tb.shared(4).alu(24)
            tb.barrier()
        out = (cta_id * warps_per_cta + warp_idx) * 2
        tb.store(c_region.line(out)).store(c_region.line(out + 1))
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build, regs_per_thread=24,
                  shmem_per_cta=8192, tags=("compute", "shared"))


def make_lud(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """LUD-style factorisation step: shared-memory heavy, occupancy limited
    to 2 CTAs/SM by its shared-memory appetite."""
    name = "lud"
    num_ctas = _scaled_ctas(120, scale)
    warps_per_cta = 4
    region = Region(region_base(name), 1 << 16)

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        tb = TraceBuilder()
        base = cta_id * 8
        for round_idx in range(12):
            tb.load(region.line(base + (round_idx + warp_idx) % 8))
            tb.shared(6).alu(16)
            tb.barrier()
        tb.store(region.line(base + warp_idx))
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build, regs_per_thread=24,
                  shmem_per_cta=24576, tags=("compute", "shared"))


def make_nw(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """NW-style wavefront: small CTAs, barrier after every diagonal step."""
    name = "nw"
    num_ctas = _scaled_ctas(180, scale)
    warps_per_cta = 2
    region = Region(region_base(name), 1 << 18)

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        tb = TraceBuilder()
        stream = cta_id * warps_per_cta + warp_idx
        lines = stream_lines(region, stream, 4)
        for round_idx in range(16):
            tb.shared(4).alu(6)
            if round_idx % 4 == 0:
                tb.load(lines[round_idx // 4])
            tb.barrier()
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build, regs_per_thread=24,
                  shmem_per_cta=16384, tags=("compute", "barrier"))


# =========================================================================== #
# bandwidth-bound kernels
# =========================================================================== #

def make_streaming(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """STREAM-style copy/scale: fully coalesced, zero reuse, DRAM-bound.

    Accesses are vectorised (float4 per thread = 4 lines per warp access),
    the standard way streaming CUDA kernels expose memory-level parallelism
    from in-order warps."""
    name = "streaming"
    num_ctas = _scaled_ctas(480, scale)
    warps_per_cta = 6
    iters = 12
    lines_per_access = 4
    in_region = Region(region_base(name, 0), 1 << 24)
    out_region = Region(region_base(name, 1), 1 << 24)

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        stream = cta_id * warps_per_cta + warp_idx
        lines = stream_lines(in_region, stream, iters * lines_per_access)
        tb = TraceBuilder()
        for i in range(iters):
            chunk = lines[i * lines_per_access:(i + 1) * lines_per_access]
            tb.load(chunk).alu(2)
            out_base = (stream * iters + i) * lines_per_access
            tb.store([out_region.line(out_base + j)
                      for j in range(lines_per_access)])
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build, regs_per_thread=20,
                  tags=("bandwidth",))


def make_backprop(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """BP-style layer update: streaming reads feeding a shared-memory
    reduction; bandwidth-leaning but with compute phases."""
    name = "backprop"
    num_ctas = _scaled_ctas(360, scale)
    warps_per_cta = 8
    iters = 20
    in_region = Region(region_base(name, 0), 1 << 24)
    out_region = Region(region_base(name, 1), 1 << 24)

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        stream = cta_id * warps_per_cta + warp_idx
        lines = stream_lines(in_region, stream, iters)
        tb = TraceBuilder()
        for line in lines:
            tb.load(line).alu(2).shared(1)
        tb.barrier()
        tb.shared(4)
        tb.store(out_region.line(stream))
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build, regs_per_thread=20,
                  shmem_per_cta=4096, tags=("bandwidth", "shared"))


# =========================================================================== #
# cache-sensitive kernels (the LCS headliners)
# =========================================================================== #

def make_kmeans(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """KMN-style centroid scan: each warp re-reads a small private
    footprint.  A couple of CTAs' footprints fit in L1; maximum occupancy
    thrashes it (the canonical LCS win)."""
    name = "kmeans"
    num_ctas = _scaled_ctas(480, scale)
    warps_per_cta = 6
    footprint = 8           # lines per warp: 48 lines/CTA, 2 CTAs ~= one L1
    iters = 72
    region = Region(region_base(name), 1 << 24)

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        rng = rng_for(seed, name, cta_id, warp_idx)
        owner = cta_id * warps_per_cta + warp_idx
        lines = private_footprint(region, owner, footprint, rng, iters)
        tb = TraceBuilder()
        for line in lines:
            tb.load(line).alu(2)
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build, regs_per_thread=20,
                  tags=("cache",))


def make_iindex(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """IIX-style inverted index: warps of a CTA share a per-CTA hot set
    (intra-CTA reuse) mixed with a cold stream."""
    name = "iindex"
    num_ctas = _scaled_ctas(480, scale)
    warps_per_cta = 6
    cta_footprint = 36      # shared hot lines per CTA
    iters = 56
    hot_region = Region(region_base(name, 0), 1 << 24)
    cold_region = Region(region_base(name, 1), 1 << 24)

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        rng = rng_for(seed, name, cta_id, warp_idx)
        hot = private_footprint(hot_region, cta_id, cta_footprint, rng, iters)
        stream = cta_id * warps_per_cta + warp_idx
        cold = stream_lines(cold_region, stream, iters)
        hot_pick = rng.random(iters) < 0.7
        tb = TraceBuilder()
        for i in range(iters):
            tb.load(hot[i] if hot_pick[i] else cold[i]).alu(2)
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build, regs_per_thread=20,
                  tags=("cache",))


def make_bfs(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """BFS-style frontier expansion: a globally shared hot set (frontier)
    plus cold random edge lists."""
    name = "bfs"
    num_ctas = _scaled_ctas(480, scale)
    warps_per_cta = 6
    iters = 40
    hot = Region(region_base(name, 0), 192)
    cold = Region(region_base(name, 1), 1 << 16)

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        rng = rng_for(seed, name, cta_id, warp_idx)
        lines = hot_cold_lines(hot, cold, rng, iters, hot_fraction=0.6)
        tb = TraceBuilder()
        for line in lines:
            tb.load(line).alu(3)
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build, regs_per_thread=20,
                  tags=("irregular",))


def make_spmv(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """SpMV-style gather: every load touches several random lines
    (uncoalesced), exhausting L1 MSHRs at low occupancy."""
    name = "spmv"
    num_ctas = _scaled_ctas(420, scale)
    warps_per_cta = 6
    iters = 24
    lines_per_access = 4
    region = Region(region_base(name), 4096)

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        rng = rng_for(seed, name, cta_id, warp_idx)
        gathers = gather_lines(region, rng, iters, lines_per_access)
        tb = TraceBuilder()
        for lines in gathers:
            tb.load(lines).alu(2)
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build, regs_per_thread=24,
                  tags=("mshr",))


# =========================================================================== #
# inter-CTA locality kernels (the BCS/BAWS targets)
# =========================================================================== #

def _make_stencil_kernel(name: str, *, base_ctas: int, tile: int, halo: int,
                         steps: int, alu_per_load: int, warps_per_cta: int,
                         regs_per_thread: int, shmem_per_cta: int,
                         scale: float, tags: tuple[str, ...],
                         time_marching: bool = False) -> Kernel:
    region = Region(region_base(name, 0), 1 << 24)
    out_region = Region(region_base(name, 1), 1 << 24)
    num_ctas = _scaled_ctas(base_ctas, scale)
    # A time-marching stencil reads a *fresh* plane each step (the previous
    # iteration's output), so the halo lines shared with the next CTA are
    # only reusable while both siblings are in the same step — exactly the
    # temporal alignment BAWS provides.  A stationary stencil re-reads the
    # same footprint every step, so reuse survives moderate drift.
    step_stride = num_ctas * tile if time_marching else 0

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        own_tile = [region.line(cta_id * tile + i) for i in range(tile)]
        my_out = warp_slice(own_tile, warp_idx, warps_per_cta)
        tb = TraceBuilder()
        for step in range(steps):
            offset = step * step_stride
            read_set = tile_with_halo(region, cta_id, tile, halo,
                                      offset=offset)
            mine = warp_slice(read_set, warp_idx, warps_per_cta)
            for line in mine:
                tb.load(line).alu(alu_per_load)
            tb.barrier()
        for line in my_out:
            tb.store(out_region.line(line - region.base))
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build,
                  regs_per_thread=regs_per_thread,
                  shmem_per_cta=shmem_per_cta, tags=tags)


def make_stencil(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """STC-style 1-D stencil: tile 16 lines, halo 12 into the next CTA —
    consecutive CTAs share 43% of their read set."""
    return _make_stencil_kernel(
        "stencil", base_ctas=360, tile=16, halo=12, steps=6, alu_per_load=3,
        warps_per_cta=4, regs_per_thread=24, shmem_per_cta=8192,
        scale=scale, tags=("locality",))


def make_hotspot(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """HOTSPOT-style thermal stencil: smaller halo, more compute per line."""
    return _make_stencil_kernel(
        "hotspot", base_ctas=360, tile=20, halo=12, steps=8, alu_per_load=6,
        warps_per_cta=4, regs_per_thread=28, shmem_per_cta=8192,
        scale=scale, tags=("locality",))


def make_pathfinder(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """PF-style dynamic-programming sweep: thin tiles, halo row per step."""
    return _make_stencil_kernel(
        "pathfinder", base_ctas=360, tile=20, halo=10, steps=10, alu_per_load=2,
        warps_per_cta=4, regs_per_thread=42, shmem_per_cta=0,
        scale=scale, tags=("locality",))


def make_srad(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """SRAD-style diffusion: locality plus a heavy ALU tail per load."""
    return _make_stencil_kernel(
        "srad", base_ctas=360, tile=20, halo=12, steps=5, alu_per_load=8,
        warps_per_cta=4, regs_per_thread=24, shmem_per_cta=8192,
        scale=scale, tags=("locality",))


# =========================================================================== #
# extension kernels (used by the E17/E18 extension experiments; not part of
# the core evaluated suite so the E1–E11 tables match EXPERIMENTS.md)
# =========================================================================== #

def make_histogram(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """HISTO-style binning: streaming reads, write-heavy scatter into a
    small shared bin region (store-bandwidth and write-through pressure)."""
    name = "histogram"
    num_ctas = _scaled_ctas(420, scale)
    warps_per_cta = 6
    iters = 32
    bins = Region(region_base(name, 0), 256)
    input_region = Region(region_base(name, 1), 1 << 24)

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        rng = rng_for(seed, name, cta_id, warp_idx)
        stream = cta_id * warps_per_cta + warp_idx
        reads = stream_lines(input_region, stream, iters)
        targets = rng.integers(0, bins.length, size=iters)
        tb = TraceBuilder()
        for read_line, bin_off in zip(reads, targets):
            tb.load(read_line).alu(2)
            tb.store(bins.line(int(bin_off)))
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build, regs_per_thread=20,
                  tags=("bandwidth", "stores"))


def make_fft(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """FFT-style butterfly stages: strided multi-line accesses whose stride
    doubles each stage, with a barrier between stages."""
    name = "fft"
    num_ctas = _scaled_ctas(300, scale)
    warps_per_cta = 4
    stages = 5
    region = Region(region_base(name), 1 << 22)

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        tb = TraceBuilder()
        base = cta_id * 64
        for stage in range(stages):
            stride = 1 << stage
            for i in range(4):
                start = base + warp_idx * 16 + i * 2
                tb.load([region.line(start), region.line(start + stride)])
                tb.alu(6)
            tb.barrier()
        tb.store(region.line((1 << 20) + cta_id * warps_per_cta + warp_idx))
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build, regs_per_thread=28,
                  shmem_per_cta=8192, tags=("compute", "strided"))


def make_twophase(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """A phase-changing kernel: a cache-thrashing gather phase followed by a
    long arithmetic phase.  One-shot LCS decides during the first phase and
    cannot revise; continuous schemes (DynCTA) re-adapt.  Used by the E18
    phase-sensitivity analysis."""
    name = "twophase"
    num_ctas = _scaled_ctas(420, scale)
    warps_per_cta = 6
    footprint = 8
    mem_iters = 36
    region = Region(region_base(name), 1 << 24)

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        rng = rng_for(seed, name, cta_id, warp_idx)
        owner = cta_id * warps_per_cta + warp_idx
        lines = private_footprint(region, owner, footprint, rng, mem_iters)
        tb = TraceBuilder()
        for line in lines:               # phase 1: cache-sensitive
            tb.load(line).alu(2)
        for _block in range(14):         # phase 2: latency-bound compute
            tb.alu(10, latency=12)
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build, regs_per_thread=20,
                  tags=("cache", "phased"))


def make_gemv(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """GEMV-style matrix-vector product: each warp streams a matrix row
    while re-reading the (globally shared) vector — asymmetric reuse."""
    name = "gemv"
    num_ctas = _scaled_ctas(360, scale)
    warps_per_cta = 6
    row_lines = 24
    matrix = Region(region_base(name, 0), 1 << 24)
    vector = Region(region_base(name, 1), row_lines)   # hot, shared by all
    out = Region(region_base(name, 2), 1 << 20)

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        row = cta_id * warps_per_cta + warp_idx
        tb = TraceBuilder()
        for i in range(row_lines):
            tb.load(matrix.line(row * row_lines + i))   # cold stream
            tb.load(vector.line(i))                      # hot vector
            tb.alu(3)
        tb.store(out.line(row))
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build, regs_per_thread=20,
                  tags=("bandwidth", "shared-vector"))


def make_scan(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """SCAN-style prefix sum: log-tree shared-memory phases with barriers,
    bracketed by one coalesced load and store per warp."""
    name = "scan"
    num_ctas = _scaled_ctas(300, scale)
    warps_per_cta = 8
    region = Region(region_base(name), 1 << 22)

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        stream = cta_id * warps_per_cta + warp_idx
        tb = TraceBuilder()
        tb.load(region.line(stream))
        for _level in range(5):          # log2(32) tree levels
            tb.shared(2).alu(2)
            tb.barrier()
        tb.store(region.line((1 << 21) + stream))
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build, regs_per_thread=16,
                  shmem_per_cta=4096, tags=("compute", "barrier"))


def make_montecarlo(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """MC-style path simulation: long high-latency ALU chains with sparse
    random table lookups (a latency-bound compute kernel with a small hot
    working set)."""
    name = "montecarlo"
    num_ctas = _scaled_ctas(420, scale)
    warps_per_cta = 6
    table = Region(region_base(name), 96)   # hot lookup table

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        rng = rng_for(seed, name, cta_id, warp_idx)
        picks = rng.integers(0, table.length, size=8)
        tb = TraceBuilder()
        for pick in picks:
            tb.alu(12, latency=10)
            tb.load(table.line(int(pick)))
            tb.alu(6, latency=10)
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build, regs_per_thread=24,
                  tags=("compute", "latency"))


def make_nbody(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """NBODY-style all-pairs tile walk: every CTA streams the same body
    array (machine-wide sharing, L2-resident) with heavy per-tile compute."""
    name = "nbody"
    num_ctas = _scaled_ctas(240, scale)
    warps_per_cta = 6
    bodies = Region(region_base(name, 0), 512)   # shared by every CTA
    out = Region(region_base(name, 1), 1 << 20)

    def build(cta_id: int, warp_idx: int) -> list[Instruction]:
        tb = TraceBuilder()
        for tile in range(16):
            tb.load(bodies.line(tile * 32 + warp_idx))
            tb.alu(12)
            tb.barrier()
        tb.store(out.line(cta_id * warps_per_cta + warp_idx))
        return tb.build()

    return Kernel(name, num_ctas, warps_per_cta, build, regs_per_thread=28,
                  shmem_per_cta=4096, tags=("compute", "shared-tiles"))


# =========================================================================== #
# registry
# =========================================================================== #

@dataclass(frozen=True)
class BenchmarkInfo:
    name: str
    category: str
    description: str
    factory: Callable[..., Kernel]

    def make(self, scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
        return self.factory(scale, seed)


SUITE: dict[str, BenchmarkInfo] = {
    info.name: info for info in (
        BenchmarkInfo("compute", "compute",
                      "arithmetic chains, trickle of loads", make_compute),
        BenchmarkInfo("blackscholes", "compute",
                      "high-latency ALU chains, scales to max occupancy",
                      make_blackscholes),
        BenchmarkInfo("matmul", "compute",
                      "tiled matmul: shared memory, barriers", make_matmul),
        BenchmarkInfo("lud", "compute",
                      "shared-memory-bound factorisation", make_lud),
        BenchmarkInfo("nw", "compute",
                      "barrier-heavy wavefront", make_nw),
        BenchmarkInfo("streaming", "bandwidth",
                      "coalesced streaming, no reuse", make_streaming),
        BenchmarkInfo("backprop", "bandwidth",
                      "streaming + shared reduction", make_backprop),
        BenchmarkInfo("kmeans", "cache",
                      "private per-warp footprints, high reuse", make_kmeans),
        BenchmarkInfo("iindex", "cache",
                      "per-CTA hot set + cold stream", make_iindex),
        BenchmarkInfo("bfs", "irregular",
                      "shared hot frontier + cold edges", make_bfs),
        BenchmarkInfo("spmv", "mshr",
                      "uncoalesced gathers, MSHR-bound", make_spmv),
        BenchmarkInfo("stencil", "locality",
                      "1-D stencil, 43% halo overlap", make_stencil),
        BenchmarkInfo("hotspot", "locality",
                      "thermal stencil, compute-lean", make_hotspot),
        BenchmarkInfo("pathfinder", "locality",
                      "DP sweep with halo rows", make_pathfinder),
        BenchmarkInfo("srad", "locality",
                      "diffusion stencil, ALU tail", make_srad),
        BenchmarkInfo("histogram", "bandwidth",
                      "streaming reads, scatter stores into hot bins",
                      make_histogram),
        BenchmarkInfo("fft", "compute",
                      "butterfly stages, doubling strides, barriers",
                      make_fft),
        BenchmarkInfo("twophase", "cache",
                      "cache-thrash phase then compute phase (E18)",
                      make_twophase),
        BenchmarkInfo("gemv", "bandwidth",
                      "matrix rows streamed against a hot shared vector",
                      make_gemv),
        BenchmarkInfo("scan", "compute",
                      "log-tree prefix sum, barrier per level", make_scan),
        BenchmarkInfo("montecarlo", "compute",
                      "latency-bound paths with hot table lookups",
                      make_montecarlo),
        BenchmarkInfo("nbody", "compute",
                      "all-pairs tiles over a shared body array",
                      make_nbody),
    )
}

#: The core evaluated suite (the E1–E11 tables; the three extension kernels
#: above are exercised by E17/E18 and the test suite).
CORE_SET = ("compute", "blackscholes", "matmul", "lud", "nw", "streaming",
            "backprop", "kmeans", "iindex", "bfs", "spmv", "stencil",
            "hotspot", "pathfinder", "srad")

#: Benchmarks used in the LCS experiments (memory-sensitive + controls).
LCS_SET = ("kmeans", "iindex", "bfs", "spmv", "streaming", "backprop",
           "stencil", "hotspot", "pathfinder", "srad", "compute",
           "blackscholes", "matmul", "lud", "nw")

#: Benchmarks with inter-CTA locality, used in the BCS experiments.
LOCALITY_SET = ("stencil", "hotspot", "pathfinder", "srad")

#: Representative kernels for the occupancy-sweep motivation figure.
MOTIVATION_SET = ("kmeans", "spmv", "iindex", "streaming", "compute", "matmul")

#: (memory-kernel, compute-kernel) pairs for the CKE experiments.
#: Each entry: (memory kernel, compute kernel, scale multiplier applied to
#: the compute kernel so the pair's solo durations are comparable).
CKE_PAIRS = (
    ("kmeans", "blackscholes", 1.0),
    ("spmv", "blackscholes", 3.0),
    ("streaming", "blackscholes", 9.0),
    ("iindex", "blackscholes", 3.5),
    ("bfs", "blackscholes", 2.5),
    ("spmv", "compute", 6.5),
)


def make_kernel(name: str, scale: float = 1.0, seed: int = DEFAULT_SEED) -> Kernel:
    """Instantiate a suite benchmark by name."""
    try:
        info = SUITE[name]
    except KeyError:
        raise ValueError(f"unknown benchmark {name!r}; "
                         f"available: {sorted(SUITE)}") from None
    return info.make(scale=scale, seed=seed)


def suite_names(category: str | None = None) -> tuple[str, ...]:
    """Benchmark names, optionally filtered by category."""
    if category is None:
        return tuple(SUITE)
    names = tuple(name for name, info in SUITE.items()
                  if info.category == category)
    if not names:
        raise ValueError(f"no benchmarks in category {category!r}")
    return names
