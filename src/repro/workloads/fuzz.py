"""Random workload generation for fuzzing the simulator.

:func:`random_kernel` builds a structurally valid kernel from a seed:
random mixture of ALU chains, shared-memory ops, loads/stores with random
line sets, and (optionally) barrier phases — uniform per CTA so barrier
semantics hold.  The property tests use it to hammer scheduler/queue edge
cases; downstream users extending the simulator can fuzz their changes the
same way::

    from repro.workloads.fuzz import random_kernel
    kernel = random_kernel(seed=1234)
    simulate(kernel, config=GPUConfig.small())
"""

from __future__ import annotations

import numpy as np

from ..sim.isa import Instruction, Op
from ..sim.kernel import Kernel


def random_kernel(seed: int, *, max_ctas: int = 8, max_warps: int = 4,
                  max_segments: int = 4, max_segment_length: int = 8,
                  line_space: int = 512, name: str | None = None) -> Kernel:
    """A structurally valid random kernel, deterministic in ``seed``.

    The program *shape* (segment lengths, opcode kinds, barrier placement)
    is shared by every warp of a CTA — so barrier counts are uniform — while
    memory line addresses vary per (CTA, warp).
    """
    rng = np.random.default_rng(seed)
    num_ctas = int(rng.integers(1, max_ctas + 1))
    warps_per_cta = int(rng.integers(1, max_warps + 1))
    with_barriers = bool(rng.integers(0, 2)) and warps_per_cta > 1
    num_segments = int(rng.integers(1, max_segments + 1))

    # Pre-draw the shape: per segment, a list of (kind, latency, n_lines).
    shape: list[list[tuple[str, int, int]]] = []
    for _ in range(num_segments):
        length = int(rng.integers(0, max_segment_length + 1))
        segment = []
        for _ in range(length):
            kind = str(rng.choice(["alu", "alu", "shared", "load", "store"]))
            latency = int(rng.integers(1, 16))
            n_lines = int(rng.integers(1, 5))
            segment.append((kind, latency, n_lines))
        shape.append(segment)

    def builder(cta_id: int, warp_idx: int) -> list[Instruction]:
        local = np.random.default_rng(
            np.random.SeedSequence([seed, cta_id, warp_idx]))
        program: list[Instruction] = []
        for segment in shape:
            for kind, latency, n_lines in segment:
                if kind == "alu":
                    program.append(Instruction(Op.ALU, latency=latency))
                elif kind == "shared":
                    program.append(Instruction(Op.SHARED, latency=latency))
                else:
                    lines = local.choice(line_space, size=n_lines,
                                         replace=False)
                    op = Op.LD_GLOBAL if kind == "load" else Op.ST_GLOBAL
                    program.append(Instruction(
                        op, lines=tuple(int(x) for x in lines)))
            if with_barriers:
                program.append(Instruction(Op.BARRIER))
        program.append(Instruction(Op.EXIT))
        return program

    return Kernel(name or f"fuzz-{seed}", num_ctas, warps_per_cta, builder,
                  regs_per_thread=int(rng.integers(0, 33)),
                  tags=("fuzz",))
