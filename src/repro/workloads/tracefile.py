"""Trace file import/export.

Lets downstream users bring their *own* kernels to the simulator without
writing Python builders: a kernel is serialised as a JSON document holding
its launch geometry, resources and per-warp instruction traces, and loaded
back as a regular :class:`~repro.sim.kernel.Kernel`.

Format (version 1)::

    {
      "format": "repro-trace",
      "version": 1,
      "name": "mykernel",
      "num_ctas": 4,
      "warps_per_cta": 2,
      "regs_per_thread": 20,
      "shmem_per_cta": 0,
      "tags": ["custom"],
      "warps": {
        "0/0": [["alu", 4], ["ld", [0, 1]], ["bar"], ["st", [5]], ["exit"]],
        ...
      }
    }

Instruction encodings: ``["alu", latency]``, ``["shared", latency]``,
``["ld", [lines...]]``, ``["st", [lines...]]``, ``["bar"]``, ``["exit"]``.
Every (cta, warp) pair must be present.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from ..sim.isa import Instruction, Op, validate_program
from ..sim.kernel import Kernel

FORMAT_NAME = "repro-trace"
FORMAT_VERSION = 1

_ENCODE = {
    Op.ALU: lambda inst: ["alu", inst.latency],
    Op.SHARED: lambda inst: ["shared", inst.latency],
    Op.LD_GLOBAL: lambda inst: ["ld", list(inst.lines)],
    Op.ST_GLOBAL: lambda inst: ["st", list(inst.lines)],
    Op.BARRIER: lambda inst: ["bar"],
    Op.EXIT: lambda inst: ["exit"],
}


def _encode_instruction(inst: Instruction) -> list:
    return _ENCODE[inst.op](inst)


def _decode_instruction(entry: Sequence) -> Instruction:
    if not entry:
        raise ValueError("empty instruction entry")
    kind = entry[0]
    if kind == "alu":
        return Instruction(Op.ALU, latency=int(entry[1]))
    if kind == "shared":
        return Instruction(Op.SHARED, latency=int(entry[1]))
    if kind == "ld":
        return Instruction(Op.LD_GLOBAL, lines=tuple(int(x) for x in entry[1]))
    if kind == "st":
        return Instruction(Op.ST_GLOBAL, lines=tuple(int(x) for x in entry[1]))
    if kind == "bar":
        return Instruction(Op.BARRIER)
    if kind == "exit":
        return Instruction(Op.EXIT)
    raise ValueError(f"unknown instruction kind {kind!r}")


def save_kernel_trace(kernel: Kernel, path: str | Path) -> None:
    """Materialise every warp program of ``kernel`` into a trace file.

    Beware of grid size: the file holds the *whole* grid's traces.
    """
    warps = {}
    for cta_id in range(kernel.num_ctas):
        for warp_idx in range(kernel.warps_per_cta):
            program = kernel.build_warp_program(cta_id, warp_idx)
            warps[f"{cta_id}/{warp_idx}"] = [
                _encode_instruction(inst) for inst in program]
    document = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": kernel.name,
        "num_ctas": kernel.num_ctas,
        "warps_per_cta": kernel.warps_per_cta,
        "regs_per_thread": kernel.regs_per_thread,
        "shmem_per_cta": kernel.shmem_per_cta,
        "tags": list(kernel.tags),
        "warps": warps,
    }
    Path(path).write_text(json.dumps(document))


def load_kernel_trace(path: str | Path) -> Kernel:
    """Load a trace file back into a Kernel (validating every program)."""
    document = json.loads(Path(path).read_text())
    if document.get("format") != FORMAT_NAME:
        raise ValueError(f"{path}: not a {FORMAT_NAME} file")
    if document.get("version") != FORMAT_VERSION:
        raise ValueError(f"{path}: unsupported version "
                         f"{document.get('version')!r}")
    num_ctas = int(document["num_ctas"])
    warps_per_cta = int(document["warps_per_cta"])
    programs: dict[tuple[int, int], list[Instruction]] = {}
    for key, encoded in document["warps"].items():
        cta_text, _, warp_text = key.partition("/")
        cta_id, warp_idx = int(cta_text), int(warp_text)
        program = [_decode_instruction(entry) for entry in encoded]
        validate_program(program)
        programs[(cta_id, warp_idx)] = program
    expected = {(c, w) for c in range(num_ctas) for w in range(warps_per_cta)}
    if set(programs) != expected:
        missing = sorted(expected - set(programs))[:5]
        extra = sorted(set(programs) - expected)[:5]
        raise ValueError(f"{path}: trace set mismatch "
                         f"(missing {missing}, unexpected {extra})")

    def builder(cta_id: int, warp_idx: int) -> list[Instruction]:
        return programs[(cta_id, warp_idx)]

    return Kernel(document["name"], num_ctas, warps_per_cta, builder,
                  regs_per_thread=int(document.get("regs_per_thread", 20)),
                  shmem_per_cta=int(document.get("shmem_per_cta", 0)),
                  tags=tuple(document.get("tags", ())))
