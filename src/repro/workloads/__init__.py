"""Synthetic workload suite and trace-building utilities."""

from .patterns import (DEFAULT_SEED, Region, gather_lines, hot_cold_lines,
                       private_footprint, region_base, rng_for, stream_lines,
                       tile_with_halo, warp_slice)
from .programs import TraceBuilder, instruction_mix, memory_intensity
from .suite import (CKE_PAIRS, CORE_SET, LCS_SET, LOCALITY_SET,
                    MOTIVATION_SET, SUITE,
                    BenchmarkInfo, make_kernel, suite_names)
from .fuzz import random_kernel
from .tracefile import load_kernel_trace, save_kernel_trace

__all__ = [
    "DEFAULT_SEED", "Region", "gather_lines", "hot_cold_lines",
    "private_footprint", "region_base", "rng_for", "stream_lines",
    "tile_with_halo", "warp_slice", "TraceBuilder", "instruction_mix",
    "memory_intensity", "CKE_PAIRS", "CORE_SET", "LCS_SET", "LOCALITY_SET",
    "MOTIVATION_SET", "SUITE", "BenchmarkInfo", "make_kernel", "suite_names",
    "load_kernel_trace", "random_kernel", "save_kernel_trace",
]
