"""Exhaustive static CTA-limit search — the paper's "optimal" comparator.

LCS is evaluated against the best *static* per-core CTA limit, found by
simulating the kernel once per candidate limit.  This is an offline oracle
(a real system cannot afford it), which is exactly why the paper's online
LCS decision matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..sim.config import GPUConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.stats import RunResult


@dataclass(frozen=True)
class OracleResult:
    """Outcome of the exhaustive search."""

    kernel_name: str
    occupancy: int
    best_limit: int
    results: dict[int, "RunResult"]

    @property
    def best(self) -> "RunResult":
        return self.results[self.best_limit]

    @property
    def baseline(self) -> "RunResult":
        """The maximum-occupancy run (the conventional baseline)."""
        return self.results[self.occupancy]

    @property
    def best_speedup(self) -> float:
        """Best static limit's speedup over maximum occupancy."""
        return self.baseline.cycles / self.best.cycles

    def ipc_by_limit(self) -> dict[int, float]:
        return {limit: result.ipc for limit, result in sorted(self.results.items())}


def sweep_static_limits(kernel, *, config: GPUConfig | None = None,
                        warp_scheduler: str = "gto",
                        limits: Sequence[int] | None = None,
                        jobs: int = 1, cache=None) -> OracleResult:
    """Simulate the kernel once per static CTA limit and rank the results.

    ``kernel`` is either a live :class:`~repro.sim.kernel.Kernel` or a
    declarative :class:`~repro.harness.jobs.KernelSpec`.  The spec form
    routes every per-limit run through the batch engine, so the sweep —
    the single hottest serial loop in the harness — fans out across
    ``jobs`` worker processes and memoises into ``cache`` (a
    :class:`~repro.harness.cache.ResultCache`).  A live kernel cannot be
    shipped to workers (its trace builder is a closure), so that form
    always runs serially in-process.

    ``limits`` defaults to every feasible value ``1..occupancy``.
    """
    # Imported lazily: the harness imports this package.
    from ..harness.jobs import KernelSpec, SimJob
    from ..harness.runner import simulate
    from .cta_schedulers import StaticLimitCTAScheduler

    config = config if config is not None else GPUConfig()
    spec = kernel if isinstance(kernel, KernelSpec) else None
    if spec is not None:
        kernel = spec.build()
    occupancy = kernel.max_ctas_per_sm(config)
    if limits is None:
        limits = range(1, occupancy + 1)
    candidate_limits = sorted({min(limit, occupancy) for limit in limits})
    if not candidate_limits or candidate_limits[0] < 1:
        raise ValueError("limits must contain values >= 1")
    if occupancy not in candidate_limits:
        candidate_limits.append(occupancy)

    results: dict[int, "RunResult"] = {}
    if spec is not None:
        from ..harness.engine import run_jobs
        sweep_jobs = [SimJob(names=(spec.name,), scale=spec.scale,
                             seed=spec.seed, warp=warp_scheduler,
                             policy=("static", limit), config=config)
                      for limit in candidate_limits]
        for limit, result in zip(candidate_limits,
                                 run_jobs(sweep_jobs, workers=jobs,
                                          cache=cache)):
            results[limit] = result
    else:
        for limit in candidate_limits:
            scheduler = StaticLimitCTAScheduler(kernel, limit_per_sm=limit)
            results[limit] = simulate(kernel, config=config,
                                      warp_scheduler=warp_scheduler,
                                      cta_scheduler=scheduler)
    best_limit = min(results, key=lambda limit: (results[limit].cycles, limit))
    return OracleResult(kernel_name=kernel.name, occupancy=occupancy,
                        best_limit=best_limit, results=results)
