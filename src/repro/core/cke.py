"""Concurrent kernel execution (CKE) policies, including the paper's
LCS-guided *mixed* execution.

The paper's third proposal follows from LCS's observation that a kernel's
optimal CTA count is often below maximum occupancy: the leftover per-core
resources can host CTAs of a *different* kernel.  Mixing a memory-intensive
kernel (throttled to its N*) with a compute-intensive one on the same core
utilises both the memory path and the issue slots.

Policies implemented (the comparison set for experiment E8):

* :class:`SequentialCKE`   — kernels run one after another (no CKE; how a
  pre-Fermi GPU or a default single-stream launch behaves).
* :class:`SpatialCKE`      — cores are partitioned between kernels
  (Fermi/Kepler-style concurrent kernel execution: different kernels never
  share a core).
* :class:`SMKEvenCKE`      — both kernels share every core, each capped at an
  even share of its occupancy (intra-core partitioning without LCS's
  knowledge — the "simultaneous multikernel" strawman).
* :class:`MixedCKE`        — the paper's proposal: monitor the primary kernel
  with LCS at full occupancy, throttle it to N*, then fill the freed
  resources with the secondary kernel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..sim.kernel import Kernel
from .cta_schedulers import CTAScheduler
from .lcs import DEFAULT_UTIL_GUARD, LCSDecision, LCSMonitor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.cta import CTA
    from ..sim.gpu import KernelRun
    from ..sim.sm import SM


class SequentialCKE(CTAScheduler):
    """Run kernels back to back: kernel *i+1* starts after *i* completes."""

    name = "sequential"

    __slots__ = ()

    def eligible_runs(self) -> Iterable["KernelRun"]:
        for run in self.runs:
            if not run.done:
                if run.pending:
                    yield run
                # Earlier kernel still draining: nothing later may start.
                return


class SpatialCKE(CTAScheduler):
    """Partition SMs between kernels (no core ever runs two kernels)."""

    name = "spatial"

    __slots__ = ("_shares", "_sm_owner")

    def __init__(self, kernels: Sequence[Kernel],
                 shares: Sequence[int] | None = None) -> None:
        super().__init__(kernels)
        if len(self.kernels) < 2:
            raise ValueError("SpatialCKE needs at least two kernels")
        if shares is not None and len(shares) != len(self.kernels):
            raise ValueError("one share per kernel required")
        self._shares = list(shares) if shares is not None else None
        self._sm_owner: dict[int, int] = {}

    def on_bound(self) -> None:
        num_sms = len(self.gpu.sms)
        num_kernels = len(self.kernels)
        if self._shares is None:
            base = num_sms // num_kernels
            shares = [base] * num_kernels
            for i in range(num_sms - base * num_kernels):
                shares[i] += 1
        else:
            shares = self._shares
            if sum(shares) != num_sms or min(shares) < 1:
                raise ValueError(
                    f"shares {shares} must be positive and sum to {num_sms}")
        sm_id = 0
        for kernel_id, share in enumerate(shares):
            for _ in range(share):
                self._sm_owner[sm_id] = kernel_id
                sm_id += 1

    def limit(self, sm: "SM", run: "KernelRun") -> int:
        if self._sm_owner.get(sm.sm_id) != run.kernel_id:
            return 0
        return run.occupancy

    def sms_of(self, kernel_id: int) -> list[int]:
        return [sm_id for sm_id, owner in self._sm_owner.items()
                if owner == kernel_id]


class SMKEvenCKE(CTAScheduler):
    """Every SM hosts every kernel, each capped at an even occupancy share."""

    name = "smk-even"

    __slots__ = ()

    def __init__(self, kernels: Sequence[Kernel]) -> None:
        super().__init__(kernels)
        if len(self.kernels) < 2:
            raise ValueError("SMKEvenCKE needs at least two kernels")

    def limit(self, sm: "SM", run: "KernelRun") -> int:
        share = max(1, run.occupancy // len(self.runs))
        # Once the other kernels are finished, the survivor may expand.
        others_live = any(r is not run and not r.done for r in self.runs)
        return share if others_live else run.occupancy


class MixedCKE(CTAScheduler):
    """The paper's mixed execution: LCS on the primary, backfill the rest.

    Phases:

    1. *Monitoring* — one designated core runs the primary kernel alone at
       maximum occupancy (LCS needs the issue-count signature of a fully
       loaded core); every other core starts with an even intra-core split,
       so no time is lost waiting for the decision.
    2. *Mixed* — after the LCS decision, the primary is capped at N* per SM
       everywhere and the secondary kernel(s) backfill the remaining CTA
       slots, registers and shared memory.
    3. *Drain* — when the primary grid is exhausted, the secondary expands
       to its full occupancy.
    """

    name = "mixed"

    __slots__ = ("primary_index", "monitor_sm", "monitor",
                 "_mixed_emitted", "_drain_emitted")

    def __init__(self, kernels: Sequence[Kernel], *, primary: int = 0,
                 rule: str = "tail", param: float | None = None,
                 util_guard: float = DEFAULT_UTIL_GUARD,
                 monitor_sm: int = 0) -> None:
        super().__init__(kernels)
        if len(self.kernels) < 2:
            raise ValueError("MixedCKE needs at least two kernels")
        if not 0 <= primary < len(self.kernels):
            raise ValueError("primary kernel index out of range")
        self.primary_index = primary
        self.monitor_sm = monitor_sm
        self.monitor = LCSMonitor(rule=rule, param=param,
                                  util_guard=util_guard,
                                  monitor_sm=monitor_sm)
        self._mixed_emitted = False
        self._drain_emitted = False

    @property
    def decision(self) -> LCSDecision | None:
        return self.monitor.decision

    @property
    def primary_run(self) -> "KernelRun":
        return self.runs[self.primary_index]

    def eligible_runs(self) -> Iterable["KernelRun"]:
        primary = self.primary_run
        # Primary first: its allocation (max on the monitor core, N* after
        # the decision) has priority; the secondaries backfill.
        if primary.pending:
            yield primary
        for run in self.runs:
            if run is not primary and run.pending:
                yield run

    def limit(self, sm: "SM", run: "KernelRun") -> int:
        primary = self.primary_run
        decision = self.monitor.decision
        if decision is not None:
            if run is primary:
                return min(run.occupancy, decision.n_star)
            return run.occupancy
        # Monitoring phase.
        if sm.sm_id == self.monitor_sm:
            # The monitor core hosts the primary alone, at full occupancy.
            return run.occupancy if run is primary else 0
        if run is primary:
            return max(1, run.occupancy // len(self.runs))
        return run.occupancy

    def on_bound(self) -> None:
        self.monitor.announce(self.gpu)
        hub = self.gpu.telemetry
        if hub is not None:
            hub.emit("cke.phase", self.gpu.cycle, phase="monitor",
                     primary=self.primary_run.kernel.name,
                     monitor_sm=self.monitor_sm)

    def on_cta_complete(self, sm: "SM", cta: "CTA", now: int) -> None:
        super().on_cta_complete(sm, cta, now)
        self.monitor.observe_completion(sm, cta, self.primary_run, now)
        hub = self.gpu.telemetry
        if hub is None:
            return
        decision = self.monitor.decision
        if decision is not None and not self._mixed_emitted:
            self._mixed_emitted = True
            hub.emit("cke.phase", now, phase="mixed",
                     primary=self.primary_run.kernel.name,
                     n_star=decision.n_star)
        if self.primary_run.done and not self._drain_emitted:
            self._drain_emitted = True
            hub.emit("cke.phase", now, phase="drain",
                     primary=self.primary_run.kernel.name)

    def limits_snapshot(self) -> dict[int, int | None]:
        if self.gpu is None:
            return {}
        decision = self.monitor.decision
        value = None if decision is None else decision.n_star
        return {sm.sm_id: value for sm in self.gpu.sms}
