"""Combined LCS + BCS scheduling (the paper's two mechanisms together).

The paper evaluates LCS and BCS separately; this extension composes them,
which is the obvious next step it leaves open: dispatch consecutive CTAs in
blocks (keeping inter-CTA locality on one core) *and* throttle each core's
CTA count to the LCS decision (avoiding L1 thrash from over-subscription).

Mechanism: behave exactly like :class:`~repro.core.bcs.BCSScheduler` while
the LCS monitor is undecided; once the first CTA completes, cap every core
at N* rounded *up* to a whole number of blocks (cutting a block in half
would defeat the pairing), never below one block.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..sim.kernel import Kernel
from .bcs import DEFAULT_BLOCK_SIZE, BCSScheduler
from .lcs import DEFAULT_UTIL_GUARD, LCSDecision, LCSMonitor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.cta import CTA
    from ..sim.gpu import KernelRun
    from ..sim.sm import SM


class LCSBCSScheduler(BCSScheduler):
    """Block dispatch with an LCS-derived per-core CTA cap."""

    name = "lcs+bcs"

    __slots__ = ("monitor",)

    def __init__(self, kernel: Kernel | Sequence[Kernel], *,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 rule: str = "tail", param: float | None = None,
                 util_guard: float = DEFAULT_UTIL_GUARD,
                 monitor_sm: int | None = None) -> None:
        super().__init__(kernel, block_size=block_size)
        if len(self.kernels) != 1:
            raise ValueError("LCSBCSScheduler schedules a single kernel")
        self.monitor = LCSMonitor(rule=rule, param=param,
                                  util_guard=util_guard,
                                  monitor_sm=monitor_sm)

    @property
    def decision(self) -> LCSDecision | None:
        return self.monitor.decision

    def on_bound(self) -> None:
        self.monitor.announce(self.gpu)

    def limit(self, sm: "SM", run: "KernelRun") -> int:
        decision = self.monitor.decision
        if decision is None:
            return run.occupancy
        block = self._effective_block(run)
        # Round N* up to whole blocks; at least one block stays resident.
        n_star = max(decision.n_star, block)
        rounded = ((n_star + block - 1) // block) * block
        return min(run.occupancy, rounded)

    def on_cta_complete(self, sm: "SM", cta: "CTA", now: int) -> None:
        super().on_cta_complete(sm, cta, now)
        self.monitor.observe_completion(sm, cta, self.runs[0], now)

    def limits_snapshot(self) -> dict[int, int | None]:
        if self.gpu is None:
            return {}
        decision = self.monitor.decision
        if decision is None:
            return {sm.sm_id: None for sm in self.gpu.sms}
        return {sm.sm_id: self.limit(sm, self.runs[0])
                for sm in self.gpu.sms}
