"""CTA (thread block) scheduling policies — baseline machinery.

The CTA scheduler is the global hardware unit that assigns pending CTAs to
SMs with free resources.  The baseline (:class:`RoundRobinCTAScheduler`)
models the conventional GPU behaviour the paper starts from: dispatch CTAs
in grid order, one per SM in round-robin, as many as each SM's occupancy
allows — so consecutive CTAs land on *different* SMs and every SM runs the
maximum number of CTAs it can hold.

Policy subclasses shape dispatch by overriding:

* :meth:`CTAScheduler.limit` — per-(SM, kernel) cap on resident CTAs
  (LCS throttles through this);
* :meth:`CTAScheduler.eligible_runs` — which kernels may dispatch now
  (concurrent-kernel policies gate through this);
* :meth:`CTAScheduler._fill_run` — the dispatch loop itself
  (BCS dispatches whole blocks of consecutive CTAs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..sim.kernel import Kernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.cta import CTA
    from ..sim.gpu import GPU, KernelRun
    from ..sim.sm import SM


class CTAScheduler:
    """Base policy: round-robin dispatch up to each kernel's occupancy."""

    name = "rr"

    __slots__ = ("kernels", "gpu", "runs", "_rr_ptr", "_need_fill")

    def __init__(self, kernels: Kernel | Sequence[Kernel]) -> None:
        if isinstance(kernels, Kernel):
            kernels = [kernels]
        if not kernels:
            raise ValueError("at least one kernel is required")
        self.kernels: list[Kernel] = list(kernels)
        self.gpu: "GPU | None" = None
        self.runs: list["KernelRun"] = []
        self._rr_ptr = 0
        self._need_fill = True

    # ------------------------------------------------------------------ #
    def bind(self, gpu: "GPU") -> None:
        self.gpu = gpu
        self.runs = gpu.launch(self.kernels)
        self._need_fill = True
        self.on_bound()

    def on_bound(self) -> None:
        """Subclass hook, runs once after kernels are launched."""

    @property
    def done(self) -> bool:
        return all(run.done for run in self.runs)

    # -- policy hooks ---------------------------------------------------- #
    def limit(self, sm: "SM", run: "KernelRun") -> int:
        """Max CTAs of this kernel allowed on this SM (default: occupancy)."""
        return run.occupancy

    def eligible_runs(self) -> Iterable["KernelRun"]:
        return (run for run in self.runs if run.pending and run.eligible)

    # -- dispatch loop ----------------------------------------------------#
    def fill(self, now: int) -> None:
        """Dispatch as many CTAs as policy and resources allow right now."""
        if not self._need_fill:
            return
        for run in self.eligible_runs():
            self._fill_run(run, now)
        self._need_fill = False

    def request_fill(self) -> None:
        """Arm :meth:`fill` (called when capacity may have opened up)."""
        self._need_fill = True

    def _fill_run(self, run: "KernelRun", now: int) -> None:
        sms = self.gpu.sms
        num_sms = len(sms)
        rejections = 0
        while run.pending and rejections < num_sms:
            sm = sms[self._rr_ptr % num_sms]
            self._rr_ptr += 1
            if self._can_dispatch(sm, run):
                self.gpu.dispatch(sm, run, None, now)
                rejections = 0
            else:
                rejections += 1

    def _can_dispatch(self, sm: "SM", run: "KernelRun") -> bool:
        return (sm.active_count(run.kernel_id) < self.limit(sm, run)
                and sm.can_accept(run))

    # -- completion hook --------------------------------------------------#
    def on_cta_complete(self, sm: "SM", cta: "CTA", now: int) -> None:
        self._need_fill = True

    # -- reporting ----------------------------------------------------------
    def limits_snapshot(self) -> dict[int, int | None]:
        """Final per-SM CTA limits, for RunResult (None = occupancy only)."""
        if self.gpu is None:
            return {}
        return {sm.sm_id: None for sm in self.gpu.sms}


class RoundRobinCTAScheduler(CTAScheduler):
    """The conventional baseline, by its explicit name."""

    name = "rr"

    __slots__ = ()


class DepthFirstCTAScheduler(CTAScheduler):
    """Fill one SM to its limit before moving to the next.

    The ablation partner of the round-robin baseline: depth-first dispatch
    *accidentally* co-locates consecutive CTAs (like BCS, but without the
    block bookkeeping or the refill guarantee — after the initial fill,
    replacement CTAs go wherever a slot frees, so the co-location decays
    over the run).  Comparing RR / depth-first / BCS isolates how much of
    BCS's win is initial placement vs sustained pairing (experiment E21).
    """

    name = "depth-first"

    __slots__ = ()

    def _fill_run(self, run: "KernelRun", now: int) -> None:
        for sm in self.gpu.sms:
            while run.pending and self._can_dispatch(sm, run):
                self.gpu.dispatch(sm, run, None, now)
            if not run.pending:
                return


class StaticLimitCTAScheduler(CTAScheduler):
    """Round-robin dispatch with a fixed per-SM CTA cap per kernel.

    ``limit_per_sm`` is either one int (applied to every kernel) or a mapping
    from kernel name to int.  This is the knob the paper sweeps to show that
    maximum occupancy is not optimal (motivation figure), and the oracle
    search in :mod:`repro.core.oracle` uses it to find the static best.
    """

    name = "static"

    __slots__ = ("_limits",)

    def __init__(self, kernels: Kernel | Sequence[Kernel],
                 limit_per_sm: int | dict[str, int]) -> None:
        super().__init__(kernels)
        if isinstance(limit_per_sm, int):
            limits = {kernel.name: limit_per_sm for kernel in self.kernels}
        else:
            limits = dict(limit_per_sm)
        for kernel in self.kernels:
            value = limits.get(kernel.name)
            if value is None:
                raise ValueError(f"no CTA limit given for kernel {kernel.name!r}")
            if value < 1:
                raise ValueError(f"CTA limit for {kernel.name!r} must be >= 1")
        self._limits = limits

    def limit(self, sm: "SM", run: "KernelRun") -> int:
        return min(run.occupancy, self._limits[run.kernel.name])

    def limits_snapshot(self) -> dict[int, int | None]:
        if self.gpu is None:
            return {}
        if len(self.runs) == 1:
            run = self.runs[0]
            value = min(run.occupancy, self._limits[run.kernel.name])
            return {sm.sm_id: value for sm in self.gpu.sms}
        return super().limits_snapshot()
