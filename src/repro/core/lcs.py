"""LCS — Lazy CTA Scheduling (the paper's first mechanism).

LCS finds, online, the per-core CTA count that actually maximises
performance, exploiting the interaction with a *greedy* warp scheduler:

1. **Monitoring phase** — launch the kernel at maximum occupancy, as the
   baseline would.  Under greedy-then-oldest (GTO) warp scheduling, warps of
   younger CTAs only capture issue slots and LD/ST-queue slots when every
   older CTA is stalled, so the per-CTA issued-instruction counters
   collected on one core form a signature of how many CTAs the core *needs*
   to hide latency.
2. **Decision** — when the first CTA completes (end of the monitoring
   period), derive N* from the counters (rules below).
3. **Throttling phase** — no CTAs are killed ("lazy"); the scheduler simply
   stops refilling cores beyond N*, so each core drains down to N* resident
   CTAs and stays there.

Decision rules
--------------

``tail`` (default)
    The busiest counter belongs to the CTA that just *completed* — its
    count is simply its whole program, so it says nothing about marginal
    utility.  The informative signal is the relative progress of the
    *runner-up* CTAs: N* = 1 + the number of runner-ups whose count is at
    least ``tail_ratio`` (default 50 %) of the best runner-up.  A flat
    runner-up field ("everyone is pulling equal weight") keeps maximum
    occupancy; a steep drop-off throttles at the cliff.

``coverage``
    N* = the smallest n such that the n busiest CTAs issued at least
    ``coverage`` of all instructions in the monitoring period.

``threshold``
    N* = the number of CTAs whose count is at least ``threshold`` of the
    busiest CTA's count.  Simplest; sensitive to the signature's shape
    (kept for the E9 sensitivity study).

Guards
------

Issue counts concentrate under a greedy scheduler even when every CTA is
useful, in two situations the monitor detects and refuses to act on:

* **Utilization guard.**  Compute-bound kernels saturate the issue slots
  with few warps *because the older warps never stall*, not because the
  younger ones are useless.  The monitor reads the core's issue-slot
  utilization — instructions issued per scheduler slot during monitoring —
  and skips throttling when it exceeds ``util_guard`` (default 55 %).
* **Barrier fallback.**  In barrier-synchronized kernels a CTA's progress
  is quantised to barrier phases: the leading CTA races ahead phase by
  phase while its siblings' counters freeze at the barrier, so the
  signature's *head* is wildly inflated and the tail rule (which keys off
  the best runner-up) mis-throttles.  When the monitored CTAs executed
  ``barrier_guard`` or more barriers per warp, the monitor switches to the
  coverage rule, which integrates the whole distribution and is far less
  sensitive to head distortion (calibrated in experiment E9).

All three counters (per-CTA issued instructions, issue-slot usage, per-CTA
barrier count) are trivially cheap in hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..sim.kernel import Kernel
from .cta_schedulers import CTAScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.cta import CTA
    from ..sim.gpu import KernelRun
    from ..sim.sm import SM

#: Default runner-up ratio for the ``tail`` rule.
DEFAULT_TAIL_RATIO = 0.50

#: Default coverage for the ``coverage`` rule.
DEFAULT_COVERAGE = 0.90

#: Default issue-share threshold for the ``threshold`` rule.
DEFAULT_THRESHOLD = 0.18

#: Issue-slot utilization above which the kernel is considered
#: compute-bound and LCS does not throttle.
DEFAULT_UTIL_GUARD = 0.55

#: Barriers executed per warp (during monitoring) above which the issue
#: signature is considered phase-distorted and the decision falls back to
#: the coverage rule.
DEFAULT_BARRIER_GUARD = 1.5

RULES = ("tail", "coverage", "threshold")

_RULE_DEFAULTS = {
    "tail": DEFAULT_TAIL_RATIO,
    "coverage": DEFAULT_COVERAGE,
    "threshold": DEFAULT_THRESHOLD,
}


def decide_n_star_tail(issue_counts: Sequence[int], tail_ratio: float,
                       occupancy: int) -> int:
    """1 + the number of runner-up CTAs within ``tail_ratio`` of the best
    runner-up (the completed CTA's own count is excluded as uninformative)."""
    if not 0.0 < tail_ratio <= 1.0:
        raise ValueError("tail_ratio must be in (0, 1]")
    if len(issue_counts) <= 1:
        return occupancy
    ordered = sorted(issue_counts, reverse=True)
    tail = ordered[1:]
    best = tail[0]
    if best <= 0:
        return 1
    cutoff = tail_ratio * best
    significant = sum(1 for count in tail if count >= cutoff)
    return max(1, min(1 + significant, occupancy))


def decide_n_star_coverage(issue_counts: Sequence[int], coverage: float,
                           occupancy: int) -> int:
    """Smallest n whose busiest-n CTAs cover ``coverage`` of all issues."""
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")
    if not issue_counts:
        return occupancy
    ordered = sorted(issue_counts, reverse=True)
    total = sum(ordered)
    if total <= 0:
        return occupancy
    target = coverage * total
    running = 0
    for n, count in enumerate(ordered, start=1):
        running += count
        if running >= target:
            return max(1, min(n, occupancy))
    return occupancy  # pragma: no cover - running always reaches total


def decide_n_star_threshold(issue_counts: Sequence[int], threshold: float,
                            occupancy: int) -> int:
    """Count of CTAs that issued >= threshold x the busiest CTA's count."""
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    if not issue_counts:
        return occupancy
    busiest = max(issue_counts)
    if busiest <= 0:
        return occupancy
    cutoff = threshold * busiest
    significant = sum(1 for count in issue_counts if count >= cutoff)
    return max(1, min(significant, occupancy))


def decide_n_star(issue_counts: Sequence[int], occupancy: int, *,
                  rule: str = "tail",
                  param: float | None = None) -> int:
    """Dispatch to the selected decision rule."""
    if rule not in RULES:
        raise ValueError(f"unknown LCS rule {rule!r}; available: {RULES}")
    if param is None:
        param = _RULE_DEFAULTS[rule]
    if rule == "tail":
        return decide_n_star_tail(issue_counts, param, occupancy)
    if rule == "coverage":
        return decide_n_star_coverage(issue_counts, param, occupancy)
    return decide_n_star_threshold(issue_counts, param, occupancy)


@dataclass(frozen=True, slots=True)
class LCSDecision:
    """Everything the monitoring phase learned (kept for E2/E4 reporting)."""

    n_star: int
    occupancy: int
    decided_cycle: int
    monitor_sm: int
    issue_counts: tuple[int, ...]   # descending
    rule: str
    param: float
    utilization: float              # monitor core's issue-slot utilization
    util_guard: float
    barriers_per_warp: float = 0.0  # monitored CTAs' barrier rate
    barrier_guard: float = DEFAULT_BARRIER_GUARD

    @property
    def throttled(self) -> bool:
        return self.n_star < self.occupancy

    @property
    def guard_tripped(self) -> bool:
        """True when a guard changed how the decision was made."""
        return self.guard_reason is not None

    @property
    def guard_reason(self) -> str | None:
        """'utilization' = throttling suppressed; 'barriers' = decision
        fell back to the coverage rule; None = the configured rule ran."""
        if self.utilization >= self.util_guard:
            return "utilization"
        if self.barriers_per_warp >= self.barrier_guard:
            return "barriers"
        return None


class LCSMonitor:
    """Reusable monitoring/decision logic (shared with mixed CKE)."""

    __slots__ = ("rule", "param", "util_guard", "barrier_guard",
                 "monitor_sm", "decision")

    def __init__(self, *, rule: str = "tail", param: float | None = None,
                 util_guard: float = DEFAULT_UTIL_GUARD,
                 barrier_guard: float = DEFAULT_BARRIER_GUARD,
                 monitor_sm: int | None = None) -> None:
        if rule not in RULES:
            raise ValueError(f"unknown LCS rule {rule!r}; available: {RULES}")
        if not 0.0 <= util_guard <= 1.0:
            raise ValueError("util_guard must be in [0, 1]")
        if barrier_guard < 0.0:
            raise ValueError("barrier_guard must be non-negative")
        self.rule = rule
        self.param = _RULE_DEFAULTS[rule] if param is None else param
        self.util_guard = util_guard
        self.barrier_guard = barrier_guard
        self.monitor_sm = monitor_sm   # None = first CTA completion anywhere
        self.decision: LCSDecision | None = None

    def announce(self, gpu) -> None:
        """Trace the monitoring-phase start (call from a policy's on_bound)."""
        hub = gpu.telemetry
        if hub is not None:
            hub.emit("lcs.monitor", gpu.cycle, rule=self.rule,
                     param=self.param, util_guard=self.util_guard,
                     barrier_guard=self.barrier_guard,
                     monitor_sm=self.monitor_sm)

    def observe_completion(self, sm: "SM", cta: "CTA", run: "KernelRun",
                           now: int) -> LCSDecision | None:
        """Feed a CTA completion; returns the decision if this one ends the
        monitoring period."""
        if self.decision is not None:
            return None
        if cta.run is not run:
            return None
        if self.monitor_sm is not None and sm.sm_id != self.monitor_sm:
            return None
        monitored = [cta] + [peer for peer in sm.active_ctas
                             if peer.run is run]
        counts = [peer.issued_instrs for peer in monitored]
        issue_slots = max(1, now * sm.config.issue_width)
        utilization = min(1.0, sm.issued / issue_slots)
        total_warps = sum(peer.num_warps for peer in monitored)
        barriers_per_warp = (sum(peer.issued_barriers for peer in monitored)
                             / max(1, total_warps))
        if utilization >= self.util_guard:
            n_star = run.occupancy
        elif barriers_per_warp >= self.barrier_guard:
            n_star = decide_n_star_coverage(counts, DEFAULT_COVERAGE,
                                            run.occupancy)
        else:
            n_star = decide_n_star(counts, run.occupancy,
                                   rule=self.rule, param=self.param)
        self.decision = LCSDecision(
            n_star=n_star,
            occupancy=run.occupancy,
            decided_cycle=now,
            monitor_sm=sm.sm_id,
            issue_counts=tuple(sorted(counts, reverse=True)),
            rule=self.rule,
            param=self.param,
            utilization=utilization,
            util_guard=self.util_guard,
            barriers_per_warp=barriers_per_warp,
            barrier_guard=self.barrier_guard,
        )
        # Every LCS-monitoring policy (LCS, LCS+BCS, mixed CKE) funnels
        # through here, so the decision is traced in one place.
        hub = sm.gpu.telemetry
        if hub is not None:
            decision = self.decision
            hub.emit("lcs.decision", now, kernel=run.kernel.name,
                     n_star=decision.n_star, occupancy=decision.occupancy,
                     monitor_sm=decision.monitor_sm, rule=decision.rule,
                     param=decision.param,
                     utilization=decision.utilization,
                     guard=decision.guard_reason,
                     issue_counts=list(decision.issue_counts))
        return self.decision


class LCSScheduler(CTAScheduler):
    """Lazy CTA scheduling for a single kernel."""

    name = "lcs"

    __slots__ = ("monitor",)

    def __init__(self, kernel: Kernel | Sequence[Kernel], *,
                 rule: str = "tail", param: float | None = None,
                 threshold: float | None = None,
                 util_guard: float = DEFAULT_UTIL_GUARD,
                 monitor_sm: int | None = None) -> None:
        super().__init__(kernel)
        if len(self.kernels) != 1:
            raise ValueError(
                "LCSScheduler schedules a single kernel; use MixedCKE for "
                "multi-kernel execution")
        if threshold is not None:
            if param is not None:
                raise ValueError("pass either threshold= or param=, not both")
            rule, param = "threshold", threshold
        self.monitor = LCSMonitor(rule=rule, param=param,
                                  util_guard=util_guard,
                                  monitor_sm=monitor_sm)

    @property
    def decision(self) -> LCSDecision | None:
        return self.monitor.decision

    def on_bound(self) -> None:
        self.monitor.announce(self.gpu)

    def limit(self, sm: "SM", run: "KernelRun") -> int:
        decision = self.monitor.decision
        if decision is None:
            return run.occupancy        # monitoring phase: maximum occupancy
        return min(run.occupancy, decision.n_star)

    def on_cta_complete(self, sm: "SM", cta: "CTA", now: int) -> None:
        super().on_cta_complete(sm, cta, now)
        self.monitor.observe_completion(sm, cta, self.runs[0], now)

    def limits_snapshot(self) -> dict[int, int | None]:
        if self.gpu is None:
            return {}
        decision = self.monitor.decision
        value = None if decision is None else decision.n_star
        return {sm.sm_id: value for sm in self.gpu.sms}
