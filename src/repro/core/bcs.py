"""BCS — Block CTA Scheduling (the paper's second mechanism).

The baseline CTA scheduler spreads consecutive CTAs across different cores,
destroying inter-CTA data locality: in stencil-style kernels, CTA *i* and
CTA *i+1* read overlapping (halo) data, but that overlap only becomes L1
reuse if both CTAs run on the *same* core, close together *in time*.

BCS dispatches CTAs in **blocks** of ``block_size`` consecutive CTAs
(the paper uses pairs) to one core.  All CTAs of a block share a
``block_seq``, which the block-aware warp scheduler (BAWS, see
``repro.core.warp_schedulers``) uses to keep the block's warps temporally
aligned — without BAWS, greedy scheduling lets the sibling CTA fall behind
far enough that the shared lines are already evicted (the paper's
observation that plain BCS under GTO is a wash).

Dispatch rules:

* a block only goes to a core with room for the *whole* block (so siblings
  are always co-resident); the effective block size is capped by occupancy;
* the grid tail smaller than a block dispatches as a smaller block;
* an optional static CTA limit composes with blocking (for ablations).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..sim.kernel import Kernel
from .cta_schedulers import CTAScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.gpu import KernelRun
    from ..sim.sm import SM

DEFAULT_BLOCK_SIZE = 2


class BCSScheduler(CTAScheduler):
    """Dispatch consecutive CTAs in blocks to the same SM."""

    name = "bcs"

    __slots__ = ("block_size", "limit_per_sm", "blocks_dispatched")

    def __init__(self, kernel: Kernel | Sequence[Kernel], *,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 limit_per_sm: int | None = None) -> None:
        super().__init__(kernel)
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        if limit_per_sm is not None and limit_per_sm < 1:
            raise ValueError("limit_per_sm must be >= 1")
        self.block_size = block_size
        self.limit_per_sm = limit_per_sm
        self.blocks_dispatched = 0

    def limit(self, sm: "SM", run: "KernelRun") -> int:
        if self.limit_per_sm is None:
            return run.occupancy
        return min(run.occupancy, self.limit_per_sm)

    def _fill_run(self, run: "KernelRun", now: int) -> None:
        sms = self.gpu.sms
        num_sms = len(sms)
        while run.pending:
            block = self._next_block_size(run)
            target = None
            for offset in range(num_sms):
                sm = sms[(self._rr_ptr + offset) % num_sms]
                if self._fits_block(sm, run, block):
                    target = sm
                    self._rr_ptr += offset + 1
                    break
            if target is None:
                # No core can host a whole block.  When the per-core limit is
                # not a multiple of the block size there is a permanently odd
                # slot; top it off with a single CTA (its own block of one)
                # rather than leave it idle forever.
                block = self._odd_slot_size(run)
                if block:
                    for offset in range(num_sms):
                        sm = sms[(self._rr_ptr + offset) % num_sms]
                        if (sm.active_count(run.kernel_id) + block
                                <= self.limit(sm, run)
                                and sm.free_cta_capacity(run) >= block):
                            target = sm
                            self._rr_ptr += offset + 1
                            break
                if target is None:
                    # Wait for a whole block's worth of capacity rather than
                    # split blocks (that is the point of BCS).
                    return
            block_seq = self.gpu.next_block_seq()
            first_cta = run.next_cta
            for _ in range(block):
                self.gpu.dispatch(target, run, block_seq, now)
            self.blocks_dispatched += 1
            hub = self.gpu.telemetry
            if hub is not None:
                hub.emit("bcs.block", now, kernel=run.kernel.name,
                         block_seq=block_seq, sm=target.sm_id,
                         first_cta=first_cta, size=block)

    def _odd_slot_size(self, run: "KernelRun") -> int:
        """Size of the permanent leftover slot group (0 when none exists)."""
        if self.gpu.sms:
            limit = self.limit(self.gpu.sms[0], run)
        else:  # pragma: no cover - GPUs always have SMs
            limit = run.occupancy
        return limit % self._effective_block(run)

    def _effective_block(self, run: "KernelRun") -> int:
        return max(1, min(self.block_size, run.occupancy))

    def _next_block_size(self, run: "KernelRun") -> int:
        remaining = run.kernel.num_ctas - run.next_cta
        return max(1, min(self.block_size, remaining, run.occupancy))

    def _fits_block(self, sm: "SM", run: "KernelRun", block: int) -> bool:
        if sm.active_count(run.kernel_id) + block > self.limit(sm, run):
            return False
        return sm.free_cta_capacity(run) >= block
