"""The paper's contribution: CTA schedulers, warp schedulers, LCS, BCS, CKE."""

from .bcs import BCSScheduler, DEFAULT_BLOCK_SIZE
from .cke import MixedCKE, SequentialCKE, SMKEvenCKE, SpatialCKE
from .combined import LCSBCSScheduler
from .cta_schedulers import (CTAScheduler, RoundRobinCTAScheduler,
                             StaticLimitCTAScheduler)
from .dyncta import DynCTAScheduler
from .lcs import (DEFAULT_COVERAGE, DEFAULT_TAIL_RATIO, DEFAULT_THRESHOLD,
                  DEFAULT_UTIL_GUARD,
                  LCSDecision, LCSMonitor, LCSScheduler, decide_n_star,
                  decide_n_star_coverage, decide_n_star_tail,
                  decide_n_star_threshold)
from .oracle import OracleResult, sweep_static_limits
from .warp_schedulers import (BAWSScheduler, GTOScheduler, LRRScheduler,
                              WarpScheduler, available_warp_schedulers,
                              warp_scheduler_factory)

__all__ = [
    "BCSScheduler", "DEFAULT_BLOCK_SIZE", "MixedCKE", "SequentialCKE",
    "SMKEvenCKE", "SpatialCKE", "CTAScheduler", "RoundRobinCTAScheduler",
    "StaticLimitCTAScheduler", "DynCTAScheduler", "LCSBCSScheduler",
    "DEFAULT_COVERAGE",
    "DEFAULT_THRESHOLD",
    "DEFAULT_UTIL_GUARD", "DEFAULT_TAIL_RATIO", "LCSDecision",
    "decide_n_star_coverage", "decide_n_star_tail",
    "decide_n_star_threshold",
    "LCSMonitor", "LCSScheduler", "decide_n_star", "OracleResult",
    "sweep_static_limits", "BAWSScheduler", "GTOScheduler", "LRRScheduler",
    "WarpScheduler", "available_warp_schedulers", "warp_scheduler_factory",
]
