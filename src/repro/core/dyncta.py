"""DynCTA-style adaptive CTA throttling — the paper's closest related work.

Kayiran et al., "Neither More Nor Less: Optimizing Thread-level Parallelism
for GPGPUs" (PACT 2013) — cited by the paper as the prior CTA-throttling
approach — adjusts the per-core CTA quota *continuously*: each core samples
how its warps spend their time over a window, and

* if the core is mostly **memory-stalled** (warps waiting on loads, LD/ST
  backpressure), it decrements its quota;
* if the core is mostly **idle for lack of warps** (ready set empty, little
  memory pressure), it increments its quota;
* otherwise it holds.

Compared with LCS this needs continuous per-core monitoring hardware and
reacts slower, but it adapts to phase changes and needs no greedy-scheduler
signature.  We implement it as a comparison baseline (experiment E13).

Implementation notes
--------------------

The sampling window is wall-clock (``window`` cycles, checked on CTA
completions and on a periodic event).  Per-core memory pressure is measured
directly from the architectural state the hardware would observe:

* ``mem_stall``  — fraction of resident warps in WAIT_MEM;
* ``starved``    — the core had empty ready sets while few warps were
  memory-blocked (not enough parallelism).

Quotas move by one CTA at a time within [1, occupancy], per core —
unlike LCS's single global decision, DynCTA quotas are per-SM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..sim.kernel import Kernel
from ..sim.warp import WarpState
from .cta_schedulers import CTAScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.cta import CTA
    from ..sim.gpu import KernelRun
    from ..sim.sm import SM

#: Default sampling window in cycles.
DEFAULT_WINDOW = 2048

#: Memory-stall fraction above which the quota decrements.
HIGH_MEM_STALL = 0.60

#: Memory-stall fraction below which (with spare slots) the quota increments.
LOW_MEM_STALL = 0.30


class DynCTAScheduler(CTAScheduler):
    """Per-core adaptive CTA quota driven by memory-stall sampling."""

    name = "dyncta"

    __slots__ = ("window", "high_water", "low_water", "_quota",
                 "adjustments")

    def __init__(self, kernel: Kernel | Sequence[Kernel], *,
                 window: int = DEFAULT_WINDOW,
                 high_water: float = HIGH_MEM_STALL,
                 low_water: float = LOW_MEM_STALL) -> None:
        super().__init__(kernel)
        if len(self.kernels) != 1:
            raise ValueError("DynCTAScheduler schedules a single kernel")
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 <= low_water < high_water <= 1.0:
            raise ValueError("need 0 <= low_water < high_water <= 1")
        self.window = window
        self.high_water = high_water
        self.low_water = low_water
        self._quota: dict[int, int] = {}
        #: (cycle, sm_id, old_quota, new_quota) decision log, for analysis.
        self.adjustments: list[tuple[int, int, int, int]] = []

    # ------------------------------------------------------------------ #
    def on_bound(self) -> None:
        occupancy = self.runs[0].occupancy
        self._quota = {sm.sm_id: occupancy for sm in self.gpu.sms}
        self._schedule_sample(0)

    def _schedule_sample(self, now: int) -> None:
        self.gpu.events.schedule(now + self.window, self._sample, None)

    def limit(self, sm: "SM", run: "KernelRun") -> int:
        return min(run.occupancy, self._quota[sm.sm_id])

    # ------------------------------------------------------------------ #
    def _sample(self, now: int, _arg) -> None:
        if self.done:
            return
        run = self.runs[0]
        for sm in self.gpu.sms:
            self._adjust(sm, run, now)
        self.request_fill()
        self._schedule_sample(now)

    def _adjust(self, sm: "SM", run: "KernelRun", now: int) -> None:
        # Backend-neutral sampling view (the vector core keeps warp state
        # in columns; walking cta.warps directly would read stale state).
        resident = sm.resident_warp_states()
        if not resident:
            return
        mem_stalled = sum(1 for state in resident
                          if state == WarpState.WAIT_MEM)
        stall_fraction = mem_stalled / len(resident)
        old = self._quota[sm.sm_id]
        new = old
        if stall_fraction >= self.high_water and old > 1:
            new = old - 1
        elif (stall_fraction <= self.low_water
              and old < run.occupancy):
            new = old + 1
        if new != old:
            self._quota[sm.sm_id] = new
            self.adjustments.append((now, sm.sm_id, old, new))

    # ------------------------------------------------------------------ #
    def quotas(self) -> dict[int, int]:
        """Current per-SM CTA quotas."""
        return dict(self._quota)

    def limits_snapshot(self) -> dict[int, int | None]:
        if self.gpu is None:
            return {}
        return {sm_id: quota for sm_id, quota in self._quota.items()}
